//! Run the full distributed MCC construction and routing pipeline on a
//! simulated message-passing mesh: labelling → component identification →
//! identification walks → boundary construction → detection → data
//! forwarding, with per-phase message counts.
//!
//! ```text
//! cargo run --example distributed_pipeline
//! ```

use mcc_mesh::mcc_protocols::boundary2::build_pipeline_2d;
use mcc_mesh::mcc_protocols::route2::route_distributed_2d;
use mcc_mesh::mesh_topo::coord::c2;
use mcc_mesh::mesh_topo::{Frame2, Mesh2D};

fn main() {
    let mut mesh = Mesh2D::new(20, 20);
    // Interior fault clusters (the identification walks assume regions do
    // not touch the mesh border; see DESIGN.md).
    for c in [
        c2(5, 6),
        c2(6, 5),
        c2(6, 6),
        c2(12, 12),
        c2(13, 11),
        c2(9, 15),
        c2(15, 4),
        c2(16, 5),
    ] {
        mesh.inject_fault(c);
    }

    println!("constructing MCC information on a 20x20 message-passing mesh...");
    let (bound, stats) = build_pipeline_2d(&mesh, Frame2::identity(&mesh));
    println!(
        "  labelling:      {:>6} messages, {:>3} rounds",
        stats.labelling.messages, stats.labelling.rounds
    );
    println!(
        "  component ids:  {:>6} messages, {:>3} rounds",
        stats.components.messages, stats.components.rounds
    );
    println!(
        "  identification: {:>6} messages, {:>3} rounds",
        stats.identification.messages, stats.identification.rounds
    );
    println!(
        "  boundaries:     {:>6} messages, {:>3} rounds",
        stats.boundary.messages, stats.boundary.rounds
    );
    println!(
        "  total:          {:>6} messages ({} boundary records stored)",
        stats.total_messages(),
        bound.total_records()
    );

    let (s, d) = (c2(0, 0), c2(19, 19));
    println!("\nrouting {s} -> {d} with node-local information only...");
    let out = route_distributed_2d(&mesh, &bound, s, d);
    println!("  detection verdict: feasible = {}", out.feasible);
    let path = out.path.expect("feasible routing must deliver");
    println!(
        "  delivered over {} hops (D(s,d) = {}), {} routing-phase messages",
        path.hops(),
        s.dist(d),
        out.stats.messages
    );
    assert_eq!(
        path.hops() as u32,
        s.dist(d),
        "the distributed route is minimal"
    );

    // A pair the detection must refuse: straight line through a fault.
    let (s2, d2) = (c2(5, 0), c2(5, 19));
    // Column 5 carries the fault (5,6): a single-column RMP cannot avoid it.
    let out2 = route_distributed_2d(&mesh, &bound, s2, d2);
    println!(
        "\nrouting {s2} -> {d2}: feasible = {} (expected false)",
        out2.feasible
    );
    assert!(!out2.feasible);
}
