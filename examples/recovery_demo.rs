//! Recovery demo: kill a journaled mesh-service shard and watch it come
//! back bit-for-bit.
//!
//! Starts the resident service over one 16x16 shard, journals a few fault
//! churn batches (write-ahead log + periodic snapshots), panics the shard
//! mid-flight, and shows the supervisor restart it from its journal with
//! nothing lost. Then shuts the whole service down and restarts it over
//! the same directory to show a full process restart resumes identically.
//!
//! ```text
//! cargo run --example recovery_demo
//! ```

use mcc_mesh::mesh_service::prelude::*;
use mcc_mesh::mesh_topo::coord::c2;

fn main() {
    // Journals live under a self-cleaning temp directory; point `root` at
    // a real path to keep state across runs.
    let root = TempDir::new("recovery-demo");
    let spec = ShardSpec::new(
        Geometry::M2 {
            width: 16,
            height: 16,
            wrap: false,
        },
        4, // snapshot every 4 churn ops; the WAL holds the rest
    );

    let svc = MeshService::start(ServiceConfig::new(root.path()), &[spec]).unwrap();
    println!("service up over {}", root.path().display());

    // Journal some churn: an explicit batch, then seeded random ones.
    svc.call(
        0,
        Request::Churn2 {
            injected: vec![c2(3, 3), c2(3, 4), c2(12, 7)],
            healed: vec![],
        },
        0,
    )
    .unwrap();
    for seed in 0..6 {
        svc.call(0, Request::ChurnRandom { seed }, 0).unwrap();
    }
    let before = stats(&svc);
    println!(
        "journaled: gen {} ({} faults, snapshot at gen {})",
        before.gen, before.faults, before.snapshot_gen
    );

    // Kill the shard actor mid-flight. The caller gets a typed error...
    assert_eq!(
        svc.call(0, Request::Panic, 0),
        Err(ServiceError::ShardPanicked)
    );
    println!("shard killed (ServiceError::ShardPanicked)");

    // ...and the supervisor lazily restarts it from snapshot + WAL replay.
    let after = stats(&svc);
    assert_eq!((after.gen, after.faults), (before.gen, before.faults));
    println!(
        "supervisor recovered it: gen {} ({} faults, {} recovery)",
        after.gen, after.faults, after.recoveries
    );

    // Routing still works over the recovered models.
    let r = svc
        .call(
            0,
            Request::RouteRandom {
                seed: 7,
                min_dist: 8,
            },
            0,
        )
        .unwrap();
    println!("post-recovery route: {r:?}");

    // A full process restart resumes from the same journal.
    svc.shutdown();
    let svc = MeshService::start(ServiceConfig::new(root.path()), &[spec]).unwrap();
    let resumed = stats(&svc);
    assert_eq!(resumed.gen, before.gen);
    println!("process restart resumed at gen {}", resumed.gen);
    svc.shutdown();
}

fn stats(svc: &MeshService) -> mcc_mesh::mesh_service::ShardStats {
    match svc.call(0, Request::Stats, 0) {
        Ok(Response::Stats(s)) => s,
        other => panic!("stats: {other:?}"),
    }
}
