//! Wrap-around routing: the same fault-tolerant minimal routing on a
//! 2-D torus, where every axis closes on itself and routes follow the
//! per-axis shorter arcs (Lee distance).
//!
//! Demonstrates the pieces DESIGN.md §10 describes: the shorter-arc
//! canonical frame (rotation + reflection), the wrap-aware labelling
//! closure, and a prepared mesh batching trials against one fault
//! configuration.
//!
//! ```text
//! cargo run --example torus_routing
//! ```

use mcc_mesh::fault_model::mcc2::MccSet2;
use mcc_mesh::fault_model::{minimal_path_exists_2d, BorderPolicy, Labelling2};
use mcc_mesh::mcc_routing::policy::Policy;
use mcc_mesh::mcc_routing::prepared::PreparedMesh2;
use mcc_mesh::mcc_routing::{Router2, TrialOptions};
use mcc_mesh::mesh_topo::coord::c2;
use mcc_mesh::mesh_topo::{FaultSpec, Frame2, Mesh2D};

fn main() {
    // A 16x16 torus with 24 random faults (source/destination spared).
    let (s, d) = (c2(14, 2), c2(3, 13));
    let mut mesh = Mesh2D::torus_kary(16);
    let injected = FaultSpec::uniform(24, 7).inject_2d(&mut mesh, &[s, d]);
    println!(
        "torus: 16x16 = {} nodes, {injected} faults; D({s}, {d}) = {} (Lee), \
         {} on the open mesh",
        mesh.node_count(),
        mesh.dist(s, d),
        s.dist(d),
    );

    // The torus frame reflects per-axis toward the shorter arc, then
    // rotates the source onto the origin: the canonical destination is
    // the Lee-distance vector and the routing box never meets the seam.
    let frame = Frame2::for_pair(&mesh, s, d);
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    println!("canonical pair: {cs} -> {cd}");

    let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
    let mccs = MccSet2::compute(&lab);
    println!(
        "labelling: {} unsafe nodes, {} fault regions",
        lab.unsafe_count(),
        mccs.len()
    );

    let verdict = minimal_path_exists_2d(&lab, &mccs, cs, cd);
    println!("existence condition: {verdict:?}");
    if verdict.exists() {
        let router = Router2::new(&lab, &mccs);
        let out = router.route(cs, cd, &mut Policy::balanced());
        assert!(out.delivered());
        assert_eq!(out.path.hops() as u32, mesh.dist(s, d));
        // Map the canonical route back to torus coordinates: steps that
        // cross the seam show up as jumps between opposite edges.
        let mesh_path: Vec<_> = out
            .path
            .nodes()
            .iter()
            .map(|&c| frame.from_canon(c))
            .collect();
        println!(
            "delivered over {} Lee-minimal hops: {mesh_path:?}",
            out.path.hops()
        );
    }

    // Batch more pairs against the same fault configuration: the
    // prepared mesh caches fault blocks per mesh and labellings per
    // rotation frame.
    let mut pm = PreparedMesh2::new(&mesh, TrialOptions::default());
    let mut delivered = 0;
    let pairs = [
        (c2(0, 0), c2(15, 15)),
        (c2(8, 1), c2(9, 14)),
        (c2(2, 7), c2(13, 7)),
        (c2(5, 5), c2(6, 6)),
    ];
    for (i, (a, b)) in pairs.into_iter().enumerate() {
        if !mesh.is_healthy(a) || !mesh.is_healthy(b) {
            continue;
        }
        let t = pm.run_trial(a, b, 100 + i as u64);
        assert_eq!(t.mcc_ok, t.oracle_ok, "the MCC condition is exact on tori");
        delivered += t.mcc_delivered as usize;
    }
    println!("batched trials: {delivered} delivered over one prepared torus");
}
