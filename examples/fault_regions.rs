//! Visualize 2-D fault regions: MCC labelling vs rectangular faulty
//! blocks, for a sample mesh printed as ASCII.
//!
//! ```text
//! cargo run --example fault_regions
//! ```
//!
//! Legend: `#` faulty, `u` useless, `c` can't-reach, `b` healthy node
//! disabled by the rectangular-block model only, `.` free.

use mcc_mesh::fault_model::mcc2::MccSet2;
use mcc_mesh::fault_model::{BorderPolicy, FaultBlocks2, Labelling2};
use mcc_mesh::mesh_topo::coord::c2;
use mcc_mesh::mesh_topo::{FaultSpec, Frame2, Mesh2D};

fn main() {
    let mut mesh = Mesh2D::new(24, 16);
    // A staircase, a "/" diagonal and some random sprinkle.
    for x in 4..=8 {
        mesh.inject_fault(c2(x, 14 - x));
    }
    for i in 0..3 {
        mesh.inject_fault(c2(14 + i, 4 + i));
    }
    FaultSpec::uniform(6, 7).inject_2d(&mut mesh, &[]);

    let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
    let mccs = MccSet2::compute(&lab);
    let blocks = FaultBlocks2::compute(&mesh);

    println!(
        "faults: {}   MCC captures: {} healthy   RFB disables: {} healthy",
        mesh.fault_count(),
        lab.sacrificed_count(),
        blocks.sacrificed_count()
    );
    println!("MCCs: {}   blocks: {}\n", mccs.len(), blocks.blocks.len());

    for y in (0..mesh.height()).rev() {
        let mut row = String::with_capacity(mesh.width() as usize * 2);
        for x in 0..mesh.width() {
            let c = c2(x, y);
            let st = lab.status(c);
            let ch = if st.is_faulty() {
                '#'
            } else if st.is_useless() && st.is_cant_reach() {
                'x'
            } else if st.is_useless() {
                'u'
            } else if st.is_cant_reach() {
                'c'
            } else if blocks.is_disabled(c) {
                'b'
            } else {
                '.'
            };
            row.push(ch);
            row.push(' ');
        }
        println!("{row}");
    }

    println!("\nper-MCC summary (canonical quadrant):");
    for m in mccs.iter() {
        println!(
            "  MCC #{}: {:>3} cells ({} faulty + {} captured), bbox x {}..{}, y {}..{}, HV-convex: {}",
            m.id,
            m.len(),
            m.fault_count,
            m.sacrificed_count,
            m.bounds.x0,
            m.bounds.x1,
            m.bounds.y0,
            m.bounds.y1,
            m.is_hv_convex()
        );
    }
}
