//! Quickstart: fault-tolerant minimal routing in a 3-D mesh.
//!
//! Builds a 16x16x16 mesh, injects random faults, checks the MCC
//! existence condition, and routes a message over a provably minimal path.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mcc_mesh::fault_model::mcc3::MccSet3;
use mcc_mesh::fault_model::{minimal_path_exists_3d, BorderPolicy, Labelling3};
use mcc_mesh::mcc_routing::policy::Policy;
use mcc_mesh::mcc_routing::Router3;
use mcc_mesh::mesh_topo::coord::c3;
use mcc_mesh::mesh_topo::{FaultSpec, Frame3, Mesh3D};

fn main() {
    // A 16-ary 3-D mesh with 60 random faults (source/destination spared).
    let (s, d) = (c3(1, 2, 0), c3(14, 13, 15));
    let mut mesh = Mesh3D::kary(16);
    let injected = FaultSpec::uniform(60, 2024).inject_3d(&mut mesh, &[s, d]);
    println!(
        "mesh: 16^3 = {} nodes, {injected} faults",
        mesh.node_count()
    );

    // Canonicalize the pair and run the labelling closure for its octant.
    let frame = Frame3::for_pair(&mesh, s, d);
    let lab = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
    println!(
        "labelling: {} unsafe nodes ({} healthy nodes captured by MCCs)",
        lab.unsafe_count(),
        lab.sacrificed_count()
    );
    let mccs = MccSet3::compute(&lab);
    println!("fault regions: {} MCCs", mccs.len());

    // Existence condition (Theorem 2) at the source.
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    let verdict = minimal_path_exists_3d(&lab, cs, cd);
    println!("existence condition: {verdict:?}");
    if !verdict.exists() {
        println!("no minimal path — routing is not activated");
        return;
    }

    // Two-phase adaptive minimal routing (Algorithm 6).
    let router = Router3::new(&lab, &mccs);
    let out = router.route(cs, cd, &mut Policy::balanced());
    assert!(out.delivered());
    let hops = out.path.hops();
    println!(
        "delivered: {hops} hops (D(s,d) = {}), adaptivity {:.2} dirs/hop, \
         detection visited {} nodes",
        s.dist(d),
        out.adaptivity(),
        out.detection_cost
    );
    // Print the first few hops in mesh coordinates.
    let mesh_path: Vec<_> = out
        .path
        .nodes()
        .iter()
        .map(|&c| frame.from_canon(c))
        .collect();
    println!("route head: {:?} ...", &mesh_path[..mesh_path.len().min(6)]);
    assert_eq!(hops as u32, s.dist(d), "the route is minimal");
}
