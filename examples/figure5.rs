//! Reproduce Figure 5 of the paper: the 3-D MCC decomposition of a sample
//! rectangular faulty block, including the non-convex section with the
//! hole at (6,6,5).
//!
//! ```text
//! cargo run --example figure5
//! ```

use mcc_mesh::fault_model::mcc3::MccSet3;
use mcc_mesh::fault_model::{BorderPolicy, FaultBlocks3, Labelling3};
use mcc_mesh::mesh_topo::coord::c3;
use mcc_mesh::mesh_topo::{Axis3, Frame3, Mesh3D};

fn main() {
    // The exact fault set of Figure 5(a).
    let faults = [
        c3(5, 5, 6),
        c3(6, 5, 5),
        c3(5, 6, 5),
        c3(6, 7, 5),
        c3(7, 6, 5),
        c3(5, 4, 7),
        c3(4, 5, 7),
        c3(7, 8, 4),
    ];
    let mut mesh = Mesh3D::kary(10);
    for f in faults {
        mesh.inject_fault(f);
    }

    let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
    println!("labelling (canonical octant):");
    println!(
        "  (5,5,5): {:?}   <- paper: useless",
        lab.status(c3(5, 5, 5))
    );
    println!(
        "  (5,5,7): {:?} <- paper: can't-reach",
        lab.status(c3(5, 5, 7))
    );

    let mccs = MccSet3::compute(&lab);
    println!("\nMCC decomposition: {} components (paper: 2)", mccs.len());
    for m in mccs.iter() {
        println!(
            "  MCC #{}: {} cells ({} faulty, {} healthy captured), bounds {:?}..{:?}",
            m.id,
            m.cells.len(),
            m.fault_count,
            m.sacrificed_count,
            m.bounds.lo,
            m.bounds.hi
        );
    }

    // The z = 5 section of the large MCC with its hole at (6,6).
    let big = mccs.component_containing(c3(5, 5, 5)).expect("large MCC");
    let mut section = big.section(Axis3::Z, 5);
    section.sort();
    println!("\nsection z = 5 of the large MCC: {section:?}");
    println!(
        "hole at (6,6,5): in MCC? {} (paper: no — the section is not convex)",
        big.contains(c3(6, 6, 5))
    );

    // Contrast with the rectangular-faulty-block view of Figure 5(a).
    let blocks = FaultBlocks3::compute(&mesh);
    println!(
        "\ncuboid fault blocks (the conventional model): {}",
        blocks.blocks.len()
    );
    let mut total = 0u64;
    for b in &blocks.blocks {
        println!("  block {:?}..{:?} ({} cells)", b.lo, b.hi, b.volume());
        total += b.volume();
    }
    println!(
        "conventional model disables {total} nodes ({} healthy) — the MCC model \
         captures only {} healthy nodes",
        blocks.sacrificed_count(),
        lab.sacrificed_count()
    );
}
