//! Workspace-level integration tests: the semantic layer, the routing
//! layer and the distributed protocol layer must tell one consistent story
//! on shared scenarios.

use mcc_mesh::fault_model::mcc2::MccSet2;
use mcc_mesh::fault_model::mcc3::MccSet3;
use mcc_mesh::fault_model::{
    minimal_path_exists_2d, minimal_path_exists_3d, oracle, BorderPolicy, FaultBlocks2, Labelling2,
    Labelling3,
};
use mcc_mesh::mcc_protocols::boundary2::build_pipeline_2d;
use mcc_mesh::mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_mesh::mcc_protocols::route2::route_distributed_2d;
use mcc_mesh::mcc_protocols::route3::route_distributed_3d;
use mcc_mesh::mcc_routing::policy::Policy;
use mcc_mesh::mcc_routing::trial::{run_trial_2d, run_trial_3d};
use mcc_mesh::mcc_routing::{Router2, Router3};
use mcc_mesh::mesh_topo::coord::{c2, c3};
use mcc_mesh::mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One shared 2-D scenario, checked across all layers.
#[test]
fn all_layers_agree_2d() {
    let mut rng = SmallRng::seed_from_u64(1001);
    for trial in 0..20 {
        let mut mesh = Mesh2D::new(16, 16);
        for _ in 0..10 {
            let c = c2(rng.gen_range(1..15), rng.gen_range(1..15));
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let (s, d) = (c2(0, 0), c2(15, 15));
        let frame = Frame2::for_pair(&mesh, s, d);
        let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
        if !lab.is_safe(s) || !lab.is_safe(d) {
            continue;
        }
        let mccs = MccSet2::compute(&lab);

        // Layer 1: semantic condition vs oracle.
        let semantic = minimal_path_exists_2d(&lab, &mccs, s, d).exists();
        let truth = oracle::reachable_2d(s, d, |c| !mesh.is_healthy(c));
        assert_eq!(semantic, truth, "trial {trial}");

        // Layer 2: centralized router.
        let router = Router2::new(&lab, &mccs);
        let out = router.route(s, d, &mut Policy::random(trial));
        assert_eq!(out.delivered(), truth, "trial {trial}");
        if out.delivered() {
            assert!(out.path.is_minimal(&mesh, s, d));
        }

        // Layer 3: distributed labelling equals centralized.
        let dist = DistLabelling2::run(&mesh, frame);
        assert!(dist.matches(&lab), "trial {trial}");

        // Layer 4: full distributed pipeline + message routing.
        let (bound, _) = build_pipeline_2d(&mesh, frame);
        let dout = route_distributed_2d(&mesh, &bound, s, d);
        assert_eq!(dout.feasible, truth, "trial {trial}");
        if truth {
            let p = dout.path.expect("feasible must deliver");
            assert!(p.is_minimal(&mesh, s, d), "trial {trial}");
        }
    }
}

/// One shared 3-D scenario, checked across all layers.
#[test]
fn all_layers_agree_3d() {
    for seed in 0..10u64 {
        let mut mesh = Mesh3D::kary(8);
        FaultSpec::uniform(24, seed).inject_3d(&mut mesh, &[c3(0, 0, 0), c3(7, 7, 7)]);
        let (s, d) = (c3(0, 0, 0), c3(7, 7, 7));
        let frame = Frame3::for_pair(&mesh, s, d);
        let lab = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
        if !lab.is_safe(s) || !lab.is_safe(d) {
            continue;
        }
        let truth = oracle::reachable_3d(s, d, |c| !mesh.is_healthy(c));
        assert_eq!(
            minimal_path_exists_3d(&lab, s, d).exists(),
            truth,
            "seed {seed}"
        );

        let mccs = MccSet3::compute(&lab);
        let router = Router3::new(&lab, &mccs);
        let out = router.route(s, d, &mut Policy::random(seed));
        assert_eq!(out.delivered(), truth, "seed {seed}");

        let dist = DistLabelling3::run(&mesh, frame);
        assert!(dist.matches(&lab), "seed {seed}");
        let dout = route_distributed_3d(&mesh, &dist, s, d);
        assert_eq!(dout.feasible, truth, "seed {seed}");
        if truth {
            assert!(dout.path.unwrap().is_minimal(&mesh, s, d), "seed {seed}");
        }
    }
}

/// Every quadrant orientation routes correctly (reflection plumbing).
#[test]
fn routing_works_in_all_quadrants() {
    let mut mesh = Mesh2D::new(12, 12);
    for c in [c2(5, 5), c2(6, 6), c2(5, 6), c2(6, 5)] {
        mesh.inject_fault(c);
    }
    let corners = [c2(0, 0), c2(11, 0), c2(0, 11), c2(11, 11)];
    for &s in &corners {
        for &d in &corners {
            if s == d {
                continue;
            }
            let t = run_trial_2d(&mesh, s, d, 9);
            assert!(t.oracle_ok, "{s}->{d} should be routable");
            assert_eq!(t.mcc_ok, t.oracle_ok);
            if t.endpoints_safe {
                assert!(t.mcc_delivered, "{s}->{d}");
                assert_eq!(t.mcc_hops as u32, s.dist(d));
            }
        }
    }
}

/// Every octant orientation routes correctly in 3-D.
#[test]
fn routing_works_in_all_octants() {
    let mut mesh = Mesh3D::kary(7);
    mesh.inject_fault(c3(3, 3, 3));
    mesh.inject_fault(c3(4, 3, 3));
    let corners = [
        c3(0, 0, 0),
        c3(6, 0, 0),
        c3(0, 6, 0),
        c3(0, 0, 6),
        c3(6, 6, 0),
        c3(6, 0, 6),
        c3(0, 6, 6),
        c3(6, 6, 6),
    ];
    for &s in &corners {
        for &d in &corners {
            if s == d {
                continue;
            }
            let t = run_trial_3d(&mesh, s, d, 5);
            assert_eq!(t.mcc_ok, t.oracle_ok, "{s}->{d}");
            if t.endpoints_safe && t.oracle_ok {
                assert!(t.mcc_delivered, "{s}->{d}");
            }
        }
    }
}

/// The paper's headline comparison holds end to end: MCC admits at least
/// every routing the block model admits, and strictly more on the classic
/// "/"-diagonal configuration.
#[test]
fn mcc_strictly_beats_blocks_on_diagonals() {
    let mut mesh = Mesh2D::new(10, 10);
    mesh.inject_fault(c2(4, 4));
    mesh.inject_fault(c2(5, 5));
    let blocks = FaultBlocks2::compute(&mesh);
    // Healthy node inside the block: block model refuses, MCC delivers.
    let d = c2(4, 5);
    assert!(blocks.is_disabled(d) && mesh.is_healthy(d));
    let t = run_trial_2d(&mesh, c2(0, 0), d, 3);
    assert!(t.oracle_ok && t.mcc_ok && !t.rfb_ok);
    assert!(t.mcc_delivered);
}
