//! Distributed two-phase routing in 2-D (Algorithm 3 as messages).
//!
//! Phase one: two detection messages walk from the source (`+Y` with `+X`
//! detours; `+X` with `+Y` detours), each deciding purely from the
//! neighbor-status knowledge of the node it sits on, and *reply messages*
//! retrace the walk back to the source — message costs included.
//!
//! Phase two: the data message is forwarded hop by hop. At every node the
//! candidate directions are the preferred ones whose neighbor is safe, and
//! a direction is excluded when a [`BoundaryRecord2`] **stored at that
//! node** forbids it for the current destination. No node ever consults
//! non-local information.
//!
//! `tests` validate against the semantic layer: the detection replies agree
//! with `mcc_routing::detect_2d`, and the data message is delivered over a
//! minimal path whenever the semantic condition admits one.

use mesh_topo::{Dir2, Mesh2D, NodeSpace2, Path2, C2};
use sim_net::{Grid2, RunStats, SimNet};

use crate::boundary2::{BoundState, Boundary2};
use crate::records::BoundaryRecord2;

/// Messages of the routing phase.
#[derive(Clone, Debug)]
pub enum RouteMsg {
    /// A detection walk: `main`/`side` directions, destination, and the
    /// path walked so far (for the reply).
    Detect {
        /// Primary walk direction.
        main: Dir2,
        /// Detour direction.
        side: Dir2,
        /// Canonical destination.
        d: C2,
        /// Nodes visited so far, source first.
        path: Vec<C2>,
    },
    /// The detection verdict retracing `path` back to the source.
    Reply {
        /// Which walk is reporting (its main direction).
        main: Dir2,
        /// Did the walk reach its target edge?
        ok: bool,
        /// Remaining nodes to retrace (last element = next hop).
        path: Vec<C2>,
    },
    /// The routed payload.
    Data {
        /// Canonical destination.
        d: C2,
        /// Nodes visited so far, source first.
        path: Vec<C2>,
    },
}

/// Per-node routing state: boundary state plus routing scratch.
#[derive(Clone, Debug, Default)]
pub struct RouteState {
    /// Construction-phase state (records, statuses).
    pub base: BoundState,
    /// Detection verdicts received (at the source).
    pub verdicts: Vec<(Dir2, bool)>,
    /// Path of a delivered data message (at the destination).
    pub delivered: Option<Vec<C2>>,
}

/// Outcome of one distributed routing attempt.
#[derive(Clone, Debug)]
pub struct DistRouteOutcome {
    /// Was the routing activated (both detections positive)?
    pub feasible: bool,
    /// The delivered path, if any.
    pub path: Option<Path2>,
    /// Message statistics of the routing phase (detection + data).
    pub stats: RunStats,
}

/// Execute one routing from canonical `s` to `d` (`s ≤ d`, both safe) on a
/// constructed boundary network.
///
/// # Panics
/// If `s` does not precede `d`, or either endpoint is unsafe.
pub fn route_distributed_2d(mesh: &Mesh2D, bound: &Boundary2, s: C2, d: C2) -> DistRouteOutcome {
    assert!(
        s.dominated_by(d),
        "distributed routing requires canonical s <= d"
    );
    let (w, h) = (mesh.width(), mesh.height());
    let topo = Grid2::from_space(mesh.space());
    let space = topo.space();
    let mut net: SimNet<Grid2, RouteState, RouteMsg> = SimNet::new(topo, |_| RouteState::default());
    for i in 0..net.len() {
        net.state_mut(i).base = bound.net.state(i).clone();
    }
    assert!(
        net.state_at(s).base.status.is_safe() && net.state_at(d).base.status.is_safe(),
        "distributed routing requires safe endpoints"
    );
    // Phase one: launch both detection walks.
    net.post(
        space.index(s),
        RouteMsg::Detect {
            main: Dir2::Yp,
            side: Dir2::Xp,
            d,
            path: vec![],
        },
    );
    net.post(
        space.index(s),
        RouteMsg::Detect {
            main: Dir2::Xp,
            side: Dir2::Yp,
            d,
            path: vec![],
        },
    );
    let max_rounds = (6 * (w + h)) as usize + 32;
    let mut stats = net.run(max_rounds, make_step(space));
    // Read verdicts at the source.
    let verdicts = &net.state_at(s).verdicts;
    let y_ok = verdicts.iter().any(|&(m, ok)| m == Dir2::Yp && ok);
    let x_ok = verdicts.iter().any(|&(m, ok)| m == Dir2::Xp && ok);
    let feasible = y_ok && x_ok;
    let mut path = None;
    if feasible {
        let mut net2 = net;
        net2.post(space.index(s), RouteMsg::Data { d, path: vec![] });
        let data_stats = net2.run(max_rounds, make_step(space));
        stats.absorb(data_stats);
        path = net2.state_at(d).delivered.clone().map(Path2::from_nodes);
    }
    DistRouteOutcome {
        feasible,
        path,
        stats,
    }
}

/// The shared handler of both phases (detection walks + replies, data
/// forwarding), parameterized by the mesh linearization.
fn make_step(
    space: NodeSpace2,
) -> impl FnMut(&mut RouteState, sim_net::Inbox<'_, RouteMsg>, &mut sim_net::Ctx<'_, Grid2, RouteMsg>)
{
    move |state, inbox, ctx| {
        let me_i = ctx.me();
        let me = space.coord(me_i);
        for (_, msg) in inbox {
            match msg {
                RouteMsg::Detect {
                    main,
                    side,
                    d,
                    path,
                } => {
                    let (main, side, d) = (*main, *side, *d);
                    let mut path = path.clone();
                    path.push(me);
                    let safe = |dir: Dir2| {
                        space.step(me_i, dir).is_some()
                            && matches!(state.base.nbr_status[dir.index()], Some(st) if st.is_safe())
                    };
                    let verdict = if me.get(main.axis()) == d.get(main.axis()) {
                        Some(true) // reached the target edge of the RMP
                    } else if safe(main) {
                        None // keep walking along main
                    } else if me.get(side.axis()) == d.get(side.axis()) {
                        Some(false) // cannot detour without leaving the RMP
                    } else if safe(side) {
                        None
                    } else {
                        Some(false) // defensively unreachable (closure property)
                    };
                    match verdict {
                        Some(ok) => {
                            // Reply toward the source.
                            path.pop();
                            if let Some(&back) = path.last() {
                                ctx.send(space.index(back), RouteMsg::Reply { main, ok, path });
                            } else {
                                state.verdicts.push((main, ok)); // walk ended at s
                            }
                        }
                        None => {
                            let dir = if me.get(main.axis()) < d.get(main.axis()) && safe(main) {
                                main
                            } else {
                                side
                            };
                            let next = space.step(me_i, dir).expect("walk stays in-mesh");
                            ctx.send(
                                next,
                                RouteMsg::Detect {
                                    main,
                                    side,
                                    d,
                                    path,
                                },
                            );
                        }
                    }
                }
                RouteMsg::Reply { main, ok, path } => {
                    let mut path = path.clone();
                    path.pop();
                    if let Some(&back) = path.last() {
                        ctx.send(
                            space.index(back),
                            RouteMsg::Reply {
                                main: *main,
                                ok: *ok,
                                path,
                            },
                        );
                    } else {
                        state.verdicts.push((*main, *ok));
                    }
                }
                RouteMsg::Data { d, path } => {
                    let d = *d;
                    let mut path = path.clone();
                    path.push(me);
                    if me == d {
                        state.delivered = Some(path);
                        continue;
                    }
                    // Candidate preferred directions, filtered by neighbor
                    // status and by the records stored at this node.
                    let records: &[BoundaryRecord2] = &state.base.records;
                    let mut allowed: Vec<Dir2> = Vec::with_capacity(2);
                    for dir in Dir2::POSITIVE {
                        if me.get(dir.axis()) >= d.get(dir.axis()) {
                            continue;
                        }
                        let v = me.step(dir);
                        let v_safe = space.contains(v)
                            && matches!(state.base.nbr_status[dir.index()], Some(st) if st.is_safe());
                        if !v_safe {
                            continue;
                        }
                        if records.iter().any(|r| r.excludes(v, d)) {
                            continue;
                        }
                        allowed.push(dir);
                    }
                    // Balanced pick (largest remaining offset), X on ties.
                    let pick = allowed.iter().copied().max_by_key(|dir| match dir {
                        Dir2::Xp => (d.x - me.x, 1),
                        Dir2::Yp => (d.y - me.y, 0),
                        _ => (i32::MIN, 0),
                    });
                    if let Some(dir) = pick {
                        let next = space.step(me_i, dir).expect("allowed dirs are in-mesh");
                        ctx.send(next, RouteMsg::Data { d, path });
                    }
                    // else: stuck — the attempt simply dies, which the
                    // validation layer reports as a non-delivery.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary2::build_pipeline_2d;
    use fault_model::mcc2::MccSet2;
    use fault_model::{minimal_path_exists_2d, BorderPolicy, Existence2, Labelling2};
    use mesh_topo::coord::c2;
    use mesh_topo::Frame2;

    fn build(faults: &[C2], w: i32, h: i32) -> (Mesh2D, Boundary2) {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let (b, _) = build_pipeline_2d(&mesh, Frame2::identity(&mesh));
        (mesh, b)
    }

    #[test]
    fn routes_fault_free() {
        let (mesh, b) = build(&[], 8, 8);
        let out = route_distributed_2d(&mesh, &b, c2(0, 0), c2(7, 7));
        assert!(out.feasible);
        let path = out.path.expect("delivered");
        assert!(path.is_minimal(&mesh, c2(0, 0), c2(7, 7)));
    }

    #[test]
    fn routes_around_region_using_records() {
        let (mesh, b) = build(&[c2(3, 3), c2(4, 3), c2(3, 4)], 10, 10);
        let out = route_distributed_2d(&mesh, &b, c2(0, 0), c2(8, 8));
        assert!(out.feasible);
        let path = out.path.expect("delivered");
        assert!(path.is_minimal(&mesh, c2(0, 0), c2(8, 8)));
    }

    #[test]
    fn detection_refuses_blocked_routes() {
        let (mesh, b) = build(&[c2(3, 4)], 8, 8);
        let out = route_distributed_2d(&mesh, &b, c2(3, 0), c2(3, 7));
        assert!(!out.feasible);
        assert!(out.path.is_none());
    }

    #[test]
    fn records_prevent_the_forbidden_shadow() {
        // The balanced data walk from (0,3) to (9,8) with a region at
        // x=5..6,y=5..6 would enter the down-shadow without records; with
        // them it must still deliver minimally.
        let (mesh, b) = build(&[c2(5, 5), c2(6, 6), c2(5, 6), c2(6, 5)], 10, 10);
        let out = route_distributed_2d(&mesh, &b, c2(0, 3), c2(9, 8));
        assert!(out.feasible);
        let path = out.path.expect("delivered");
        assert!(path.is_minimal(&mesh, c2(0, 3), c2(9, 8)));
    }

    #[test]
    fn matches_semantic_layer_randomized() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut delivered = 0;
        let mut refused = 0;
        for seed in 0..25u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut mesh = Mesh2D::new(12, 12);
            // Interior faults only: the identification walk assumption.
            for _ in 0..8 {
                let c = c2(rng.gen_range(1..11), rng.gen_range(1..11));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let frame = Frame2::identity(&mesh);
            let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
            let set = MccSet2::compute(&lab);
            let (s, d) = (c2(0, 0), c2(11, 11));
            if !lab.is_safe(s) || !lab.is_safe(d) {
                continue;
            }
            let (_, bnd) = (
                0,
                Boundary2::run(&mesh, &{
                    let l = crate::labelling::DistLabelling2::run(&mesh, frame);
                    let c = crate::compid::DistComponents2::run(&mesh, &l);
                    crate::ident2::Ident2::run(&mesh, &c)
                }),
            );
            let out = route_distributed_2d(&mesh, &bnd, s, d);
            let semantic = minimal_path_exists_2d(&lab, &set, s, d) == Existence2::Exists;
            assert_eq!(out.feasible, semantic, "seed {seed}: detection mismatch");
            if semantic {
                let path = out
                    .path
                    .unwrap_or_else(|| panic!("seed {seed}: feasible but not delivered (stuck)"));
                assert!(path.is_minimal(&mesh, s, d), "seed {seed}: non-minimal");
                delivered += 1;
            } else {
                refused += 1;
            }
        }
        assert!(delivered >= 5, "delivered only {delivered}");
        let _ = refused;
    }

    #[test]
    fn torus_pipeline_matches_semantic_layer() {
        // The full construction pipeline (labelling → compid → ident →
        // boundary) plus distributed routing on a torus with seam-free
        // fault regions: detection verdicts and delivery must match the
        // semantic condition through the pair's canonical frame.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut delivered = 0;
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15C);
            let mut mesh = Mesh2D::torus(12, 12);
            // Keep regions off the canonical seam: interior faults of the
            // identity orientation (the identification walks' working
            // assumption, same as the mesh pipeline).
            for _ in 0..8 {
                let c = c2(rng.gen_range(1..11), rng.gen_range(1..11));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let frame = Frame2::identity(&mesh);
            let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
            let set = MccSet2::compute(&lab);
            let (s, d) = (c2(0, 0), c2(11, 11));
            if !lab.is_safe(s) || !lab.is_safe(d) {
                continue;
            }
            let (bnd, _) = build_pipeline_2d(&mesh, frame);
            let out = route_distributed_2d(&mesh, &bnd, s, d);
            let semantic = minimal_path_exists_2d(&lab, &set, s, d) == Existence2::Exists;
            assert_eq!(out.feasible, semantic, "seed {seed}: detection mismatch");
            if semantic {
                let path = out
                    .path
                    .unwrap_or_else(|| panic!("seed {seed}: feasible but stuck"));
                assert!(path.is_valid(&mesh), "seed {seed}");
                assert_eq!(path.hops() as u32, s.dist(d), "seed {seed}");
                delivered += 1;
            }
        }
        assert!(delivered >= 5, "delivered only {delivered}");
    }

    #[test]
    fn message_stats_accumulate() {
        let (mesh, b) = build(&[c2(4, 4)], 10, 10);
        let out = route_distributed_2d(&mesh, &b, c2(0, 0), c2(9, 9));
        assert!(out.feasible);
        // Detection (two walks + replies) plus data forwarding.
        assert!(
            out.stats.messages > 18 + 18,
            "messages = {}",
            out.stats.messages
        );
    }
}
