//! Region shapes and the boundary records nodes store.
//!
//! A [`RegionShape`] is what the identification walk reconstructs: the cell
//! set of one MCC, with per-column/row interval tables for the region
//! predicates (the distributed twin of `fault_model::Mcc2`). A
//! [`BoundaryRecord2`] is what the boundary construction deposits at the
//! nodes of a boundary line: the root region's shape (whose critical region
//! the destination is tested against) plus every shape whose forbidden
//! region was merged in while the boundary descended.

use std::collections::BTreeMap;
use std::sync::Arc;

use mesh_topo::{Rect, C2};
use serde::{Deserialize, Serialize};

/// The reconstructed shape of one 2-D MCC.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionShape {
    /// Component id (minimum member coordinate).
    pub comp_id: C2,
    /// All member cells, sorted.
    pub cells: Vec<C2>,
    /// Bounding rectangle.
    pub bounds: Rect,
    cols: BTreeMap<i32, (i32, i32)>,
    rows: BTreeMap<i32, (i32, i32)>,
}

impl RegionShape {
    /// Build a shape from the collected member cells.
    ///
    /// # Panics
    /// If `cells` is empty.
    pub fn new(comp_id: C2, mut cells: Vec<C2>) -> RegionShape {
        assert!(!cells.is_empty(), "a region shape needs at least one cell");
        cells.sort();
        cells.dedup();
        let mut bounds = Rect::point(cells[0]);
        let mut cols: BTreeMap<i32, (i32, i32)> = BTreeMap::new();
        let mut rows: BTreeMap<i32, (i32, i32)> = BTreeMap::new();
        for &c in &cells {
            bounds.include(c);
            let e = cols.entry(c.x).or_insert((c.y, c.y));
            e.0 = e.0.min(c.y);
            e.1 = e.1.max(c.y);
            let e = rows.entry(c.y).or_insert((c.x, c.x));
            e.0 = e.0.min(c.x);
            e.1 = e.1.max(c.x);
        }
        RegionShape {
            comp_id,
            cells,
            bounds,
            cols,
            rows,
        }
    }

    /// The occupied y-interval of column `x`, if spanned.
    pub fn col_interval(&self, x: i32) -> Option<(i32, i32)> {
        self.cols.get(&x).copied()
    }

    /// The occupied x-interval of row `y`, if spanned.
    pub fn row_interval(&self, y: i32) -> Option<(i32, i32)> {
        self.rows.get(&y).copied()
    }

    /// Strictly below the shape in a spanned column (`Q_Y`).
    pub fn in_forbidden_y(&self, c: C2) -> bool {
        matches!(self.col_interval(c.x), Some((bot, _)) if c.y < bot)
    }

    /// Strictly above the shape in a spanned column (`Q'_Y`).
    pub fn in_critical_y(&self, c: C2) -> bool {
        matches!(self.col_interval(c.x), Some((_, top)) if c.y > top)
    }

    /// Strictly left of the shape in a spanned row (`Q_X`).
    pub fn in_forbidden_x(&self, c: C2) -> bool {
        matches!(self.row_interval(c.y), Some((lo, _)) if c.x < lo)
    }

    /// Strictly right of the shape in a spanned row (`Q'_X`).
    pub fn in_critical_x(&self, c: C2) -> bool {
        matches!(self.row_interval(c.y), Some((_, hi)) if c.x > hi)
    }

    /// The anchor node of the Y boundary: one column west of the region,
    /// one row above that column's top — always safe (see the boundary
    /// construction analysis in the module docs of `boundary2`).
    pub fn y_anchor(&self) -> C2 {
        let x0 = self.bounds.x0;
        let top = self.col_interval(x0).expect("bbox column spanned").1;
        C2 {
            x: x0 - 1,
            y: top + 1,
        }
    }

    /// The anchor node of the X boundary: one column east of the region,
    /// one row below that column's bottom.
    pub fn x_anchor(&self) -> C2 {
        let x1 = self.bounds.x1;
        let bot = self.col_interval(x1).expect("bbox column spanned").0;
        C2 {
            x: x1 + 1,
            y: bot - 1,
        }
    }

    /// The initialization-corner candidates derivable from the shape: safe
    /// cells diagonally south-west of a member whose `+X` and `+Y`
    /// neighbors are outside the region.
    pub fn corner_candidates(&self) -> Vec<C2> {
        let inside =
            |c: C2| matches!(self.col_interval(c.x), Some((bot, top)) if c.y >= bot && c.y <= top);
        let mut out: Vec<C2> = self
            .cells
            .iter()
            .map(|&r| C2 {
                x: r.x - 1,
                y: r.y - 1,
            })
            .filter(|&c| {
                !inside(c)
                    && !inside(C2 { x: c.x + 1, y: c.y })
                    && !inside(C2 { x: c.x, y: c.y + 1 })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The axis of a boundary record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BoundaryAxis {
    /// A Y boundary (guards the `Q_Y` down-shadow).
    Y,
    /// An X boundary (guards the `Q_X` left-shadow).
    X,
}

/// A boundary record stored at one node of a boundary line.
#[derive(Clone, Debug)]
pub struct BoundaryRecord2 {
    /// Which shadow this record guards.
    pub axis: BoundaryAxis,
    /// The region whose critical region the destination is tested against.
    pub root: Arc<RegionShape>,
    /// Every region whose forbidden region has been merged in (always
    /// contains `root`).
    pub merged: Vec<Arc<RegionShape>>,
}

impl BoundaryRecord2 {
    /// True if a routing toward `d` must not step onto `v` according to
    /// this record: `d` in the root's critical region and `v` in any merged
    /// forbidden region.
    pub fn excludes(&self, v: C2, d: C2) -> bool {
        match self.axis {
            BoundaryAxis::Y => {
                self.root.in_critical_y(d) && self.merged.iter().any(|m| m.in_forbidden_y(v))
            }
            BoundaryAxis::X => {
                self.root.in_critical_x(d) && self.merged.iter().any(|m| m.in_forbidden_x(v))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;

    fn staircase() -> RegionShape {
        // "\" band: cols 3..5, intervals (5..6), (4..5), (3..4).
        let cells = vec![c2(3, 5), c2(3, 6), c2(4, 4), c2(4, 5), c2(5, 3), c2(5, 4)];
        RegionShape::new(c2(3, 5), cells)
    }

    #[test]
    fn intervals_and_regions() {
        let s = staircase();
        assert_eq!(s.col_interval(4), Some((4, 5)));
        assert_eq!(s.row_interval(5), Some((3, 4)));
        assert!(s.in_forbidden_y(c2(4, 1)));
        assert!(s.in_critical_y(c2(5, 9)));
        assert!(s.in_forbidden_x(c2(0, 4)));
        assert!(s.in_critical_x(c2(9, 6)));
        assert!(!s.in_forbidden_y(c2(9, 1)));
    }

    #[test]
    fn anchors() {
        let s = staircase();
        assert_eq!(s.y_anchor(), c2(2, 7));
        assert_eq!(s.x_anchor(), c2(6, 2));
    }

    #[test]
    fn corner_candidates_are_outside() {
        let s = staircase();
        let cands = s.corner_candidates();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(!s.cells.contains(c));
        }
        // The SW-most candidate exists below-left of the minimum cell.
        assert!(cands.contains(&c2(2, 4)));
    }

    #[test]
    fn record_excludes_only_matching_pairs() {
        let s = Arc::new(staircase());
        let rec = BoundaryRecord2 {
            axis: BoundaryAxis::Y,
            root: s.clone(),
            merged: vec![s.clone()],
        };
        // d above the band in a spanned column, v below the band.
        assert!(rec.excludes(c2(4, 0), c2(5, 9)));
        // d outside the critical region: no exclusion.
        assert!(!rec.excludes(c2(4, 0), c2(9, 9)));
        // v outside the forbidden region: no exclusion.
        assert!(!rec.excludes(c2(0, 0), c2(5, 9)));
    }

    #[test]
    fn merged_record_extends_forbidden() {
        let root = Arc::new(staircase());
        let other = Arc::new(RegionShape::new(c2(8, 1), vec![c2(8, 1), c2(8, 2)]));
        let rec = BoundaryRecord2 {
            axis: BoundaryAxis::Y,
            root: root.clone(),
            merged: vec![root.clone(), other.clone()],
        };
        // v below the *other* region, d critical for the root.
        assert!(rec.excludes(c2(8, 0), c2(5, 9)));
        // Root-only record would not exclude that v.
        let plain = BoundaryRecord2 {
            axis: BoundaryAxis::Y,
            root,
            merged: vec![],
        };
        assert!(!plain.excludes(c2(8, 0), c2(5, 9)));
    }

    #[test]
    #[should_panic]
    fn empty_shape_panics() {
        RegionShape::new(c2(0, 0), vec![]);
    }
}
