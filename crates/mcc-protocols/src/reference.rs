//! Pre-refactor distributed labelling on the hash-addressed engine.
//!
//! This is the labelling protocol exactly as it ran before the flat-engine
//! rework, on [`sim_net::reference::HashSimNet`]: coordinate-keyed nodes,
//! boxed neighbor closure, per-node inbox `Vec`s, every node stepping every
//! round. It exists for two jobs:
//!
//! * the **parity tests** (`tests/parity.rs`) pin that the flat engine
//!   changed cost accounting by zero — identical [`RunStats`] on fixed
//!   seeds — and that the converged labels agree node for node;
//! * the **engine benchmark** (`benches/sim_rounds.rs` and the `bench_sim`
//!   binary in `mcc-bench`, snapshotting `BENCH_sim_rounds.json`) measures
//!   the flat engine's speedup against it.
//!
//! Keep this module byte-faithful to the old protocol logic; it is a
//! measurement baseline, not a surface for new features.

use fault_model::{Labelling2, Labelling3, NodeStatus};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, C2, C3};
use sim_net::reference::HashSimNet;
use sim_net::RunStats;

use crate::labelling::{LabelMsg, LabelState};

/// Pre-refactor [`crate::DistLabelling2`]: same protocol, hash engine.
pub struct RefDistLabelling2 {
    /// The converged network (canonical coordinates).
    pub net: HashSimNet<C2, LabelState, LabelMsg>,
    /// Rounds/messages of the labelling run.
    pub stats: RunStats,
}

/// Pre-refactor [`crate::DistLabelling3`]: same protocol, hash engine.
pub struct RefDistLabelling3 {
    /// The converged network (canonical coordinates).
    pub net: HashSimNet<C3, LabelState, LabelMsg>,
    /// Rounds/messages of the labelling run.
    pub stats: RunStats,
}

impl RefDistLabelling2 {
    /// Run the protocol for `mesh` under `frame`.
    pub fn run(mesh: &Mesh2D, frame: Frame2) -> RefDistLabelling2 {
        let (w, h) = (mesh.width(), mesh.height());
        let mut net: HashSimNet<C2, LabelState, LabelMsg> = HashSimNet::new(
            mesh.nodes(), // canonical coords = same set
            |_| LabelState::default(),
            move |a: C2, b: C2| {
                a.dist(b) == 1
                    && a.x >= 0
                    && a.y >= 0
                    && b.x >= 0
                    && b.y >= 0
                    && a.x < w
                    && a.y < h
                    && b.x < w
                    && b.y < h
            },
        );
        for &f in mesh.faults() {
            net.state_mut(frame.to_canon(f)).status = NodeStatus::FAULT;
        }
        let max_rounds = (w + h) as usize * 4 + 8;
        let stats = net.run(max_rounds, |state, inbox, ctx| {
            let me = ctx.me();
            // Absorb announcements.
            for &(from, blocks) in inbox {
                if let Some(dir) = me.dir_to(from) {
                    state.nbr_blocks[dir.index()] = blocks;
                }
            }
            // Re-evaluate rules (out-of-mesh counts as safe: BorderSafe).
            use mesh_topo::Dir2::{Xm, Xp, Ym, Yp};
            let fwd_blocked = |s: &LabelState, d: mesh_topo::Dir2| s.nbr_blocks[d.index()].0;
            let bwd_blocked = |s: &LabelState, d: mesh_topo::Dir2| s.nbr_blocks[d.index()].1;
            if !state.status.blocks_forward()
                && !state.status.is_faulty()
                && fwd_blocked(state, Xp)
                && fwd_blocked(state, Yp)
            {
                state.status.mark_useless();
            }
            if !state.status.blocks_backward()
                && !state.status.is_faulty()
                && bwd_blocked(state, Xm)
                && bwd_blocked(state, Ym)
            {
                state.status.mark_cant_reach();
            }
            // Announce changes (round 0 announces the initial status).
            let now = (
                state.status.blocks_forward(),
                state.status.blocks_backward(),
            );
            if state.announced != (now.0, now.1) || ctx.round == 0 {
                state.announced = now;
                for dir in mesh_topo::Dir2::ALL {
                    let n = me.step(dir);
                    if n.x >= 0 && n.y >= 0 && n.x < w && n.y < h {
                        ctx.send(n, now);
                    }
                }
            }
        });
        RefDistLabelling2 { net, stats }
    }

    /// Status of the node at canonical `c`.
    pub fn status(&self, c: C2) -> NodeStatus {
        self.net.state(c).status
    }

    /// True if the converged labels equal the centralized closure.
    pub fn matches(&self, reference: &Labelling2) -> bool {
        self.net
            .iter()
            .all(|(c, s)| s.status == reference.status(c))
    }
}

impl RefDistLabelling3 {
    /// Run the protocol for `mesh` under `frame`.
    pub fn run(mesh: &Mesh3D, frame: Frame3) -> RefDistLabelling3 {
        let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
        let inside =
            move |c: C3| c.x >= 0 && c.y >= 0 && c.z >= 0 && c.x < nx && c.y < ny && c.z < nz;
        let mut net: HashSimNet<C3, LabelState, LabelMsg> = HashSimNet::new(
            mesh.nodes(),
            |_| LabelState::default(),
            move |a: C3, b: C3| a.dist(b) == 1 && inside(a) && inside(b),
        );
        for &f in mesh.faults() {
            net.state_mut(frame.to_canon(f)).status = NodeStatus::FAULT;
        }
        let max_rounds = (nx + ny + nz) as usize * 4 + 8;
        let stats = net.run(max_rounds, move |state, inbox, ctx| {
            let me = ctx.me();
            for &(from, blocks) in inbox {
                if let Some(dir) = me.dir_to(from) {
                    state.nbr_blocks[dir.index()] = blocks;
                }
            }
            use mesh_topo::Dir3::{Xm, Xp, Ym, Yp, Zm, Zp};
            let fwd = |s: &LabelState, d: mesh_topo::Dir3| s.nbr_blocks[d.index()].0;
            let bwd = |s: &LabelState, d: mesh_topo::Dir3| s.nbr_blocks[d.index()].1;
            if !state.status.blocks_forward()
                && !state.status.is_faulty()
                && fwd(state, Xp)
                && fwd(state, Yp)
                && fwd(state, Zp)
            {
                state.status.mark_useless();
            }
            if !state.status.blocks_backward()
                && !state.status.is_faulty()
                && bwd(state, Xm)
                && bwd(state, Ym)
                && bwd(state, Zm)
            {
                state.status.mark_cant_reach();
            }
            let now = (
                state.status.blocks_forward(),
                state.status.blocks_backward(),
            );
            if state.announced != (now.0, now.1) || ctx.round == 0 {
                state.announced = now;
                for dir in mesh_topo::Dir3::ALL {
                    let n = me.step(dir);
                    if inside(n) {
                        ctx.send(n, now);
                    }
                }
            }
        });
        RefDistLabelling3 { net, stats }
    }

    /// Status of the node at canonical `c`.
    pub fn status(&self, c: C3) -> NodeStatus {
        self.net.state(c).status
    }

    /// True if the converged labels equal the centralized closure.
    pub fn matches(&self, reference: &Labelling3) -> bool {
        self.net
            .iter()
            .all(|(c, s)| s.status == reference.status(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::BorderPolicy;
    use mesh_topo::FaultSpec;

    #[test]
    fn reference_still_converges_to_the_fixpoint() {
        let mut mesh = Mesh2D::new(12, 12);
        FaultSpec::uniform(14, 3).inject_2d(&mut mesh, &[]);
        let frame = Frame2::identity(&mesh);
        let reference = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
        let dist = RefDistLabelling2::run(&mesh, frame);
        assert!(dist.stats.quiescent);
        assert!(dist.matches(&reference));

        let mut mesh3 = Mesh3D::kary(6);
        FaultSpec::uniform(16, 3).inject_3d(&mut mesh3, &[]);
        let frame3 = Frame3::identity(&mesh3);
        let reference3 = Labelling3::compute(&mesh3, frame3, BorderPolicy::BorderSafe);
        let dist3 = RefDistLabelling3::run(&mesh3, frame3);
        assert!(dist3.stats.quiescent);
        assert!(dist3.matches(&reference3));
    }
}
