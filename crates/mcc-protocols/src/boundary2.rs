//! 2-D boundary construction (Algorithm 2, step 3).
//!
//! From each region's Y anchor (one column west of the region, above that
//! column's top — where the delivery walk of [`crate::ident2`] left the
//! shape) a *boundary message* descends in the `-Y` direction, depositing a
//! [`BoundaryRecord2`] at every node it visits. When the next `-Y` node is
//! unsafe the message turns `-X` and hugs the blocking region — the mirror
//! image of the detection walk, and just as stuck-free: a safe node whose
//! `-X` and `-Y` neighbors are both unsafe would have been labelled
//! can't-reach. While rounding a foreign region the walk passes that
//! region's own Y anchor and **merges its forbidden region** into the
//! record (`Q_Y(c) := Q_Y(c) ∪ Q_Y(v)`), exactly the paper's merge rule.
//! The X boundary mirrors everything (descend `-X`, detour `-Y`, merge at
//! X anchors).
//!
//! The records are precisely the "limited global information" the routing
//! of [`crate::route2`] relies on: a message traveling toward a critical
//! destination meets the boundary line *before* it can enter the forbidden
//! shadow, because the line runs along the only safe entry column/row.

use std::sync::Arc;

use fault_model::NodeStatus;
use mesh_topo::{Dir2, Mesh2D, C2};
use sim_net::{Grid2, RunStats, SimNet};

use crate::ident2::Ident2;
use crate::records::{BoundaryAxis, BoundaryRecord2, RegionShape};

/// A boundary message in flight.
#[derive(Clone, Debug)]
pub struct BoundMsg {
    /// Which boundary is being constructed.
    pub axis: BoundaryAxis,
    /// The root region (its critical region gates the record).
    pub root: Arc<RegionShape>,
    /// Forbidden regions merged so far (root included).
    pub merged: Vec<Arc<RegionShape>>,
}

/// Per-node state after boundary construction.
#[derive(Clone, Debug, Default)]
pub struct BoundState {
    /// Own status.
    pub status: NodeStatus,
    /// Neighbor statuses by direction index (from the labelling phase).
    pub nbr_status: [Option<NodeStatus>; 4],
    /// Shapes anchored here (from the identification phase).
    pub anchor_shapes: Vec<Arc<RegionShape>>,
    /// Deposited boundary records.
    pub records: Vec<BoundaryRecord2>,
}

/// The completed boundary-construction network.
pub struct Boundary2 {
    /// Per-node state (canonical coordinates).
    pub net: SimNet<Grid2, BoundState, BoundMsg>,
    /// Rounds/messages of this phase.
    pub stats: RunStats,
}

impl Boundary2 {
    /// Run the boundary construction on top of a completed identification.
    pub fn run(mesh: &Mesh2D, ident: &Ident2) -> Boundary2 {
        let (w, h) = (mesh.width(), mesh.height());
        let topo = Grid2::from_space(mesh.space());
        let space = topo.space();
        let mut net: SimNet<Grid2, BoundState, BoundMsg> =
            SimNet::new(topo, |_| BoundState::default());
        for i in 0..net.len() {
            let src = ident.net.state(i);
            let nbr_status = {
                let mut nbr = [None; 4];
                for dir in Dir2::ALL {
                    if let Some(n) = space.step(i, dir) {
                        nbr[dir.index()] = Some(ident.net.state(n).status);
                    }
                }
                nbr
            };
            let dst = net.state_mut(i);
            dst.status = src.status;
            dst.anchor_shapes = src.anchor_shapes.clone();
            dst.nbr_status = nbr_status;
        }
        // Launch one boundary walk per anchored shape.
        let mut launches: Vec<(usize, BoundMsg)> = Vec::new();
        for (i, state) in net.iter() {
            let c = space.coord(i);
            for shape in &state.anchor_shapes {
                if shape.y_anchor() == c {
                    launches.push((
                        i,
                        BoundMsg {
                            axis: BoundaryAxis::Y,
                            root: shape.clone(),
                            merged: vec![shape.clone()],
                        },
                    ));
                }
                if shape.x_anchor() == c {
                    launches.push((
                        i,
                        BoundMsg {
                            axis: BoundaryAxis::X,
                            root: shape.clone(),
                            merged: vec![shape.clone()],
                        },
                    ));
                }
            }
        }
        for (i, msg) in launches {
            net.post(i, msg);
        }
        let max_rounds = (4 * (w + h)) as usize * (1 + mesh.fault_count()) + 16;
        let stats = net.run(max_rounds, move |state, inbox, ctx| {
            let me_i = ctx.me();
            let me = space.coord(me_i);
            for (_, msg) in inbox {
                let mut msg = msg.clone();
                // Merge any same-axis anchor shapes stored here.
                for s in &state.anchor_shapes {
                    let is_anchor = match msg.axis {
                        BoundaryAxis::Y => s.y_anchor() == me,
                        BoundaryAxis::X => s.x_anchor() == me,
                    };
                    if is_anchor
                        && s.comp_id != msg.root.comp_id
                        && !msg.merged.iter().any(|m| m.comp_id == s.comp_id)
                    {
                        msg.merged.push(s.clone());
                    }
                }
                // Deposit.
                let dup = state.records.iter().any(|r| {
                    r.axis == msg.axis
                        && r.root.comp_id == msg.root.comp_id
                        && r.merged.len() >= msg.merged.len()
                });
                if !dup {
                    state.records.push(BoundaryRecord2 {
                        axis: msg.axis,
                        root: msg.root.clone(),
                        merged: msg.merged.clone(),
                    });
                } else {
                    continue; // already walked through here with this record
                }
                // Advance: main direction, else detour.
                let (main, side) = match msg.axis {
                    BoundaryAxis::Y => (Dir2::Ym, Dir2::Xm),
                    BoundaryAxis::X => (Dir2::Xm, Dir2::Ym),
                };
                let safe = |dir: Dir2| {
                    space.step(me_i, dir).is_some()
                        && matches!(state.nbr_status[dir.index()], Some(st) if st.is_safe())
                };
                if safe(main) {
                    ctx.send(space.step(me_i, main).expect("checked in-mesh"), msg);
                } else if space.step(me_i, main).is_some() && safe(side) {
                    // Blocked by a region (not the mesh edge): detour.
                    ctx.send(space.step(me_i, side).expect("checked in-mesh"), msg);
                }
                // Otherwise: reached the mesh edge — the boundary ends.
            }
        });
        Boundary2 { net, stats }
    }

    /// The records stored at canonical `c`.
    pub fn records(&self, c: C2) -> &[BoundaryRecord2] {
        &self.net.state_at(c).records
    }

    /// Total records deposited (a memory-cost metric of the model).
    pub fn total_records(&self) -> usize {
        self.net.iter().map(|(_, s)| s.records.len()).sum()
    }
}

/// Run the full distributed construction pipeline for one quadrant:
/// labelling → components → identification → boundaries. Returns the final
/// network plus the aggregate statistics of all four phases.
pub fn build_pipeline_2d(mesh: &Mesh2D, frame: mesh_topo::Frame2) -> (Boundary2, PipelineStats) {
    let lab = crate::labelling::DistLabelling2::run(mesh, frame);
    let comps = crate::compid::DistComponents2::run(mesh, &lab);
    let ident = Ident2::run(mesh, &comps);
    let bound = Boundary2::run(mesh, &ident);
    let stats = PipelineStats {
        labelling: lab.stats,
        components: comps.stats,
        identification: ident.stats,
        boundary: bound.stats,
    };
    (bound, stats)
}

/// Message/round statistics of the four construction phases.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    /// Labelling closure phase.
    pub labelling: RunStats,
    /// Component-id gossip phase.
    pub components: RunStats,
    /// Identification walks phase.
    pub identification: RunStats,
    /// Boundary construction phase.
    pub boundary: RunStats,
}

impl PipelineStats {
    /// Total messages across all phases.
    pub fn total_messages(&self) -> usize {
        self.labelling.messages
            + self.components.messages
            + self.identification.messages
            + self.boundary.messages
    }

    /// Total rounds across all phases.
    pub fn total_rounds(&self) -> usize {
        self.labelling.rounds
            + self.components.rounds
            + self.identification.rounds
            + self.boundary.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;
    use mesh_topo::Frame2;

    fn build(faults: &[C2], w: i32, h: i32) -> (Mesh2D, Boundary2) {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let (b, _) = build_pipeline_2d(&mesh, Frame2::identity(&mesh));
        (mesh, b)
    }

    #[test]
    fn y_boundary_descends_from_anchor() {
        let (_, b) = build(&[c2(5, 5)], 10, 10);
        // Shape {(5,5)}: Y anchor (4,6); the boundary deposits records at
        // (4,6),(4,5)...(4,0).
        for y in 0..=6 {
            let recs = b.records(c2(4, y));
            assert!(
                recs.iter().any(|r| r.axis == BoundaryAxis::Y),
                "missing Y record at (4,{y})"
            );
        }
        // X boundary: anchor (6,4), records at (5,4)...(0,4).
        for x in 0..=6 {
            let recs = b.records(c2(x, 4));
            assert!(
                recs.iter().any(|r| r.axis == BoundaryAxis::X),
                "missing X record at ({x},4)"
            );
        }
    }

    #[test]
    fn boundary_detours_and_merges() {
        // M2 at (3,8); M1 at (2,1) sits under M2's descending line x=2:
        // the Y boundary of M2 must detour and absorb M1's forbidden
        // region.
        let (_, b) = build(&[c2(3, 8), c2(2, 1)], 12, 12);
        // Below/left of M1, the record rooted at M2 must carry M1 merged.
        let recs = b.records(c2(1, 0));
        let merged = recs.iter().find(|r| {
            r.axis == BoundaryAxis::Y && r.root.comp_id == c2(3, 8) && r.merged.len() == 2
        });
        assert!(
            merged.is_some(),
            "expected merged record at (1,0): {recs:?}"
        );
    }

    #[test]
    fn records_gate_on_critical_destination() {
        let (_, b) = build(&[c2(5, 5)], 10, 10);
        let recs = b.records(c2(4, 2));
        let rec = recs.iter().find(|r| r.axis == BoundaryAxis::Y).unwrap();
        // Destination above the region in its column: entering (5,2) from
        // the boundary is forbidden.
        assert!(rec.excludes(c2(5, 2), c2(5, 9)));
        // Destination elsewhere: allowed.
        assert!(!rec.excludes(c2(5, 2), c2(9, 0)));
    }

    #[test]
    fn total_records_scale_with_regions() {
        let (_, one) = build(&[c2(5, 5)], 12, 12);
        let (_, two) = build(&[c2(5, 5), c2(9, 9)], 12, 12);
        assert!(two.total_records() > one.total_records());
    }
}
