//! Distributed labelling — Algorithms 1 and 4 as message protocols.
//!
//! Initially a node knows only whether it itself is faulty. In round 0
//! every node announces its status to its neighbors; from then on a node
//! re-evaluates the useless / can't-reach rules whenever a neighbor's
//! announcement changes its view, announcing its own new labels in turn.
//! The protocol reaches the same fixpoint as the centralized closure
//! (validated by tests) in a number of rounds proportional to the longest
//! label-propagation chain.
//!
//! The network runs in **canonical coordinates** (one instance per
//! quadrant/octant orientation), so the rules always look at the `+`/`-`
//! neighbors.

use fault_model::{BorderPolicy, Labelling2, Labelling3, NodeStatus};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, C2, C3};
use sim_net::{RunStats, SimNet};

/// Per-node protocol state (2-D and 3-D share the shape).
#[derive(Clone, Debug, Default)]
pub struct LabelState {
    /// The node's own current status.
    pub status: NodeStatus,
    /// What the node believes about each neighbor, keyed by direction
    /// index: `(blocks_forward, blocks_backward)`.
    pub nbr_blocks: [(bool, bool); 6],
    /// Whether the node has announced its current status.
    announced: (bool, bool),
}

/// Announcement message: the sender's `(blocks_forward, blocks_backward)`.
pub type LabelMsg = (bool, bool);

/// Result of running the distributed labelling on one 2-D orientation.
pub struct DistLabelling2 {
    /// The converged network (canonical coordinates).
    pub net: SimNet<C2, LabelState, LabelMsg>,
    /// Rounds/messages of the labelling run.
    pub stats: RunStats,
    frame: Frame2,
}

/// Result of running the distributed labelling on one 3-D orientation.
pub struct DistLabelling3 {
    /// The converged network (canonical coordinates).
    pub net: SimNet<C3, LabelState, LabelMsg>,
    /// Rounds/messages of the labelling run.
    pub stats: RunStats,
    frame: Frame3,
}

impl DistLabelling2 {
    /// Run the protocol for `mesh` under `frame`.
    pub fn run(mesh: &Mesh2D, frame: Frame2) -> DistLabelling2 {
        let (w, h) = (mesh.width(), mesh.height());
        let mut net: SimNet<C2, LabelState, LabelMsg> = SimNet::new(
            mesh.nodes(), // canonical coords = same set
            |_| LabelState::default(),
            move |a: C2, b: C2| {
                a.dist(b) == 1
                    && a.x >= 0
                    && a.y >= 0
                    && b.x >= 0
                    && b.y >= 0
                    && a.x < w
                    && a.y < h
                    && b.x < w
                    && b.y < h
            },
        );
        for &f in mesh.faults() {
            net.state_mut(frame.to_canon(f)).status = NodeStatus::FAULT;
        }
        let max_rounds = (w + h) as usize * 4 + 8;
        let stats = net.run(max_rounds, |state, inbox, ctx| {
            let me = ctx.me();
            // Absorb announcements.
            for &(from, blocks) in inbox {
                if let Some(dir) = me.dir_to(from) {
                    state.nbr_blocks[dir.index()] = blocks;
                }
            }
            // Re-evaluate rules (out-of-mesh counts as safe: BorderSafe).
            use mesh_topo::Dir2::{Xm, Xp, Ym, Yp};
            let fwd_blocked = |s: &LabelState, d: mesh_topo::Dir2| s.nbr_blocks[d.index()].0;
            let bwd_blocked = |s: &LabelState, d: mesh_topo::Dir2| s.nbr_blocks[d.index()].1;
            if !state.status.blocks_forward()
                && !state.status.is_faulty()
                && fwd_blocked(state, Xp)
                && fwd_blocked(state, Yp)
            {
                state.status.mark_useless();
            }
            if !state.status.blocks_backward()
                && !state.status.is_faulty()
                && bwd_blocked(state, Xm)
                && bwd_blocked(state, Ym)
            {
                state.status.mark_cant_reach();
            }
            // Announce changes (round 0 announces the initial status).
            let now = (
                state.status.blocks_forward(),
                state.status.blocks_backward(),
            );
            if state.announced != (now.0, now.1) || ctx.round == 0 {
                state.announced = now;
                for dir in mesh_topo::Dir2::ALL {
                    let n = me.step(dir);
                    if n.x >= 0 && n.y >= 0 && n.x < w && n.y < h {
                        ctx.send(n, now);
                    }
                }
            }
        });
        DistLabelling2 { net, stats, frame }
    }

    /// Status of the node at canonical `c`.
    pub fn status(&self, c: C2) -> NodeStatus {
        self.net.state(c).status
    }

    /// The frame the protocol ran under.
    pub fn frame(&self) -> Frame2 {
        self.frame
    }

    /// True if the converged labels equal the centralized closure.
    pub fn matches(&self, reference: &Labelling2) -> bool {
        self.net
            .iter()
            .all(|(c, s)| s.status == reference.status(c))
    }
}

impl DistLabelling3 {
    /// Run the protocol for `mesh` under `frame`.
    pub fn run(mesh: &Mesh3D, frame: Frame3) -> DistLabelling3 {
        let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
        let inside =
            move |c: C3| c.x >= 0 && c.y >= 0 && c.z >= 0 && c.x < nx && c.y < ny && c.z < nz;
        let mut net: SimNet<C3, LabelState, LabelMsg> = SimNet::new(
            mesh.nodes(),
            |_| LabelState::default(),
            move |a: C3, b: C3| a.dist(b) == 1 && inside(a) && inside(b),
        );
        for &f in mesh.faults() {
            net.state_mut(frame.to_canon(f)).status = NodeStatus::FAULT;
        }
        let max_rounds = (nx + ny + nz) as usize * 4 + 8;
        let stats = net.run(max_rounds, move |state, inbox, ctx| {
            let me = ctx.me();
            for &(from, blocks) in inbox {
                if let Some(dir) = me.dir_to(from) {
                    state.nbr_blocks[dir.index()] = blocks;
                }
            }
            use mesh_topo::Dir3::{Xm, Xp, Ym, Yp, Zm, Zp};
            let fwd = |s: &LabelState, d: mesh_topo::Dir3| s.nbr_blocks[d.index()].0;
            let bwd = |s: &LabelState, d: mesh_topo::Dir3| s.nbr_blocks[d.index()].1;
            if !state.status.blocks_forward()
                && !state.status.is_faulty()
                && fwd(state, Xp)
                && fwd(state, Yp)
                && fwd(state, Zp)
            {
                state.status.mark_useless();
            }
            if !state.status.blocks_backward()
                && !state.status.is_faulty()
                && bwd(state, Xm)
                && bwd(state, Ym)
                && bwd(state, Zm)
            {
                state.status.mark_cant_reach();
            }
            let now = (
                state.status.blocks_forward(),
                state.status.blocks_backward(),
            );
            if state.announced != (now.0, now.1) || ctx.round == 0 {
                state.announced = now;
                for dir in mesh_topo::Dir3::ALL {
                    let n = me.step(dir);
                    if inside(n) {
                        ctx.send(n, now);
                    }
                }
            }
        });
        DistLabelling3 { net, stats, frame }
    }

    /// Status of the node at canonical `c`.
    pub fn status(&self, c: C3) -> NodeStatus {
        self.net.state(c).status
    }

    /// The frame the protocol ran under.
    pub fn frame(&self) -> Frame3 {
        self.frame
    }

    /// True if the converged labels equal the centralized closure.
    pub fn matches(&self, reference: &Labelling3) -> bool {
        self.net
            .iter()
            .all(|(c, s)| s.status == reference.status(c))
    }
}

/// Convenience: run and validate against the centralized 2-D closure.
pub fn labelled_net_2d(mesh: &Mesh2D, frame: Frame2) -> DistLabelling2 {
    let dist = DistLabelling2::run(mesh, frame);
    debug_assert!(dist.matches(&Labelling2::compute(mesh, frame, BorderPolicy::BorderSafe)));
    dist
}

/// Convenience: run and validate against the centralized 3-D closure.
pub fn labelled_net_3d(mesh: &Mesh3D, frame: Frame3) -> DistLabelling3 {
    let dist = DistLabelling3::run(mesh, frame);
    debug_assert!(dist.matches(&Labelling3::compute(mesh, frame, BorderPolicy::BorderSafe)));
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::FaultSpec;

    #[test]
    fn converges_to_centralized_fixpoint_2d() {
        for seed in 0..12u64 {
            let mut mesh = Mesh2D::new(14, 14);
            FaultSpec::uniform(16, seed).inject_2d(&mut mesh, &[]);
            for frame in Frame2::all(&mesh) {
                let reference = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
                let dist = DistLabelling2::run(&mesh, frame);
                assert!(dist.stats.quiescent, "seed {seed}: did not converge");
                assert!(dist.matches(&reference), "seed {seed} frame {frame:?}");
            }
        }
    }

    #[test]
    fn converges_to_centralized_fixpoint_3d() {
        for seed in 0..6u64 {
            let mut mesh = Mesh3D::kary(8);
            FaultSpec::uniform(30, seed).inject_3d(&mut mesh, &[]);
            let frame = Frame3::identity(&mesh);
            let reference = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
            let dist = DistLabelling3::run(&mesh, frame);
            assert!(dist.stats.quiescent);
            assert!(dist.matches(&reference), "seed {seed}");
        }
    }

    #[test]
    fn cascade_takes_proportional_rounds() {
        // A long antidiagonal cascade: labels must propagate step by step.
        let mut mesh = Mesh2D::new(20, 20);
        for x in 2..=17 {
            mesh.inject_fault(c2(x, 19 - x));
        }
        let dist = DistLabelling2::run(&mesh, Frame2::identity(&mesh));
        let reference =
            Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        assert!(dist.matches(&reference));
        // The useless cascade is long; convergence needs several rounds.
        assert!(dist.stats.rounds > 4, "rounds = {}", dist.stats.rounds);
    }

    #[test]
    fn fault_free_converges_fast() {
        let mesh = Mesh3D::kary(6);
        let dist = DistLabelling3::run(&mesh, Frame3::identity(&mesh));
        assert!(dist.stats.quiescent);
        // One announce round + one silent round.
        assert!(dist.stats.rounds <= 3, "rounds = {}", dist.stats.rounds);
        assert!(dist.status(c3(3, 3, 3)).is_safe());
    }

    #[test]
    fn message_count_scales_with_faults() {
        let mut sparse = Mesh2D::new(16, 16);
        FaultSpec::uniform(4, 1).inject_2d(&mut sparse, &[]);
        let mut dense = Mesh2D::new(16, 16);
        FaultSpec::uniform(60, 1).inject_2d(&mut dense, &[]);
        let a = DistLabelling2::run(&sparse, Frame2::identity(&sparse));
        let b = DistLabelling2::run(&dense, Frame2::identity(&dense));
        // Denser faults mean more label changes and hence more messages
        // beyond the fixed initial announcement.
        assert!(b.stats.messages >= a.stats.messages);
    }
}
