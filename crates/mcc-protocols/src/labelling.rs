//! Distributed labelling — Algorithms 1 and 4 as message protocols.
//!
//! Initially a node knows only whether it itself is faulty. In round 0
//! every node announces its status to its neighbors; from then on a node
//! re-evaluates the useless / can't-reach rules whenever a neighbor's
//! announcement changes its view, announcing its own new labels in turn.
//! The protocol reaches the same fixpoint as the centralized closure
//! (validated by tests) in a number of rounds proportional to the longest
//! label-propagation chain.
//!
//! The network runs in **canonical coordinates** (one instance per
//! quadrant/octant orientation), so the rules always look at the `+`/`-`
//! neighbors.
//!
//! Runs on the flat engine: nodes are [`mesh_topo::NodeSpace2`] /
//! [`mesh_topo::NodeSpace3`] linear indices, and once the label wavefront
//! has passed, converged nodes are never dispatched again (the engine's
//! active set), so convergence tails cost messages — not whole-mesh scans.
//! The pre-refactor implementation survives in [`crate::reference`] and is
//! pinned stats-identical by the parity tests.

use fault_model::{BorderPolicy, Labelling2, Labelling3, NodeStatus};
use mesh_topo::{Dir2, Dir3, Frame2, Frame3, Mesh2D, Mesh3D, Parallelism, C2, C3};
use sim_net::{Grid2, Grid3, RunStats, SimNet};

/// Per-node protocol state (2-D and 3-D share the shape).
#[derive(Clone, Debug, Default)]
pub struct LabelState {
    /// The node's own current status.
    pub status: NodeStatus,
    /// What the node believes about each neighbor, keyed by direction
    /// index: `(blocks_forward, blocks_backward)`.
    pub nbr_blocks: [(bool, bool); 6],
    /// Whether the node has announced its current status.
    pub(crate) announced: (bool, bool),
}

/// Announcement message: the sender's `(blocks_forward, blocks_backward)`.
pub type LabelMsg = (bool, bool);

/// Result of running the distributed labelling on one 2-D orientation.
pub struct DistLabelling2 {
    /// The converged network (canonical coordinates).
    pub net: SimNet<Grid2, LabelState, LabelMsg>,
    /// Rounds/messages of the labelling run.
    pub stats: RunStats,
    frame: Frame2,
}

/// Result of running the distributed labelling on one 3-D orientation.
pub struct DistLabelling3 {
    /// The converged network (canonical coordinates).
    pub net: SimNet<Grid3, LabelState, LabelMsg>,
    /// Rounds/messages of the labelling run.
    pub stats: RunStats,
    frame: Frame3,
}

impl DistLabelling2 {
    /// Run the protocol for `mesh` under `frame`.
    pub fn run(mesh: &Mesh2D, frame: Frame2) -> DistLabelling2 {
        DistLabelling2::run_par(mesh, frame, Parallelism::SEQ)
    }

    /// [`DistLabelling2::run`] with round dispatch sharded over
    /// `parallelism` threads (see [`SimNet::run_par`]) — converged
    /// states, message counts and [`RunStats`] are bit-for-bit equal to
    /// the sequential run for every thread count.
    pub fn run_par(mesh: &Mesh2D, frame: Frame2, parallelism: Parallelism) -> DistLabelling2 {
        let topo = Grid2::from_space(mesh.space());
        let space = topo.space();
        let mut net: SimNet<Grid2, LabelState, LabelMsg> =
            SimNet::new(topo, |_| LabelState::default());
        for &f in mesh.faults() {
            net.state_at_mut(frame.to_canon(f)).status = NodeStatus::FAULT;
        }
        let max_rounds = (mesh.width() + mesh.height()) as usize * 4 + 8;
        let w = mesh.width() as usize;
        let wrap = space.wraps();
        let stats = net.run_par(max_rounds, parallelism, move |state, inbox, ctx| {
            let me = ctx.me();
            // Absorb announcements: the sender is a neighbor (engine
            // invariant). On a mesh its direction is exactly its index
            // offset (+1/-1 along x, +w/-w along y) — no coordinate math;
            // the y-stride is tested first: in a width-1 mesh +1 == +w,
            // and the only neighbors that exist there are y-steps. On a
            // torus wrap links break the offset rule; the four wrapped
            // neighbor indices are decoded once per dispatch (not per
            // message) and matched against (k ≥ 3 per axis keeps them
            // distinct).
            let wrapped = wrap.then(|| Dir2::ALL.map(|d| space.step(me, d)));
            for &(from, blocks) in inbox {
                let from = from as usize;
                let dir = if let Some(nbrs) = &wrapped {
                    let k = nbrs
                        .iter()
                        .position(|&n| n == Some(from))
                        .expect("sender is a neighbor");
                    Dir2::ALL[k]
                } else if from == me + w {
                    Dir2::Yp
                } else if from + w == me {
                    Dir2::Ym
                } else if from == me + 1 {
                    Dir2::Xp
                } else {
                    Dir2::Xm
                };
                state.nbr_blocks[dir.index()] = blocks;
            }
            // Re-evaluate rules (out-of-mesh counts as safe: BorderSafe).
            use Dir2::{Xm, Xp, Ym, Yp};
            let fwd_blocked = |s: &LabelState, d: Dir2| s.nbr_blocks[d.index()].0;
            let bwd_blocked = |s: &LabelState, d: Dir2| s.nbr_blocks[d.index()].1;
            if !state.status.blocks_forward()
                && !state.status.is_faulty()
                && fwd_blocked(state, Xp)
                && fwd_blocked(state, Yp)
            {
                state.status.mark_useless();
            }
            if !state.status.blocks_backward()
                && !state.status.is_faulty()
                && bwd_blocked(state, Xm)
                && bwd_blocked(state, Ym)
            {
                state.status.mark_cant_reach();
            }
            // Announce changes (round 0 announces the initial status).
            let now = (
                state.status.blocks_forward(),
                state.status.blocks_backward(),
            );
            if state.announced != (now.0, now.1) || ctx.round == 0 {
                state.announced = now;
                space.for_neighbors4(me, |n| ctx.send(n, now));
            }
        });
        DistLabelling2 { net, stats, frame }
    }

    /// Status of the node at canonical `c`.
    pub fn status(&self, c: C2) -> NodeStatus {
        self.net.state_at(c).status
    }

    /// The frame the protocol ran under.
    pub fn frame(&self) -> Frame2 {
        self.frame
    }

    /// True if the converged labels equal the centralized closure.
    pub fn matches(&self, reference: &Labelling2) -> bool {
        self.net
            .iter_coords()
            .all(|(c, s)| s.status == reference.status(c))
    }
}

impl DistLabelling3 {
    /// Run the protocol for `mesh` under `frame`.
    pub fn run(mesh: &Mesh3D, frame: Frame3) -> DistLabelling3 {
        DistLabelling3::run_par(mesh, frame, Parallelism::SEQ)
    }

    /// [`DistLabelling3::run`] with round dispatch sharded over
    /// `parallelism` threads (see [`SimNet::run_par`]) — converged
    /// states, message counts and [`RunStats`] are bit-for-bit equal to
    /// the sequential run for every thread count.
    pub fn run_par(mesh: &Mesh3D, frame: Frame3, parallelism: Parallelism) -> DistLabelling3 {
        let topo = Grid3::from_space(mesh.space());
        let space = topo.space();
        let mut net: SimNet<Grid3, LabelState, LabelMsg> =
            SimNet::new(topo, |_| LabelState::default());
        for &f in mesh.faults() {
            net.state_at_mut(frame.to_canon(f)).status = NodeStatus::FAULT;
        }
        let max_rounds = (mesh.nx() + mesh.ny() + mesh.nz()) as usize * 4 + 8;
        let nx = mesh.nx() as usize;
        let nxy = nx * mesh.ny() as usize;
        let wrap = space.wraps();
        let stats = net.run_par(max_rounds, parallelism, move |state, inbox, ctx| {
            let me = ctx.me();
            // Sender direction from the index offset, as in 2-D: larger
            // strides first, so dimension-1 meshes (where +1 == +nx or
            // +nx == +nx·ny) resolve to the only step that exists there.
            // Torus wrap links break the offset rule; the six wrapped
            // neighbor indices are decoded once per dispatch and matched
            // against (see the 2-D decode).
            let wrapped = wrap.then(|| Dir3::ALL.map(|d| space.step(me, d)));
            for &(from, blocks) in inbox {
                let from = from as usize;
                let dir = if let Some(nbrs) = &wrapped {
                    let k = nbrs
                        .iter()
                        .position(|&n| n == Some(from))
                        .expect("sender is a neighbor");
                    Dir3::ALL[k]
                } else if from == me + nxy {
                    Dir3::Zp
                } else if from + nxy == me {
                    Dir3::Zm
                } else if from == me + nx {
                    Dir3::Yp
                } else if from + nx == me {
                    Dir3::Ym
                } else if from == me + 1 {
                    Dir3::Xp
                } else {
                    Dir3::Xm
                };
                state.nbr_blocks[dir.index()] = blocks;
            }
            use Dir3::{Xm, Xp, Ym, Yp, Zm, Zp};
            let fwd = |s: &LabelState, d: Dir3| s.nbr_blocks[d.index()].0;
            let bwd = |s: &LabelState, d: Dir3| s.nbr_blocks[d.index()].1;
            if !state.status.blocks_forward()
                && !state.status.is_faulty()
                && fwd(state, Xp)
                && fwd(state, Yp)
                && fwd(state, Zp)
            {
                state.status.mark_useless();
            }
            if !state.status.blocks_backward()
                && !state.status.is_faulty()
                && bwd(state, Xm)
                && bwd(state, Ym)
                && bwd(state, Zm)
            {
                state.status.mark_cant_reach();
            }
            let now = (
                state.status.blocks_forward(),
                state.status.blocks_backward(),
            );
            if state.announced != (now.0, now.1) || ctx.round == 0 {
                state.announced = now;
                space.for_neighbors6(me, |n| ctx.send(n, now));
            }
        });
        DistLabelling3 { net, stats, frame }
    }

    /// Status of the node at canonical `c`.
    pub fn status(&self, c: C3) -> NodeStatus {
        self.net.state_at(c).status
    }

    /// The frame the protocol ran under.
    pub fn frame(&self) -> Frame3 {
        self.frame
    }

    /// True if the converged labels equal the centralized closure.
    pub fn matches(&self, reference: &Labelling3) -> bool {
        self.net
            .iter_coords()
            .all(|(c, s)| s.status == reference.status(c))
    }
}

/// Convenience: run and validate against the centralized 2-D closure.
pub fn labelled_net_2d(mesh: &Mesh2D, frame: Frame2) -> DistLabelling2 {
    let dist = DistLabelling2::run(mesh, frame);
    debug_assert!(dist.matches(&Labelling2::compute(mesh, frame, BorderPolicy::BorderSafe)));
    dist
}

/// Convenience: run and validate against the centralized 3-D closure.
pub fn labelled_net_3d(mesh: &Mesh3D, frame: Frame3) -> DistLabelling3 {
    let dist = DistLabelling3::run(mesh, frame);
    debug_assert!(dist.matches(&Labelling3::compute(mesh, frame, BorderPolicy::BorderSafe)));
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::FaultSpec;

    #[test]
    fn converges_to_centralized_fixpoint_2d() {
        for seed in 0..12u64 {
            let mut mesh = Mesh2D::new(14, 14);
            FaultSpec::uniform(16, seed).inject_2d(&mut mesh, &[]);
            for frame in Frame2::all(&mesh) {
                let reference = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
                let dist = DistLabelling2::run(&mesh, frame);
                assert!(dist.stats.quiescent, "seed {seed}: did not converge");
                assert!(dist.matches(&reference), "seed {seed} frame {frame:?}");
            }
        }
    }

    #[test]
    fn converges_to_centralized_fixpoint_3d() {
        for seed in 0..6u64 {
            let mut mesh = Mesh3D::kary(8);
            FaultSpec::uniform(30, seed).inject_3d(&mut mesh, &[]);
            let frame = Frame3::identity(&mesh);
            let reference = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
            let dist = DistLabelling3::run(&mesh, frame);
            assert!(dist.stats.quiescent);
            assert!(dist.matches(&reference), "seed {seed}");
        }
    }

    #[test]
    fn torus_converges_to_centralized_fixpoint_2d() {
        // The wrap decode and the wrapped announcements must reproduce the
        // centralized torus closure for every reflection frame and for a
        // rotated pair frame.
        for seed in 0..8u64 {
            let mut mesh = Mesh2D::torus(11, 9);
            FaultSpec::uniform(14, seed).inject_2d(&mut mesh, &[]);
            let mut frames = Frame2::all(&mesh).to_vec();
            frames.push(Frame2::for_pair(&mesh, c2(9, 7), c2(2, 1)));
            for frame in frames {
                let reference = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
                let dist = DistLabelling2::run(&mesh, frame);
                assert!(dist.stats.quiescent, "seed {seed}: did not converge");
                assert!(dist.matches(&reference), "seed {seed} frame {frame:?}");
            }
        }
    }

    #[test]
    fn torus_converges_to_centralized_fixpoint_3d() {
        for seed in 0..4u64 {
            let mut mesh = Mesh3D::torus(5, 6, 4);
            FaultSpec::uniform(18, seed).inject_3d(&mut mesh, &[]);
            for frame in [
                Frame3::identity(&mesh),
                Frame3::for_pair(&mesh, c3(4, 5, 3), c3(1, 1, 1)),
            ] {
                let reference = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
                let dist = DistLabelling3::run(&mesh, frame);
                assert!(dist.stats.quiescent, "seed {seed}");
                assert!(dist.matches(&reference), "seed {seed} frame {frame:?}");
            }
        }
    }

    #[test]
    fn torus_seam_cascade_propagates() {
        // The same seam cascade the centralized closure pins: (7,2)
        // becomes useless only through its wrap link to (0,2).
        let mut torus = Mesh2D::torus(8, 5);
        for c in [c2(1, 2), c2(0, 3), c2(7, 3)] {
            torus.inject_fault(c);
        }
        let dist = DistLabelling2::run(&torus, Frame2::identity(&torus));
        assert!(dist.stats.quiescent);
        assert!(dist.status(c2(0, 2)).is_useless());
        assert!(dist.status(c2(7, 2)).is_useless(), "label must cross seam");
    }

    #[test]
    fn cascade_takes_proportional_rounds() {
        // A long antidiagonal cascade: labels must propagate step by step.
        let mut mesh = Mesh2D::new(20, 20);
        for x in 2..=17 {
            mesh.inject_fault(c2(x, 19 - x));
        }
        let dist = DistLabelling2::run(&mesh, Frame2::identity(&mesh));
        let reference =
            Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        assert!(dist.matches(&reference));
        // The useless cascade is long; convergence needs several rounds.
        assert!(dist.stats.rounds > 4, "rounds = {}", dist.stats.rounds);
    }

    #[test]
    fn fault_free_converges_fast() {
        let mesh = Mesh3D::kary(6);
        let dist = DistLabelling3::run(&mesh, Frame3::identity(&mesh));
        assert!(dist.stats.quiescent);
        // One announce round + one silent round.
        assert!(dist.stats.rounds <= 3, "rounds = {}", dist.stats.rounds);
        assert!(dist.status(c3(3, 3, 3)).is_safe());
    }

    #[test]
    fn message_count_scales_with_faults() {
        let mut sparse = Mesh2D::new(16, 16);
        FaultSpec::uniform(4, 1).inject_2d(&mut sparse, &[]);
        let mut dense = Mesh2D::new(16, 16);
        FaultSpec::uniform(60, 1).inject_2d(&mut dense, &[]);
        let a = DistLabelling2::run(&sparse, Frame2::identity(&sparse));
        let b = DistLabelling2::run(&dense, Frame2::identity(&dense));
        // Denser faults mean more label changes and hence more messages
        // beyond the fixed initial announcement.
        assert!(b.stats.messages >= a.stats.messages);
    }

    #[test]
    fn degenerate_meshes_attribute_directions_correctly() {
        // Width-1 mesh: the +1 index offset IS the y-step (+1 == +w); the
        // decode must land announcements in the Y slots, not the X slots.
        let mut line = Mesh2D::new(1, 5);
        line.inject_fault(c2(0, 3));
        let dist = DistLabelling2::run(&line, Frame2::identity(&line));
        let below = dist.net.state_at(c2(0, 2));
        assert_eq!(below.nbr_blocks[mesh_topo::Dir2::Yp.index()], (true, true));
        assert_eq!(
            below.nbr_blocks[mesh_topo::Dir2::Xp.index()],
            (false, false),
            "no x-neighbor exists in a width-1 mesh"
        );
        let reference =
            Labelling2::compute(&line, Frame2::identity(&line), BorderPolicy::BorderSafe);
        assert!(dist.matches(&reference));

        // 3-D with nx == 1 (+1 == +nx) and ny == 1 over nx > 1 (+nx ==
        // +nx·ny): both alias pairs must resolve to the real step.
        for (dims, fault, probe, dir) in [
            ((1, 4, 4), c3(0, 2, 1), c3(0, 1, 1), mesh_topo::Dir3::Yp),
            ((4, 1, 4), c3(2, 0, 2), c3(2, 0, 1), mesh_topo::Dir3::Zp),
        ] {
            let mut mesh = Mesh3D::new(dims.0, dims.1, dims.2);
            mesh.inject_fault(fault);
            let dist = DistLabelling3::run(&mesh, Frame3::identity(&mesh));
            let st = dist.net.state_at(probe);
            assert_eq!(st.nbr_blocks[dir.index()], (true, true), "dims {dims:?}");
            let reference =
                Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            assert!(dist.matches(&reference), "dims {dims:?}");
        }
    }

    #[test]
    fn run_par_matches_run_bit_for_bit() {
        // Sharded round dispatch must reproduce the sequential protocol
        // exactly: same converged statuses, same RunStats — on mesh and
        // torus, 2-D and 3-D, across thread counts.
        for seed in 0..4u64 {
            let mut mesh = Mesh2D::new(14, 14);
            FaultSpec::uniform(20, seed).inject_2d(&mut mesh, &[]);
            let mut torus = Mesh2D::torus(11, 9);
            FaultSpec::uniform(14, seed).inject_2d(&mut torus, &[]);
            for m in [&mesh, &torus] {
                let frame = Frame2::identity(m);
                let seq = DistLabelling2::run(m, frame);
                for t in [2usize, 4, 8] {
                    let par = DistLabelling2::run_par(m, frame, Parallelism::new(t));
                    assert_eq!(seq.stats, par.stats, "seed {seed}, {t} threads");
                    for (c, s) in seq.net.iter_coords() {
                        assert_eq!(s.status, par.status(c), "seed {seed}, {t} threads, {c}");
                    }
                }
            }
        }
        let mut mesh = Mesh3D::kary(8);
        FaultSpec::uniform(30, 3).inject_3d(&mut mesh, &[]);
        let frame = Frame3::identity(&mesh);
        let seq = DistLabelling3::run(&mesh, frame);
        for t in [2usize, 8] {
            let par = DistLabelling3::run_par(&mesh, frame, Parallelism::new(t));
            assert_eq!(seq.stats, par.stats, "{t} threads");
            for (c, s) in seq.net.iter_coords() {
                assert_eq!(s.status, par.status(c), "{t} threads, {c}");
            }
        }
    }

    #[test]
    fn stats_match_reference_engine() {
        // The flat engine's cost accounting is identical to the
        // pre-refactor engine's (full parity suite: tests/parity.rs).
        let mut mesh = Mesh2D::new(12, 12);
        FaultSpec::uniform(14, 7).inject_2d(&mut mesh, &[]);
        let frame = Frame2::identity(&mesh);
        let new = DistLabelling2::run(&mesh, frame);
        let old = crate::reference::RefDistLabelling2::run(&mesh, frame);
        assert_eq!(new.stats, old.stats);
    }
}
