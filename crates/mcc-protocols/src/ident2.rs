//! The 2-D identification process (Algorithm 2, steps 1–2).
//!
//! Identification messages are launched at every *initialization-corner
//! candidate* (a safe node whose north-east diagonal cell is unsafe and
//! whose `+X` and `+Y` neighbors are safe — the local signature of the
//! paper's corner) and wall-follow the edge nodes of the region with the
//! fault region on their right hand, collecting every member cell they see
//! in their Chebyshev-1 view that carries the walked component's id. When
//! the walk closes its loop the origin reconstructs the region shape
//! (HV-convex fill of the collected boundary cells).
//!
//! The paper starts one walk at *the* initialization corner and splits it
//! into clockwise/counter-clockwise halves that meet at the opposite
//! corner; launching one full loop per candidate and electing the minimum
//! candidate as the owner afterwards yields the same information with the
//! same per-walk message count and needs no corner-uniqueness assumption
//! (see DESIGN.md).
//!
//! After election the owner launches a *delivery walk* around the same
//! contour that deposits the shape at the region's Y- and X-boundary
//! anchors, where the boundary construction of [`crate::boundary2`] picks
//! it up.

use std::collections::HashMap;
use std::sync::Arc;

use fault_model::NodeStatus;
use mesh_topo::{Dir2, Mesh2D, NodeSpace2, C2};
use sim_net::{Grid2, RunStats, SimNet};

use crate::compid::DistComponents2;
use crate::records::RegionShape;

/// Clockwise rotation (the "right" of a heading, y pointing up).
pub fn right_of(h: Dir2) -> Dir2 {
    match h {
        Dir2::Yp => Dir2::Xp,
        Dir2::Xp => Dir2::Ym,
        Dir2::Ym => Dir2::Xm,
        Dir2::Xm => Dir2::Yp,
    }
}

/// Counter-clockwise rotation.
pub fn left_of(h: Dir2) -> Dir2 {
    right_of(right_of(right_of(h)))
}

/// A wall-following identification or delivery walk.
#[derive(Clone, Debug)]
pub struct WalkMsg {
    /// Node that launched the walk.
    pub origin: C2,
    /// Component id being traced.
    pub comp: C2,
    /// Heading used to enter the current node.
    pub heading: Dir2,
    /// First `(node, heading)` pair of the walk — loop-closure sentinel.
    pub first: (C2, Dir2),
    /// Hops taken so far (0 = launch self-post).
    pub steps: u32,
    /// Member cells collected so far (identification walks only).
    pub collected: Vec<C2>,
    /// Shape being delivered (delivery walks only).
    pub shape: Option<Arc<RegionShape>>,
    /// Remaining hops before the walk is discarded (the paper's TTL).
    pub ttl: u32,
}

/// Messages of the identification phase.
#[derive(Clone, Debug)]
pub enum IdentMsg {
    /// A wall-following walk in flight.
    Walk(WalkMsg),
    /// Loop closed: the collected cells return to the origin.
    Done {
        /// Component id traced by the finished walk.
        comp: C2,
        /// All member cells the walk collected.
        collected: Vec<C2>,
    },
}

/// Per-node state of the identification phase.
#[derive(Clone, Debug, Default)]
pub struct IdentState {
    /// Own status.
    pub status: NodeStatus,
    /// Own component id, if unsafe.
    pub comp_id: Option<C2>,
    /// Chebyshev-1 (plus orthogonal distance 2) view: status and comp id.
    pub view: HashMap<C2, (NodeStatus, Option<C2>)>,
    /// The shape owned by this node (elected initialization corners only).
    pub shape: Option<Arc<RegionShape>>,
    /// Shapes deposited here because this node is a boundary anchor.
    pub anchor_shapes: Vec<Arc<RegionShape>>,
}

/// The completed identification network.
pub struct Ident2 {
    /// Per-node state (canonical coordinates).
    pub net: SimNet<Grid2, IdentState, IdentMsg>,
    /// Rounds/messages of this phase.
    pub stats: RunStats,
    width: i32,
    height: i32,
}

/// One wall-follow step: given the local view and the heading used to
/// enter `u`, pick the next direction by **left-hand** priority (the region
/// sits on the walker's left: launches start on the region's south-west
/// side heading east along its southern edge).
fn next_dir(
    space: NodeSpace2,
    view: &HashMap<C2, (NodeStatus, Option<C2>)>,
    u: C2,
    heading: Dir2,
) -> Option<Dir2> {
    let safe = |c: C2| space.contains(c) && matches!(view.get(&c), Some((st, _)) if st.is_safe());
    [
        left_of(heading),
        heading,
        right_of(heading),
        heading.opposite(),
    ]
    .into_iter()
    .find(|&dir| safe(u.step(dir)))
}

impl Ident2 {
    /// Run the identification walks on top of a converged component phase.
    pub fn run(mesh: &Mesh2D, comps: &DistComponents2) -> Ident2 {
        let (w, h) = (mesh.width(), mesh.height());
        let topo = Grid2::from_space(mesh.space());
        let space = topo.space();
        let mut net: SimNet<Grid2, IdentState, IdentMsg> =
            SimNet::new(topo, |_| IdentState::default());
        // Seed from the component phase.
        for i in 0..net.len() {
            let src = comps.net.state(i);
            let dst = net.state_mut(i);
            dst.status = src.status;
            dst.comp_id = src.comp_id;
            dst.view = src.view.clone();
        }
        let ttl_max = (8 * w * h) as u32;
        // Launch a walk from every corner candidate.
        let mut launches: Vec<(usize, WalkMsg)> = Vec::new();
        for i in 0..net.len() {
            let c = space.coord(i);
            let st = net.state(i);
            if !st.status.is_safe() {
                continue;
            }
            let diag = C2 {
                x: c.x + 1,
                y: c.y + 1,
            };
            let diag_comp = match st.view.get(&diag) {
                Some((ds, comp)) if ds.is_unsafe() => *comp,
                _ => continue,
            };
            let xp_safe = matches!(st.view.get(&c.step(Dir2::Xp)), Some((s, _)) if s.is_safe());
            let yp_safe = matches!(st.view.get(&c.step(Dir2::Yp)), Some((s, _)) if s.is_safe());
            if !(xp_safe
                && yp_safe
                && space.contains(c.step(Dir2::Xp))
                && space.contains(c.step(Dir2::Yp)))
            {
                continue;
            }
            let Some(comp) = diag_comp else { continue };
            // First move by left-hand priority with a virtual -Y heading:
            // east along the region's southern edge.
            let Some(dir) = next_dir(space, &st.view, c, Dir2::Ym) else {
                continue;
            };
            let first = (c.step(dir), dir);
            launches.push((
                i,
                WalkMsg {
                    origin: c,
                    comp,
                    heading: dir,
                    first,
                    steps: 0,
                    collected: Vec::new(),
                    shape: None,
                    ttl: ttl_max,
                },
            ));
        }
        for (i, msg) in launches {
            net.post(i, IdentMsg::Walk(msg)); // self-post; the handler forwards
        }
        let max_rounds = (8 * (w * h)) as usize + 16;
        let stats = net.run(max_rounds, move |state, inbox, ctx| {
            let me = space.coord(ctx.me());
            for (_, msg) in inbox {
                match msg {
                    IdentMsg::Walk(walk) => {
                        let mut walk = walk.clone();
                        if walk.ttl == 0 {
                            continue; // discard, as the paper's TTL rule
                        }
                        walk.ttl -= 1;
                        // Collection (identification walks) / anchor deposit
                        // (delivery walks) at the current node.
                        if walk.shape.is_none() {
                            for (cell, (st, comp)) in state.view.iter() {
                                if st.is_unsafe()
                                    && *comp == Some(walk.comp)
                                    && (cell.x - me.x).abs() <= 1
                                    && (cell.y - me.y).abs() <= 1
                                {
                                    walk.collected.push(*cell);
                                }
                            }
                        } else if let Some(shape) = &walk.shape {
                            if (shape.y_anchor() == me || shape.x_anchor() == me)
                                && !state
                                    .anchor_shapes
                                    .iter()
                                    .any(|s| s.comp_id == shape.comp_id)
                            {
                                state.anchor_shapes.push(shape.clone());
                            }
                        }
                        // Launch self-post: step onto the first node.
                        if walk.steps == 0 {
                            let (first_node, dir) = walk.first;
                            walk.heading = dir;
                            walk.steps = 1;
                            ctx.send(space.index(first_node), IdentMsg::Walk(walk));
                            continue;
                        }
                        // Loop closure: re-entered the first node with the
                        // first heading after a non-trivial tour.
                        if walk.steps > 1 && (me, walk.heading) == walk.first {
                            if walk.shape.is_none() {
                                // Report back to the origin (our neighbor:
                                // the origin stepped onto us to launch).
                                ctx.send(
                                    space.index(walk.origin),
                                    IdentMsg::Done {
                                        comp: walk.comp,
                                        collected: walk.collected,
                                    },
                                );
                            }
                            continue;
                        }
                        // Continue the wall-follow.
                        if let Some(dir) = next_dir(space, &state.view, me, walk.heading) {
                            walk.heading = dir;
                            walk.steps += 1;
                            let next = me.step(dir);
                            ctx.send(space.index(next), IdentMsg::Walk(walk));
                        }
                    }
                    IdentMsg::Done { comp, collected } => {
                        // Reconstruct, elect, and (if owner) start delivery.
                        if collected.is_empty() {
                            continue;
                        }
                        let filled = hv_fill(collected.clone());
                        let shape = Arc::new(RegionShape::new(*comp, filled));
                        let candidates = shape.corner_candidates();
                        let owner = candidates
                            .iter()
                            .copied()
                            .find(|c| {
                                matches!(state.view.get(c), Some((st, _)) if st.is_safe())
                                    || *c == me
                            })
                            .or(candidates.first().copied());
                        if owner == Some(me) && state.shape.is_none() {
                            state.shape = Some(shape.clone());
                            // Deposit locally if we are an anchor ourselves.
                            if shape.y_anchor() == me || shape.x_anchor() == me {
                                state.anchor_shapes.push(shape.clone());
                            }
                            // Launch the delivery walk (same contour).
                            if let Some(dir) = next_dir(space, &state.view, me, Dir2::Ym) {
                                let first = (me.step(dir), dir);
                                ctx.send(
                                    space.index(first.0),
                                    IdentMsg::Walk(WalkMsg {
                                        origin: me,
                                        comp: *comp,
                                        heading: dir,
                                        first,
                                        steps: 1,
                                        collected: Vec::new(),
                                        shape: Some(shape),
                                        ttl: ttl_max,
                                    }),
                                );
                            }
                        }
                    }
                }
            }
        });
        Ident2 {
            net,
            stats,
            width: w,
            height: h,
        }
    }

    /// All owned shapes, by owner coordinate.
    pub fn shapes(&self) -> Vec<(C2, Arc<RegionShape>)> {
        self.net
            .iter_coords()
            .filter_map(|(c, s)| s.shape.clone().map(|sh| (c, sh)))
            .collect()
    }

    /// Mesh width.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> i32 {
        self.height
    }
}

/// HV-convex fill: complete each column's interval between the collected
/// extremes (MCCs have contiguous columns, so boundary cells determine the
/// interior).
fn hv_fill(mut cells: Vec<C2>) -> Vec<C2> {
    cells.sort();
    cells.dedup();
    use std::collections::BTreeMap;
    let mut cols: BTreeMap<i32, (i32, i32)> = BTreeMap::new();
    for c in &cells {
        let e = cols.entry(c.x).or_insert((c.y, c.y));
        e.0 = e.0.min(c.y);
        e.1 = e.1.max(c.y);
    }
    let mut out = Vec::new();
    for (x, (lo, hi)) in cols {
        for y in lo..=hi {
            out.push(C2 { x, y });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelling::DistLabelling2;
    use fault_model::mcc2::MccSet2;
    use fault_model::{BorderPolicy, Labelling2};
    use mesh_topo::coord::c2;
    use mesh_topo::Frame2;

    fn pipeline(mesh: &Mesh2D) -> Ident2 {
        let lab = DistLabelling2::run(mesh, Frame2::identity(mesh));
        let comps = DistComponents2::run(mesh, &lab);
        Ident2::run(mesh, &comps)
    }

    fn reference_shapes(mesh: &Mesh2D) -> Vec<Vec<C2>> {
        let lab = Labelling2::compute(mesh, Frame2::identity(mesh), BorderPolicy::BorderSafe);
        let set = MccSet2::compute(&lab);
        set.mccs
            .iter()
            .map(|m| {
                let mut cells = m.cells.clone();
                cells.sort();
                cells
            })
            .collect()
    }

    fn assert_shapes_match(mesh: &Mesh2D, ident: &Ident2) {
        let mut got: Vec<Vec<C2>> = ident
            .shapes()
            .into_iter()
            .map(|(_, s)| s.cells.clone())
            .collect();
        let mut want = reference_shapes(mesh);
        got.sort();
        want.sort();
        assert_eq!(got, want, "reconstructed shapes diverge");
    }

    #[test]
    fn single_fault_identified() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 5));
        let ident = pipeline(&mesh);
        assert_shapes_match(&mesh, &ident);
        let shapes = ident.shapes();
        assert_eq!(shapes.len(), 1);
        // Owner is the SW candidate corner.
        assert_eq!(shapes[0].0, c2(4, 4));
    }

    #[test]
    fn staircase_identified() {
        let mut mesh = Mesh2D::new(14, 14);
        for x in 3..=7 {
            mesh.inject_fault(c2(x, 10 - x));
        }
        let ident = pipeline(&mesh);
        assert_shapes_match(&mesh, &ident);
    }

    #[test]
    fn slash_diagonal_identified_as_one() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(4, 4));
        mesh.inject_fault(c2(5, 5));
        let ident = pipeline(&mesh);
        assert_shapes_match(&mesh, &ident);
        assert_eq!(ident.shapes().len(), 1);
    }

    #[test]
    fn two_regions_identified_separately() {
        let mut mesh = Mesh2D::new(12, 12);
        mesh.inject_fault(c2(2, 2));
        mesh.inject_fault(c2(8, 8));
        let ident = pipeline(&mesh);
        assert_shapes_match(&mesh, &ident);
        assert_eq!(ident.shapes().len(), 2);
    }

    #[test]
    fn anchors_receive_shapes() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 5));
        let ident = pipeline(&mesh);
        let (_, shape) = &ident.shapes()[0];
        let ya = shape.y_anchor();
        let xa = shape.x_anchor();
        assert!(ident
            .net
            .state_at(ya)
            .anchor_shapes
            .iter()
            .any(|s| s.comp_id == shape.comp_id));
        assert!(ident
            .net
            .state_at(xa)
            .anchor_shapes
            .iter()
            .any(|s| s.comp_id == shape.comp_id));
    }

    #[test]
    fn randomized_reconstruction_matches() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // Interior faults only: the walks assume regions do not split the
        // mesh (documented assumption, shared with the paper).
        for seed in 0..14u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut mesh = Mesh2D::new(14, 14);
            for _ in 0..10 {
                let c = c2(rng.gen_range(1..13), rng.gen_range(1..13));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let ident = pipeline(&mesh);
            assert_shapes_match(&mesh, &ident);
        }
    }

    #[test]
    fn walk_message_cost_scales_with_perimeter() {
        let mut small = Mesh2D::new(16, 16);
        small.inject_fault(c2(8, 8));
        let mut large = Mesh2D::new(16, 16);
        for x in 4..=11 {
            large.inject_fault(c2(x, 15 - x));
        }
        let a = pipeline(&small);
        let b = pipeline(&large);
        assert!(b.stats.messages > a.stats.messages);
    }
}
