//! Distributed 3-D feasibility detection (Algorithm 6 step 1 as messages).
//!
//! The three surface floods of `mcc_routing::feasibility3` executed as real
//! neighbor messages. Every node knows its neighbors' statuses (the
//! labelling phase ends with each node having heard each neighbor's final
//! announcement), so a node joining a flood:
//!
//! * forwards it along each in-RMP main axis whose neighbor is safe,
//! * takes the `+` detour step only when some in-RMP main neighbor is
//!   unsafe (the paper's "+turn" rule),
//! * reports success by retracing its parent chain when it reaches the
//!   flood's target face.
//!
//! Tests verify the verdict equals the semantic `detect_3d` on random
//! instances, and the message counts feed experiment E5.

use fault_model::NodeStatus;
use mesh_topo::{Axis3, Dir3, Mesh3D, C3};
use sim_net::{Grid3, RunStats, SimNet};

use crate::labelling::DistLabelling3;

/// Per-node flood state.
#[derive(Clone, Debug, Default)]
pub struct Detect3State {
    /// Own status.
    pub status: NodeStatus,
    /// Neighbor statuses by direction index (from the labelling phase).
    pub nbr_status: [Option<NodeStatus>; 6],
    /// Already joined flood `kind`?
    pub joined: [bool; 3],
    /// Verdicts collected (meaningful at the source).
    pub verdicts: Vec<(usize, bool)>,
}

/// Flood messages.
#[derive(Clone, Debug)]
pub enum Detect3Msg {
    /// A flood propagation step carrying the parent chain.
    Flood {
        /// Surface kind: 0 = (-X) surface, 1 = (-Y), 2 = (-Z).
        kind: usize,
        /// Canonical destination.
        d: C3,
        /// Parent chain back to the source (source first).
        path: Vec<C3>,
    },
    /// Success report retracing `path` toward the source.
    Reply {
        /// Surface kind reporting.
        kind: usize,
        /// Remaining retrace chain.
        path: Vec<C3>,
    },
}

/// The per-surface axis assignment: `(main axes, detour axis, target axis)`
/// — the pairing of Algorithm 6.
pub fn surface_axes(kind: usize) -> ([Axis3; 2], Axis3, Axis3) {
    match kind {
        0 => ([Axis3::Y, Axis3::Z], Axis3::X, Axis3::Y),
        1 => ([Axis3::X, Axis3::Z], Axis3::Y, Axis3::Z),
        _ => ([Axis3::X, Axis3::Y], Axis3::Z, Axis3::X),
    }
}

/// Run the three detection floods from canonical safe `s` toward `d` over a
/// converged distributed labelling. Returns `(feasible, stats)`.
///
/// # Panics
/// If `s` does not precede `d` componentwise or an endpoint is unsafe.
pub fn detect_distributed_3d(
    mesh: &Mesh3D,
    lab: &DistLabelling3,
    s: C3,
    d: C3,
) -> (bool, RunStats) {
    assert!(s.dominated_by(d), "detection requires canonical s <= d");
    assert!(
        lab.status(s).is_safe() && lab.status(d).is_safe(),
        "detection requires safe endpoints"
    );
    let topo = Grid3::from_space(mesh.space());
    let space = topo.space();
    let mut net: SimNet<Grid3, Detect3State, Detect3Msg> =
        SimNet::new(topo, |_| Detect3State::default());
    for i in 0..net.len() {
        let mut nbr_status = [None; 6];
        for dir in Dir3::ALL {
            if let Some(n) = space.step(i, dir) {
                nbr_status[dir.index()] = Some(lab.net.state(n).status);
            }
        }
        let st = net.state_mut(i);
        st.status = lab.net.state(i).status;
        st.nbr_status = nbr_status;
    }
    let mut trivially_ok = [false; 3];
    for (kind, ok) in trivially_ok.iter_mut().enumerate() {
        let (_, _, target) = surface_axes(kind);
        if s.get(target) == d.get(target) {
            *ok = true;
        } else {
            net.post(
                space.index(s),
                Detect3Msg::Flood {
                    kind,
                    d,
                    path: vec![],
                },
            );
        }
    }
    let max_rounds = 4 * (mesh.nx() + mesh.ny() + mesh.nz()) as usize + 32;
    let stats = net.run(max_rounds, move |state, inbox, ctx| {
        let me_i = ctx.me();
        let me = space.coord(me_i);
        for (_, msg) in inbox {
            match msg {
                Detect3Msg::Flood { kind, d, path } => {
                    let (kind, d) = (*kind, *d);
                    if !state.status.is_safe() || state.joined[kind] {
                        continue;
                    }
                    state.joined[kind] = true;
                    let mut path = path.clone();
                    path.push(me);
                    let (main, detour, target) = surface_axes(kind);
                    if me.get(target) == d.get(target) {
                        path.pop();
                        if let Some(&back) = path.last() {
                            ctx.send(space.index(back), Detect3Msg::Reply { kind, path });
                        } else {
                            state.verdicts.push((kind, true));
                        }
                        continue;
                    }
                    let nbr_safe = |axis: Axis3| {
                        matches!(
                            state.nbr_status[axis.pos().index()],
                            Some(st) if st.is_safe()
                        )
                    };
                    let mut any_main_blocked = false;
                    for axis in main {
                        if me.get(axis) >= d.get(axis) {
                            continue;
                        }
                        if nbr_safe(axis) {
                            let n = space.step(me_i, axis.pos()).expect("safe => in-mesh");
                            ctx.send(
                                n,
                                Detect3Msg::Flood {
                                    kind,
                                    d,
                                    path: path.clone(),
                                },
                            );
                        } else {
                            any_main_blocked = true;
                        }
                    }
                    if any_main_blocked && me.get(detour) < d.get(detour) && nbr_safe(detour) {
                        let n = space.step(me_i, detour.pos()).expect("safe => in-mesh");
                        ctx.send(n, Detect3Msg::Flood { kind, d, path });
                    }
                }
                Detect3Msg::Reply { kind, path } => {
                    let mut path = path.clone();
                    path.pop();
                    if let Some(&back) = path.last() {
                        ctx.send(space.index(back), Detect3Msg::Reply { kind: *kind, path });
                    } else {
                        state.verdicts.push((*kind, true));
                    }
                }
            }
        }
    });
    let verdicts = &net.state_at(s).verdicts;
    let ok = (0..3).all(|kind| trivially_ok[kind] || verdicts.iter().any(|&(k, v)| k == kind && v));
    (ok, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c3;
    use mesh_topo::{FaultSpec, Frame3};

    fn setup(faults: &[C3], k: i32) -> (Mesh3D, DistLabelling3) {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let lab = DistLabelling3::run(&mesh, Frame3::identity(&mesh));
        (mesh, lab)
    }

    #[test]
    fn open_mesh_feasible() {
        let (mesh, lab) = setup(&[], 6);
        let (ok, stats) = detect_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(5, 5, 5));
        assert!(ok);
        assert!(stats.messages > 0);
    }

    #[test]
    fn line_block_detected() {
        let (mesh, lab) = setup(&[c3(0, 0, 3)], 8);
        let (ok, _) = detect_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(0, 0, 6));
        assert!(!ok);
    }

    #[test]
    fn plane_wall_detected() {
        let mut faults = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                faults.push(c3(x, y, 2));
            }
        }
        let (mesh, lab) = setup(&faults, 8);
        let (ok, _) = detect_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(3, 3, 4));
        assert!(!ok);
        let (ok2, _) = detect_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(4, 3, 4));
        assert!(ok2);
    }

    #[test]
    fn matches_semantic_walks_randomized() {
        use fault_model::{BorderPolicy, Labelling3};
        use mcc_routing::detect_3d;
        let mut checked = 0;
        for seed in 0..25u64 {
            let mut mesh = Mesh3D::kary(6);
            FaultSpec::uniform(12, seed).inject_3d(&mut mesh, &[c3(0, 0, 0), c3(5, 5, 5)]);
            let frame = Frame3::identity(&mesh);
            let sem_lab = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
            let (s, d) = (c3(0, 0, 0), c3(5, 5, 5));
            if !sem_lab.is_safe(s) || !sem_lab.is_safe(d) {
                continue;
            }
            let dist_lab = DistLabelling3::run(&mesh, frame);
            let (ok, _) = detect_distributed_3d(&mesh, &dist_lab, s, d);
            let semantic = detect_3d(&sem_lab, s, d).feasible();
            assert_eq!(
                ok,
                semantic,
                "seed {seed}: flood mismatch, faults={:?}",
                mesh.faults()
            );
            checked += 1;
        }
        assert!(checked >= 10);
    }

    #[test]
    fn torus_matches_semantic_walks_randomized() {
        // On a torus the flood runs in the canonical RMP box exactly as on
        // a mesh; the torus enters through the wrap-correct labelling and
        // the pair frame. Pin agreement with the semantic condition.
        use fault_model::{minimal_path_exists_3d, BorderPolicy, Existence3, Labelling3};
        let mut checked = 0;
        for seed in 0..25u64 {
            let mut mesh = Mesh3D::torus_kary(6);
            FaultSpec::uniform(12, seed).inject_3d(&mut mesh, &[]);
            let (s, d) = (c3(5, 1, 4), c3(2, 4, 0));
            if !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                continue;
            }
            let frame = Frame3::for_pair(&mesh, s, d);
            let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
            let sem_lab = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
            if !sem_lab.is_safe(cs) || !sem_lab.is_safe(cd) {
                continue;
            }
            let dist_lab = DistLabelling3::run(&mesh, frame);
            let (ok, _) = detect_distributed_3d(&mesh, &dist_lab, cs, cd);
            let semantic = minimal_path_exists_3d(&sem_lab, cs, cd) == Existence3::Exists;
            assert_eq!(
                ok,
                semantic,
                "seed {seed}: torus flood mismatch, faults={:?}",
                mesh.faults()
            );
            checked += 1;
        }
        assert!(checked >= 10);
    }

    #[test]
    fn degenerate_faces_are_trivial() {
        let (mesh, lab) = setup(&[c3(4, 4, 4)], 6);
        let (ok, _) = detect_distributed_3d(&mesh, &lab, c3(1, 1, 1), c3(1, 1, 1));
        assert!(ok);
        let (ok2, _) = detect_distributed_3d(&mesh, &lab, c3(0, 2, 2), c3(5, 2, 2));
        assert!(ok2);
    }
}
