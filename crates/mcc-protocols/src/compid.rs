//! Distributed component identification.
//!
//! After labelling, each unsafe node must learn which MCC it belongs to so
//! that identification walks can distinguish the region they are tracing
//! from foreign regions one corridor away. MCC connectivity is
//! 8-connectivity, and 8-diagonal members are not mesh-linked, so the
//! protocol gossips through the shared safe (or unsafe) 4-neighbors: every
//! node re-broadcasts *first-hand* announcements of its 4-neighbors once,
//! giving every node a consistent view of all cells at Chebyshev distance 1
//! (and orthogonal distance 2). Unsafe nodes iterate min-id consensus over
//! the 8-adjacent unsafe cells they see.
//!
//! The converged id of a component is the minimum coordinate of its
//! members — identical to what a centralized pass computes (tested).

use std::collections::HashMap;

use fault_model::NodeStatus;
use mesh_topo::{Frame2, Mesh2D, C2};
use sim_net::{Grid2, RunStats, SimNet};

use crate::labelling::DistLabelling2;

/// Gossip message: `(subject cell, subject's status, subject's current
/// component id, first-hand?)`.
type Msg = (C2, NodeStatus, Option<C2>, bool);

/// Per-node state after component identification.
#[derive(Clone, Debug, Default)]
pub struct CompState {
    /// The node's own status (copied from the labelling run).
    pub status: NodeStatus,
    /// This node's component id (min member coordinate), if unsafe.
    pub comp_id: Option<C2>,
    /// Everything the node knows about nearby cells: status and component
    /// id. Covers at least the 8-neighborhood.
    pub view: HashMap<C2, (NodeStatus, Option<C2>)>,
}

/// The converged component-identification network.
pub struct DistComponents2 {
    /// Per-node state (canonical coordinates).
    pub net: SimNet<Grid2, CompState, Msg>,
    /// Rounds/messages of this phase.
    pub stats: RunStats,
}

impl DistComponents2 {
    /// Run the gossip until component ids converge.
    pub fn run(mesh: &Mesh2D, lab: &DistLabelling2) -> DistComponents2 {
        let topo = Grid2::from_space(mesh.space());
        let space = topo.space();
        let mut net: SimNet<Grid2, CompState, Msg> = SimNet::new(topo, |_| CompState::default());
        // Seed statuses from the labelling phase.
        for i in 0..net.len() {
            let c = space.coord(i);
            let st = lab.net.state(i).status;
            let state = net.state_mut(i);
            state.status = st;
            state.comp_id = st.is_unsafe().then_some(c);
            state.view.insert(c, (st, state.comp_id));
        }
        let max_rounds = ((mesh.width() + mesh.height()) as usize) * 6 + 12;
        // Per-axis adjacency distance: |Δ| on a mesh, the shorter arc on a
        // torus, so 8-adjacency works across the wrap seam too.
        let axis_d = move |a: i32, b: i32, k: i32| {
            let d = (a - b).abs();
            if space.wraps() {
                d.min(k - d)
            } else {
                d
            }
        };
        let (gw, gh) = (mesh.width(), mesh.height());
        let stats = net.run(max_rounds, move |state, inbox, ctx| {
            let me_i = ctx.me();
            let me = space.coord(me_i);
            let mut changed_view = false;
            for &(from, (cell, status, comp, first_hand)) in inbox {
                let entry = state.view.entry(cell).or_insert((status, comp));
                let new_comp = match (entry.1, comp) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if entry.1 != new_comp || entry.0 != status {
                    *entry = (status, new_comp);
                    changed_view = true;
                }
                // Relay first-hand announcements of my 4-neighbors onward
                // (second-hand, no further relay) so diagonal neighbors
                // hear about each other.
                if first_hand && space.coord(from as usize) == cell {
                    for dir in mesh_topo::Dir2::ALL {
                        if let Some(n) = space.step(me_i, dir) {
                            if space.coord(n) != cell {
                                ctx.send(n, (cell, status, new_comp, false));
                            }
                        }
                    }
                }
            }
            // Min-id consensus over visible 8-adjacent unsafe cells.
            let mut announce = ctx.round == 0;
            if state.status.is_unsafe() {
                let mut best = state.comp_id;
                for (cell, (st, comp)) in state.view.iter() {
                    let dx = axis_d(cell.x, me.x, gw);
                    let dy = axis_d(cell.y, me.y, gh);
                    if dx <= 1 && dy <= 1 && *cell != me && st.is_unsafe() {
                        if let Some(c) = comp {
                            if best.map(|b| *c < b).unwrap_or(true) {
                                best = Some(*c);
                            }
                        }
                    }
                }
                if best != state.comp_id {
                    state.comp_id = best;
                    state.view.insert(me, (state.status, best));
                    announce = true;
                }
            }
            let _ = changed_view;
            if announce {
                for dir in mesh_topo::Dir2::ALL {
                    if let Some(n) = space.step(me_i, dir) {
                        ctx.send(n, (me, state.status, state.comp_id, true));
                    }
                }
            }
        });
        DistComponents2 { net, stats }
    }

    /// The component id of canonical `c`, if unsafe.
    pub fn comp_id(&self, c: C2) -> Option<C2> {
        self.net.state_at(c).comp_id
    }

    /// Validate against the centralized decomposition: two unsafe nodes
    /// share a protocol id iff they share a centralized component.
    pub fn matches(&self, mesh: &Mesh2D, frame: Frame2) -> bool {
        use fault_model::components::Components2;
        use fault_model::{BorderPolicy, Labelling2};
        let lab = Labelling2::compute(mesh, frame, BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        let mut id_map: HashMap<C2, u32> = HashMap::new();
        for (c, state) in self.net.iter_coords() {
            match (state.comp_id, comps.component_of(c)) {
                (None, None) => {}
                (Some(pid), Some(cid)) => {
                    if let Some(&prev) = id_map.get(&pid) {
                        if prev != cid {
                            return false;
                        }
                    } else {
                        if id_map.values().any(|&v| v == cid) {
                            return false; // two protocol ids for one component
                        }
                        id_map.insert(pid, cid);
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;
    use mesh_topo::FaultSpec;

    fn run_for(faults: &[C2], w: i32, h: i32) -> (Mesh2D, DistComponents2) {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let lab = DistLabelling2::run(&mesh, Frame2::identity(&mesh));
        let comps = DistComponents2::run(&mesh, &lab);
        (mesh, comps)
    }

    #[test]
    fn single_region_single_id() {
        let (_, comps) = run_for(&[c2(5, 6), c2(6, 5)], 10, 10);
        // The closure makes a 2x2 region; all four share the min coord.
        let id = comps.comp_id(c2(5, 5));
        assert!(id.is_some());
        for c in [c2(5, 6), c2(6, 5), c2(6, 6)] {
            assert_eq!(comps.comp_id(c), id);
        }
        assert_eq!(id, Some(c2(5, 5)));
    }

    #[test]
    fn diagonal_members_join_via_relay() {
        // "/"-pair: 8-connected but not mesh-linked; gossip must join them.
        let (_, comps) = run_for(&[c2(4, 4), c2(5, 5)], 10, 10);
        assert_eq!(comps.comp_id(c2(4, 4)), Some(c2(4, 4)));
        assert_eq!(comps.comp_id(c2(5, 5)), Some(c2(4, 4)));
    }

    #[test]
    fn separate_regions_separate_ids() {
        let (_, comps) = run_for(&[c2(2, 2), c2(7, 7)], 10, 10);
        assert_ne!(comps.comp_id(c2(2, 2)), comps.comp_id(c2(7, 7)));
        assert_eq!(comps.comp_id(c2(4, 4)), None);
    }

    #[test]
    fn corridor_width_one_keeps_regions_apart() {
        // Two walls separated by a single safe column.
        let faults: Vec<C2> = (2..=5)
            .map(|y| c2(3, y))
            .chain((2..=5).map(|y| c2(5, y)))
            .collect();
        let (_, comps) = run_for(&faults, 10, 10);
        assert_ne!(comps.comp_id(c2(3, 3)), comps.comp_id(c2(5, 3)));
        assert_eq!(comps.comp_id(c2(4, 3)), None, "corridor stays safe");
    }

    #[test]
    fn matches_centralized_on_random_instances() {
        for seed in 0..10u64 {
            let mut mesh = Mesh2D::new(14, 14);
            FaultSpec::uniform(20, seed).inject_2d(&mut mesh, &[]);
            let frame = Frame2::identity(&mesh);
            let lab = DistLabelling2::run(&mesh, frame);
            let comps = DistComponents2::run(&mesh, &lab);
            assert!(comps.stats.quiescent, "seed {seed}");
            assert!(comps.matches(&mesh, frame), "seed {seed}: ids diverge");
        }
    }

    #[test]
    fn torus_components_join_across_the_seam() {
        // (0,4) and (9,4) are wrap-linked: one component, one id. The
        // diagonal wrap pair (0,0)/(9,9) is Chebyshev-1 through the
        // corner seam: also one component.
        let mut mesh = Mesh2D::torus(10, 10);
        for c in [c2(0, 4), c2(9, 4), c2(0, 0), c2(9, 9)] {
            mesh.inject_fault(c);
        }
        let frame = Frame2::identity(&mesh);
        let lab = DistLabelling2::run(&mesh, frame);
        let comps = DistComponents2::run(&mesh, &lab);
        assert!(comps.stats.quiescent);
        assert_eq!(comps.comp_id(c2(0, 4)), comps.comp_id(c2(9, 4)));
        assert_eq!(comps.comp_id(c2(0, 0)), comps.comp_id(c2(9, 9)));
        assert_ne!(comps.comp_id(c2(0, 4)), comps.comp_id(c2(0, 0)));
        assert!(comps.matches(&mesh, frame), "ids diverge from centralized");
    }

    #[test]
    fn torus_matches_centralized_on_random_instances() {
        for seed in 0..8u64 {
            let mut mesh = Mesh2D::torus(12, 12);
            FaultSpec::uniform(18, seed).inject_2d(&mut mesh, &[]);
            let frame = Frame2::identity(&mesh);
            let lab = DistLabelling2::run(&mesh, frame);
            let comps = DistComponents2::run(&mesh, &lab);
            assert!(comps.stats.quiescent, "seed {seed}");
            assert!(comps.matches(&mesh, frame), "seed {seed}: ids diverge");
        }
    }

    #[test]
    fn long_snake_converges() {
        // A long 8-connected staircase: min-id must travel the whole chain.
        let faults: Vec<C2> = (0..8).map(|i| c2(2 + i, 2 + i)).collect();
        let (mesh, comps) = run_for(&faults, 14, 14);
        let frame = Frame2::identity(&mesh);
        assert!(comps.matches(&mesh, frame));
        assert_eq!(comps.comp_id(c2(9, 9)), Some(c2(2, 2)));
    }
}
