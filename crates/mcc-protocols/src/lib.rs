//! # mcc-protocols — distributed construction of the MCC model
//!
//! Message-passing implementations (on [`sim_net`]) of the paper's
//! distributed processes, in which every node knows initially only its own
//! fault status and, after one exchange, its neighbors':
//!
//! * [`labelling`] — the labelling closure by neighbor status exchange
//!   (Algorithms 1 and 4 run as a protocol; convergence rounds and message
//!   counts are experiment E7),
//! * [`compid`] — component identification: every unsafe node learns its
//!   MCC's id (the minimum member coordinate) by 2-hop gossip over the
//!   8/18-adjacency,
//! * [`ident2`] — the 2-D identification process: wall-following
//!   identification messages launched at initialization corners walk the
//!   edge nodes of each MCC and reconstruct its shape (Algorithm 2 steps
//!   1–2),
//! * [`boundary2`] — X/Y boundary construction: boundary messages descend
//!   from each initialization corner, detour around foreign MCCs, merge
//!   forbidden regions and deposit [`records::BoundaryRecord2`]s
//!   (Algorithm 2 step 3),
//! * [`route2`] — the two-phase routing of Algorithm 3 as a message
//!   protocol: detection messages with reply paths, then data forwarding
//!   where every hop decides from its *locally stored* records only,
//! * [`detect3`] / [`route3`] — the 3-D detection floods of Algorithm 6 and
//!   routing whose per-hop decision re-runs neighbor detection (see
//!   DESIGN.md for the record-machinery substitution),
//! * [`records`] — the boundary-record data nodes store.
//!
//! Every protocol is validated against the semantic layer of
//! [`fault_model`] / [`mcc_routing`]: same labels, same shapes, same
//! decisions, same delivered minimal paths.
//!
//! Module ↔ paper map: [`labelling`] runs Algorithms 1/4 distributively
//! (Sections 3–4); [`compid`], [`ident2`] and [`boundary2`] are the three
//! stages of Algorithm 2's identification and boundary construction
//! (Section 3); [`route2`] is Algorithm 3 and [`detect3`]/[`route3`]
//! Algorithm 6 as message protocols (Sections 3 and 5); the message/round
//! counts feed the overhead tables of Section 6.
//!
//! # Examples
//!
//! Run the distributed labelling protocol and check it converges to the
//! same fixpoint as the semantic closure:
//!
//! ```
//! use fault_model::{BorderPolicy, Labelling2};
//! use mcc_protocols::DistLabelling2;
//! use mesh_topo::coord::c2;
//! use mesh_topo::{Frame2, Mesh2D};
//!
//! let mut mesh = Mesh2D::new(8, 8);
//! mesh.inject_fault(c2(3, 4));
//! mesh.inject_fault(c2(4, 3));
//!
//! let frame = Frame2::identity(&mesh);
//! let dist = DistLabelling2::run(&mesh, frame);
//! assert!(dist.status(c2(3, 3)).is_useless());
//!
//! let semantic = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
//! assert!(dist.matches(&semantic));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary2;
pub mod compid;
pub mod detect3;
pub mod ident2;
pub mod labelling;
pub mod records;
pub mod reference;
pub mod route2;
pub mod route3;

pub use labelling::{DistLabelling2, DistLabelling3};
