//! Distributed routing in 3-D meshes.
//!
//! Phase one runs the detection floods of [`crate::detect3`] as real
//! messages. For phase two the paper stores boundary records along the six
//! edge/boundary surfaces of each 3-D MCC; as documented in DESIGN.md this
//! reproduction substitutes the per-hop record lookup with a per-hop
//! *neighbor detection re-run*: before forwarding, the current node checks
//! each candidate neighbor by the same detection procedure the source used
//! (its message cost is accounted analytically via the semantic twin, which
//! the flood protocol is test-equivalent to). The forwarding decision
//! itself uses only the node's neighbor statuses plus those verdicts, so no
//! global state leaks into the data path.

use fault_model::{BorderPolicy, Labelling3};
use mesh_topo::{Dir3, Mesh3D, Path3, C3};
use sim_net::RunStats;

use crate::detect3::detect_distributed_3d;
use crate::labelling::DistLabelling3;

/// Outcome of one distributed 3-D routing attempt.
#[derive(Clone, Debug)]
pub struct DistRouteOutcome3 {
    /// Was the routing activated?
    pub feasible: bool,
    /// The delivered path, if any.
    pub path: Option<Path3>,
    /// Message statistics of the source detection floods.
    pub detection_stats: RunStats,
    /// Analytic cost of the per-hop neighbor detections (visited nodes of
    /// the equivalent floods).
    pub hop_detection_cost: usize,
}

/// Route from canonical safe `s` to `d` over a converged distributed
/// labelling.
///
/// # Panics
/// If `s` does not precede `d` componentwise or an endpoint is unsafe.
pub fn route_distributed_3d(
    mesh: &Mesh3D,
    lab: &DistLabelling3,
    s: C3,
    d: C3,
) -> DistRouteOutcome3 {
    assert!(
        s.dominated_by(d),
        "distributed routing requires canonical s <= d"
    );
    let (feasible, detection_stats) = detect_distributed_3d(mesh, lab, s, d);
    if !feasible {
        return DistRouteOutcome3 {
            feasible,
            path: None,
            detection_stats,
            hop_detection_cost: 0,
        };
    }
    // Semantic twin of the flood for the per-hop checks (test-equivalent).
    let sem = Labelling3::compute(mesh, lab.frame(), BorderPolicy::BorderSafe);
    let mut hop_detection_cost = 0usize;
    let mut path = Path3::start(s);
    let mut u = s;
    while u != d {
        let mut next: Option<(Dir3, i32)> = None;
        for dir in Dir3::POSITIVE {
            if u.get(dir.axis()) >= d.get(dir.axis()) {
                continue;
            }
            let v = u.step(dir);
            if !sem.is_safe(v) {
                continue;
            }
            let det = mcc_routing::detect_3d(&sem, v, d);
            hop_detection_cost += det.visited;
            if det.feasible() {
                let remaining = d.get(dir.axis()) - u.get(dir.axis());
                if next.map(|(_, r)| remaining > r).unwrap_or(true) {
                    next = Some((dir, remaining));
                }
            }
        }
        let (dir, _) = next.expect("feasible routing can always advance");
        u = u.step(dir);
        path.push(u);
    }
    DistRouteOutcome3 {
        feasible,
        path: Some(path),
        detection_stats,
        hop_detection_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c3;
    use mesh_topo::{FaultSpec, Frame3};

    fn setup(faults: &[C3], k: i32) -> (Mesh3D, DistLabelling3) {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let lab = DistLabelling3::run(&mesh, Frame3::identity(&mesh));
        (mesh, lab)
    }

    #[test]
    fn routes_fault_free() {
        let (mesh, lab) = setup(&[], 6);
        let out = route_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(5, 5, 5));
        assert!(out.feasible);
        assert!(out
            .path
            .unwrap()
            .is_minimal(&mesh, c3(0, 0, 0), c3(5, 5, 5)));
    }

    #[test]
    fn routes_around_figure5() {
        let faults = [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ];
        let (mesh, lab) = setup(&faults, 10);
        let out = route_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(9, 9, 9));
        assert!(out.feasible);
        let path = out.path.unwrap();
        assert!(path.is_minimal(&mesh, c3(0, 0, 0), c3(9, 9, 9)));
        assert!(out.hop_detection_cost > 0);
    }

    #[test]
    fn refuses_blocked() {
        let (mesh, lab) = setup(&[c3(0, 0, 3)], 8);
        let out = route_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(0, 0, 6));
        assert!(!out.feasible);
        assert!(out.path.is_none());
    }

    #[test]
    fn delivers_whenever_feasible_randomized() {
        for seed in 0..15u64 {
            let mut mesh = Mesh3D::kary(7);
            FaultSpec::uniform(18, seed).inject_3d(&mut mesh, &[c3(0, 0, 0), c3(6, 6, 6)]);
            let lab = DistLabelling3::run(&mesh, Frame3::identity(&mesh));
            if !lab.status(c3(0, 0, 0)).is_safe() || !lab.status(c3(6, 6, 6)).is_safe() {
                continue;
            }
            let out = route_distributed_3d(&mesh, &lab, c3(0, 0, 0), c3(6, 6, 6));
            if out.feasible {
                let path = out.path.expect("feasible must deliver");
                assert!(
                    path.is_minimal(&mesh, c3(0, 0, 0), c3(6, 6, 6)),
                    "seed {seed}"
                );
            }
        }
    }
}
