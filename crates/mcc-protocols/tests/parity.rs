//! Engine-refactor parity: the flat index-addressed engine must change the
//! protocol layer's **cost accounting by zero**.
//!
//! Two lines of defense:
//!
//! * **Old-vs-new [`RunStats`] equality** — the distributed labelling runs
//!   on both engines (the flat one and the pre-refactor hash engine kept
//!   in [`mcc_protocols::reference`]) over fixed seeds; rounds, messages,
//!   max-inflight and quiescence must agree exactly, and so must every
//!   node's converged label.
//! * **Pinned E7 pipeline counts** — the full 2-D construction pipeline
//!   (labelling → compid → ident → boundary) on fixed seeds is pinned to
//!   literal per-phase round/message counts. The literals were verified
//!   identical against the pre-refactor engine at the commit boundary, so
//!   any future engine or protocol change that silently shifts the paper's
//!   overhead tables (E5/E7) fails here, not in a regenerated table.

use mcc_protocols::boundary2::build_pipeline_2d;
use mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_protocols::reference::{RefDistLabelling2, RefDistLabelling3};
use mesh_topo::coord::c2;
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn labelling_stats_parity_2d() {
    for seed in 0..10u64 {
        let mut mesh = Mesh2D::new(24, 24);
        FaultSpec::uniform(80, seed).inject_2d(&mut mesh, &[]);
        for frame in Frame2::all(&mesh) {
            let new = DistLabelling2::run(&mesh, frame);
            let old = RefDistLabelling2::run(&mesh, frame);
            assert_eq!(
                new.stats, old.stats,
                "seed {seed} frame {frame:?}: engines disagree on cost"
            );
            assert!(new.stats.quiescent);
            for (c, s) in old.net.iter() {
                assert_eq!(s.status, new.status(c), "seed {seed}: label differs at {c}");
            }
        }
    }
}

#[test]
fn labelling_stats_parity_3d() {
    for seed in 0..6u64 {
        let mut mesh = Mesh3D::kary(10);
        FaultSpec::uniform(120, seed).inject_3d(&mut mesh, &[]);
        let frame = Frame3::identity(&mesh);
        let new = DistLabelling3::run(&mesh, frame);
        let old = RefDistLabelling3::run(&mesh, frame);
        assert_eq!(new.stats, old.stats, "seed {seed}: engines disagree");
        assert!(new.stats.quiescent);
        for (c, s) in old.net.iter() {
            assert_eq!(s.status, new.status(c), "seed {seed}: label differs at {c}");
        }
    }
}

/// The E7 overhead runner's mesh construction: `n` uniform faults in the
/// interior of a `w × w` mesh (see `mcc_bench::runner::run_overhead_2d`).
fn interior_mesh(w: i32, n: usize, seed: u64) -> Mesh2D {
    let mut mesh = Mesh2D::new(w, w);
    let mut rng = SmallRng::seed_from_u64(seed ^ ((n as u64) << 24));
    let mut placed = 0;
    while placed < n {
        let c = c2(rng.gen_range(1..w - 1), rng.gen_range(1..w - 1));
        if mesh.is_healthy(c) {
            mesh.inject_fault(c);
            placed += 1;
        }
    }
    mesh
}

#[test]
fn pinned_e7_pipeline_counts() {
    // (mesh width, faults, seed) → per-phase (rounds, messages), pinned.
    // Verified equal to the pre-refactor engine's counts at the refactor
    // boundary; a diff here means the overhead tables changed meaning.
    #[allow(clippy::type_complexity)]
    let cases: [(i32, usize, u64, [(usize, usize); 4]); 3] = [
        (24, 10, 0, [(3, 2208), (4, 8552), (21, 190), (26, 230)]),
        (24, 20, 3, [(4, 2216), (6, 8664), (29, 328), (25, 333)]),
        (16, 6, 1, [(3, 960), (5, 3672), (25, 99), (19, 74)]),
    ];
    for (w, n, seed, expect) in cases {
        let mesh = interior_mesh(w, n, seed);
        let (_, st) = build_pipeline_2d(&mesh, Frame2::identity(&mesh));
        let got = [
            (st.labelling.rounds, st.labelling.messages),
            (st.components.rounds, st.components.messages),
            (st.identification.rounds, st.identification.messages),
            (st.boundary.rounds, st.boundary.messages),
        ];
        assert_eq!(
            got, expect,
            "pipeline cost accounting drifted for ({w}x{w}, {n} faults, seed {seed})"
        );
        let total: usize = expect.iter().map(|&(_, m)| m).sum();
        assert_eq!(st.total_messages(), total);
    }
}
