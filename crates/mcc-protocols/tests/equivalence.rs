//! Property-based protocol ↔ semantic-layer equivalence.
//!
//! For random interior-fault meshes (the documented assumption of the 2-D
//! identification walks), the distributed construction pipeline on the
//! flat engine is pinned equivalent to the centralized semantic layer:
//!
//! * **`compid`** — protocol component ids partition the unsafe set
//!   exactly like [`Components2`], and each id is the minimum member
//!   coordinate of its component (the convergence target);
//! * **`ident2`** — the reconstructed [`RegionShape`]s are cell-for-cell
//!   the MCCs of [`MccSet2`], and their forbidden/critical region
//!   predicates agree with the semantic [`Mcc2`] twin on every node;
//! * **`boundary2`** — every deposited record is rooted at a real MCC,
//!   merges only real MCCs, and every captured cell is also captured by
//!   the coarser [`FaultBlocks2`] model (MCC ⊆ RFB, so no record can
//!   forbid a node the block model would allow a minimal path through).
//!
//! Before this suite only `labelling` carried such a check (doctest-level);
//! the whole pipeline is now covered.

use fault_model::components::Components2;
use fault_model::mcc2::MccSet2;
use fault_model::{BorderPolicy, FaultBlocks2, Labelling2};
use mcc_protocols::boundary2::Boundary2;
use mcc_protocols::compid::DistComponents2;
use mcc_protocols::ident2::Ident2;
use mcc_protocols::labelling::DistLabelling2;
use mesh_topo::coord::c2;
use mesh_topo::{Frame2, Mesh2D, C2};
use proptest::prelude::*;

const W: i32 = 10;

/// Random meshes with interior faults only — identification walks assume
/// regions that do not touch the mesh border (DESIGN.md §3).
fn arb_interior_mesh() -> impl Strategy<Value = Mesh2D> {
    proptest::collection::vec((1..W - 1, 1..W - 1), 0..9).prop_map(|faults| {
        let mut mesh = Mesh2D::new(W, W);
        for (x, y) in faults {
            let c = c2(x, y);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        mesh
    })
}

/// Sorted cell lists of the semantic MCC decomposition.
fn semantic_shapes(mesh: &Mesh2D) -> Vec<Vec<C2>> {
    let lab = Labelling2::compute(mesh, Frame2::identity(mesh), BorderPolicy::BorderSafe);
    let set = MccSet2::compute(&lab);
    let mut shapes: Vec<Vec<C2>> = set
        .mccs
        .iter()
        .map(|m| {
            let mut cells = m.cells.clone();
            cells.sort();
            cells
        })
        .collect();
    shapes.sort();
    shapes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Component ids: same partition as `Components2`, converged to the
    /// minimum member coordinate.
    #[test]
    fn compid_equals_components2(mesh in arb_interior_mesh()) {
        let frame = Frame2::identity(&mesh);
        let lab = DistLabelling2::run(&mesh, frame);
        let comps = DistComponents2::run(&mesh, &lab);
        prop_assert!(comps.stats.quiescent, "component gossip did not converge");
        prop_assert!(comps.matches(&mesh, frame), "partition differs: {:?}", mesh.faults());
        let sem_lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
        let sem = Components2::compute(&sem_lab);
        for c in mesh.nodes() {
            match (comps.comp_id(c), sem.component_of(c)) {
                (None, None) => {}
                (Some(pid), Some(cid)) => {
                    let min = *sem.cells[cid as usize].iter().min().unwrap();
                    prop_assert_eq!(pid, min, "id at {} is not the component minimum", c);
                }
                (p, s) => prop_assert!(false, "membership differs at {}: {:?} vs {:?}", c, p, s),
            }
        }
    }

    /// Identification: reconstructed shapes are exactly the MCCs, and the
    /// shape's region predicates agree with the semantic `Mcc2` twin.
    #[test]
    fn ident2_shapes_equal_mccset2(mesh in arb_interior_mesh()) {
        let frame = Frame2::identity(&mesh);
        let lab = DistLabelling2::run(&mesh, frame);
        let comps = DistComponents2::run(&mesh, &lab);
        let ident = Ident2::run(&mesh, &comps);
        prop_assert!(ident.stats.quiescent, "identification walks did not converge");
        let mut got: Vec<Vec<C2>> = ident
            .shapes()
            .into_iter()
            .map(|(_, s)| s.cells.clone())
            .collect();
        got.sort();
        prop_assert_eq!(&got, &semantic_shapes(&mesh), "shape cells diverge");

        let sem_lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
        let set = MccSet2::compute(&sem_lab);
        for (_, shape) in ident.shapes() {
            let twin = set
                .mccs
                .iter()
                .find(|m| {
                    let mut cells = m.cells.clone();
                    cells.sort();
                    cells == shape.cells
                })
                .expect("cell equality proven above");
            for c in mesh.nodes() {
                prop_assert_eq!(shape.in_forbidden_y(c), twin.in_forbidden_y(c), "Q_Y at {}", c);
                prop_assert_eq!(shape.in_critical_y(c), twin.in_critical_y(c), "Q'_Y at {}", c);
                prop_assert_eq!(shape.in_forbidden_x(c), twin.in_forbidden_x(c), "Q_X at {}", c);
                prop_assert_eq!(shape.in_critical_x(c), twin.in_critical_x(c), "Q'_X at {}", c);
            }
        }
    }

    /// Boundary records: rooted at real MCCs, merging only real MCCs, and
    /// never capturing a cell the coarser block model leaves enabled.
    #[test]
    fn boundary2_records_are_grounded(mesh in arb_interior_mesh()) {
        let frame = Frame2::identity(&mesh);
        let lab = DistLabelling2::run(&mesh, frame);
        let comps = DistComponents2::run(&mesh, &lab);
        let ident = Ident2::run(&mesh, &comps);
        let bound = Boundary2::run(&mesh, &ident);
        prop_assert!(bound.stats.quiescent, "boundary walks did not converge");
        let shapes = semantic_shapes(&mesh);
        let blocks = FaultBlocks2::compute(&mesh);
        let mut records = 0usize;
        for c in mesh.nodes() {
            for rec in bound.records(c) {
                records += 1;
                prop_assert!(
                    shapes.binary_search(&rec.root.cells).is_ok(),
                    "record at {} rooted at a non-MCC shape", c
                );
                for m in &rec.merged {
                    prop_assert!(
                        shapes.binary_search(&m.cells).is_ok(),
                        "record at {} merged a non-MCC shape", c
                    );
                    for &cell in &m.cells {
                        prop_assert!(
                            blocks.is_disabled(cell),
                            "MCC cell {} not captured by the block model", cell
                        );
                    }
                }
            }
        }
        // Every region got its two boundaries (anchors are interior, so
        // both walks launch whenever any fault exists).
        if !shapes.is_empty() {
            prop_assert!(records > 0, "faulty mesh deposited no records");
        }
    }
}
