//! Property battery pinning the torus neighbor math against brute-force
//! modular arithmetic.
//!
//! The wrap-aware enumerators in `mesh_topo::nodeset` compute neighbor
//! indices with branchy in-place offset math (no division in the hot
//! loop). These tests re-derive every neighborhood from the definition —
//! `(x ± 1) mod k` per axis — and require exact agreement, for every node
//! of randomly drawn torus extents, across:
//!
//! * `step` / `step_c` (single probes, index- and coordinate-level),
//! * `for_neighbors4` / `for_neighbors6` (face neighborhoods),
//! * `for_neighbors8` / `for_neighbors18` (region-connectivity
//!   neighborhoods),
//! * `dist` (per-axis Lee distance) and `wrap_coord` (reduction).

use mesh_topo::coord::{c2, c3};
use mesh_topo::{Dir2, Dir3, Mesh2D, Mesh3D, NodeSpace2, NodeSpace3, C2, C3};
use proptest::prelude::*;

/// The definition: wrap one axis value into `0..k`.
fn modk(v: i32, k: i32) -> i32 {
    ((v % k) + k) % k
}

/// Brute-force oracle for the 2-D face neighborhood of `(x, y)`.
fn oracle4(x: i32, y: i32, w: i32, h: i32) -> Vec<C2> {
    // Dir2::ALL order: Xp, Xm, Yp, Ym.
    vec![
        c2(modk(x + 1, w), y),
        c2(modk(x - 1, w), y),
        c2(x, modk(y + 1, h)),
        c2(x, modk(y - 1, h)),
    ]
}

/// Brute-force oracle for the 3-D face neighborhood.
fn oracle6(c: C3, nx: i32, ny: i32, nz: i32) -> Vec<C3> {
    // Dir3::ALL order: Xp, Xm, Yp, Ym, Zp, Zm.
    vec![
        c3(modk(c.x + 1, nx), c.y, c.z),
        c3(modk(c.x - 1, nx), c.y, c.z),
        c3(c.x, modk(c.y + 1, ny), c.z),
        c3(c.x, modk(c.y - 1, ny), c.z),
        c3(c.x, c.y, modk(c.z + 1, nz)),
        c3(c.x, c.y, modk(c.z - 1, nz)),
    ]
}

proptest! {
    #[test]
    fn torus2_neighbors_match_modular_oracle(w in 3i32..12, h in 3i32..12) {
        let s = NodeSpace2::torus(w, h);
        for i in 0..s.len() {
            let c = s.coord(i);
            let expect = oracle4(c.x, c.y, w, h);
            // Single-step probes, index- and coordinate-level.
            for (dir, want) in Dir2::ALL.into_iter().zip(expect.iter()) {
                prop_assert_eq!(s.coord(s.step(i, dir).unwrap()), *want);
                prop_assert_eq!(s.step_c(c, dir), Some(*want));
            }
            // Face enumerator, exact order.
            let mut got = Vec::new();
            s.for_neighbors4(i, |j| got.push(s.coord(j)));
            prop_assert_eq!(&got, &expect);
            // 8-neighborhood equals the set difference of the 3x3 modular
            // box around c and c itself.
            let mut got8 = Vec::new();
            s.for_neighbors8(i, |j| got8.push(s.coord(j)));
            got8.sort_unstable_by_key(|c| (c.y, c.x));
            let mut want8: Vec<C2> = (-1..=1)
                .flat_map(|dy| (-1..=1).map(move |dx| (dx, dy)))
                .filter(|&(dx, dy)| (dx, dy) != (0, 0))
                .map(|(dx, dy)| c2(modk(c.x + dx, w), modk(c.y + dy, h)))
                .collect();
            want8.sort_unstable_by_key(|c| (c.y, c.x));
            want8.dedup();
            prop_assert_eq!(got8, want8);
        }
    }

    #[test]
    fn torus3_neighbors_match_modular_oracle(
        nx in 3i32..7,
        ny in 3i32..7,
        nz in 3i32..7,
    ) {
        let s = NodeSpace3::torus(nx, ny, nz);
        for i in 0..s.len() {
            let c = s.coord(i);
            let expect = oracle6(c, nx, ny, nz);
            for (dir, want) in Dir3::ALL.into_iter().zip(expect.iter()) {
                prop_assert_eq!(s.coord(s.step(i, dir).unwrap()), *want);
                prop_assert_eq!(s.step_c(c, dir), Some(*want));
            }
            let mut got = Vec::new();
            s.for_neighbors6(i, |j| got.push(s.coord(j)));
            prop_assert_eq!(&got, &expect);
            // 18-neighborhood: all cells at most one step off per axis with
            // at most two axes differing (no space diagonals).
            let mut got18 = Vec::new();
            s.for_neighbors18(i, |j| got18.push(s.coord(j)));
            got18.sort_unstable_by_key(|c| (c.z, c.y, c.x));
            let mut want18: Vec<C3> = (-1..=1)
                .flat_map(|dz| {
                    (-1..=1).flat_map(move |dy| (-1..=1).map(move |dx| (dx, dy, dz)))
                })
                .filter(|&(dx, dy, dz)| {
                    let moved = (dx != 0) as u32 + (dy != 0) as u32 + (dz != 0) as u32;
                    moved == 1 || moved == 2
                })
                .map(|(dx, dy, dz)| {
                    c3(modk(c.x + dx, nx), modk(c.y + dy, ny), modk(c.z + dz, nz))
                })
                .collect();
            want18.sort_unstable_by_key(|c| (c.z, c.y, c.x));
            want18.dedup();
            prop_assert_eq!(got18, want18);
        }
    }

    #[test]
    fn torus_distance_is_min_arc_sum(
        w in 3i32..12,
        h in 3i32..12,
        ax in 0i32..12, ay in 0i32..12,
        bx in 0i32..12, by in 0i32..12,
    ) {
        let s = NodeSpace2::torus(w, h);
        let a = c2(ax % w, ay % h);
        let b = c2(bx % w, by % h);
        let arc = |p: i32, q: i32, k: i32| {
            let d = (p - q).abs();
            d.min(k - d) as u32
        };
        prop_assert_eq!(s.dist(a, b), arc(a.x, b.x, w) + arc(a.y, b.y, h));
        prop_assert_eq!(s.dist(a, b), s.dist(b, a));
        // The wrapped mesh agrees with its space.
        let mesh = Mesh2D::torus(w, h);
        prop_assert_eq!(mesh.dist(a, b), s.dist(a, b));
    }

    #[test]
    fn torus_wrap_coord_is_modular_reduction(
        w in 3i32..10,
        h in 3i32..10,
        x in -40i32..40,
        y in -40i32..40,
    ) {
        let s = NodeSpace2::torus(w, h);
        prop_assert_eq!(s.wrap_coord(c2(x, y)), c2(modk(x, w), modk(y, h)));
    }

    #[test]
    fn mesh3_and_torus3_neighbors_differ_only_at_borders(k in 3i32..6) {
        let mesh = Mesh3D::kary(k);
        let torus = Mesh3D::torus_kary(k);
        for c in mesh.nodes() {
            let m: Vec<C3> = mesh.neighbors(c).collect();
            let t: Vec<C3> = torus.neighbors(c).collect();
            prop_assert_eq!(t.len(), 6);
            let interior = c.x > 0 && c.y > 0 && c.z > 0
                && c.x < k - 1 && c.y < k - 1 && c.z < k - 1;
            if interior {
                prop_assert_eq!(&m, &t);
            } else {
                // Every mesh neighbor survives on the torus, in order.
                let mut it = t.iter();
                for n in &m {
                    prop_assert!(it.any(|x| x == n), "{n} lost at {c}");
                }
            }
        }
    }
}
