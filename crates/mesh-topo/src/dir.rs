//! Axes and signed unit directions.
//!
//! The paper's routing algorithms reason in terms of *preferred* directions
//! (the positive directions toward a canonicalized destination) and *spare*
//! directions. This module provides the enums and the small amount of
//! direction algebra everything else builds on.

use serde::{Deserialize, Serialize};

/// A dimension of a 2-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis2 {
    /// Dimension 0.
    X,
    /// Dimension 1.
    Y,
}

/// A dimension of a 3-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis3 {
    /// Dimension 0.
    X,
    /// Dimension 1.
    Y,
    /// Dimension 2.
    Z,
}

/// A signed unit direction in a 2-D mesh (`+X`, `-X`, `+Y`, `-Y`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dir2 {
    /// `+X`: toward larger x.
    Xp,
    /// `-X`: toward smaller x.
    Xm,
    /// `+Y`: toward larger y.
    Yp,
    /// `-Y`: toward smaller y.
    Ym,
}

/// A signed unit direction in a 3-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dir3 {
    /// `+X`.
    Xp,
    /// `-X`.
    Xm,
    /// `+Y`.
    Yp,
    /// `-Y`.
    Ym,
    /// `+Z`.
    Zp,
    /// `-Z`.
    Zm,
}

impl Axis2 {
    /// Both axes, in dimension order.
    pub const ALL: [Axis2; 2] = [Axis2::X, Axis2::Y];

    /// The other axis.
    #[inline]
    pub fn other(self) -> Axis2 {
        match self {
            Axis2::X => Axis2::Y,
            Axis2::Y => Axis2::X,
        }
    }

    /// The positive direction along this axis.
    #[inline]
    pub fn pos(self) -> Dir2 {
        match self {
            Axis2::X => Dir2::Xp,
            Axis2::Y => Dir2::Yp,
        }
    }

    /// The negative direction along this axis.
    ///
    /// Deliberately named like `Neg::neg` (the natural pairing with
    /// [`Axis2::pos`]) but returns a [`Dir2`], so the operator trait does
    /// not apply.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Dir2 {
        match self {
            Axis2::X => Dir2::Xm,
            Axis2::Y => Dir2::Ym,
        }
    }

    /// Stable small index (X=0, Y=1).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Axis3 {
    /// All three axes, in dimension order.
    pub const ALL: [Axis3; 3] = [Axis3::X, Axis3::Y, Axis3::Z];

    /// The two axes other than `self`, in dimension order.
    #[inline]
    pub fn others(self) -> [Axis3; 2] {
        match self {
            Axis3::X => [Axis3::Y, Axis3::Z],
            Axis3::Y => [Axis3::X, Axis3::Z],
            Axis3::Z => [Axis3::X, Axis3::Y],
        }
    }

    /// The positive direction along this axis.
    #[inline]
    pub fn pos(self) -> Dir3 {
        match self {
            Axis3::X => Dir3::Xp,
            Axis3::Y => Dir3::Yp,
            Axis3::Z => Dir3::Zp,
        }
    }

    /// The negative direction along this axis.
    ///
    /// Deliberately named like `Neg::neg` (the natural pairing with
    /// [`Axis3::pos`]) but returns a [`Dir3`], so the operator trait does
    /// not apply.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Dir3 {
        match self {
            Axis3::X => Dir3::Xm,
            Axis3::Y => Dir3::Ym,
            Axis3::Z => Dir3::Zm,
        }
    }

    /// Stable small index (X=0, Y=1, Z=2).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Dir2 {
    /// All four directions: `+X, -X, +Y, -Y`.
    pub const ALL: [Dir2; 4] = [Dir2::Xp, Dir2::Xm, Dir2::Yp, Dir2::Ym];

    /// The two positive (canonical *preferred*) directions.
    pub const POSITIVE: [Dir2; 2] = [Dir2::Xp, Dir2::Yp];

    /// Coordinate delta of one step.
    #[inline]
    pub fn delta(self) -> (i32, i32) {
        match self {
            Dir2::Xp => (1, 0),
            Dir2::Xm => (-1, 0),
            Dir2::Yp => (0, 1),
            Dir2::Ym => (0, -1),
        }
    }

    /// The axis this direction moves along.
    #[inline]
    pub fn axis(self) -> Axis2 {
        match self {
            Dir2::Xp | Dir2::Xm => Axis2::X,
            Dir2::Yp | Dir2::Ym => Axis2::Y,
        }
    }

    /// True for `+X` / `+Y`.
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, Dir2::Xp | Dir2::Yp)
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Dir2 {
        match self {
            Dir2::Xp => Dir2::Xm,
            Dir2::Xm => Dir2::Xp,
            Dir2::Yp => Dir2::Ym,
            Dir2::Ym => Dir2::Yp,
        }
    }

    /// Stable small index usable for per-direction tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Dir3 {
    /// All six directions: `+X, -X, +Y, -Y, +Z, -Z`.
    pub const ALL: [Dir3; 6] = [Dir3::Xp, Dir3::Xm, Dir3::Yp, Dir3::Ym, Dir3::Zp, Dir3::Zm];

    /// The three positive (canonical *preferred*) directions.
    pub const POSITIVE: [Dir3; 3] = [Dir3::Xp, Dir3::Yp, Dir3::Zp];

    /// Coordinate delta of one step.
    #[inline]
    pub fn delta(self) -> (i32, i32, i32) {
        match self {
            Dir3::Xp => (1, 0, 0),
            Dir3::Xm => (-1, 0, 0),
            Dir3::Yp => (0, 1, 0),
            Dir3::Ym => (0, -1, 0),
            Dir3::Zp => (0, 0, 1),
            Dir3::Zm => (0, 0, -1),
        }
    }

    /// The axis this direction moves along.
    #[inline]
    pub fn axis(self) -> Axis3 {
        match self {
            Dir3::Xp | Dir3::Xm => Axis3::X,
            Dir3::Yp | Dir3::Ym => Axis3::Y,
            Dir3::Zp | Dir3::Zm => Axis3::Z,
        }
    }

    /// True for `+X` / `+Y` / `+Z`.
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, Dir3::Xp | Dir3::Yp | Dir3::Zp)
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Dir3 {
        match self {
            Dir3::Xp => Dir3::Xm,
            Dir3::Xm => Dir3::Xp,
            Dir3::Yp => Dir3::Ym,
            Dir3::Ym => Dir3::Yp,
            Dir3::Zp => Dir3::Zm,
            Dir3::Zm => Dir3::Zp,
        }
    }

    /// Stable small index usable for per-direction tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl core::fmt::Display for Dir2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Dir2::Xp => "+X",
            Dir2::Xm => "-X",
            Dir2::Yp => "+Y",
            Dir2::Ym => "-Y",
        };
        f.write_str(s)
    }
}

impl core::fmt::Display for Dir3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Dir3::Xp => "+X",
            Dir3::Xm => "-X",
            Dir3::Yp => "+Y",
            Dir3::Ym => "-Y",
            Dir3::Zp => "+Z",
            Dir3::Zm => "-Z",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposites_are_involutions() {
        for d in Dir2::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.axis(), d.opposite().axis());
            assert_ne!(d.is_positive(), d.opposite().is_positive());
        }
        for d in Dir3::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.axis(), d.opposite().axis());
            assert_ne!(d.is_positive(), d.opposite().is_positive());
        }
    }

    #[test]
    fn axis_pos_neg() {
        for a in Axis2::ALL {
            assert_eq!(a.pos().axis(), a);
            assert_eq!(a.neg().axis(), a);
            assert!(a.pos().is_positive());
            assert!(!a.neg().is_positive());
        }
        for a in Axis3::ALL {
            assert_eq!(a.pos().axis(), a);
            assert_eq!(a.neg().axis(), a);
        }
    }

    #[test]
    fn deltas_sum_to_zero_with_opposite() {
        for d in Dir3::ALL {
            let (a, b, c) = d.delta();
            let (x, y, z) = d.opposite().delta();
            assert_eq!((a + x, b + y, c + z), (0, 0, 0));
        }
    }

    #[test]
    fn indices_are_distinct() {
        let mut seen = [false; 6];
        for d in Dir3::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }
}
