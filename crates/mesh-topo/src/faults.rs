//! Seeded random fault injection.
//!
//! The evaluation sweeps inject a given number of node faults into a mesh and
//! average over many seeds. Two spatial patterns are provided:
//!
//! * [`FaultPattern::Uniform`] — faults chosen uniformly at random without
//!   replacement (the standard workload in the fault-block literature),
//! * [`FaultPattern::Clustered`] — faults grown around random cluster seeds,
//!   stressing the models with large connected fault regions.
//!
//! Injection can protect a set of nodes (typically the source and destination
//! under test) from being chosen.
//!
//! Sampling runs entirely on the flat node-state layer
//! ([`crate::nodeset`]): candidates are linear node indices, and
//! eligibility/membership checks are [`NodeSet`] bit tests instead of the
//! per-call `HashSet` rebuilds of the original implementation. The RNG draw
//! sequence is unchanged, so a given `(seed, pattern)` produces the same
//! fault set the hash-based sampler produced — the determinism regression
//! test below pins that equivalence.
//!
//! The samplers themselves ([`sample_uniform`], [`sample_clustered`]) and
//! the eligible-candidate construction ([`eligible_indices_2d`],
//! [`eligible_indices_3d`]) are public: the fault-regime layer in the
//! `fault-model` crate reuses them verbatim so its `Uniform`/`Clustered`
//! regimes stay RNG-sequence-identical with [`FaultSpec`], which is now a
//! thin adapter over these building blocks.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::coord::{C2, C3};
use crate::mesh::{Mesh2D, Mesh3D};
use crate::nodeset::NodeSet;

/// Spatial distribution of injected faults.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FaultPattern {
    /// Uniformly random distinct nodes.
    Uniform,
    /// Faults grown in connected clusters around `clusters` random seeds.
    Clustered {
        /// Number of cluster seed points.
        clusters: usize,
    },
}

/// A reproducible fault-injection request.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Number of faulty nodes to create.
    pub count: usize,
    /// Spatial pattern.
    pub pattern: FaultPattern,
    /// RNG seed; equal seeds give equal fault sets.
    pub seed: u64,
}

impl FaultSpec {
    /// Uniform pattern with the given count and seed.
    pub fn uniform(count: usize, seed: u64) -> FaultSpec {
        FaultSpec {
            count,
            pattern: FaultPattern::Uniform,
            seed,
        }
    }

    /// Clustered pattern with the given count, cluster count and seed.
    pub fn clustered(count: usize, clusters: usize, seed: u64) -> FaultSpec {
        FaultSpec {
            count,
            pattern: FaultPattern::Clustered { clusters },
            seed,
        }
    }

    /// Inject into a 2-D mesh, never marking nodes in `protected` faulty.
    ///
    /// Returns the number of faults actually injected (smaller than
    /// `self.count` only when the mesh runs out of eligible nodes).
    pub fn inject_2d(&self, mesh: &mut Mesh2D, protected: &[C2]) -> usize {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let space = mesh.space();
        let eligible = eligible_indices_2d(mesh, protected);
        let chosen = match self.pattern {
            FaultPattern::Uniform => sample_uniform(&eligible, self.count, &mut rng),
            FaultPattern::Clustered { clusters } => sample_clustered(
                space.len(),
                &eligible,
                self.count,
                clusters,
                &mut rng,
                |i, out| space.for_neighbors4(i, |j| out.push(j)),
            ),
        };
        let n = chosen.len();
        for i in chosen {
            mesh.inject_fault(space.coord(i));
        }
        n
    }

    /// Inject into a 3-D mesh, never marking nodes in `protected` faulty.
    ///
    /// Returns the number of faults actually injected.
    pub fn inject_3d(&self, mesh: &mut Mesh3D, protected: &[C3]) -> usize {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let space = mesh.space();
        let eligible = eligible_indices_3d(mesh, protected);
        let chosen = match self.pattern {
            FaultPattern::Uniform => sample_uniform(&eligible, self.count, &mut rng),
            FaultPattern::Clustered { clusters } => sample_clustered(
                space.len(),
                &eligible,
                self.count,
                clusters,
                &mut rng,
                |i, out| space.for_neighbors6(i, |j| out.push(j)),
            ),
        };
        let n = chosen.len();
        for i in chosen {
            mesh.inject_fault(space.coord(i));
        }
        n
    }
}

/// Linear indices of the 2-D nodes eligible for injection: healthy and
/// not in `protected`, in node-iteration order. The order is part of the
/// reproducible RNG draw sequence, so every sampler caller must build its
/// candidate list through here (or reproduce this order exactly).
pub fn eligible_indices_2d(mesh: &Mesh2D, protected: &[C2]) -> Vec<usize> {
    let space = mesh.space();
    mesh.nodes()
        .filter(|c| !protected.contains(c) && mesh.is_healthy(*c))
        .map(|c| space.index(c))
        .collect()
}

/// 3-D twin of [`eligible_indices_2d`].
pub fn eligible_indices_3d(mesh: &Mesh3D, protected: &[C3]) -> Vec<usize> {
    let space = mesh.space();
    mesh.nodes()
        .filter(|c| !protected.contains(c) && mesh.is_healthy(*c))
        .map(|c| space.index(c))
        .collect()
}

/// Choose `count` distinct indices uniformly at random from `eligible`
/// (shuffle-and-truncate, preserving the historical draw sequence).
pub fn sample_uniform(eligible: &[usize], count: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut pool: Vec<usize> = eligible.to_vec();
    pool.shuffle(rng);
    pool.truncate(count.min(pool.len()));
    pool
}

/// Grow `count` faults from `clusters` random seed points by repeatedly
/// extending a random already-chosen fault to a random eligible neighbor.
///
/// `space_len` is the size of the node index space; `neighbors_of` pushes
/// the in-mesh neighbor indices of a node in fixed direction order (the
/// order matters: it is part of the reproducible RNG draw sequence).
pub fn sample_clustered(
    space_len: usize,
    eligible: &[usize],
    count: usize,
    clusters: usize,
    rng: &mut SmallRng,
    neighbors_of: impl Fn(usize, &mut Vec<usize>),
) -> Vec<usize> {
    if eligible.is_empty() || count == 0 {
        return Vec::new();
    }
    let eligible_set = NodeSet::from_indices(space_len, eligible.iter().copied());
    let mut chosen: Vec<usize> = Vec::with_capacity(count);
    let mut chosen_set = NodeSet::new(space_len);
    let clusters = clusters.max(1);

    // Seed points.
    for _ in 0..clusters.min(count) {
        // Retry a few times to avoid duplicate seeds; fall back to scan.
        let mut placed = false;
        for _ in 0..32 {
            let c = eligible[rng.gen_range(0..eligible.len())];
            if chosen_set.insert(c) {
                chosen.push(c);
                placed = true;
                break;
            }
        }
        if !placed {
            if let Some(&c) = eligible.iter().find(|&&c| !chosen_set.contains(c)) {
                chosen_set.insert(c);
                chosen.push(c);
            }
        }
    }

    // Growth: pick a random chosen fault, extend to a random eligible,
    // unchosen neighbor. If the frontier is exhausted fall back to uniform.
    let mut stall = 0usize;
    let mut nbrs: Vec<usize> = Vec::with_capacity(6);
    while chosen.len() < count.min(eligible.len()) {
        let base = chosen[rng.gen_range(0..chosen.len())];
        nbrs.clear();
        neighbors_of(base, &mut nbrs);
        nbrs.retain(|&c| eligible_set.contains(c) && !chosen_set.contains(c));
        if let Some(&next) = nbrs.as_slice().choose(rng) {
            chosen_set.insert(next);
            chosen.push(next);
            stall = 0;
        } else {
            stall += 1;
            if stall > 4 * chosen.len() + 64 {
                // All cluster surfaces blocked; fill remaining uniformly.
                for &c in eligible {
                    if chosen.len() >= count {
                        break;
                    }
                    if chosen_set.insert(c) {
                        chosen.push(c);
                    }
                }
                break;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn uniform_2d_is_reproducible_and_respects_protection() {
        let protected = [c2(0, 0), c2(9, 9)];
        let mut m1 = Mesh2D::new(10, 10);
        let mut m2 = Mesh2D::new(10, 10);
        let spec = FaultSpec::uniform(20, 42);
        assert_eq!(spec.inject_2d(&mut m1, &protected), 20);
        assert_eq!(spec.inject_2d(&mut m2, &protected), 20);
        assert_eq!(m1.faults(), m2.faults());
        assert!(m1.is_healthy(c2(0, 0)) && m1.is_healthy(c2(9, 9)));
        assert_eq!(m1.fault_count(), 20);
    }

    #[test]
    fn different_seeds_differ() {
        let mut m1 = Mesh2D::new(10, 10);
        let mut m2 = Mesh2D::new(10, 10);
        FaultSpec::uniform(20, 1).inject_2d(&mut m1, &[]);
        FaultSpec::uniform(20, 2).inject_2d(&mut m2, &[]);
        assert_ne!(m1.faults(), m2.faults());
    }

    #[test]
    fn count_saturates_at_eligible() {
        let mut m = Mesh2D::new(3, 3);
        let n = FaultSpec::uniform(100, 7).inject_2d(&mut m, &[c2(0, 0)]);
        assert_eq!(n, 8);
        assert!(m.is_healthy(c2(0, 0)));
    }

    #[test]
    fn clustered_2d_produces_connected_growth() {
        let mut m = Mesh2D::new(20, 20);
        let n = FaultSpec::clustered(30, 2, 9).inject_2d(&mut m, &[]);
        assert_eq!(n, 30);
        // Every fault is either a seed or adjacent to another fault —
        // verify no fault is fully isolated unless it is one of the 2 seeds.
        let isolated = m
            .faults()
            .iter()
            .filter(|&&c| m.neighbors(c).all(|v| !m.is_faulty(v)))
            .count();
        assert!(
            isolated <= 2,
            "at most the seeds may be isolated, got {isolated}"
        );
    }

    #[test]
    fn clustered_3d_reproducible() {
        let mut m1 = Mesh3D::kary(8);
        let mut m2 = Mesh3D::kary(8);
        let spec = FaultSpec::clustered(25, 3, 77);
        assert_eq!(spec.inject_3d(&mut m1, &[c3(0, 0, 0)]), 25);
        assert_eq!(spec.inject_3d(&mut m2, &[c3(0, 0, 0)]), 25);
        assert_eq!(m1.faults(), m2.faults());
        assert!(m1.is_healthy(c3(0, 0, 0)));
    }

    #[test]
    fn uniform_3d_counts() {
        let mut m = Mesh3D::kary(6);
        assert_eq!(FaultSpec::uniform(50, 5).inject_3d(&mut m, &[]), 50);
        assert_eq!(m.fault_count(), 50);
    }

    /// The hash-based sampler this module replaced, kept verbatim as the
    /// reference for the determinism regression below: same seed must give
    /// the same fault set under both representations.
    mod hash_reference {
        use super::*;
        use std::collections::HashSet;

        pub fn choose_uniform<C: Copy>(eligible: &[C], count: usize, rng: &mut SmallRng) -> Vec<C> {
            let mut pool: Vec<C> = eligible.to_vec();
            pool.shuffle(rng);
            pool.truncate(count.min(pool.len()));
            pool
        }

        pub fn choose_clustered<C: Copy + Eq + std::hash::Hash>(
            eligible: &[C],
            count: usize,
            clusters: usize,
            rng: &mut SmallRng,
            neighbors_of: impl Fn(C) -> Vec<C>,
        ) -> Vec<C> {
            if eligible.is_empty() || count == 0 {
                return Vec::new();
            }
            let eligible_set: HashSet<C> = eligible.iter().copied().collect();
            let mut chosen: Vec<C> = Vec::with_capacity(count);
            let mut chosen_set: HashSet<C> = HashSet::with_capacity(count);
            let clusters = clusters.max(1);
            for _ in 0..clusters.min(count) {
                let mut placed = false;
                for _ in 0..32 {
                    let c = eligible[rng.gen_range(0..eligible.len())];
                    if chosen_set.insert(c) {
                        chosen.push(c);
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    if let Some(&c) = eligible.iter().find(|c| !chosen_set.contains(c)) {
                        chosen_set.insert(c);
                        chosen.push(c);
                    }
                }
            }
            let mut stall = 0usize;
            while chosen.len() < count.min(eligible.len()) {
                let base = chosen[rng.gen_range(0..chosen.len())];
                let nbrs: Vec<C> = neighbors_of(base)
                    .into_iter()
                    .filter(|c| eligible_set.contains(c) && !chosen_set.contains(c))
                    .collect();
                if let Some(&next) = nbrs.as_slice().choose(rng) {
                    chosen_set.insert(next);
                    chosen.push(next);
                    stall = 0;
                } else {
                    stall += 1;
                    if stall > 4 * chosen.len() + 64 {
                        for &c in eligible {
                            if chosen.len() >= count {
                                break;
                            }
                            if chosen_set.insert(c) {
                                chosen.push(c);
                            }
                        }
                        break;
                    }
                }
            }
            chosen
        }
    }

    /// Determinism regression: the NodeSet-based sampler draws exactly the
    /// fault sets the hash-based sampler drew, for the same seeds, in both
    /// patterns and both dimensions (including injection order).
    #[test]
    fn sampling_matches_hash_reference() {
        for seed in [0u64, 1, 7, 42, 1234, 0xdead_beef] {
            for &(count, clusters) in &[(10usize, 1usize), (30, 3), (70, 5)] {
                // 2-D, uniform and clustered.
                let protected = [c2(0, 0), c2(11, 11)];
                let reference = Mesh2D::new(12, 12);
                let eligible: Vec<C2> = reference
                    .nodes()
                    .filter(|c| !protected.contains(c))
                    .collect();
                let mut rng = SmallRng::seed_from_u64(seed);
                let expect_uniform = hash_reference::choose_uniform(&eligible, count, &mut rng);
                let mut rng = SmallRng::seed_from_u64(seed);
                let expect_clustered =
                    hash_reference::choose_clustered(&eligible, count, clusters, &mut rng, |c| {
                        crate::dir::Dir2::ALL.iter().map(|&d| c.step(d)).collect()
                    });

                let mut m = Mesh2D::new(12, 12);
                FaultSpec::uniform(count, seed).inject_2d(&mut m, &protected);
                assert_eq!(m.faults(), expect_uniform, "2d uniform seed {seed}");
                let mut m = Mesh2D::new(12, 12);
                FaultSpec::clustered(count, clusters, seed).inject_2d(&mut m, &protected);
                assert_eq!(m.faults(), expect_clustered, "2d clustered seed {seed}");

                // 3-D, clustered (the pattern that exercised the hash sets).
                let reference3 = Mesh3D::kary(7);
                let eligible3: Vec<C3> = reference3.nodes().collect();
                let mut rng = SmallRng::seed_from_u64(seed);
                let expect3 =
                    hash_reference::choose_clustered(&eligible3, count, clusters, &mut rng, |c| {
                        crate::dir::Dir3::ALL.iter().map(|&d| c.step(d)).collect()
                    });
                let mut m3 = Mesh3D::kary(7);
                FaultSpec::clustered(count, clusters, seed).inject_3d(&mut m3, &[]);
                assert_eq!(m3.faults(), expect3, "3d clustered seed {seed}");
            }
        }
    }
}
