//! # mesh-topo — k-ary 2-D / 3-D mesh topology substrate
//!
//! This crate provides the network-topology substrate used by the MCC
//! fault-information-model reproduction (Jiang, Wu, Wang; ICPP 2005):
//!
//! * [`coord`] — integer lattice coordinates [`C2`] / [`C3`] with Manhattan
//!   distance and dominance orders,
//! * [`dir`] — axes and signed unit directions ([`Dir2`], [`Dir3`]),
//! * [`grid`] — dense row-major storage ([`Grid2`], [`Grid3`]) indexed by
//!   coordinates,
//! * [`mesh`] — the mesh networks themselves ([`Mesh2D`], [`Mesh3D`]): bounds,
//!   neighborhoods and fault sets,
//! * [`region`] — axis-aligned rectangles and boxes,
//! * [`frame`] — quadrant/octant reflection frames that canonicalize a
//!   source/destination pair so the destination dominates the source,
//! * [`faults`] — seeded random fault injection (uniform and clustered),
//! * [`nodeset`] — the flat node-state layer: linearized index spaces
//!   ([`NodeSpace2`], [`NodeSpace3`]), the packed [`NodeSet`] bitset and the
//!   dense [`NodeGrid`] value array that every hot mesh kernel runs on,
//! * [`path`] — routing paths and minimality/validity checks.
//!
//! In the paper's vocabulary this crate is the *network model* of Section 2:
//! the k-ary n-dimensional mesh, its node addresses and neighborhoods, and
//! the faulty-node sets the labelling process of Sections 3–4 classifies.
//!
//! Everything here is deterministic and allocation-conscious: grids are flat
//! `Vec`s, fault sets are packed bitsets, neighbor iteration never
//! allocates, and all random workloads are reproducible from a `u64` seed.
//!
//! # Examples
//!
//! Build a mesh, inject a reproducible fault pattern, and inspect the fault
//! set both coordinate-wise and through the flat [`NodeSet`] layer:
//!
//! ```
//! use mesh_topo::coord::c2;
//! use mesh_topo::{FaultSpec, Mesh2D};
//!
//! let mut mesh = Mesh2D::new(16, 16);
//! let injected = FaultSpec::uniform(12, 42).inject_2d(&mut mesh, &[c2(0, 0)]);
//! assert_eq!(injected, 12);
//! assert!(mesh.is_healthy(c2(0, 0)));
//!
//! // The coordinate API and the bitset agree.
//! let faults = mesh.fault_set();
//! assert_eq!(faults.len(), mesh.fault_count());
//! for &f in mesh.faults() {
//!     assert!(faults.contains(mesh.space().index(f)));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod dir;
pub mod faults;
pub mod frame;
pub mod grid;
pub mod mesh;
pub mod nodeset;
pub mod par;
pub mod path;
pub mod region;

pub use coord::{C2, C3};
pub use dir::{Axis2, Axis3, Dir2, Dir3};
pub use faults::{FaultPattern, FaultSpec};
pub use frame::{Frame2, Frame3};
pub use grid::{Grid2, Grid3};
pub use mesh::{Mesh2D, Mesh3D};
pub use nodeset::{NodeGrid, NodeSet, NodeSpace2, NodeSpace3};
pub use par::{detected_cores, Parallelism};
pub use path::{Path2, Path3};
pub use region::{Box3, Rect};
