//! # mesh-topo — k-ary 2-D / 3-D mesh topology substrate
//!
//! This crate provides the network-topology substrate used by the MCC
//! fault-information-model reproduction (Jiang, Wu, Wang; ICPP 2005):
//!
//! * [`coord`] — integer lattice coordinates [`C2`] / [`C3`] with Manhattan
//!   distance and dominance orders,
//! * [`dir`] — axes and signed unit directions ([`Dir2`], [`Dir3`]),
//! * [`grid`] — dense row-major storage ([`Grid2`], [`Grid3`]) indexed by
//!   coordinates,
//! * [`mesh`] — the mesh networks themselves ([`Mesh2D`], [`Mesh3D`]): bounds,
//!   neighborhoods and fault sets,
//! * [`region`] — axis-aligned rectangles and boxes,
//! * [`frame`] — quadrant/octant reflection frames that canonicalize a
//!   source/destination pair so the destination dominates the source,
//! * [`faults`] — seeded random fault injection (uniform and clustered),
//! * [`path`] — routing paths and minimality/validity checks.
//!
//! Everything here is deterministic and allocation-conscious: grids are flat
//! `Vec`s, neighbor iteration never allocates, and all random workloads are
//! reproducible from a `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod dir;
pub mod faults;
pub mod frame;
pub mod grid;
pub mod mesh;
pub mod path;
pub mod region;

pub use coord::{C2, C3};
pub use dir::{Axis2, Axis3, Dir2, Dir3};
pub use faults::{FaultPattern, FaultSpec};
pub use frame::{Frame2, Frame3};
pub use grid::{Grid2, Grid3};
pub use mesh::{Mesh2D, Mesh3D};
pub use path::{Path2, Path3};
pub use region::{Box3, Rect};
