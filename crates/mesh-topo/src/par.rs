//! Intra-mesh parallelism configuration and partition helpers.
//!
//! Every parallel kernel in the workspace — the tiled labelling sweeps in
//! `fault-model`, the partitioned round dispatch in `sim-net`, the
//! surface-flood fan-out in `mcc-routing` and the seed sweeps in
//! `mcc-bench` — takes its thread budget from one [`Parallelism`] value
//! threaded down from the scenario layer. The type deliberately carries
//! *intent* (`0` = use every detected core) rather than a resolved count,
//! so a scenario file stays machine-independent; [`Parallelism::resolve`]
//! pins it to a concrete thread count at the call site, and
//! [`Parallelism::from_env`] lets the `MCC_THREADS` environment variable
//! override whatever the scenario asked for (CI forces single-threaded
//! runs this way).
//!
//! All parallel kernels are **pinned bit-for-bit equal** to their
//! sequential twins, so the thread count is a pure performance knob:
//! tables, goldens and `RunStats` never depend on it.

use std::ops::Range;

/// An intra-mesh thread budget. `threads == 0` means "all detected cores".
///
/// The value is plain data (no handle to a pool): kernels spawn scoped
/// threads on demand, so a `Parallelism` can be stored in configs and
/// caches freely.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Parallelism {
    /// Requested thread count; `0` resolves to the detected core count.
    pub threads: usize,
}

impl Default for Parallelism {
    /// Defaults to sequential — parallelism is strictly opt-in, so code
    /// that never asks for threads behaves exactly as before.
    fn default() -> Parallelism {
        Parallelism::SEQ
    }
}

impl Parallelism {
    /// Sequential execution (one thread), the default everywhere.
    pub const SEQ: Parallelism = Parallelism { threads: 1 };

    /// An explicit thread budget (`0` = all detected cores).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism { threads }
    }

    /// Use every core the machine reports.
    pub fn auto() -> Parallelism {
        Parallelism { threads: 0 }
    }

    /// Apply the `MCC_THREADS` environment override: a parseable value
    /// replaces this budget (`0` = all cores), anything else leaves it
    /// untouched. The bench runner and CI call this so golden regeneration
    /// can be forced single-threaded without editing scenarios.
    pub fn from_env(self) -> Parallelism {
        match std::env::var("MCC_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => Parallelism { threads: n },
                Err(_) => self,
            },
            Err(_) => self,
        }
    }

    /// The concrete thread count to use: the explicit budget, or the
    /// detected core count when the budget is `0`. Always at least 1.
    pub fn resolve(self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            detected_cores()
        }
    }
}

/// Number of hardware threads the platform reports (at least 1).
///
/// Recorded in every `BENCH_*.json` snapshot so perf trajectories are
/// comparable across machines.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `0..items` into at most `want` contiguous, non-empty, near-equal
/// ranges (fewer when `items < want`). The tile partition used by the
/// wavefront sweeps (rows in 2-D, planes in 3-D) and the sim-net shard
/// dispatch: contiguity is what lets parallel results merge back in index
/// order, bit-identical to a sequential pass.
pub fn bands(items: usize, want: usize) -> Vec<Range<usize>> {
    if items == 0 || want == 0 {
        return Vec::new();
    }
    let n = want.min(items);
    let base = items / n;
    let extra = items % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for k in 0..n {
        let len = base + usize::from(k < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, items);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_budget_resolves_to_itself() {
        assert_eq!(Parallelism::new(7).resolve(), 7);
        assert_eq!(Parallelism::SEQ.resolve(), 1);
    }

    #[test]
    fn auto_budget_resolves_to_detected_cores() {
        assert_eq!(Parallelism::auto().resolve(), detected_cores());
        assert!(detected_cores() >= 1);
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(Parallelism::default(), Parallelism::SEQ);
    }

    #[test]
    fn bands_cover_exactly_and_stay_near_equal() {
        for items in [1usize, 2, 5, 63, 64, 65, 1000] {
            for want in [1usize, 2, 3, 7, 16] {
                let b = bands(items, want);
                assert_eq!(b.len(), want.min(items), "{items}/{want}");
                assert_eq!(b[0].start, 0);
                assert_eq!(b.last().unwrap().end, items);
                for w in b.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                let (min, max) = b
                    .iter()
                    .map(|r| r.len())
                    .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
                assert!(max - min <= 1, "near-equal: {items}/{want}");
                assert!(min >= 1, "non-empty");
            }
        }
    }

    #[test]
    fn bands_degenerate_inputs() {
        assert!(bands(0, 4).is_empty());
        assert!(bands(4, 0).is_empty());
        assert_eq!(bands(1, 1), vec![0..1]);
    }
}
