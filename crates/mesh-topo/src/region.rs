//! Axis-aligned rectangles and boxes (inclusive bounds).
//!
//! Used for the Region of Minimal Paths (RMP) between a source and a
//! destination, for rectangular/cuboid faulty-block baselines, and for the
//! bounding extents of MCC fault regions.

use serde::{Deserialize, Serialize};

use crate::coord::{C2, C3};

/// An axis-aligned rectangle with **inclusive** bounds `[x0..=x1] × [y0..=y1]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x.
    pub x0: i32,
    /// Smallest y.
    pub y0: i32,
    /// Largest x (inclusive).
    pub x1: i32,
    /// Largest y (inclusive).
    pub y1: i32,
}

/// An axis-aligned box with **inclusive** bounds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Box3 {
    /// Smallest corner.
    pub lo: C3,
    /// Largest corner (inclusive).
    pub hi: C3,
}

impl Rect {
    /// The rectangle spanned by two (unordered) corner points.
    pub fn spanning(a: C2, b: C2) -> Rect {
        Rect {
            x0: a.x.min(b.x),
            y0: a.y.min(b.y),
            x1: a.x.max(b.x),
            y1: a.y.max(b.y),
        }
    }

    /// The degenerate rectangle containing only `c`.
    pub fn point(c: C2) -> Rect {
        Rect::spanning(c, c)
    }

    /// True if `c` lies inside (bounds inclusive).
    #[inline]
    pub fn contains(&self, c: C2) -> bool {
        c.x >= self.x0 && c.x <= self.x1 && c.y >= self.y0 && c.y <= self.y1
    }

    /// Grow to include `c`.
    pub fn include(&mut self, c: C2) {
        self.x0 = self.x0.min(c.x);
        self.y0 = self.y0.min(c.y);
        self.x1 = self.x1.max(c.x);
        self.y1 = self.y1.max(c.y);
    }

    /// True if the two rectangles share at least one cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// True if the rectangles intersect or touch (are within Chebyshev
    /// distance one) — the merge criterion for rectangular faulty blocks.
    pub fn touches(&self, other: &Rect) -> bool {
        self.x0 - 1 <= other.x1
            && other.x0 - 1 <= self.x1
            && self.y0 - 1 <= other.y1
            && other.y0 - 1 <= self.y1
    }

    /// The smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Width × height.
    pub fn area(&self) -> u64 {
        let w = (self.x1 - self.x0 + 1).max(0) as u64;
        let h = (self.y1 - self.y0 + 1).max(0) as u64;
        w * h
    }

    /// Iterate all contained cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = C2> + '_ {
        let (x0, x1, y0, y1) = (self.x0, self.x1, self.y0, self.y1);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| C2 { x, y }))
    }
}

impl Box3 {
    /// The box spanned by two (unordered) corner points.
    pub fn spanning(a: C3, b: C3) -> Box3 {
        Box3 {
            lo: C3 {
                x: a.x.min(b.x),
                y: a.y.min(b.y),
                z: a.z.min(b.z),
            },
            hi: C3 {
                x: a.x.max(b.x),
                y: a.y.max(b.y),
                z: a.z.max(b.z),
            },
        }
    }

    /// The degenerate box containing only `c`.
    pub fn point(c: C3) -> Box3 {
        Box3::spanning(c, c)
    }

    /// True if `c` lies inside (bounds inclusive).
    #[inline]
    pub fn contains(&self, c: C3) -> bool {
        self.lo.dominated_by(c) && c.dominated_by(self.hi)
    }

    /// Grow to include `c`.
    pub fn include(&mut self, c: C3) {
        self.lo.x = self.lo.x.min(c.x);
        self.lo.y = self.lo.y.min(c.y);
        self.lo.z = self.lo.z.min(c.z);
        self.hi.x = self.hi.x.max(c.x);
        self.hi.y = self.hi.y.max(c.y);
        self.hi.z = self.hi.z.max(c.z);
    }

    /// True if the two boxes share at least one cell.
    pub fn intersects(&self, other: &Box3) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
            && self.lo.z <= other.hi.z
            && other.lo.z <= self.hi.z
    }

    /// True if the boxes intersect or touch (within Chebyshev distance one) —
    /// the merge criterion for cuboid faulty blocks.
    pub fn touches(&self, other: &Box3) -> bool {
        self.lo.x - 1 <= other.hi.x
            && other.lo.x - 1 <= self.hi.x
            && self.lo.y - 1 <= other.hi.y
            && other.lo.y - 1 <= self.hi.y
            && self.lo.z - 1 <= other.hi.z
            && other.lo.z - 1 <= self.hi.z
    }

    /// The smallest box containing both.
    pub fn union(&self, other: &Box3) -> Box3 {
        Box3 {
            lo: C3 {
                x: self.lo.x.min(other.lo.x),
                y: self.lo.y.min(other.lo.y),
                z: self.lo.z.min(other.lo.z),
            },
            hi: C3 {
                x: self.hi.x.max(other.hi.x),
                y: self.hi.y.max(other.hi.y),
                z: self.hi.z.max(other.hi.z),
            },
        }
    }

    /// Number of cells in the box.
    pub fn volume(&self) -> u64 {
        let dx = (self.hi.x - self.lo.x + 1).max(0) as u64;
        let dy = (self.hi.y - self.lo.y + 1).max(0) as u64;
        let dz = (self.hi.z - self.lo.z + 1).max(0) as u64;
        dx * dy * dz
    }

    /// Iterate all contained cells (x fastest).
    pub fn iter(&self) -> impl Iterator<Item = C3> + '_ {
        let (lo, hi) = (self.lo, self.hi);
        (lo.z..=hi.z).flat_map(move |z| {
            (lo.y..=hi.y).flat_map(move |y| (lo.x..=hi.x).map(move |x| C3 { x, y, z }))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn rect_spanning_orders_corners() {
        let r = Rect::spanning(c2(5, 1), c2(2, 4));
        assert_eq!(
            r,
            Rect {
                x0: 2,
                y0: 1,
                x1: 5,
                y1: 4
            }
        );
        assert!(r.contains(c2(2, 1)));
        assert!(r.contains(c2(5, 4)));
        assert!(!r.contains(c2(6, 4)));
        assert_eq!(r.area(), 16);
        assert_eq!(r.iter().count(), 16);
    }

    #[test]
    fn rect_touch_vs_intersect() {
        let a = Rect::spanning(c2(0, 0), c2(2, 2));
        let b = Rect::spanning(c2(3, 0), c2(4, 2)); // adjacent, not overlapping
        let c = Rect::spanning(c2(5, 0), c2(6, 2)); // gap of one column
        assert!(!a.intersects(&b));
        assert!(a.touches(&b));
        assert!(!a.touches(&c));
        // diagonal touch counts
        let d = Rect::spanning(c2(3, 3), c2(4, 4));
        assert!(a.touches(&d));
    }

    #[test]
    fn rect_union_include() {
        let mut r = Rect::point(c2(3, 3));
        r.include(c2(1, 5));
        assert_eq!(
            r,
            Rect {
                x0: 1,
                y0: 3,
                x1: 3,
                y1: 5
            }
        );
        let u = r.union(&Rect::point(c2(7, 0)));
        assert_eq!(
            u,
            Rect {
                x0: 1,
                y0: 0,
                x1: 7,
                y1: 5
            }
        );
    }

    #[test]
    fn box_basics() {
        let b = Box3::spanning(c3(4, 0, 2), c3(1, 3, 0));
        assert_eq!(b.lo, c3(1, 0, 0));
        assert_eq!(b.hi, c3(4, 3, 2));
        assert_eq!(b.volume(), 4 * 4 * 3);
        assert_eq!(b.iter().count() as u64, b.volume());
        assert!(b.contains(c3(2, 2, 1)));
        assert!(!b.contains(c3(2, 4, 1)));
    }

    #[test]
    fn box_touch_merge_semantics() {
        let a = Box3::spanning(c3(0, 0, 0), c3(1, 1, 1));
        let b = Box3::spanning(c3(2, 0, 0), c3(3, 1, 1));
        assert!(!a.intersects(&b));
        assert!(a.touches(&b));
        let u = a.union(&b);
        assert!(u.contains(c3(3, 1, 1)) && u.contains(c3(0, 0, 0)));
        let far = Box3::point(c3(5, 5, 5));
        assert!(!a.touches(&far));
    }
}
