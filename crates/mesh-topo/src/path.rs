//! Routing paths and their validity / minimality checks.
//!
//! A routing process is *minimal* if the length of the path from source `s`
//! to destination `d` equals the Manhattan distance `D(s, d)`. [`Path2`] and
//! [`Path3`] record the visited nodes and provide the checks the test-suite
//! and the experiment harness rely on.

use serde::{Deserialize, Serialize};

use crate::coord::{C2, C3};
use crate::mesh::{Mesh2D, Mesh3D};

/// A (possibly partial) route through a 2-D mesh: the sequence of visited
/// nodes, starting at the source.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Path2 {
    nodes: Vec<C2>,
}

/// A (possibly partial) route through a 3-D mesh.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Path3 {
    nodes: Vec<C3>,
}

impl Path2 {
    /// A path consisting of only the source node.
    pub fn start(s: C2) -> Path2 {
        Path2 { nodes: vec![s] }
    }

    /// Construct from a complete node sequence.
    pub fn from_nodes(nodes: Vec<C2>) -> Path2 {
        Path2 { nodes }
    }

    /// Append the next visited node.
    pub fn push(&mut self, c: C2) {
        self.nodes.push(c);
    }

    /// Visited nodes, source first.
    pub fn nodes(&self) -> &[C2] {
        &self.nodes
    }

    /// Number of hops (edges) taken.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The node the route currently sits on.
    pub fn head(&self) -> Option<C2> {
        self.nodes.last().copied()
    }

    /// True if consecutive nodes are linked in `mesh` (wrap links count on
    /// a torus) and all nodes lie in `mesh` and are healthy.
    pub fn is_valid(&self, mesh: &Mesh2D) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        if !self.nodes.iter().all(|&c| mesh.is_healthy(c)) {
            return false;
        }
        self.nodes
            .windows(2)
            .all(|w| mesh.are_neighbors(w[0], w[1]))
    }

    /// True if this is a complete **minimal** route from `s` to `d`: valid,
    /// starts at `s`, ends at `d`, and takes exactly `D(s, d)` hops (the
    /// topology-aware distance: Manhattan on a mesh, Lee on a torus).
    pub fn is_minimal(&self, mesh: &Mesh2D, s: C2, d: C2) -> bool {
        self.is_valid(mesh)
            && self.nodes.first() == Some(&s)
            && self.nodes.last() == Some(&d)
            && self.hops() as u32 == mesh.dist(s, d)
    }
}

impl Path3 {
    /// A path consisting of only the source node.
    pub fn start(s: C3) -> Path3 {
        Path3 { nodes: vec![s] }
    }

    /// Construct from a complete node sequence.
    pub fn from_nodes(nodes: Vec<C3>) -> Path3 {
        Path3 { nodes }
    }

    /// Append the next visited node.
    pub fn push(&mut self, c: C3) {
        self.nodes.push(c);
    }

    /// Visited nodes, source first.
    pub fn nodes(&self) -> &[C3] {
        &self.nodes
    }

    /// Number of hops (edges) taken.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// The node the route currently sits on.
    pub fn head(&self) -> Option<C3> {
        self.nodes.last().copied()
    }

    /// True if consecutive nodes are linked in `mesh` (wrap links count on
    /// a torus) and all nodes lie in `mesh` and are healthy.
    pub fn is_valid(&self, mesh: &Mesh3D) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        if !self.nodes.iter().all(|&c| mesh.is_healthy(c)) {
            return false;
        }
        self.nodes
            .windows(2)
            .all(|w| mesh.are_neighbors(w[0], w[1]))
    }

    /// True if this is a complete **minimal** route from `s` to `d` under
    /// the topology-aware distance.
    pub fn is_minimal(&self, mesh: &Mesh3D, s: C3, d: C3) -> bool {
        self.is_valid(mesh)
            && self.nodes.first() == Some(&s)
            && self.nodes.last() == Some(&d)
            && self.hops() as u32 == mesh.dist(s, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn minimal_path_2d() {
        let mesh = Mesh2D::new(5, 5);
        let p = Path2::from_nodes(vec![c2(0, 0), c2(1, 0), c2(1, 1), c2(2, 1)]);
        assert!(p.is_valid(&mesh));
        assert!(p.is_minimal(&mesh, c2(0, 0), c2(2, 1)));
        assert_eq!(p.hops(), 3);
    }

    #[test]
    fn non_minimal_detour_detected() {
        let mesh = Mesh2D::new(5, 5);
        // Detour: goes up then back down.
        let p = Path2::from_nodes(vec![c2(0, 0), c2(0, 1), c2(0, 0), c2(1, 0)]);
        assert!(p.is_valid(&mesh));
        assert!(!p.is_minimal(&mesh, c2(0, 0), c2(1, 0)));
    }

    #[test]
    fn path_through_fault_invalid() {
        let mut mesh = Mesh2D::new(5, 5);
        mesh.inject_fault(c2(1, 0));
        let p = Path2::from_nodes(vec![c2(0, 0), c2(1, 0), c2(2, 0)]);
        assert!(!p.is_valid(&mesh));
    }

    #[test]
    fn teleporting_path_invalid() {
        let mesh = Mesh3D::kary(4);
        let p = Path3::from_nodes(vec![c3(0, 0, 0), c3(1, 1, 0)]);
        assert!(!p.is_valid(&mesh));
    }

    #[test]
    fn minimal_path_3d() {
        let mesh = Mesh3D::kary(4);
        let p = Path3::from_nodes(vec![
            c3(0, 0, 0),
            c3(0, 0, 1),
            c3(0, 1, 1),
            c3(1, 1, 1),
            c3(2, 1, 1),
        ]);
        assert!(p.is_minimal(&mesh, c3(0, 0, 0), c3(2, 1, 1)));
    }

    #[test]
    fn incremental_building() {
        let mut p = Path3::start(c3(0, 0, 0));
        assert_eq!(p.hops(), 0);
        assert_eq!(p.head(), Some(c3(0, 0, 0)));
        p.push(c3(1, 0, 0));
        assert_eq!(p.hops(), 1);
        assert_eq!(p.head(), Some(c3(1, 0, 0)));
    }

    #[test]
    fn empty_path_is_invalid() {
        let mesh = Mesh2D::new(3, 3);
        assert!(!Path2::default().is_valid(&mesh));
    }
}
