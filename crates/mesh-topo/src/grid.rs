//! Dense per-node storage, indexed by coordinates.
//!
//! `Grid2<T>` / `Grid3<T>` are flat row-major `Vec`s with stride arithmetic —
//! the workhorse containers for node status, labels, distances and per-node
//! protocol state. Indexing with an out-of-bounds coordinate panics (it is a
//! logic error); use [`Grid2::get`] / [`Grid3::get`] for boundary probing.

use crate::coord::{C2, C3};

/// Dense `width × height` storage indexed by [`C2`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Grid2<T> {
    width: i32,
    height: i32,
    data: Vec<T>,
}

/// Dense `nx × ny × nz` storage indexed by [`C3`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Grid3<T> {
    nx: i32,
    ny: i32,
    nz: i32,
    data: Vec<T>,
}

impl<T: Clone> Grid2<T> {
    /// Create a grid with every cell set to `fill`.
    ///
    /// # Panics
    /// If `width` or `height` is not positive.
    pub fn new(width: i32, height: i32, fill: T) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Grid2 {
            width,
            height,
            data: vec![fill; (width as usize) * (height as usize)],
        }
    }

    /// Reset every cell to `fill` without reallocating.
    pub fn fill(&mut self, fill: T) {
        self.data.iter_mut().for_each(|c| *c = fill.clone());
    }
}

impl<T> Grid2<T> {
    /// Grid width (extent along X).
    #[inline]
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Grid height (extent along Y).
    #[inline]
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the grid has zero cells (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if `c` addresses a cell of this grid.
    #[inline]
    pub fn contains(&self, c: C2) -> bool {
        c.x >= 0 && c.y >= 0 && c.x < self.width && c.y < self.height
    }

    #[inline]
    fn idx(&self, c: C2) -> usize {
        debug_assert!(
            self.contains(c),
            "coordinate {c:?} outside {}x{} grid",
            self.width,
            self.height
        );
        (c.y as usize) * (self.width as usize) + (c.x as usize)
    }

    /// Borrow the cell at `c`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, c: C2) -> Option<&T> {
        if self.contains(c) {
            Some(&self.data[self.idx(c)])
        } else {
            None
        }
    }

    /// Mutably borrow the cell at `c`, or `None` if out of bounds.
    #[inline]
    pub fn get_mut(&mut self, c: C2) -> Option<&mut T> {
        if self.contains(c) {
            let i = self.idx(c);
            Some(&mut self.data[i])
        } else {
            None
        }
    }

    /// Iterate over all coordinates in row-major (y-outer) order.
    pub fn coords(&self) -> impl Iterator<Item = C2> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| C2 { x, y }))
    }

    /// Iterate `(coordinate, &value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (C2, &T)> + '_ {
        self.coords().zip(self.data.iter())
    }

    /// The raw backing slice in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> core::ops::Index<C2> for Grid2<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: C2) -> &T {
        assert!(
            self.contains(c),
            "coordinate {c:?} outside {}x{} grid",
            self.width,
            self.height
        );
        &self.data[self.idx(c)]
    }
}

impl<T> core::ops::IndexMut<C2> for Grid2<T> {
    #[inline]
    fn index_mut(&mut self, c: C2) -> &mut T {
        assert!(
            self.contains(c),
            "coordinate {c:?} outside {}x{} grid",
            self.width,
            self.height
        );
        let i = self.idx(c);
        &mut self.data[i]
    }
}

impl<T: Clone> Grid3<T> {
    /// Create a grid with every cell set to `fill`.
    ///
    /// # Panics
    /// If any dimension is not positive.
    pub fn new(nx: i32, ny: i32, nz: i32, fill: T) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        Grid3 {
            nx,
            ny,
            nz,
            data: vec![fill; (nx as usize) * (ny as usize) * (nz as usize)],
        }
    }

    /// Reset every cell to `fill` without reallocating.
    pub fn fill(&mut self, fill: T) {
        self.data.iter_mut().for_each(|c| *c = fill.clone());
    }
}

impl<T> Grid3<T> {
    /// Extent along X.
    #[inline]
    pub fn nx(&self) -> i32 {
        self.nx
    }

    /// Extent along Y.
    #[inline]
    pub fn ny(&self) -> i32 {
        self.ny
    }

    /// Extent along Z.
    #[inline]
    pub fn nz(&self) -> i32 {
        self.nz
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the grid has zero cells (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if `c` addresses a cell of this grid.
    #[inline]
    pub fn contains(&self, c: C3) -> bool {
        c.x >= 0 && c.y >= 0 && c.z >= 0 && c.x < self.nx && c.y < self.ny && c.z < self.nz
    }

    #[inline]
    fn idx(&self, c: C3) -> usize {
        debug_assert!(self.contains(c));
        ((c.z as usize) * (self.ny as usize) + (c.y as usize)) * (self.nx as usize) + (c.x as usize)
    }

    /// Borrow the cell at `c`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, c: C3) -> Option<&T> {
        if self.contains(c) {
            Some(&self.data[self.idx(c)])
        } else {
            None
        }
    }

    /// Mutably borrow the cell at `c`, or `None` if out of bounds.
    #[inline]
    pub fn get_mut(&mut self, c: C3) -> Option<&mut T> {
        if self.contains(c) {
            let i = self.idx(c);
            Some(&mut self.data[i])
        } else {
            None
        }
    }

    /// Iterate over all coordinates (x fastest, then y, then z).
    pub fn coords(&self) -> impl Iterator<Item = C3> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nz).flat_map(move |z| (0..ny).flat_map(move |y| (0..nx).map(move |x| C3 { x, y, z })))
    }

    /// Iterate `(coordinate, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (C3, &T)> + '_ {
        self.coords().zip(self.data.iter())
    }

    /// The raw backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> core::ops::Index<C3> for Grid3<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: C3) -> &T {
        assert!(
            self.contains(c),
            "coordinate {c:?} outside {}x{}x{} grid",
            self.nx,
            self.ny,
            self.nz
        );
        &self.data[self.idx(c)]
    }
}

impl<T> core::ops::IndexMut<C3> for Grid3<T> {
    #[inline]
    fn index_mut(&mut self, c: C3) -> &mut T {
        assert!(
            self.contains(c),
            "coordinate {c:?} outside {}x{}x{} grid",
            self.nx,
            self.ny,
            self.nz
        );
        let i = self.idx(c);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn grid2_roundtrip() {
        let mut g = Grid2::new(4, 3, 0u32);
        assert_eq!(g.len(), 12);
        g[c2(3, 2)] = 7;
        g[c2(0, 0)] = 1;
        assert_eq!(g[c2(3, 2)], 7);
        assert_eq!(g.get(c2(4, 2)), None);
        assert_eq!(g.get(c2(-1, 0)), None);
        assert_eq!(g.iter().filter(|&(_, &v)| v != 0).count(), 2);
    }

    #[test]
    fn grid3_roundtrip() {
        let mut g = Grid3::new(3, 4, 5, 0u32);
        assert_eq!(g.len(), 60);
        g[c3(2, 3, 4)] = 9;
        assert_eq!(g[c3(2, 3, 4)], 9);
        assert_eq!(g.get(c3(3, 0, 0)), None);
        assert_eq!(g.coords().count(), 60);
        // coords and data iterate in the same order
        for (c, &v) in g.iter() {
            assert_eq!(v, g[c]);
        }
    }

    #[test]
    fn distinct_cells_have_distinct_indices() {
        let g = Grid3::new(5, 6, 7, ());
        let mut seen = std::collections::HashSet::new();
        for c in g.coords() {
            assert!(seen.insert(g.idx(c)));
        }
        assert_eq!(seen.len(), g.len());
    }

    #[test]
    #[should_panic]
    fn grid2_oob_panics() {
        let g = Grid2::new(2, 2, 0);
        let _ = g[c2(2, 0)];
    }

    #[test]
    fn fill_resets() {
        let mut g = Grid2::new(2, 2, 1);
        g[c2(1, 1)] = 5;
        g.fill(2);
        assert!(g.as_slice().iter().all(|&v| v == 2));
    }
}
