//! The mesh networks themselves: bounds, links and fault sets.
//!
//! A k-ary n-dimensional mesh connects nodes along each dimension as a linear
//! array (no wrap-around); the torus variants ([`Mesh2D::torus`],
//! [`Mesh3D::torus`]) close every axis on itself, so wrap links exist and
//! every node has the full neighborhood. Node faults are the unit of
//! failure; link faults are modelled, as in the paper, by disabling the
//! adjacent nodes.
//!
//! Fault membership is a packed [`NodeSet`] over the mesh's linear
//! [`NodeSpace2`]/[`NodeSpace3`] index space — `is_faulty` is a shift and
//! mask, and whole-mesh consumers (labelling, component discovery, fault
//! sampling) can grab the bitset directly via [`Mesh2D::fault_set`] /
//! [`Mesh3D::fault_set`] instead of re-deriving it per call.

use crate::coord::{C2, C3};
use crate::dir::{Dir2, Dir3};
use crate::nodeset::{NodeSet, NodeSpace2, NodeSpace3};
use crate::region::{Box3, Rect};

/// A `width × height` 2-D mesh with a set of faulty nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mesh2D {
    space: NodeSpace2,
    faulty: NodeSet,
    fault_list: Vec<C2>,
}

/// An `nx × ny × nz` 3-D mesh with a set of faulty nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mesh3D {
    space: NodeSpace3,
    faulty: NodeSet,
    fault_list: Vec<C3>,
}

impl Mesh2D {
    /// A fault-free `width × height` mesh.
    ///
    /// # Panics
    /// If either dimension is not positive.
    pub fn new(width: i32, height: i32) -> Self {
        let space = NodeSpace2::new(width, height);
        Mesh2D {
            space,
            faulty: NodeSet::new(space.len()),
            fault_list: Vec::new(),
        }
    }

    /// A `k × k` mesh (the paper's "k-ary 2-dimensional mesh").
    pub fn kary(k: i32) -> Self {
        Mesh2D::new(k, k)
    }

    /// A fault-free `width × height` torus: the wrap-around variant of the
    /// mesh, every axis closing on itself.
    ///
    /// # Panics
    /// If either dimension is smaller than 3 (see [`NodeSpace2::torus`]).
    pub fn torus(width: i32, height: i32) -> Self {
        let space = NodeSpace2::torus(width, height);
        Mesh2D {
            space,
            faulty: NodeSet::new(space.len()),
            fault_list: Vec::new(),
        }
    }

    /// A `k × k` torus (the "k-ary 2-cube" of the routing literature).
    pub fn torus_kary(k: i32) -> Self {
        Mesh2D::torus(k, k)
    }

    /// True if this network wraps around (it is a torus).
    #[inline]
    pub fn wraps(&self) -> bool {
        self.space.wraps()
    }

    /// Topology-aware distance between two nodes: Manhattan on a mesh, Lee
    /// distance (per-axis shorter arc) on a torus.
    #[inline]
    pub fn dist(&self, a: C2, b: C2) -> u32 {
        self.space.dist(a, b)
    }

    /// True if both coordinates address nodes of this network and the nodes
    /// share a link (wrap links included on a torus).
    pub fn are_neighbors(&self, a: C2, b: C2) -> bool {
        self.contains(a) && self.contains(b) && self.space.dist(a, b) == 1
    }

    /// Width (extent along X).
    #[inline]
    pub fn width(&self) -> i32 {
        self.space.width()
    }

    /// Height (extent along Y).
    #[inline]
    pub fn height(&self) -> i32 {
        self.space.height()
    }

    /// Total number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.space.len()
    }

    /// The linear index space of this mesh's nodes.
    #[inline]
    pub fn space(&self) -> NodeSpace2 {
        self.space
    }

    /// True if `c` addresses a node of this mesh.
    #[inline]
    pub fn contains(&self, c: C2) -> bool {
        self.space.contains(c)
    }

    /// The full extent of the mesh as an inclusive rectangle.
    pub fn bounds(&self) -> Rect {
        Rect {
            x0: 0,
            y0: 0,
            x1: self.width() - 1,
            y1: self.height() - 1,
        }
    }

    /// Mark `c` faulty. Returns `true` if the node was previously healthy.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    pub fn inject_fault(&mut self, c: C2) -> bool {
        assert!(self.contains(c), "fault injected outside mesh: {c:?}");
        if self.faulty.insert(self.space.index(c)) {
            self.fault_list.push(c);
            true
        } else {
            false
        }
    }

    /// Return `c` to healthy. Returns `true` if the node was previously
    /// faulty. The fault list keeps the injection order of the survivors.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    pub fn heal_fault(&mut self, c: C2) -> bool {
        assert!(self.contains(c), "fault healed outside mesh: {c:?}");
        if self.faulty.remove(self.space.index(c)) {
            self.fault_list.retain(|&f| f != c);
            true
        } else {
            false
        }
    }

    /// Batch-inject every node of `delta` (a bitset over [`Mesh2D::space`]).
    /// Already-faulty nodes are left untouched; new faults are appended to
    /// the fault list in index order. Returns how many nodes flipped.
    ///
    /// # Panics
    /// If `delta` is not sized for this mesh's node space.
    pub fn inject_fault_set(&mut self, delta: &NodeSet) -> usize {
        assert_eq!(
            delta.capacity(),
            self.space.len(),
            "delta/mesh size mismatch"
        );
        let mut flipped = 0;
        for i in delta.iter() {
            if self.faulty.insert(i) {
                self.fault_list.push(self.space.coord(i));
                flipped += 1;
            }
        }
        flipped
    }

    /// Batch-heal every node of `delta` (a bitset over [`Mesh2D::space`])
    /// in one pass over the fault list (injection order of the survivors is
    /// preserved). Healthy members of `delta` are ignored. Returns how many
    /// nodes flipped.
    ///
    /// # Panics
    /// If `delta` is not sized for this mesh's node space.
    pub fn heal_fault_set(&mut self, delta: &NodeSet) -> usize {
        assert_eq!(
            delta.capacity(),
            self.space.len(),
            "delta/mesh size mismatch"
        );
        let before = self.fault_list.len();
        let space = self.space;
        self.fault_list.retain(|&f| !delta.contains(space.index(f)));
        self.faulty.difference_with(delta);
        before - self.fault_list.len()
    }

    /// True if the node exists and is faulty.
    #[inline]
    pub fn is_faulty(&self, c: C2) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| self.faulty.contains(i))
    }

    /// True if the node exists and is healthy.
    #[inline]
    pub fn is_healthy(&self, c: C2) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| !self.faulty.contains(i))
    }

    /// All injected faults, in injection order.
    #[inline]
    pub fn faults(&self) -> &[C2] {
        &self.fault_list
    }

    /// The fault set as a packed bitset over [`Mesh2D::space`].
    #[inline]
    pub fn fault_set(&self) -> &NodeSet {
        &self.faulty
    }

    /// Number of faulty nodes.
    #[inline]
    pub fn fault_count(&self) -> usize {
        self.fault_list.len()
    }

    /// Neighbors of `c`, in [`Dir2::ALL`] order: 2–4 of them on a mesh
    /// (border nodes lose probes), always 4 on a torus (steps wrap).
    pub fn neighbors(&self, c: C2) -> impl Iterator<Item = C2> + '_ {
        let space = self.space;
        Dir2::ALL
            .into_iter()
            .map(move |d| {
                if space.wraps() {
                    space.wrap_coord(c.step(d))
                } else {
                    c.step(d)
                }
            })
            .filter(|&n| self.contains(n))
    }

    /// Iterate all node coordinates in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = C2> + '_ {
        self.space.coords()
    }

    /// Remove all faults.
    pub fn clear_faults(&mut self) {
        self.faulty.clear();
        self.fault_list.clear();
    }
}

impl Mesh3D {
    /// A fault-free `nx × ny × nz` mesh.
    ///
    /// # Panics
    /// If any dimension is not positive.
    pub fn new(nx: i32, ny: i32, nz: i32) -> Self {
        let space = NodeSpace3::new(nx, ny, nz);
        Mesh3D {
            space,
            faulty: NodeSet::new(space.len()),
            fault_list: Vec::new(),
        }
    }

    /// A `k × k × k` mesh (the paper's "k-ary 3-dimensional mesh").
    pub fn kary(k: i32) -> Self {
        Mesh3D::new(k, k, k)
    }

    /// A fault-free `nx × ny × nz` torus: the wrap-around variant of the
    /// mesh, every axis closing on itself.
    ///
    /// # Panics
    /// If any dimension is smaller than 3 (see [`NodeSpace3::torus`]).
    pub fn torus(nx: i32, ny: i32, nz: i32) -> Self {
        let space = NodeSpace3::torus(nx, ny, nz);
        Mesh3D {
            space,
            faulty: NodeSet::new(space.len()),
            fault_list: Vec::new(),
        }
    }

    /// A `k × k × k` torus (the "k-ary 3-cube" of the routing literature).
    pub fn torus_kary(k: i32) -> Self {
        Mesh3D::torus(k, k, k)
    }

    /// True if this network wraps around (it is a torus).
    #[inline]
    pub fn wraps(&self) -> bool {
        self.space.wraps()
    }

    /// Topology-aware distance between two nodes: Manhattan on a mesh, Lee
    /// distance (per-axis shorter arc) on a torus.
    #[inline]
    pub fn dist(&self, a: C3, b: C3) -> u32 {
        self.space.dist(a, b)
    }

    /// True if both coordinates address nodes of this network and the nodes
    /// share a link (wrap links included on a torus).
    pub fn are_neighbors(&self, a: C3, b: C3) -> bool {
        self.contains(a) && self.contains(b) && self.space.dist(a, b) == 1
    }

    /// Extent along X.
    #[inline]
    pub fn nx(&self) -> i32 {
        self.space.nx()
    }

    /// Extent along Y.
    #[inline]
    pub fn ny(&self) -> i32 {
        self.space.ny()
    }

    /// Extent along Z.
    #[inline]
    pub fn nz(&self) -> i32 {
        self.space.nz()
    }

    /// Total number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.space.len()
    }

    /// The linear index space of this mesh's nodes.
    #[inline]
    pub fn space(&self) -> NodeSpace3 {
        self.space
    }

    /// True if `c` addresses a node of this mesh.
    #[inline]
    pub fn contains(&self, c: C3) -> bool {
        self.space.contains(c)
    }

    /// The full extent of the mesh as an inclusive box.
    pub fn bounds(&self) -> Box3 {
        Box3 {
            lo: C3::ORIGIN,
            hi: C3 {
                x: self.nx() - 1,
                y: self.ny() - 1,
                z: self.nz() - 1,
            },
        }
    }

    /// Mark `c` faulty. Returns `true` if the node was previously healthy.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    pub fn inject_fault(&mut self, c: C3) -> bool {
        assert!(self.contains(c), "fault injected outside mesh: {c:?}");
        if self.faulty.insert(self.space.index(c)) {
            self.fault_list.push(c);
            true
        } else {
            false
        }
    }

    /// Return `c` to healthy. Returns `true` if the node was previously
    /// faulty. The fault list keeps the injection order of the survivors.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    pub fn heal_fault(&mut self, c: C3) -> bool {
        assert!(self.contains(c), "fault healed outside mesh: {c:?}");
        if self.faulty.remove(self.space.index(c)) {
            self.fault_list.retain(|&f| f != c);
            true
        } else {
            false
        }
    }

    /// Batch-inject every node of `delta` (a bitset over [`Mesh3D::space`]).
    /// Already-faulty nodes are left untouched; new faults are appended to
    /// the fault list in index order. Returns how many nodes flipped.
    ///
    /// # Panics
    /// If `delta` is not sized for this mesh's node space.
    pub fn inject_fault_set(&mut self, delta: &NodeSet) -> usize {
        assert_eq!(
            delta.capacity(),
            self.space.len(),
            "delta/mesh size mismatch"
        );
        let mut flipped = 0;
        for i in delta.iter() {
            if self.faulty.insert(i) {
                self.fault_list.push(self.space.coord(i));
                flipped += 1;
            }
        }
        flipped
    }

    /// Batch-heal every node of `delta` (a bitset over [`Mesh3D::space`])
    /// in one pass over the fault list (injection order of the survivors is
    /// preserved). Healthy members of `delta` are ignored. Returns how many
    /// nodes flipped.
    ///
    /// # Panics
    /// If `delta` is not sized for this mesh's node space.
    pub fn heal_fault_set(&mut self, delta: &NodeSet) -> usize {
        assert_eq!(
            delta.capacity(),
            self.space.len(),
            "delta/mesh size mismatch"
        );
        let before = self.fault_list.len();
        let space = self.space;
        self.fault_list.retain(|&f| !delta.contains(space.index(f)));
        self.faulty.difference_with(delta);
        before - self.fault_list.len()
    }

    /// True if the node exists and is faulty.
    #[inline]
    pub fn is_faulty(&self, c: C3) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| self.faulty.contains(i))
    }

    /// True if the node exists and is healthy.
    #[inline]
    pub fn is_healthy(&self, c: C3) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| !self.faulty.contains(i))
    }

    /// All injected faults, in injection order.
    #[inline]
    pub fn faults(&self) -> &[C3] {
        &self.fault_list
    }

    /// The fault set as a packed bitset over [`Mesh3D::space`].
    #[inline]
    pub fn fault_set(&self) -> &NodeSet {
        &self.faulty
    }

    /// Number of faulty nodes.
    #[inline]
    pub fn fault_count(&self) -> usize {
        self.fault_list.len()
    }

    /// Neighbors of `c`, in [`Dir3::ALL`] order: 3–6 of them on a mesh
    /// (border nodes lose probes), always 6 on a torus (steps wrap).
    pub fn neighbors(&self, c: C3) -> impl Iterator<Item = C3> + '_ {
        let space = self.space;
        Dir3::ALL
            .into_iter()
            .map(move |d| {
                if space.wraps() {
                    space.wrap_coord(c.step(d))
                } else {
                    c.step(d)
                }
            })
            .filter(|&n| self.contains(n))
    }

    /// Iterate all node coordinates (x fastest).
    pub fn nodes(&self) -> impl Iterator<Item = C3> + '_ {
        self.space.coords()
    }

    /// Remove all faults.
    pub fn clear_faults(&mut self) {
        self.faulty.clear();
        self.fault_list.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn mesh2_bounds_and_neighbors() {
        let m = Mesh2D::new(4, 3);
        assert_eq!(m.node_count(), 12);
        // interior degree 4, corner degree 2, edge degree 3
        assert_eq!(m.neighbors(c2(1, 1)).count(), 4);
        assert_eq!(m.neighbors(c2(0, 0)).count(), 2);
        assert_eq!(m.neighbors(c2(1, 0)).count(), 3);
        assert!(m.contains(c2(3, 2)));
        assert!(!m.contains(c2(4, 0)));
        assert!(!m.contains(c2(0, -1)));
    }

    #[test]
    fn mesh3_degrees() {
        let m = Mesh3D::new(3, 3, 3);
        assert_eq!(m.node_count(), 27);
        assert_eq!(m.neighbors(c3(1, 1, 1)).count(), 6); // interior degree 2n = 6
        assert_eq!(m.neighbors(c3(0, 0, 0)).count(), 3);
        assert_eq!(m.neighbors(c3(1, 0, 0)).count(), 4);
    }

    #[test]
    fn fault_injection() {
        let mut m = Mesh2D::new(5, 5);
        assert!(m.inject_fault(c2(2, 2)));
        assert!(!m.inject_fault(c2(2, 2))); // idempotent
        assert!(m.is_faulty(c2(2, 2)));
        assert!(m.is_healthy(c2(2, 3)));
        assert!(!m.is_healthy(c2(9, 9))); // off-mesh is neither healthy...
        assert!(!m.is_faulty(c2(9, 9))); // ...nor faulty
        assert_eq!(m.fault_count(), 1);
        m.clear_faults();
        assert_eq!(m.fault_count(), 0);
        assert!(m.is_healthy(c2(2, 2)));
    }

    #[test]
    fn mesh3_fault_roundtrip() {
        let mut m = Mesh3D::kary(4);
        for c in [c3(0, 0, 0), c3(3, 3, 3), c3(1, 2, 3)] {
            assert!(m.inject_fault(c));
        }
        assert_eq!(m.faults().len(), 3);
        assert_eq!(m.nodes().filter(|&c| m.is_faulty(c)).count(), 3);
    }

    #[test]
    fn fault_set_mirrors_fault_list() {
        let mut m = Mesh2D::new(6, 6);
        for c in [c2(0, 0), c2(5, 5), c2(2, 3)] {
            m.inject_fault(c);
        }
        let set = m.fault_set();
        assert_eq!(set.len(), 3);
        let from_set: Vec<C2> = set.iter().map(|i| m.space().coord(i)).collect();
        let mut from_list = m.faults().to_vec();
        from_list.sort();
        assert_eq!(from_set, from_list); // bitset iterates in index order
    }

    #[test]
    fn torus_meshes_have_full_degree_and_wrap_links() {
        let t = Mesh2D::torus(4, 3);
        assert!(t.wraps());
        for c in t.nodes() {
            assert_eq!(t.neighbors(c).count(), 4, "{c}");
        }
        assert!(t.are_neighbors(c2(0, 0), c2(3, 0)));
        assert!(t.are_neighbors(c2(0, 0), c2(0, 2)));
        assert!(!t.are_neighbors(c2(0, 0), c2(2, 0)));
        assert_eq!(t.dist(c2(0, 0), c2(3, 2)), 2);

        let t3 = Mesh3D::torus_kary(3);
        assert!(t3.wraps());
        for c in t3.nodes() {
            assert_eq!(t3.neighbors(c).count(), 6, "{c}");
        }
        assert!(t3.are_neighbors(c3(0, 0, 0), c3(0, 0, 2)));

        let m = Mesh2D::new(4, 3);
        assert!(!m.wraps());
        assert!(!m.are_neighbors(c2(0, 0), c2(3, 0)));
        assert_eq!(m.dist(c2(0, 0), c2(3, 2)), 5);
    }

    #[test]
    fn heal_fault_reverses_injection_and_keeps_order() {
        let mut m = Mesh2D::new(6, 6);
        for c in [c2(1, 1), c2(4, 2), c2(3, 3)] {
            m.inject_fault(c);
        }
        assert!(m.heal_fault(c2(4, 2)));
        assert!(!m.heal_fault(c2(4, 2))); // idempotent
        assert!(m.is_healthy(c2(4, 2)));
        assert_eq!(m.faults(), &[c2(1, 1), c2(3, 3)]); // injection order kept
        assert_eq!(m.fault_set().len(), 2);
    }

    #[test]
    fn batch_churn_matches_node_by_node() {
        let mut a = Mesh2D::new(8, 8);
        let mut b = Mesh2D::new(8, 8);
        for c in [c2(0, 0), c2(3, 4), c2(7, 7), c2(2, 2)] {
            a.inject_fault(c);
            b.inject_fault(c);
        }
        let space = a.space();
        let inject = NodeSet::from_indices(
            space.len(),
            [space.index(c2(5, 5)), space.index(c2(2, 2))], // one already faulty
        );
        let heal = NodeSet::from_indices(
            space.len(),
            [space.index(c2(3, 4)), space.index(c2(6, 6))], // one already healthy
        );
        assert_eq!(a.inject_fault_set(&inject), 1);
        assert_eq!(a.heal_fault_set(&heal), 1);
        b.inject_fault(c2(5, 5));
        b.heal_fault(c2(3, 4));
        assert_eq!(a.fault_set(), b.fault_set());
        assert_eq!(a.faults(), b.faults());
    }

    #[test]
    fn mesh3_heal_and_batch_churn() {
        let mut m = Mesh3D::kary(4);
        for c in [c3(0, 0, 0), c3(3, 3, 3), c3(1, 2, 3)] {
            m.inject_fault(c);
        }
        assert!(m.heal_fault(c3(3, 3, 3)));
        assert_eq!(m.faults(), &[c3(0, 0, 0), c3(1, 2, 3)]);
        let space = m.space();
        let inject = NodeSet::from_indices(space.len(), [space.index(c3(2, 2, 2))]);
        assert_eq!(m.inject_fault_set(&inject), 1);
        let heal = NodeSet::from_indices(
            space.len(),
            [space.index(c3(0, 0, 0)), space.index(c3(1, 2, 3))],
        );
        assert_eq!(m.heal_fault_set(&heal), 2);
        assert_eq!(m.faults(), &[c3(2, 2, 2)]);
        assert_eq!(m.fault_set().len(), 1);
    }

    #[test]
    fn diameter_is_k_minus_1_times_n() {
        let m = Mesh3D::kary(5);
        let far = c3(4, 4, 4);
        assert_eq!(C3::ORIGIN.dist(far), (5 - 1) * 3);
        assert_eq!(m.bounds().hi, far);
    }
}
