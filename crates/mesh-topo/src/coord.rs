//! Integer lattice coordinates for 2-D and 3-D meshes.
//!
//! Coordinates are stored as `i32` so that reflection frames ([`crate::frame`])
//! and off-mesh probes (a neighbor one step outside the mesh) are representable
//! without wrap-around hazards. All in-mesh coordinates are non-negative.

use serde::{Deserialize, Serialize};

use crate::dir::{Axis2, Axis3, Dir2, Dir3};

/// A node address `(x, y)` in a 2-D mesh.
///
/// The paper labels each node `u` as `(x_u, y_u)`; distance is the Manhattan
/// metric `D(u, v) = |x_v - x_u| + |y_v - y_u|`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct C2 {
    /// X coordinate (dimension 0).
    pub x: i32,
    /// Y coordinate (dimension 1).
    pub y: i32,
}

/// A node address `(x, y, z)` in a 3-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct C3 {
    /// X coordinate (dimension 0).
    pub x: i32,
    /// Y coordinate (dimension 1).
    pub y: i32,
    /// Z coordinate (dimension 2).
    pub z: i32,
}

impl core::fmt::Debug for C2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl core::fmt::Display for C2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl core::fmt::Debug for C3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

impl core::fmt::Display for C3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// Shorthand constructor: `c2(x, y)`.
#[inline]
pub const fn c2(x: i32, y: i32) -> C2 {
    C2 { x, y }
}

/// Shorthand constructor: `c3(x, y, z)`.
#[inline]
pub const fn c3(x: i32, y: i32, z: i32) -> C3 {
    C3 { x, y, z }
}

impl C2 {
    /// The origin `(0, 0)` — the canonical source node of the paper.
    pub const ORIGIN: C2 = C2 { x: 0, y: 0 };

    /// Manhattan distance `D(self, other)`.
    #[inline]
    pub fn dist(self, other: C2) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The neighbor one step along `dir` (may fall outside the mesh).
    #[inline]
    pub fn step(self, dir: Dir2) -> C2 {
        let (dx, dy) = dir.delta();
        C2 {
            x: self.x + dx,
            y: self.y + dy,
        }
    }

    /// Componentwise dominance: `self.x <= other.x && self.y <= other.y`.
    ///
    /// A minimal (+X/+Y) route from `s` to `d` visits exactly the nodes `u`
    /// with `s.dominated_by(u) && u.dominated_by(d)` — the Region of Minimal
    /// Paths (RMP).
    #[inline]
    pub fn dominated_by(self, other: C2) -> bool {
        self.x <= other.x && self.y <= other.y
    }

    /// Coordinate along `axis`.
    #[inline]
    pub fn get(self, axis: Axis2) -> i32 {
        match axis {
            Axis2::X => self.x,
            Axis2::Y => self.y,
        }
    }

    /// Replace the coordinate along `axis`.
    #[inline]
    pub fn with(self, axis: Axis2, v: i32) -> C2 {
        match axis {
            Axis2::X => C2 { x: v, ..self },
            Axis2::Y => C2 { y: v, ..self },
        }
    }

    /// True if `self` and `other` differ in exactly one dimension by one —
    /// i.e. they are connected by a mesh link.
    #[inline]
    pub fn is_neighbor(self, other: C2) -> bool {
        self.dist(other) == 1
    }

    /// The direction from `self` to a neighboring node, if adjacent.
    pub fn dir_to(self, other: C2) -> Option<Dir2> {
        Dir2::ALL.into_iter().find(|&d| self.step(d) == other)
    }

    /// Lift into 3-D at height `z` (used when treating a plane section of a
    /// 3-D mesh with 2-D machinery).
    #[inline]
    pub fn lift_z(self, z: i32) -> C3 {
        C3 {
            x: self.x,
            y: self.y,
            z,
        }
    }
}

impl C3 {
    /// The origin `(0, 0, 0)` — the canonical source node of the paper.
    pub const ORIGIN: C3 = C3 { x: 0, y: 0, z: 0 };

    /// Manhattan distance `D(self, other)`.
    #[inline]
    pub fn dist(self, other: C3) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y) + self.z.abs_diff(other.z)
    }

    /// The neighbor one step along `dir` (may fall outside the mesh).
    #[inline]
    pub fn step(self, dir: Dir3) -> C3 {
        let (dx, dy, dz) = dir.delta();
        C3 {
            x: self.x + dx,
            y: self.y + dy,
            z: self.z + dz,
        }
    }

    /// Componentwise dominance (see [`C2::dominated_by`]).
    #[inline]
    pub fn dominated_by(self, other: C3) -> bool {
        self.x <= other.x && self.y <= other.y && self.z <= other.z
    }

    /// Coordinate along `axis`.
    #[inline]
    pub fn get(self, axis: Axis3) -> i32 {
        match axis {
            Axis3::X => self.x,
            Axis3::Y => self.y,
            Axis3::Z => self.z,
        }
    }

    /// Replace the coordinate along `axis`.
    #[inline]
    pub fn with(self, axis: Axis3, v: i32) -> C3 {
        match axis {
            Axis3::X => C3 { x: v, ..self },
            Axis3::Y => C3 { y: v, ..self },
            Axis3::Z => C3 { z: v, ..self },
        }
    }

    /// True if `self` and `other` are connected by a mesh link.
    #[inline]
    pub fn is_neighbor(self, other: C3) -> bool {
        self.dist(other) == 1
    }

    /// The direction from `self` to a neighboring node, if adjacent.
    pub fn dir_to(self, other: C3) -> Option<Dir3> {
        Dir3::ALL.into_iter().find(|&d| self.step(d) == other)
    }

    /// Project onto the plane orthogonal to `axis`, returning the remaining
    /// two coordinates in axis order (used for 2-D section analysis of 3-D
    /// fault regions).
    #[inline]
    pub fn project(self, axis: Axis3) -> C2 {
        match axis {
            Axis3::X => C2 {
                x: self.y,
                y: self.z,
            },
            Axis3::Y => C2 {
                x: self.x,
                y: self.z,
            },
            Axis3::Z => C2 {
                x: self.x,
                y: self.y,
            },
        }
    }

    /// Inverse of [`C3::project`]: re-insert coordinate `v` along `axis`.
    #[inline]
    pub fn unproject(p: C2, axis: Axis3, v: i32) -> C3 {
        match axis {
            Axis3::X => C3 {
                x: v,
                y: p.x,
                z: p.y,
            },
            Axis3::Y => C3 {
                x: p.x,
                y: v,
                z: p.y,
            },
            Axis3::Z => C3 {
                x: p.x,
                y: p.y,
                z: v,
            },
        }
    }
}

impl core::ops::Add<C2> for C2 {
    type Output = C2;
    #[inline]
    fn add(self, rhs: C2) -> C2 {
        C2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl core::ops::Sub<C2> for C2 {
    type Output = C2;
    #[inline]
    fn sub(self, rhs: C2) -> C2 {
        C2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl core::ops::Add<C3> for C3 {
    type Output = C3;
    #[inline]
    fn add(self, rhs: C3) -> C3 {
        C3 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
            z: self.z + rhs.z,
        }
    }
}

impl core::ops::Sub<C3> for C3 {
    type Output = C3;
    #[inline]
    fn sub(self, rhs: C3) -> C3 {
        C3 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
            z: self.z - rhs.z,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_manhattan() {
        assert_eq!(c2(0, 0).dist(c2(3, 4)), 7);
        assert_eq!(c2(3, 4).dist(c2(0, 0)), 7);
        assert_eq!(c3(1, 2, 3).dist(c3(4, 0, 3)), 5);
    }

    #[test]
    fn step_matches_paper_neighbor_definitions() {
        // (x+1, y) is the +X neighbor, etc.
        let u = c2(5, 7);
        assert_eq!(u.step(Dir2::Xp), c2(6, 7));
        assert_eq!(u.step(Dir2::Xm), c2(4, 7));
        assert_eq!(u.step(Dir2::Yp), c2(5, 8));
        assert_eq!(u.step(Dir2::Ym), c2(5, 6));
        let v = c3(5, 7, 9);
        assert_eq!(v.step(Dir3::Zp), c3(5, 7, 10));
        assert_eq!(v.step(Dir3::Zm), c3(5, 7, 8));
    }

    #[test]
    fn dominance() {
        assert!(c2(0, 0).dominated_by(c2(3, 4)));
        assert!(c2(3, 4).dominated_by(c2(3, 4)));
        assert!(!c2(4, 0).dominated_by(c2(3, 4)));
        assert!(c3(1, 1, 1).dominated_by(c3(1, 2, 1)));
        assert!(!c3(1, 3, 1).dominated_by(c3(1, 2, 9)));
    }

    #[test]
    fn dir_to_identifies_links() {
        assert_eq!(c2(2, 2).dir_to(c2(3, 2)), Some(Dir2::Xp));
        assert_eq!(c2(2, 2).dir_to(c2(2, 1)), Some(Dir2::Ym));
        assert_eq!(c2(2, 2).dir_to(c2(3, 3)), None);
        assert_eq!(c3(0, 0, 0).dir_to(c3(0, 0, 1)), Some(Dir3::Zp));
    }

    #[test]
    fn project_unproject_roundtrip() {
        let p = c3(4, 5, 6);
        for axis in [Axis3::X, Axis3::Y, Axis3::Z] {
            let q = p.project(axis);
            assert_eq!(C3::unproject(q, axis, p.get(axis)), p);
        }
    }

    #[test]
    fn axis_accessors() {
        let u = c3(7, 8, 9);
        assert_eq!(u.get(Axis3::X), 7);
        assert_eq!(u.with(Axis3::Y, 0), c3(7, 0, 9));
        let v = c2(7, 8);
        assert_eq!(v.get(Axis2::Y), 8);
        assert_eq!(v.with(Axis2::X, 1), c2(1, 8));
    }
}
