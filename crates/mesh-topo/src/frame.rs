//! Quadrant / octant canonicalization frames.
//!
//! The paper develops its labelling and routing for the canonical case
//! `s = (0,0[,0])`, `d ≥ 0` componentwise: the preferred directions are the
//! positive ones. For an arbitrary source/destination pair the model is
//! applied after reflecting each axis on which the destination lies on the
//! negative side of the source. A [`Frame2`] / [`Frame3`] is such a
//! reflection: an involutive mesh automorphism that maps the pair into the
//! canonical orientation.
//!
//! On a **torus** ([`Mesh2D::torus`]) the frame additionally carries a
//! per-axis rotation (translation modulo the extent — also a torus
//! automorphism): [`Frame2::for_pair`] picks, per axis, the shorter arc
//! from source to destination (reflecting when the `-` arc is strictly
//! shorter) and rotates the axis so the canonical source lands on the
//! origin and the canonical destination on the Lee-distance vector. The
//! whole canonical pipeline — labelling, conditions, routers — then keeps
//! its "destination dominates source" worldview, and the wrap-around seam
//! sits *behind* the source where the Region of Minimal Paths never
//! touches it. Mesh frames carry no rotation, so mesh behavior is
//! untouched.
//!
//! Labelling (and therefore the MCC decomposition) depends only on the
//! frame, not on the concrete `s`/`d`, so per-mesh results can be cached
//! per frame (4 reflections in 2-D, 8 in 3-D; on a torus the rotation is
//! part of the cache key — see `fault_model::models`).

use serde::{Deserialize, Serialize};

use crate::coord::{C2, C3};
use crate::dir::{Dir2, Dir3};
use crate::mesh::{Mesh2D, Mesh3D};

/// Pick reflection + rotation for one torus axis: reflect when the `-` arc
/// is strictly shorter, then rotate the (possibly reflected) source onto 0.
/// Returns `(flip, offset)`.
fn torus_axis(s: i32, d: i32, k: i32) -> (bool, i32) {
    let fwd = (d - s).rem_euclid(k);
    let bwd = (s - d).rem_euclid(k);
    let flip = bwd < fwd;
    let rs = if flip { k - 1 - s } else { s };
    (flip, (-rs).rem_euclid(k))
}

/// A per-axis reflection of a 2-D mesh (one of the 4 quadrant
/// orientations), optionally composed with a per-axis rotation on a torus
/// (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Frame2 {
    /// Reflect the X axis (`x ↦ width-1-x`).
    pub flip_x: bool,
    /// Reflect the Y axis (`y ↦ height-1-y`).
    pub flip_y: bool,
    width: i32,
    height: i32,
    /// Rotation added after reflection, modulo the extent (torus only).
    off_x: i32,
    off_y: i32,
    /// Apply the rotation modulo the extents (torus frames only).
    wrap: bool,
}

/// A per-axis reflection of a 3-D mesh (one of the 8 octant orientations),
/// optionally composed with a per-axis rotation on a torus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Frame3 {
    /// Reflect the X axis.
    pub flip_x: bool,
    /// Reflect the Y axis.
    pub flip_y: bool,
    /// Reflect the Z axis.
    pub flip_z: bool,
    nx: i32,
    ny: i32,
    nz: i32,
    off_x: i32,
    off_y: i32,
    off_z: i32,
    wrap: bool,
}

impl Frame2 {
    /// The identity frame for `mesh` (no reflection, no rotation).
    pub fn identity(mesh: &Mesh2D) -> Frame2 {
        Frame2 {
            flip_x: false,
            flip_y: false,
            width: mesh.width(),
            height: mesh.height(),
            off_x: 0,
            off_y: 0,
            wrap: false,
        }
    }

    /// The frame that maps `(s, d)` into canonical orientation
    /// (`to_canon(s) ≤ to_canon(d)` componentwise).
    ///
    /// On a mesh this is the pure reflection frame of the paper. On a
    /// torus it composes the per-axis shorter-arc reflection with a
    /// rotation, so that `to_canon(s)` is the origin and `to_canon(d)` the
    /// Lee-distance vector (see [`Frame2::for_pair_torus`]).
    pub fn for_pair(mesh: &Mesh2D, s: C2, d: C2) -> Frame2 {
        if mesh.wraps() {
            return Frame2::for_pair_torus(mesh, s, d);
        }
        Frame2 {
            flip_x: d.x < s.x,
            flip_y: d.y < s.y,
            width: mesh.width(),
            height: mesh.height(),
            off_x: 0,
            off_y: 0,
            wrap: false,
        }
    }

    /// The torus frame for `(s, d)`: per axis, reflect when the `-` arc is
    /// strictly shorter (ties keep the `+` arc), then rotate the axis so
    /// the canonical source is `(0, 0)` and the canonical destination the
    /// Lee-distance vector. Both pieces are torus automorphisms, so the
    /// fault set seen through the frame is an exact relabelling.
    pub fn for_pair_torus(mesh: &Mesh2D, s: C2, d: C2) -> Frame2 {
        let (width, height) = (mesh.width(), mesh.height());
        let (flip_x, off_x) = torus_axis(s.x, d.x, width);
        let (flip_y, off_y) = torus_axis(s.y, d.y, height);
        Frame2 {
            flip_x,
            flip_y,
            width,
            height,
            off_x,
            off_y,
            wrap: true,
        }
    }

    /// All four quadrant frames for `mesh` (reflections only; rotations
    /// are pair-specific).
    pub fn all(mesh: &Mesh2D) -> [Frame2; 4] {
        let (width, height) = (mesh.width(), mesh.height());
        [(false, false), (true, false), (false, true), (true, true)].map(|(flip_x, flip_y)| {
            Frame2 {
                flip_x,
                flip_y,
                width,
                height,
                off_x: 0,
                off_y: 0,
                wrap: false,
            }
        })
    }

    /// A compact index in `0..4` identifying the **reflection** part of the
    /// frame. Torus frames with different rotations share an index; cache
    /// layers that key on it must compare the full frame for equality.
    pub fn index(&self) -> usize {
        (self.flip_x as usize) | ((self.flip_y as usize) << 1)
    }

    /// Map a mesh coordinate into the canonical frame. Involutive for
    /// reflection-only frames; torus frames invert through
    /// [`Frame2::from_canon`]. On a torus, out-of-range inputs are reduced
    /// modulo the extents.
    #[inline]
    pub fn to_canon(&self, c: C2) -> C2 {
        let x = if self.flip_x {
            self.width - 1 - c.x
        } else {
            c.x
        };
        let y = if self.flip_y {
            self.height - 1 - c.y
        } else {
            c.y
        };
        if self.wrap {
            C2 {
                x: (x + self.off_x).rem_euclid(self.width),
                y: (y + self.off_y).rem_euclid(self.height),
            }
        } else {
            C2 { x, y }
        }
    }

    /// Map a canonical-frame coordinate back to mesh coordinates (the
    /// exact inverse of [`Frame2::to_canon`]).
    #[inline]
    pub fn from_canon(&self, c: C2) -> C2 {
        if !self.wrap {
            return self.to_canon(c); // reflections are involutions
        }
        let x = (c.x - self.off_x).rem_euclid(self.width);
        let y = (c.y - self.off_y).rem_euclid(self.height);
        C2 {
            x: if self.flip_x { self.width - 1 - x } else { x },
            y: if self.flip_y { self.height - 1 - y } else { y },
        }
    }

    /// Map a direction into the canonical frame.
    #[inline]
    pub fn dir_to_canon(&self, d: Dir2) -> Dir2 {
        match (d, self.flip_x, self.flip_y) {
            (Dir2::Xp | Dir2::Xm, true, _) => d.opposite(),
            (Dir2::Yp | Dir2::Ym, _, true) => d.opposite(),
            _ => d,
        }
    }

    /// Map a canonical-frame direction back to mesh coordinates.
    #[inline]
    pub fn dir_from_canon(&self, d: Dir2) -> Dir2 {
        self.dir_to_canon(d)
    }
}

impl Frame3 {
    /// The identity frame for `mesh` (no reflection, no rotation).
    pub fn identity(mesh: &Mesh3D) -> Frame3 {
        Frame3 {
            flip_x: false,
            flip_y: false,
            flip_z: false,
            nx: mesh.nx(),
            ny: mesh.ny(),
            nz: mesh.nz(),
            off_x: 0,
            off_y: 0,
            off_z: 0,
            wrap: false,
        }
    }

    /// The frame that maps `(s, d)` into canonical orientation. On a torus
    /// this is the shorter-arc reflection + rotation frame (see
    /// [`Frame2::for_pair`]).
    pub fn for_pair(mesh: &Mesh3D, s: C3, d: C3) -> Frame3 {
        if mesh.wraps() {
            return Frame3::for_pair_torus(mesh, s, d);
        }
        Frame3 {
            flip_x: d.x < s.x,
            flip_y: d.y < s.y,
            flip_z: d.z < s.z,
            nx: mesh.nx(),
            ny: mesh.ny(),
            nz: mesh.nz(),
            off_x: 0,
            off_y: 0,
            off_z: 0,
            wrap: false,
        }
    }

    /// The torus frame for `(s, d)` (see [`Frame2::for_pair_torus`]):
    /// canonical source at the origin, canonical destination on the
    /// Lee-distance vector.
    pub fn for_pair_torus(mesh: &Mesh3D, s: C3, d: C3) -> Frame3 {
        let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
        let (flip_x, off_x) = torus_axis(s.x, d.x, nx);
        let (flip_y, off_y) = torus_axis(s.y, d.y, ny);
        let (flip_z, off_z) = torus_axis(s.z, d.z, nz);
        Frame3 {
            flip_x,
            flip_y,
            flip_z,
            nx,
            ny,
            nz,
            off_x,
            off_y,
            off_z,
            wrap: true,
        }
    }

    /// All eight octant frames for `mesh` (reflections only).
    pub fn all(mesh: &Mesh3D) -> [Frame3; 8] {
        let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
        core::array::from_fn(|i| Frame3 {
            flip_x: i & 1 != 0,
            flip_y: i & 2 != 0,
            flip_z: i & 4 != 0,
            nx,
            ny,
            nz,
            off_x: 0,
            off_y: 0,
            off_z: 0,
            wrap: false,
        })
    }

    /// A compact index in `0..8` identifying the **reflection** part of the
    /// frame (see [`Frame2::index`]).
    pub fn index(&self) -> usize {
        (self.flip_x as usize) | ((self.flip_y as usize) << 1) | ((self.flip_z as usize) << 2)
    }

    /// Map a mesh coordinate into the canonical frame. Involutive for
    /// reflection-only frames; torus frames invert through
    /// [`Frame3::from_canon`].
    #[inline]
    pub fn to_canon(&self, c: C3) -> C3 {
        let x = if self.flip_x { self.nx - 1 - c.x } else { c.x };
        let y = if self.flip_y { self.ny - 1 - c.y } else { c.y };
        let z = if self.flip_z { self.nz - 1 - c.z } else { c.z };
        if self.wrap {
            C3 {
                x: (x + self.off_x).rem_euclid(self.nx),
                y: (y + self.off_y).rem_euclid(self.ny),
                z: (z + self.off_z).rem_euclid(self.nz),
            }
        } else {
            C3 { x, y, z }
        }
    }

    /// Map a canonical-frame coordinate back to mesh coordinates (the
    /// exact inverse of [`Frame3::to_canon`]).
    #[inline]
    pub fn from_canon(&self, c: C3) -> C3 {
        if !self.wrap {
            return self.to_canon(c);
        }
        let x = (c.x - self.off_x).rem_euclid(self.nx);
        let y = (c.y - self.off_y).rem_euclid(self.ny);
        let z = (c.z - self.off_z).rem_euclid(self.nz);
        C3 {
            x: if self.flip_x { self.nx - 1 - x } else { x },
            y: if self.flip_y { self.ny - 1 - y } else { y },
            z: if self.flip_z { self.nz - 1 - z } else { z },
        }
    }

    /// Map a direction into the canonical frame.
    #[inline]
    pub fn dir_to_canon(&self, d: Dir3) -> Dir3 {
        let flip = match d.axis() {
            crate::dir::Axis3::X => self.flip_x,
            crate::dir::Axis3::Y => self.flip_y,
            crate::dir::Axis3::Z => self.flip_z,
        };
        if flip {
            d.opposite()
        } else {
            d
        }
    }

    /// Map a canonical-frame direction back to mesh coordinates.
    #[inline]
    pub fn dir_from_canon(&self, d: Dir3) -> Dir3 {
        self.dir_to_canon(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn frame2_canonicalizes_every_pair() {
        let mesh = Mesh2D::new(7, 5);
        let pairs = [
            (c2(3, 3), c2(6, 4)),
            (c2(3, 3), c2(0, 4)),
            (c2(3, 3), c2(6, 0)),
            (c2(3, 3), c2(0, 0)),
            (c2(2, 2), c2(2, 2)),
        ];
        for (s, d) in pairs {
            let f = Frame2::for_pair(&mesh, s, d);
            let (cs, cd) = (f.to_canon(s), f.to_canon(d));
            assert!(
                cs.dominated_by(cd),
                "{s:?}->{d:?} not canonical: {cs:?} {cd:?}"
            );
            assert_eq!(f.from_canon(cs), s);
            assert_eq!(f.from_canon(cd), d);
            assert_eq!(cs.dist(cd), s.dist(d), "reflection must preserve distance");
        }
    }

    #[test]
    fn frame3_canonicalizes_every_pair() {
        let mesh = Mesh3D::new(5, 6, 7);
        let s = c3(2, 3, 4);
        for d in [
            c3(4, 5, 6),
            c3(0, 0, 0),
            c3(4, 0, 6),
            c3(0, 5, 0),
            c3(2, 3, 4),
        ] {
            let f = Frame3::for_pair(&mesh, s, d);
            let (cs, cd) = (f.to_canon(s), f.to_canon(d));
            assert!(cs.dominated_by(cd));
            assert_eq!(f.from_canon(cs), s);
            assert_eq!(cs.dist(cd), s.dist(d));
        }
    }

    #[test]
    fn frame_maps_steps_consistently() {
        // Stepping then mapping == mapping then stepping the mapped direction.
        let mesh = Mesh3D::new(5, 5, 5);
        for f in Frame3::all(&mesh) {
            let u = c3(2, 3, 1);
            for d in Dir3::ALL {
                assert_eq!(f.to_canon(u.step(d)), f.to_canon(u).step(f.dir_to_canon(d)));
            }
        }
        let mesh2 = Mesh2D::new(5, 4);
        for f in Frame2::all(&mesh2) {
            let u = c2(2, 3);
            for d in Dir2::ALL {
                assert_eq!(f.to_canon(u.step(d)), f.to_canon(u).step(f.dir_to_canon(d)));
            }
        }
    }

    #[test]
    fn frame_indices_unique() {
        let mesh = Mesh3D::new(4, 4, 4);
        let mut seen = [false; 8];
        for f in Frame3::all(&mesh) {
            assert!(!seen[f.index()]);
            seen[f.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn torus_frame_puts_source_at_origin_and_dest_on_lee_vector() {
        let mesh = Mesh2D::torus(8, 6);
        let pairs = [
            (c2(1, 1), c2(6, 4)),
            (c2(6, 4), c2(1, 1)),
            (c2(7, 0), c2(0, 5)),
            (c2(3, 3), c2(3, 3)),
            (c2(0, 0), c2(4, 3)), // per-axis tie: keep the + arc
        ];
        for (s, d) in pairs {
            let f = Frame2::for_pair(&mesh, s, d);
            let (cs, cd) = (f.to_canon(s), f.to_canon(d));
            assert_eq!(cs, C2::ORIGIN, "{s:?}->{d:?}");
            assert_eq!(
                cd.x as u32 + cd.y as u32,
                mesh.dist(s, d),
                "{s:?}->{d:?}: canonical destination must sit on the Lee vector"
            );
            assert!(cs.dominated_by(cd));
            // The frame is an exact bijection of the torus.
            assert_eq!(f.from_canon(cs), s);
            assert_eq!(f.from_canon(cd), d);
            for c in mesh.nodes() {
                assert_eq!(f.from_canon(f.to_canon(c)), c, "{s:?}->{d:?} at {c:?}");
            }
        }
    }

    #[test]
    fn torus_frame3_roundtrips_and_hits_lee_vector() {
        let mesh = Mesh3D::torus(5, 4, 6);
        let s = c3(4, 1, 5);
        for d in [c3(1, 3, 0), c3(0, 0, 0), c3(4, 1, 5), c3(2, 3, 2)] {
            let f = Frame3::for_pair(&mesh, s, d);
            let (cs, cd) = (f.to_canon(s), f.to_canon(d));
            assert_eq!(cs, C3::ORIGIN);
            assert_eq!(cd.x as u32 + cd.y as u32 + cd.z as u32, mesh.dist(s, d));
            for c in mesh.nodes() {
                assert_eq!(f.from_canon(f.to_canon(c)), c);
            }
        }
    }

    #[test]
    fn torus_frame_maps_wrapped_steps_consistently() {
        // Stepping in mesh coordinates (mod k) then mapping equals mapping
        // then stepping the mapped direction (mod k).
        let mesh = Mesh2D::torus(7, 5);
        let space = mesh.space();
        let f = Frame2::for_pair(&mesh, c2(5, 4), c2(1, 1));
        for c in mesh.nodes() {
            for d in Dir2::ALL {
                let lhs = f.to_canon(space.wrap_coord(c.step(d)));
                let rhs = space.wrap_coord(f.to_canon(c).step(f.dir_to_canon(d)));
                assert_eq!(lhs, rhs, "{c:?} {d:?}");
            }
        }
    }

    #[test]
    fn bounds_stay_in_mesh() {
        let mesh = Mesh2D::new(9, 3);
        for f in Frame2::all(&mesh) {
            for c in mesh.nodes() {
                let m = f.to_canon(c);
                assert!(mesh.contains(m), "{c:?} mapped outside: {m:?}");
            }
        }
    }
}
