//! Quadrant / octant canonicalization frames.
//!
//! The paper develops its labelling and routing for the canonical case
//! `s = (0,0[,0])`, `d ≥ 0` componentwise: the preferred directions are the
//! positive ones. For an arbitrary source/destination pair the model is
//! applied after reflecting each axis on which the destination lies on the
//! negative side of the source. A [`Frame2`] / [`Frame3`] is such a
//! reflection: an involutive mesh automorphism that maps the pair into the
//! canonical orientation.
//!
//! Labelling (and therefore the MCC decomposition) depends only on the frame,
//! not on the concrete `s`/`d`, so per-mesh results can be cached per frame
//! (4 frames in 2-D, 8 in 3-D).

use serde::{Deserialize, Serialize};

use crate::coord::{C2, C3};
use crate::dir::{Dir2, Dir3};
use crate::mesh::{Mesh2D, Mesh3D};

/// A per-axis reflection of a 2-D mesh (one of the 4 quadrant orientations).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Frame2 {
    /// Reflect the X axis (`x ↦ width-1-x`).
    pub flip_x: bool,
    /// Reflect the Y axis (`y ↦ height-1-y`).
    pub flip_y: bool,
    width: i32,
    height: i32,
}

/// A per-axis reflection of a 3-D mesh (one of the 8 octant orientations).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Frame3 {
    /// Reflect the X axis.
    pub flip_x: bool,
    /// Reflect the Y axis.
    pub flip_y: bool,
    /// Reflect the Z axis.
    pub flip_z: bool,
    nx: i32,
    ny: i32,
    nz: i32,
}

impl Frame2 {
    /// The identity frame for `mesh` (no reflection).
    pub fn identity(mesh: &Mesh2D) -> Frame2 {
        Frame2 {
            flip_x: false,
            flip_y: false,
            width: mesh.width(),
            height: mesh.height(),
        }
    }

    /// The frame that maps `(s, d)` into canonical orientation
    /// (`to_canon(s) ≤ to_canon(d)` componentwise).
    pub fn for_pair(mesh: &Mesh2D, s: C2, d: C2) -> Frame2 {
        Frame2 {
            flip_x: d.x < s.x,
            flip_y: d.y < s.y,
            width: mesh.width(),
            height: mesh.height(),
        }
    }

    /// All four quadrant frames for `mesh`.
    pub fn all(mesh: &Mesh2D) -> [Frame2; 4] {
        let (width, height) = (mesh.width(), mesh.height());
        [(false, false), (true, false), (false, true), (true, true)].map(|(flip_x, flip_y)| {
            Frame2 {
                flip_x,
                flip_y,
                width,
                height,
            }
        })
    }

    /// A compact index in `0..4` identifying the frame orientation.
    pub fn index(&self) -> usize {
        (self.flip_x as usize) | ((self.flip_y as usize) << 1)
    }

    /// Map a mesh coordinate into the canonical frame. Involutive:
    /// `to_canon(to_canon(c)) == c`.
    #[inline]
    pub fn to_canon(&self, c: C2) -> C2 {
        C2 {
            x: if self.flip_x {
                self.width - 1 - c.x
            } else {
                c.x
            },
            y: if self.flip_y {
                self.height - 1 - c.y
            } else {
                c.y
            },
        }
    }

    /// Map a canonical-frame coordinate back to mesh coordinates.
    #[inline]
    pub fn from_canon(&self, c: C2) -> C2 {
        self.to_canon(c) // reflections are involutions
    }

    /// Map a direction into the canonical frame.
    #[inline]
    pub fn dir_to_canon(&self, d: Dir2) -> Dir2 {
        match (d, self.flip_x, self.flip_y) {
            (Dir2::Xp | Dir2::Xm, true, _) => d.opposite(),
            (Dir2::Yp | Dir2::Ym, _, true) => d.opposite(),
            _ => d,
        }
    }

    /// Map a canonical-frame direction back to mesh coordinates.
    #[inline]
    pub fn dir_from_canon(&self, d: Dir2) -> Dir2 {
        self.dir_to_canon(d)
    }
}

impl Frame3 {
    /// The identity frame for `mesh` (no reflection).
    pub fn identity(mesh: &Mesh3D) -> Frame3 {
        Frame3 {
            flip_x: false,
            flip_y: false,
            flip_z: false,
            nx: mesh.nx(),
            ny: mesh.ny(),
            nz: mesh.nz(),
        }
    }

    /// The frame that maps `(s, d)` into canonical orientation.
    pub fn for_pair(mesh: &Mesh3D, s: C3, d: C3) -> Frame3 {
        Frame3 {
            flip_x: d.x < s.x,
            flip_y: d.y < s.y,
            flip_z: d.z < s.z,
            nx: mesh.nx(),
            ny: mesh.ny(),
            nz: mesh.nz(),
        }
    }

    /// All eight octant frames for `mesh`.
    pub fn all(mesh: &Mesh3D) -> [Frame3; 8] {
        let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
        core::array::from_fn(|i| Frame3 {
            flip_x: i & 1 != 0,
            flip_y: i & 2 != 0,
            flip_z: i & 4 != 0,
            nx,
            ny,
            nz,
        })
    }

    /// A compact index in `0..8` identifying the frame orientation.
    pub fn index(&self) -> usize {
        (self.flip_x as usize) | ((self.flip_y as usize) << 1) | ((self.flip_z as usize) << 2)
    }

    /// Map a mesh coordinate into the canonical frame. Involutive.
    #[inline]
    pub fn to_canon(&self, c: C3) -> C3 {
        C3 {
            x: if self.flip_x { self.nx - 1 - c.x } else { c.x },
            y: if self.flip_y { self.ny - 1 - c.y } else { c.y },
            z: if self.flip_z { self.nz - 1 - c.z } else { c.z },
        }
    }

    /// Map a canonical-frame coordinate back to mesh coordinates.
    #[inline]
    pub fn from_canon(&self, c: C3) -> C3 {
        self.to_canon(c)
    }

    /// Map a direction into the canonical frame.
    #[inline]
    pub fn dir_to_canon(&self, d: Dir3) -> Dir3 {
        let flip = match d.axis() {
            crate::dir::Axis3::X => self.flip_x,
            crate::dir::Axis3::Y => self.flip_y,
            crate::dir::Axis3::Z => self.flip_z,
        };
        if flip {
            d.opposite()
        } else {
            d
        }
    }

    /// Map a canonical-frame direction back to mesh coordinates.
    #[inline]
    pub fn dir_from_canon(&self, d: Dir3) -> Dir3 {
        self.dir_to_canon(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn frame2_canonicalizes_every_pair() {
        let mesh = Mesh2D::new(7, 5);
        let pairs = [
            (c2(3, 3), c2(6, 4)),
            (c2(3, 3), c2(0, 4)),
            (c2(3, 3), c2(6, 0)),
            (c2(3, 3), c2(0, 0)),
            (c2(2, 2), c2(2, 2)),
        ];
        for (s, d) in pairs {
            let f = Frame2::for_pair(&mesh, s, d);
            let (cs, cd) = (f.to_canon(s), f.to_canon(d));
            assert!(
                cs.dominated_by(cd),
                "{s:?}->{d:?} not canonical: {cs:?} {cd:?}"
            );
            assert_eq!(f.from_canon(cs), s);
            assert_eq!(f.from_canon(cd), d);
            assert_eq!(cs.dist(cd), s.dist(d), "reflection must preserve distance");
        }
    }

    #[test]
    fn frame3_canonicalizes_every_pair() {
        let mesh = Mesh3D::new(5, 6, 7);
        let s = c3(2, 3, 4);
        for d in [
            c3(4, 5, 6),
            c3(0, 0, 0),
            c3(4, 0, 6),
            c3(0, 5, 0),
            c3(2, 3, 4),
        ] {
            let f = Frame3::for_pair(&mesh, s, d);
            let (cs, cd) = (f.to_canon(s), f.to_canon(d));
            assert!(cs.dominated_by(cd));
            assert_eq!(f.from_canon(cs), s);
            assert_eq!(cs.dist(cd), s.dist(d));
        }
    }

    #[test]
    fn frame_maps_steps_consistently() {
        // Stepping then mapping == mapping then stepping the mapped direction.
        let mesh = Mesh3D::new(5, 5, 5);
        for f in Frame3::all(&mesh) {
            let u = c3(2, 3, 1);
            for d in Dir3::ALL {
                assert_eq!(f.to_canon(u.step(d)), f.to_canon(u).step(f.dir_to_canon(d)));
            }
        }
        let mesh2 = Mesh2D::new(5, 4);
        for f in Frame2::all(&mesh2) {
            let u = c2(2, 3);
            for d in Dir2::ALL {
                assert_eq!(f.to_canon(u.step(d)), f.to_canon(u).step(f.dir_to_canon(d)));
            }
        }
    }

    #[test]
    fn frame_indices_unique() {
        let mesh = Mesh3D::new(4, 4, 4);
        let mut seen = [false; 8];
        for f in Frame3::all(&mesh) {
            assert!(!seen[f.index()]);
            seen[f.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bounds_stay_in_mesh() {
        let mesh = Mesh2D::new(9, 3);
        for f in Frame2::all(&mesh) {
            for c in mesh.nodes() {
                let m = f.to_canon(c);
                assert!(mesh.contains(m), "{c:?} mapped outside: {m:?}");
            }
        }
    }
}
