//! Flat, index-addressed node-state storage: linearized coordinate spaces,
//! a packed bitset over node indices, and a dense per-node value array.
//!
//! Everything that iterates whole meshes — fault sets, labelling closures,
//! connected-component discovery, detection floods — runs over **linear node
//! indices** instead of hashed coordinates. A [`NodeSpace2`] / [`NodeSpace3`]
//! is the (copyable) linearization: it maps a coordinate to its row-major
//! index and back, and enumerates neighbor indices without allocating.
//! [`NodeSet`] is a `u64`-word bitset over such a space — membership is one
//! shift and mask, iteration scans whole words with `trailing_zeros`, and
//! set algebra (union / intersection / difference) is word-parallel.
//! [`NodeGrid`] is the matching dense value array.
//!
//! Index layout matches [`crate::grid::Grid2`] / [`crate::grid::Grid3`]:
//! `x` fastest, then `y`, then `z` — `i = (z·ny + y)·nx + x`.
//!
//! # Examples
//!
//! ```
//! use mesh_topo::coord::c2;
//! use mesh_topo::{NodeSet, NodeSpace2};
//!
//! let space = NodeSpace2::new(8, 8);
//! let mut frontier = NodeSet::new(space.len());
//! frontier.insert(space.index(c2(3, 4)));
//! frontier.insert(space.index(c2(7, 7)));
//! assert_eq!(frontier.len(), 2);
//! assert!(frontier.contains(space.index(c2(3, 4))));
//!
//! // Fast iteration yields indices in row-major order.
//! let coords: Vec<_> = frontier.iter().map(|i| space.coord(i)).collect();
//! assert_eq!(coords, vec![c2(3, 4), c2(7, 7)]);
//! ```

use std::ops::Range;

use crate::coord::{C2, C3};
use crate::dir::{Dir2, Dir3};

/// Wrap `v` into `0..k` (the per-axis index math of torus spaces).
#[inline]
fn wrap_i(v: i32, k: i32) -> i32 {
    v.rem_euclid(k)
}

/// Per-axis Lee distance on a `k`-cycle: the shorter of the two arcs.
#[inline]
fn axis_lee(a: i32, b: i32, k: i32) -> u32 {
    let d = a.abs_diff(b);
    d.min(k as u32 - d)
}

/// Linearization of a `width × height` 2-D node lattice.
///
/// Row-major, matching [`crate::grid::Grid2`]: `i = y·width + x`.
///
/// A space is either a **mesh** (no wrap-around; neighbor probes past a
/// border simply do not exist) or a **torus** ([`NodeSpace2::torus`]): every
/// axis wraps modulo its extent, so every node has the full neighborhood.
/// The wrap mode is part of the space's identity (it participates in
/// equality) and is honored by [`NodeSpace2::step`] and every
/// `for_neighbors*` enumerator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeSpace2 {
    width: i32,
    height: i32,
    wrap: bool,
}

/// Linearization of an `nx × ny × nz` 3-D node lattice.
///
/// Matches [`crate::grid::Grid3`]: `i = (z·ny + y)·nx + x`. Like
/// [`NodeSpace2`], the space is either a mesh or (via [`NodeSpace3::torus`])
/// a wrap-around torus.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeSpace3 {
    nx: i32,
    ny: i32,
    nz: i32,
    wrap: bool,
}

impl NodeSpace2 {
    /// The space of a `width × height` mesh.
    ///
    /// # Panics
    /// If either dimension is not positive.
    pub fn new(width: i32, height: i32) -> NodeSpace2 {
        assert!(
            width > 0 && height > 0,
            "node space dimensions must be positive"
        );
        NodeSpace2 {
            width,
            height,
            wrap: false,
        }
    }

    /// The space of a `width × height` torus: every axis wraps modulo its
    /// extent.
    ///
    /// # Panics
    /// If either dimension is smaller than 3 — with an extent of 1 a node
    /// would be its own neighbor and with 2 its `+` and `-` neighbors
    /// coincide, so the torus neighbor math (and the routing model on top)
    /// requires `k ≥ 3` per axis.
    pub fn torus(width: i32, height: i32) -> NodeSpace2 {
        assert!(
            width >= 3 && height >= 3,
            "torus dimensions must be at least 3 (distinct +/- neighbors)"
        );
        NodeSpace2 {
            width,
            height,
            wrap: true,
        }
    }

    /// True if this space wraps around (it is a torus).
    #[inline]
    pub fn wraps(self) -> bool {
        self.wrap
    }

    /// Reduce an arbitrary integer coordinate into the space modulo the
    /// extents. The identity for in-space coordinates; meaningful for
    /// out-of-range probes only on a torus.
    #[inline]
    pub fn wrap_coord(self, c: C2) -> C2 {
        C2 {
            x: wrap_i(c.x, self.width),
            y: wrap_i(c.y, self.height),
        }
    }

    /// Topology-aware distance between two in-space nodes: Manhattan on a
    /// mesh, Lee distance (per-axis shorter arc) on a torus.
    #[inline]
    pub fn dist(self, a: C2, b: C2) -> u32 {
        if self.wrap {
            axis_lee(a.x, b.x, self.width) + axis_lee(a.y, b.y, self.height)
        } else {
            a.dist(b)
        }
    }

    /// Extent along X.
    #[inline]
    pub fn width(self) -> i32 {
        self.width
    }

    /// Extent along Y.
    #[inline]
    pub fn height(self) -> i32 {
        self.height
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// Node spaces are never empty (dimensions are positive).
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// True if `c` addresses a node of this space.
    #[inline]
    pub fn contains(self, c: C2) -> bool {
        c.x >= 0 && c.y >= 0 && c.x < self.width && c.y < self.height
    }

    /// Linear index of `c`.
    ///
    /// # Panics
    /// If `c` is outside the space.
    #[inline]
    pub fn index(self, c: C2) -> usize {
        assert!(
            self.contains(c),
            "coordinate {c:?} outside {}x{} node space",
            self.width,
            self.height
        );
        (c.y as usize) * (self.width as usize) + (c.x as usize)
    }

    /// Linear index of `c`, or `None` if outside the space.
    #[inline]
    pub fn index_checked(self, c: C2) -> Option<usize> {
        if self.contains(c) {
            Some((c.y as usize) * (self.width as usize) + (c.x as usize))
        } else {
            None
        }
    }

    /// The coordinate of linear index `i`.
    #[inline]
    pub fn coord(self, i: usize) -> C2 {
        debug_assert!(i < self.len());
        let w = self.width as usize;
        C2 {
            x: (i % w) as i32,
            y: (i / w) as i32,
        }
    }

    /// The coordinate one step along `dir` from `c`. `None` at a mesh
    /// border; on a torus every step exists and the result is reduced
    /// modulo the extents.
    #[inline]
    pub fn step_c(self, c: C2, dir: Dir2) -> Option<C2> {
        let n = c.step(dir);
        if self.wrap {
            Some(self.wrap_coord(n))
        } else if self.contains(n) {
            Some(n)
        } else {
            None
        }
    }

    /// The index one step along `dir` from `i`. `None` at a mesh border;
    /// on a torus every step exists (it wraps).
    #[inline]
    pub fn step(self, i: usize, dir: Dir2) -> Option<usize> {
        let w = self.width as usize;
        let h = self.height as usize;
        let (x, y) = (i % w, i / w);
        if self.wrap {
            return Some(match dir {
                Dir2::Xp => {
                    if x + 1 < w {
                        i + 1
                    } else {
                        i + 1 - w
                    }
                }
                Dir2::Xm => {
                    if x > 0 {
                        i - 1
                    } else {
                        i + w - 1
                    }
                }
                Dir2::Yp => {
                    if y + 1 < h {
                        i + w
                    } else {
                        i + w - w * h
                    }
                }
                Dir2::Ym => {
                    if y > 0 {
                        i - w
                    } else {
                        i + w * h - w
                    }
                }
            });
        }
        match dir {
            Dir2::Xp => (x + 1 < w).then(|| i + 1),
            Dir2::Xm => (x > 0).then(|| i - 1),
            Dir2::Yp => (y + 1 < h).then(|| i + w),
            Dir2::Ym => (y > 0).then(|| i - w),
        }
    }

    /// Call `f` with the index of every in-space node of the 4-neighborhood
    /// of `i`, in [`Dir2::ALL`] order. On a torus all four probes wrap and
    /// every node has exactly four (distinct) neighbors.
    #[inline]
    pub fn for_neighbors4(self, i: usize, mut f: impl FnMut(usize)) {
        // One coordinate decomposition for all four probes (this runs in
        // the per-message hot loop of the protocol engine).
        let w = self.width as usize;
        let h = self.height as usize;
        let (x, y) = (i % w, i / w);
        if self.wrap {
            f(if x + 1 < w { i + 1 } else { i + 1 - w });
            f(if x > 0 { i - 1 } else { i + w - 1 });
            f(if y + 1 < h { i + w } else { i + w - w * h });
            f(if y > 0 { i - w } else { i + w * h - w });
            return;
        }
        if x + 1 < w {
            f(i + 1);
        }
        if x > 0 {
            f(i - 1);
        }
        if y + 1 < h {
            f(i + w);
        }
        if y > 0 {
            f(i - w);
        }
    }

    /// Call `f` with the index of every in-space node of the 8-neighborhood
    /// (face + diagonal) of `i`, in the order `+X, -X, +Y, -Y, (+1,+1),
    /// (+1,-1), (-1,+1), (-1,-1)` — the region-connectivity order used by
    /// MCC component discovery.
    #[inline]
    pub fn for_neighbors8(self, i: usize, mut f: impl FnMut(usize)) {
        const OFFS: [(i32, i32); 8] = [
            (1, 0),
            (-1, 0),
            (0, 1),
            (0, -1),
            (1, 1),
            (1, -1),
            (-1, 1),
            (-1, -1),
        ];
        let w = self.width as usize;
        let (x, y) = ((i % w) as i32, (i / w) as i32);
        if self.wrap {
            for (dx, dy) in OFFS {
                let nx = wrap_i(x + dx, self.width);
                let ny = wrap_i(y + dy, self.height);
                f((ny as usize) * w + (nx as usize));
            }
            return;
        }
        for (dx, dy) in OFFS {
            let (nx, ny) = (x + dx, y + dy);
            if nx >= 0 && ny >= 0 && nx < self.width && ny < self.height {
                f((ny as usize) * w + (nx as usize));
            }
        }
    }

    /// Iterate all coordinates in index (row-major) order.
    pub fn coords(self) -> impl Iterator<Item = C2> {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| C2 { x, y }))
    }
}

impl NodeSpace3 {
    /// The space of an `nx × ny × nz` mesh.
    ///
    /// # Panics
    /// If any dimension is not positive.
    pub fn new(nx: i32, ny: i32, nz: i32) -> NodeSpace3 {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "node space dimensions must be positive"
        );
        NodeSpace3 {
            nx,
            ny,
            nz,
            wrap: false,
        }
    }

    /// The space of an `nx × ny × nz` torus: every axis wraps modulo its
    /// extent.
    ///
    /// # Panics
    /// If any dimension is smaller than 3 (see [`NodeSpace2::torus`]).
    pub fn torus(nx: i32, ny: i32, nz: i32) -> NodeSpace3 {
        assert!(
            nx >= 3 && ny >= 3 && nz >= 3,
            "torus dimensions must be at least 3 (distinct +/- neighbors)"
        );
        NodeSpace3 {
            nx,
            ny,
            nz,
            wrap: true,
        }
    }

    /// True if this space wraps around (it is a torus).
    #[inline]
    pub fn wraps(self) -> bool {
        self.wrap
    }

    /// Reduce an arbitrary integer coordinate into the space modulo the
    /// extents (see [`NodeSpace2::wrap_coord`]).
    #[inline]
    pub fn wrap_coord(self, c: C3) -> C3 {
        C3 {
            x: wrap_i(c.x, self.nx),
            y: wrap_i(c.y, self.ny),
            z: wrap_i(c.z, self.nz),
        }
    }

    /// Topology-aware distance between two in-space nodes: Manhattan on a
    /// mesh, Lee distance (per-axis shorter arc) on a torus.
    #[inline]
    pub fn dist(self, a: C3, b: C3) -> u32 {
        if self.wrap {
            axis_lee(a.x, b.x, self.nx) + axis_lee(a.y, b.y, self.ny) + axis_lee(a.z, b.z, self.nz)
        } else {
            a.dist(b)
        }
    }

    /// Extent along X.
    #[inline]
    pub fn nx(self) -> i32 {
        self.nx
    }

    /// Extent along Y.
    #[inline]
    pub fn ny(self) -> i32 {
        self.ny
    }

    /// Extent along Z.
    #[inline]
    pub fn nz(self) -> i32 {
        self.nz
    }

    /// Total number of nodes.
    #[inline]
    pub fn len(self) -> usize {
        (self.nx as usize) * (self.ny as usize) * (self.nz as usize)
    }

    /// Node spaces are never empty (dimensions are positive).
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// True if `c` addresses a node of this space.
    #[inline]
    pub fn contains(self, c: C3) -> bool {
        c.x >= 0 && c.y >= 0 && c.z >= 0 && c.x < self.nx && c.y < self.ny && c.z < self.nz
    }

    /// Linear index of `c`.
    ///
    /// # Panics
    /// If `c` is outside the space.
    #[inline]
    pub fn index(self, c: C3) -> usize {
        assert!(
            self.contains(c),
            "coordinate {c:?} outside {}x{}x{} node space",
            self.nx,
            self.ny,
            self.nz
        );
        ((c.z as usize) * (self.ny as usize) + (c.y as usize)) * (self.nx as usize) + (c.x as usize)
    }

    /// Linear index of `c`, or `None` if outside the space.
    #[inline]
    pub fn index_checked(self, c: C3) -> Option<usize> {
        if self.contains(c) {
            Some(
                ((c.z as usize) * (self.ny as usize) + (c.y as usize)) * (self.nx as usize)
                    + (c.x as usize),
            )
        } else {
            None
        }
    }

    /// The coordinate of linear index `i`.
    #[inline]
    pub fn coord(self, i: usize) -> C3 {
        debug_assert!(i < self.len());
        let nx = self.nx as usize;
        let ny = self.ny as usize;
        C3 {
            x: (i % nx) as i32,
            y: ((i / nx) % ny) as i32,
            z: (i / (nx * ny)) as i32,
        }
    }

    /// The coordinate one step along `dir` from `c` (see
    /// [`NodeSpace2::step_c`]).
    #[inline]
    pub fn step_c(self, c: C3, dir: Dir3) -> Option<C3> {
        let n = c.step(dir);
        if self.wrap {
            Some(self.wrap_coord(n))
        } else if self.contains(n) {
            Some(n)
        } else {
            None
        }
    }

    /// The index one step along `dir` from `i`. `None` at a mesh border;
    /// on a torus every step exists (it wraps).
    #[inline]
    pub fn step(self, i: usize, dir: Dir3) -> Option<usize> {
        let nx = self.nx as usize;
        let ny = self.ny as usize;
        let nz = self.nz as usize;
        let plane = nx * ny;
        let (x, yz) = (i % nx, i / nx);
        let (y, z) = (yz % ny, yz / ny);
        if self.wrap {
            return Some(match dir {
                Dir3::Xp => {
                    if x + 1 < nx {
                        i + 1
                    } else {
                        i + 1 - nx
                    }
                }
                Dir3::Xm => {
                    if x > 0 {
                        i - 1
                    } else {
                        i + nx - 1
                    }
                }
                Dir3::Yp => {
                    if y + 1 < ny {
                        i + nx
                    } else {
                        i + nx - plane
                    }
                }
                Dir3::Ym => {
                    if y > 0 {
                        i - nx
                    } else {
                        i + plane - nx
                    }
                }
                Dir3::Zp => {
                    if z + 1 < nz {
                        i + plane
                    } else {
                        i + plane - plane * nz
                    }
                }
                Dir3::Zm => {
                    if z > 0 {
                        i - plane
                    } else {
                        i + plane * nz - plane
                    }
                }
            });
        }
        match dir {
            Dir3::Xp => (x + 1 < nx).then(|| i + 1),
            Dir3::Xm => (x > 0).then(|| i - 1),
            Dir3::Yp => (y + 1 < ny).then(|| i + nx),
            Dir3::Ym => (y > 0).then(|| i - nx),
            Dir3::Zp => (z + 1 < nz).then(|| i + plane),
            Dir3::Zm => (z > 0).then(|| i - plane),
        }
    }

    /// Call `f` with the index of every in-space node of the 6-neighborhood
    /// of `i`, in [`Dir3::ALL`] order. On a torus all six probes wrap and
    /// every node has exactly six (distinct) neighbors.
    #[inline]
    pub fn for_neighbors6(self, i: usize, mut f: impl FnMut(usize)) {
        // One coordinate decomposition for all six probes (hot loop of the
        // protocol engine).
        let nx = self.nx as usize;
        let ny = self.ny as usize;
        let nz = self.nz as usize;
        let plane = nx * ny;
        let (x, yz) = (i % nx, i / nx);
        let (y, z) = (yz % ny, yz / ny);
        if self.wrap {
            f(if x + 1 < nx { i + 1 } else { i + 1 - nx });
            f(if x > 0 { i - 1 } else { i + nx - 1 });
            f(if y + 1 < ny { i + nx } else { i + nx - plane });
            f(if y > 0 { i - nx } else { i + plane - nx });
            f(if z + 1 < nz {
                i + plane
            } else {
                i + plane - plane * nz
            });
            f(if z > 0 {
                i - plane
            } else {
                i + plane * nz - plane
            });
            return;
        }
        if x + 1 < nx {
            f(i + 1);
        }
        if x > 0 {
            f(i - 1);
        }
        if y + 1 < ny {
            f(i + nx);
        }
        if y > 0 {
            f(i - nx);
        }
        if z + 1 < nz {
            f(i + plane);
        }
        if z > 0 {
            f(i - plane);
        }
    }

    /// Call `f` with the index of every in-space node of the
    /// 18-neighborhood (face + planar diagonal) of `i`, in the
    /// region-connectivity order of MCC component discovery.
    #[inline]
    pub fn for_neighbors18(self, i: usize, mut f: impl FnMut(usize)) {
        const OFFS: [(i32, i32, i32); 18] = [
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
            (1, 1, 0),
            (1, -1, 0),
            (-1, 1, 0),
            (-1, -1, 0),
            (1, 0, 1),
            (1, 0, -1),
            (-1, 0, 1),
            (-1, 0, -1),
            (0, 1, 1),
            (0, 1, -1),
            (0, -1, 1),
            (0, -1, -1),
        ];
        let nx = self.nx as usize;
        let ny = self.ny as usize;
        let (x, yz) = (i % nx, i / nx);
        let (x, y, z) = (x as i32, (yz % ny) as i32, (yz / ny) as i32);
        if self.wrap {
            for (dx, dy, dz) in OFFS {
                let cx = wrap_i(x + dx, self.nx);
                let cy = wrap_i(y + dy, self.ny);
                let cz = wrap_i(z + dz, self.nz);
                f(((cz as usize) * ny + (cy as usize)) * nx + (cx as usize));
            }
            return;
        }
        for (dx, dy, dz) in OFFS {
            let (cx, cy, cz) = (x + dx, y + dy, z + dz);
            if cx >= 0 && cy >= 0 && cz >= 0 && cx < self.nx && cy < self.ny && cz < self.nz {
                f(((cz as usize) * ny + (cy as usize)) * nx + (cx as usize));
            }
        }
    }

    /// Iterate all coordinates in index order (x fastest, then y, then z).
    pub fn coords(self) -> impl Iterator<Item = C3> {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nz).flat_map(move |z| (0..ny).flat_map(move |y| (0..nx).map(move |x| C3 { x, y, z })))
    }
}

/// A packed bitset over the linear indices of a node space.
///
/// One bit per node in `u64` words: membership tests are a shift and mask,
/// iteration scans whole words with `trailing_zeros` (64 absent nodes per
/// loop step), and union/intersection/difference run word-parallel. This is
/// the frontier/visited/membership representation of every hot mesh kernel
/// (labelling closures, component BFS, detection floods, fault sampling).
///
/// All bits above `capacity()` are kept zero, so derived equality and the
/// word-level operations are exact.
#[derive(Clone, PartialEq, Eq)]
pub struct NodeSet {
    nbits: usize,
    ones: usize,
    words: Vec<u64>,
}

impl NodeSet {
    /// The empty set over a space of `nbits` nodes.
    pub fn new(nbits: usize) -> NodeSet {
        NodeSet {
            nbits,
            ones: 0,
            words: vec![0; nbits.div_ceil(64)],
        }
    }

    /// Build a set from node indices.
    ///
    /// # Panics
    /// If an index is out of range.
    pub fn from_indices(nbits: usize, indices: impl IntoIterator<Item = usize>) -> NodeSet {
        let mut set = NodeSet::new(nbits);
        for i in indices {
            set.insert(i);
        }
        set
    }

    /// Number of representable nodes (the size of the underlying space).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Number of member nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ones
    }

    /// True if no node is a member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// True if node `i` is a member.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits, "index {i} out of range {}", self.nbits);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Add node `i`. Returns `true` if it was not already a member.
    ///
    /// # Panics
    /// If `i` is out of range — a hard assert, since a phantom bit in the
    /// last partial word would break the all-bits-above-capacity-are-zero
    /// invariant that equality, `len` and iteration rely on.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "index {i} out of range {}", self.nbits);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Remove node `i`. Returns `true` if it was a member.
    ///
    /// # Panics
    /// If `i` is out of range (hard assert, as for [`NodeSet::insert`]).
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "index {i} out of range {}", self.nbits);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Remove every member without reallocating.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.ones = 0;
    }

    /// Re-dimension the set to a space of `nbits` nodes and empty it,
    /// growing the word storage only when a larger space than any seen
    /// before demands it. This is the scratch-buffer entry point: a
    /// routing trial loop can carry one `NodeSet` across boxes of varying
    /// size without allocating in steady state.
    pub fn reset(&mut self, nbits: usize) {
        self.clear();
        // Keep the word count exact (not merely sufficient) so derived
        // equality still matches a fresh `NodeSet::new(nbits)`; `Vec`
        // retains its capacity across truncate/resize, so only a space
        // larger than any seen before actually allocates.
        self.words.resize(nbits.div_ceil(64), 0);
        self.nbits = nbits;
    }

    /// In-place union: `self ∪= other`.
    ///
    /// # Panics
    /// If the sets cover differently sized spaces.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.nbits, other.nbits, "node set size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place intersection: `self ∩= other`.
    ///
    /// # Panics
    /// If the sets cover differently sized spaces.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.nbits, other.nbits, "node set size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.recount();
    }

    /// In-place difference: `self ∖= other`.
    ///
    /// # Panics
    /// If the sets cover differently sized spaces.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.nbits, other.nbits, "node set size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.recount();
    }

    /// Iterate the members of `self ∖ other` in increasing order without
    /// materializing the difference — the dirty-region view of a churn
    /// delta: `after.difference_iter(before)` walks exactly the nodes that
    /// flipped on, one masked word at a time.
    ///
    /// # Panics
    /// If the sets cover differently sized spaces.
    pub fn difference_iter<'a>(&'a self, other: &'a NodeSet) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.nbits, other.nbits, "node set size mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (&a, &b))| {
                let mut bits = a & !b;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let tz = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(wi * 64 + tz)
                    }
                })
            })
    }

    /// True if the sets share no member.
    ///
    /// # Panics
    /// If the sets cover differently sized spaces.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        assert_eq!(self.nbits, other.nbits, "node set size mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterate member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// The backing words (64 node bits each, index `i` at word `i / 64`,
    /// bit `i % 64`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Build a set over `nbits` nodes directly from its backing words —
    /// the assembly half of word-chunk-parallel set construction: threads
    /// fill disjoint `&mut [u64]` chunks of one `Vec` (word `w` covers
    /// indices `64·w .. 64·w + 64`, so chunks never share a node), and this
    /// constructor adopts the buffer, masks the tail bits above `nbits`
    /// (restoring the all-bits-above-capacity-are-zero invariant) and
    /// counts the members.
    ///
    /// # Panics
    /// If `words.len() != nbits.div_ceil(64)`.
    pub fn from_raw_words(nbits: usize, mut words: Vec<u64>) -> NodeSet {
        assert_eq!(
            words.len(),
            nbits.div_ceil(64),
            "word count must match the node space"
        );
        if !nbits.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (nbits % 64)) - 1;
            }
        }
        let mut set = NodeSet {
            nbits,
            ones: 0,
            words,
        };
        set.recount();
        set
    }

    /// Iterate member indices in `range` in increasing order — the shard
    /// view of the set: a contiguous index range dispatched on its own
    /// thread sees exactly the members a full iteration would visit there,
    /// in the same order. Only the (at most) two boundary words are
    /// bit-masked; interior words scan at full word speed.
    ///
    /// # Panics
    /// If `range.end` exceeds the capacity.
    pub fn iter_range(&self, range: Range<usize>) -> impl Iterator<Item = usize> + '_ {
        assert!(range.end <= self.nbits, "range end out of capacity");
        let (lo, hi) = (range.start, range.end);
        let first_word = lo / 64;
        let last_word = hi.div_ceil(64);
        self.words[first_word..last_word]
            .iter()
            .enumerate()
            .flat_map(move |(k, &word)| {
                let wi = first_word + k;
                let mut bits = word;
                if wi == lo / 64 {
                    bits &= !0u64 << (lo % 64);
                }
                if hi % 64 != 0 && wi == hi / 64 {
                    bits &= (1u64 << (hi % 64)) - 1;
                }
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let tz = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(wi * 64 + tz)
                    }
                })
            })
    }

    fn recount(&mut self) {
        self.ones = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl core::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NodeSet")
            .field("capacity", &self.nbits)
            .field("len", &self.ones)
            .finish()
    }
}

/// Dense per-node values keyed by linear node index.
///
/// The flat-array companion of [`NodeSet`]: same index space, arbitrary
/// payload. Thin by design — it is a `Vec<T>` that documents its indexing
/// contract and matches the node-space vocabulary of the surrounding code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeGrid<T> {
    data: Vec<T>,
}

impl<T: Clone> NodeGrid<T> {
    /// A grid of `len` nodes, every value set to `fill`.
    pub fn new(len: usize, fill: T) -> NodeGrid<T> {
        NodeGrid {
            data: vec![fill; len],
        }
    }

    /// Reset every value to `fill` without reallocating.
    pub fn fill(&mut self, fill: T) {
        self.data.iter_mut().for_each(|v| *v = fill.clone());
    }
}

impl<T> NodeGrid<T> {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the grid holds no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the value at node `i`, or `None` if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        self.data.get(i)
    }

    /// The backing slice in index order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The mutable backing slice in index order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate `(index, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.data.iter().enumerate()
    }
}

impl<T> core::ops::Index<usize> for NodeGrid<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> core::ops::IndexMut<usize> for NodeGrid<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::{c2, c3};

    #[test]
    fn from_raw_words_masks_tail_and_counts() {
        // 70 bits -> 2 words; the second word's bits above 70 - 64 = 6 must
        // be dropped, and membership must equal an insert-built set.
        let words = vec![0b1011u64, u64::MAX];
        let set = NodeSet::from_raw_words(70, words);
        let expect = NodeSet::from_indices(70, (64..70).chain([0, 1, 3]));
        assert_eq!(set, expect);
        assert_eq!(set.len(), 9);
        assert!(!set.contains(63));
    }

    #[test]
    #[should_panic]
    fn from_raw_words_rejects_wrong_word_count() {
        NodeSet::from_raw_words(70, vec![0u64]);
    }

    #[test]
    fn difference_iter_matches_materialized_difference() {
        let a = NodeSet::from_indices(200, [0, 1, 63, 64, 65, 130, 199]);
        let b = NodeSet::from_indices(200, [1, 64, 130, 140]);
        let lazy: Vec<usize> = a.difference_iter(&b).collect();
        let mut diff = a.clone();
        diff.difference_with(&b);
        let materialized: Vec<usize> = diff.iter().collect();
        assert_eq!(lazy, materialized);
        assert_eq!(lazy, vec![0, 63, 65, 199]);
        assert!(b.difference_iter(&a).eq([140]));
    }

    #[test]
    fn iter_range_matches_filtered_full_iteration() {
        let members = [0usize, 3, 63, 64, 65, 127, 128, 199];
        let set = NodeSet::from_indices(200, members);
        for (lo, hi) in [(0, 200), (1, 64), (63, 65), (64, 128), (65, 65), (100, 199)] {
            let ranged: Vec<usize> = set.iter_range(lo..hi).collect();
            let filtered: Vec<usize> = set.iter().filter(|&i| (lo..hi).contains(&i)).collect();
            assert_eq!(ranged, filtered, "range {lo}..{hi}");
        }
    }

    #[test]
    fn iter_range_bands_partition_full_iteration() {
        // Shard contract: contiguous bands concatenated in order must
        // reproduce a full iteration exactly.
        let set = NodeSet::from_indices(333, (0..333).filter(|i| i % 7 == 0 || i % 11 == 3));
        let all: Vec<usize> = set.iter().collect();
        let mut merged = Vec::new();
        for band in crate::par::bands(333, 5) {
            merged.extend(set.iter_range(band));
        }
        assert_eq!(merged, all);
    }

    #[test]
    fn reset_redimensions_and_preserves_equality() {
        let mut set = NodeSet::new(300);
        set.insert(5);
        set.insert(299);
        set.reset(40);
        assert_eq!(set.capacity(), 40);
        assert!(set.is_empty());
        set.insert(39);
        assert_eq!(set, NodeSet::from_indices(40, [39]));
        // Growing again past the original space still behaves like new.
        set.reset(1000);
        assert!(set.is_empty());
        set.insert(999);
        assert_eq!(set, NodeSet::from_indices(1000, [999]));
    }

    #[test]
    fn space2_roundtrip() {
        let s = NodeSpace2::new(5, 3);
        assert_eq!(s.len(), 15);
        for (i, c) in s.coords().enumerate() {
            assert_eq!(s.index(c), i);
            assert_eq!(s.coord(i), c);
        }
        assert_eq!(s.index_checked(c2(5, 0)), None);
        assert_eq!(s.index_checked(c2(0, -1)), None);
    }

    #[test]
    fn space3_roundtrip() {
        let s = NodeSpace3::new(3, 4, 5);
        assert_eq!(s.len(), 60);
        for (i, c) in s.coords().enumerate() {
            assert_eq!(s.index(c), i);
            assert_eq!(s.coord(i), c);
        }
        assert_eq!(s.index_checked(c3(3, 0, 0)), None);
    }

    #[test]
    fn space_steps_match_coordinate_steps() {
        let s2 = NodeSpace2::new(4, 4);
        for c in s2.coords() {
            for d in Dir2::ALL {
                let via_coord = s2.index_checked(c.step(d));
                assert_eq!(s2.step(s2.index(c), d), via_coord, "{c:?} {d:?}");
            }
        }
        let s3 = NodeSpace3::new(3, 3, 3);
        for c in s3.coords() {
            for d in Dir3::ALL {
                let via_coord = s3.index_checked(c.step(d));
                assert_eq!(s3.step(s3.index(c), d), via_coord, "{c:?} {d:?}");
            }
        }
    }

    #[test]
    fn neighbors8_matches_offsets() {
        let s = NodeSpace2::new(6, 6);
        for c in s.coords() {
            let mut got = Vec::new();
            s.for_neighbors8(s.index(c), |j| got.push(s.coord(j)));
            let expect: Vec<C2> = [
                (1, 0),
                (-1, 0),
                (0, 1),
                (0, -1),
                (1, 1),
                (1, -1),
                (-1, 1),
                (-1, -1),
            ]
            .iter()
            .map(|&(dx, dy)| c2(c.x + dx, c.y + dy))
            .filter(|&n| s.contains(n))
            .collect();
            assert_eq!(got, expect, "at {c:?}");
        }
    }

    #[test]
    fn neighbors18_count_is_correct() {
        let s = NodeSpace3::new(4, 4, 4);
        // interior node has all 18 neighbors
        let mut n = 0;
        s.for_neighbors18(s.index(c3(1, 1, 1)), |_| n += 1);
        assert_eq!(n, 18);
        // a corner keeps only the inward ones
        let mut corner = Vec::new();
        s.for_neighbors18(s.index(c3(0, 0, 0)), |j| corner.push(s.coord(j)));
        assert_eq!(corner.len(), 6); // 3 faces + 3 planar diagonals
        assert!(corner.contains(&c3(1, 1, 0)));
        assert!(!corner.contains(&c3(1, 1, 1))); // space diagonal excluded
    }

    #[test]
    fn torus2_neighbors_wrap_and_stay_distinct() {
        let s = NodeSpace2::torus(5, 3);
        assert!(s.wraps());
        assert!(!NodeSpace2::new(5, 3).wraps());
        // Every node has exactly 4 distinct face neighbors and 8 distinct
        // 8-neighbors.
        for i in 0..s.len() {
            let mut n4 = Vec::new();
            s.for_neighbors4(i, |j| n4.push(j));
            n4.sort_unstable();
            n4.dedup();
            assert_eq!(n4.len(), 4, "node {i}");
            let mut n8 = Vec::new();
            s.for_neighbors8(i, |j| n8.push(j));
            n8.sort_unstable();
            n8.dedup();
            assert_eq!(n8.len(), 8, "node {i}");
        }
        // A corner wraps to the opposite edges.
        let corner = s.index(c2(0, 0));
        let mut got = Vec::new();
        s.for_neighbors4(corner, |j| got.push(s.coord(j)));
        assert_eq!(got, vec![c2(1, 0), c2(4, 0), c2(0, 1), c2(0, 2)]);
    }

    #[test]
    fn torus3_step_wraps_every_direction() {
        let s = NodeSpace3::torus(3, 4, 5);
        for i in 0..s.len() {
            let c = s.coord(i);
            for d in Dir3::ALL {
                let j = s.step(i, d).expect("torus steps always exist");
                assert_eq!(s.coord(j), s.wrap_coord(c.step(d)), "{c:?} {d:?}");
            }
            let mut n6 = Vec::new();
            s.for_neighbors6(i, |j| n6.push(j));
            n6.sort_unstable();
            n6.dedup();
            assert_eq!(n6.len(), 6, "node {i}");
            let mut n18 = Vec::new();
            s.for_neighbors18(i, |j| n18.push(j));
            n18.sort_unstable();
            n18.dedup();
            assert_eq!(n18.len(), 18, "node {i}");
        }
    }

    #[test]
    fn torus_distances_take_the_shorter_arc() {
        let s = NodeSpace2::torus(8, 8);
        assert_eq!(s.dist(c2(0, 0), c2(7, 0)), 1);
        assert_eq!(s.dist(c2(0, 0), c2(4, 4)), 8);
        assert_eq!(s.dist(c2(1, 1), c2(6, 7)), 3 + 2);
        let m = NodeSpace2::new(8, 8);
        assert_eq!(m.dist(c2(0, 0), c2(7, 0)), 7);
        let t3 = NodeSpace3::torus(6, 6, 6);
        assert_eq!(t3.dist(c3(0, 0, 0), c3(5, 3, 4)), 1 + 3 + 2);
    }

    #[test]
    fn wrap_coord_normalizes() {
        let s = NodeSpace2::torus(5, 4);
        assert_eq!(s.wrap_coord(c2(-1, 4)), c2(4, 0));
        assert_eq!(s.wrap_coord(c2(7, -5)), c2(2, 3));
        assert_eq!(s.wrap_coord(c2(3, 2)), c2(3, 2));
    }

    #[test]
    #[should_panic]
    fn tiny_torus_rejected() {
        NodeSpace2::torus(2, 8);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64) && !s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn set_iteration_is_sorted_and_complete() {
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 129];
        let s = NodeSet::from_indices(200, idx);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, idx.to_vec());
        assert_eq!(s.len(), idx.len());
    }

    #[test]
    fn set_algebra() {
        let a0 = NodeSet::from_indices(100, [1, 2, 3, 70]);
        let b = NodeSet::from_indices(100, [2, 3, 4, 99]);
        let mut u = a0.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70, 99]);
        let mut i = a0.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut d = a0.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert!(d.is_disjoint(&i));
        assert!(!a0.is_disjoint(&b));
    }

    #[test]
    fn trailing_word_bits_stay_zero() {
        let mut s = NodeSet::new(70);
        s.insert(69);
        let t = NodeSet::from_indices(70, [69]);
        assert_eq!(s, t);
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[1] & !0b111111, 0);
    }

    #[test]
    fn node_grid_roundtrip() {
        let mut g = NodeGrid::new(10, 0u32);
        g[3] = 7;
        assert_eq!(g[3], 7);
        assert_eq!(g.get(10), None);
        assert_eq!(g.iter().filter(|&(_, &v)| v != 0).count(), 1);
        g.fill(1);
        assert!(g.as_slice().iter().all(|&v| v == 1));
        assert_eq!(g.len(), 10);
    }
}
