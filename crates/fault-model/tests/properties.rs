//! Property-based validation of the MCC model's central theorems.
//!
//! * **Closure minimality** (Wang 2-D, Jiang–Wu–Wang 3-D): for safe
//!   endpoints, a monotone path avoiding the *faults* exists iff one
//!   avoiding the whole *unsafe closure* exists — no healthy node an MCC
//!   captures could ever have helped a minimal routing.
//! * **Shape**: every 2-D MCC is HV-convex (contiguous rows/columns).
//! * **Condition exactness**: `minimal_path_exists_2d/3d` agrees with the
//!   fault-avoiding oracle for every endpoint combination.
//! * **Model ordering**: MCC sacrifices ≤ RFB sacrifices; RFB success
//!   implies MCC success.
//! * **Representation equivalence**: the flat bitset pipeline
//!   (raster-sweep labelling + index-BFS components) produces identical
//!   statuses and component partitions to the hash-based reference
//!   ([`fault_model::reference`]) on random meshes, under both border
//!   policies.

use fault_model::components::{Components2, Components3};
use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::{
    minimal_path_exists_2d, minimal_path_exists_3d, BorderPolicy, FaultBlocks2, FaultBlocks3,
    Labelling2, Labelling3,
};
use fault_model::{oracle, reference};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, C2, C3};
use proptest::prelude::*;

const W: i32 = 12;
const K: i32 = 8;

fn arb_mesh2() -> impl Strategy<Value = Mesh2D> {
    proptest::collection::vec((0..W, 0..W), 0..20).prop_map(|faults| {
        let mut mesh = Mesh2D::new(W, W);
        for (x, y) in faults {
            let c = c2(x, y);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        mesh
    })
}

fn arb_mesh3() -> impl Strategy<Value = Mesh3D> {
    proptest::collection::vec((0..K, 0..K, 0..K), 0..32).prop_map(|faults| {
        let mut mesh = Mesh3D::kary(K);
        for (x, y, z) in faults {
            let c = c3(x, y, z);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        mesh
    })
}

fn canon_pair2(s: C2, d: C2) -> (C2, C2) {
    (
        c2(s.x.min(d.x), s.y.min(d.y)),
        c2(s.x.max(d.x), s.y.max(d.y)),
    )
}

fn canon_pair3(s: C3, d: C3) -> (C3, C3) {
    (
        c3(s.x.min(d.x), s.y.min(d.y), s.z.min(d.z)),
        c3(s.x.max(d.x), s.y.max(d.y), s.z.max(d.z)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Wang's minimality theorem in 2-D: the closure blocks no reachable
    /// safe destination.
    #[test]
    fn closure_minimality_2d(mesh in arb_mesh2(), sx in 0..W, sy in 0..W, dx in 0..W, dy in 0..W) {
        let (s, d) = canon_pair2(c2(sx, sy), c2(dx, dy));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        prop_assume!(lab.status(s).is_safe() && lab.status(d).is_safe());
        let via_faults = oracle::reachable_2d(s, d, |c| mesh.is_faulty(c) || !mesh.contains(c));
        let via_closure = oracle::reachable_2d(s, d, |c| lab.status_get(c).map(|t| t.is_unsafe()).unwrap_or(true));
        prop_assert_eq!(via_faults, via_closure,
            "closure changed reachability: s={} d={} faults={:?}", s, d, mesh.faults());
    }

    /// Jiang–Wu–Wang minimality in 3-D.
    #[test]
    fn closure_minimality_3d(mesh in arb_mesh3(),
                             sx in 0..K, sy in 0..K, sz in 0..K,
                             dx in 0..K, dy in 0..K, dz in 0..K) {
        let (s, d) = canon_pair3(c3(sx, sy, sz), c3(dx, dy, dz));
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        prop_assume!(lab.status(s).is_safe() && lab.status(d).is_safe());
        let via_faults = oracle::reachable_3d(s, d, |c| mesh.is_faulty(c) || !mesh.contains(c));
        let via_closure = oracle::reachable_3d(s, d, |c| lab.status_get(c).map(|t| t.is_unsafe()).unwrap_or(true));
        prop_assert_eq!(via_faults, via_closure,
            "closure changed reachability: s={} d={} faults={:?}", s, d, mesh.faults());
    }

    /// Every 2-D MCC is HV-convex, for every quadrant orientation.
    #[test]
    fn mcc2_shape_hv_convex(mesh in arb_mesh2()) {
        for frame in Frame2::all(&mesh) {
            let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
            let set = MccSet2::compute(&lab);
            for m in set.iter() {
                prop_assert!(m.is_hv_convex(),
                    "non-HV-convex MCC (frame {:?}): cells {:?}", frame, m.cells);
                // contains() (profile-based) must agree with the cell list.
                for &c in &m.cells {
                    prop_assert!(m.contains(c));
                }
            }
        }
    }

    /// The 2-D existence condition equals ground truth for all endpoint
    /// statuses (safe, useless, can't-reach) of healthy endpoints.
    #[test]
    fn condition2_exact(mesh in arb_mesh2(), sx in 0..W, sy in 0..W, dx in 0..W, dy in 0..W) {
        let (s, d) = canon_pair2(c2(sx, sy), c2(dx, dy));
        prop_assume!(mesh.is_healthy(s) && mesh.is_healthy(d));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let set = MccSet2::compute(&lab);
        let claim = minimal_path_exists_2d(&lab, &set, s, d).exists();
        let truth = oracle::reachable_2d(s, d, |c| mesh.is_faulty(c) || !mesh.contains(c));
        prop_assert_eq!(claim, truth,
            "condition mismatch: s={} d={} s_status={:?} d_status={:?} faults={:?}",
            s, d, lab.status(s), lab.status(d), mesh.faults());
    }

    /// The 3-D existence condition equals ground truth.
    #[test]
    fn condition3_exact(mesh in arb_mesh3(),
                        sx in 0..K, sy in 0..K, sz in 0..K,
                        dx in 0..K, dy in 0..K, dz in 0..K) {
        let (s, d) = canon_pair3(c3(sx, sy, sz), c3(dx, dy, dz));
        prop_assume!(mesh.is_healthy(s) && mesh.is_healthy(d));
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        let claim = minimal_path_exists_3d(&lab, s, d).exists();
        let truth = oracle::reachable_3d(s, d, |c| mesh.is_faulty(c) || !mesh.contains(c));
        prop_assert_eq!(claim, truth,
            "condition mismatch: s={} d={} faults={:?}", s, d, mesh.faults());
    }

    /// MCC is the finer model: it never sacrifices more healthy nodes than
    /// rectangular blocks, in any orientation (2-D).
    #[test]
    fn mcc2_finer_than_rfb2(mesh in arb_mesh2()) {
        let blocks = FaultBlocks2::compute(&mesh);
        for frame in Frame2::all(&mesh) {
            let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
            prop_assert!(lab.sacrificed_count() <= blocks.sacrificed_count());
            // Stronger: every node an MCC captures, RFB captures too.
            for c in mesh.nodes() {
                if lab.status_mesh(c).is_unsafe() {
                    prop_assert!(blocks.is_disabled(c),
                        "MCC captured {} but RFB did not", c);
                }
            }
        }
    }

    /// Same in 3-D.
    #[test]
    fn mcc3_finer_than_rfb3(mesh in arb_mesh3()) {
        let blocks = FaultBlocks3::compute(&mesh);
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        prop_assert!(lab.sacrificed_count() <= blocks.sacrificed_count());
        for c in mesh.nodes() {
            if lab.status_mesh(c).is_unsafe() {
                prop_assert!(blocks.is_disabled(c));
            }
        }
    }

    /// RFB success implies MCC success (the success-rate ordering of the
    /// paper's evaluation): if a monotone path avoids all block nodes it
    /// certainly avoids all faults.
    #[test]
    fn rfb2_success_implies_mcc_success(mesh in arb_mesh2(),
                                        sx in 0..W, sy in 0..W, dx in 0..W, dy in 0..W) {
        let (s, d) = canon_pair2(c2(sx, sy), c2(dx, dy));
        prop_assume!(mesh.is_healthy(s) && mesh.is_healthy(d));
        let blocks = FaultBlocks2::compute(&mesh);
        if blocks.minimal_path_exists(&mesh, s, d) {
            let truth = oracle::reachable_2d(s, d, |c| mesh.is_faulty(c) || !mesh.contains(c));
            prop_assert!(truth);
        }
    }

    /// The flat (bitset) labelling equals the hash-based reference on every
    /// node, for both border policies and every quadrant orientation (2-D).
    #[test]
    fn flat_labelling2_equals_hash_reference(mesh in arb_mesh2()) {
        for policy in [BorderPolicy::BorderSafe, BorderPolicy::BorderBlocked] {
            for frame in Frame2::all(&mesh) {
                let flat = Labelling2::compute(&mesh, frame, policy);
                let hash = reference::HashLabelling2::compute(&mesh, frame, policy);
                for (c, st) in flat.iter() {
                    prop_assert_eq!(st, hash.status[&c],
                        "status mismatch at {} (policy {:?}, frame {:?})", c, policy, frame);
                }
                prop_assert_eq!(flat.unsafe_count(), hash.unsafe_cells().len());
            }
        }
    }

    /// Same in 3-D (identity octant, both policies — the octant sweep is
    /// covered by the labelling unit tests).
    #[test]
    fn flat_labelling3_equals_hash_reference(mesh in arb_mesh3()) {
        for policy in [BorderPolicy::BorderSafe, BorderPolicy::BorderBlocked] {
            let frame = Frame3::identity(&mesh);
            let flat = Labelling3::compute(&mesh, frame, policy);
            let hash = reference::HashLabelling3::compute(&mesh, frame, policy);
            for (c, st) in flat.iter() {
                prop_assert_eq!(st, hash.status[&c],
                    "status mismatch at {} (policy {:?})", c, policy);
            }
            prop_assert_eq!(flat.unsafe_count(), hash.unsafe_cells().len());
        }
    }

    /// The flat component discovery produces the same partition of the
    /// unsafe set as the hash-based reference (compared as sorted sets of
    /// sorted cell lists, so discovery order cannot mask a difference).
    #[test]
    fn flat_components_equal_hash_reference(mesh in arb_mesh2(), mesh3 in arb_mesh3()) {
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let mut flat: Vec<Vec<_>> = Components2::compute(&lab)
            .cells
            .into_iter()
            .map(|mut v| { v.sort(); v })
            .collect();
        flat.sort();
        let hash = reference::components2_hash(&reference::HashLabelling2::compute(
            &mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe));
        prop_assert_eq!(flat, hash, "2-D partition mismatch: faults {:?}", mesh.faults());

        let lab3 = Labelling3::compute(&mesh3, Frame3::identity(&mesh3), BorderPolicy::BorderSafe);
        let mut flat3: Vec<Vec<_>> = Components3::compute(&lab3)
            .cells
            .into_iter()
            .map(|mut v| { v.sort(); v })
            .collect();
        flat3.sort();
        let hash3 = reference::components3_hash(&reference::HashLabelling3::compute(
            &mesh3, Frame3::identity(&mesh3), BorderPolicy::BorderSafe));
        prop_assert_eq!(flat3, hash3, "3-D partition mismatch: faults {:?}", mesh3.faults());
    }

    /// Components partition the unsafe set (2-D and 3-D).
    #[test]
    fn components_partition_unsafe(mesh in arb_mesh2(), mesh3 in arb_mesh3()) {
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        let total: usize = comps.cells.iter().map(|v| v.len()).sum();
        prop_assert_eq!(total, lab.unsafe_count());
        let lab3 = Labelling3::compute(&mesh3, Frame3::identity(&mesh3), BorderPolicy::BorderSafe);
        let comps3 = Components3::compute(&lab3);
        let total3: usize = comps3.cells.iter().map(|v| v.len()).sum();
        prop_assert_eq!(total3, lab3.unsafe_count());
        let set3 = MccSet3::compute(&lab3);
        prop_assert_eq!(set3.len(), comps3.len());
    }
}

// ---- torus battery -------------------------------------------------------
//
// On a torus every axis wraps, so the raster sweeps iterate to a fixpoint
// and the per-pair frame composes a rotation with the reflection. These
// properties pin the whole wrap layer:
//
// * the sweep fixpoint equals a brute-force worklist closure over the
//   wrapped neighbor relation (the definitional form of Algorithms 1/4),
// * closure minimality and condition exactness carry over to the torus
//   through the shorter-arc canonical frame.

use fault_model::NodeStatus;
use mesh_topo::{Dir2, Dir3};

fn arb_torus2() -> impl Strategy<Value = Mesh2D> {
    (
        3i32..9,
        3i32..9,
        proptest::collection::vec((0i32..9, 0i32..9), 0..14),
    )
        .prop_map(|(w, h, faults)| {
            let mut mesh = Mesh2D::torus(w, h);
            for (x, y) in faults {
                let c = c2(x % w, y % h);
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            mesh
        })
}

fn arb_torus3() -> impl Strategy<Value = Mesh3D> {
    (
        3i32..6,
        3i32..6,
        3i32..6,
        proptest::collection::vec((0i32..6, 0i32..6, 0i32..6), 0..18),
    )
        .prop_map(|(nx, ny, nz, faults)| {
            let mut mesh = Mesh3D::torus(nx, ny, nz);
            for (x, y, z) in faults {
                let c = c3(x % nx, y % ny, z % nz);
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            mesh
        })
}

/// Definitional worklist closure with wrapped neighbors.
fn worklist_closure_2d(mesh: &Mesh2D) -> Vec<NodeStatus> {
    let space = mesh.space();
    let mut st = vec![NodeStatus::SAFE; space.len()];
    for &f in mesh.faults() {
        st[space.index(f)] = NodeStatus::FAULT;
    }
    let nbr = |c: C2, d: Dir2| space.index(space.wrap_coord(c.step(d)));
    loop {
        let mut changed = false;
        for c in mesh.nodes() {
            let i = space.index(c);
            if !st[i].blocks_forward()
                && st[nbr(c, Dir2::Xp)].blocks_forward()
                && st[nbr(c, Dir2::Yp)].blocks_forward()
            {
                st[i].mark_useless();
                changed = true;
            }
            if !st[i].blocks_backward()
                && st[nbr(c, Dir2::Xm)].blocks_backward()
                && st[nbr(c, Dir2::Ym)].blocks_backward()
            {
                st[i].mark_cant_reach();
                changed = true;
            }
        }
        if !changed {
            return st;
        }
    }
}

/// 3-D twin of [`worklist_closure_2d`].
fn worklist_closure_3d(mesh: &Mesh3D) -> Vec<NodeStatus> {
    let space = mesh.space();
    let mut st = vec![NodeStatus::SAFE; space.len()];
    for &f in mesh.faults() {
        st[space.index(f)] = NodeStatus::FAULT;
    }
    let nbr = |c: C3, d: Dir3| space.index(space.wrap_coord(c.step(d)));
    loop {
        let mut changed = false;
        for c in mesh.nodes() {
            let i = space.index(c);
            if !st[i].blocks_forward()
                && st[nbr(c, Dir3::Xp)].blocks_forward()
                && st[nbr(c, Dir3::Yp)].blocks_forward()
                && st[nbr(c, Dir3::Zp)].blocks_forward()
            {
                st[i].mark_useless();
                changed = true;
            }
            if !st[i].blocks_backward()
                && st[nbr(c, Dir3::Xm)].blocks_backward()
                && st[nbr(c, Dir3::Ym)].blocks_backward()
                && st[nbr(c, Dir3::Zm)].blocks_backward()
            {
                st[i].mark_cant_reach();
                changed = true;
            }
        }
        if !changed {
            return st;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The wrap-aware sweep fixpoint equals the definitional worklist
    /// closure, per node and per status bit (2-D).
    #[test]
    fn torus_labelling2_equals_worklist_oracle(mesh in arb_torus2()) {
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let oracle_status = worklist_closure_2d(&mesh);
        let space = mesh.space();
        for c in mesh.nodes() {
            prop_assert_eq!(
                lab.status(c), oracle_status[space.index(c)],
                "status mismatch at {} faults={:?}", c, mesh.faults());
        }
    }

    /// Same in 3-D.
    #[test]
    fn torus_labelling3_equals_worklist_oracle(mesh in arb_torus3()) {
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        let oracle_status = worklist_closure_3d(&mesh);
        let space = mesh.space();
        for c in mesh.nodes() {
            prop_assert_eq!(
                lab.status(c), oracle_status[space.index(c)],
                "status mismatch at {} faults={:?}", c, mesh.faults());
        }
    }

    /// Closure minimality survives the wrap: through the shorter-arc
    /// canonical frame, avoiding the closure blocks no safe destination a
    /// fault-avoiding minimal path could reach.
    #[test]
    fn torus_closure_minimality_2d(mesh in arb_torus2(), sx in 0i32..9, sy in 0i32..9,
                                   dx in 0i32..9, dy in 0i32..9) {
        let (w, h) = (mesh.width(), mesh.height());
        let (s, d) = (c2(sx % w, sy % h), c2(dx % w, dy % h));
        let frame = Frame2::for_pair(&mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
        prop_assume!(lab.status(cs).is_safe() && lab.status(cd).is_safe());
        let via_faults = oracle::reachable_2d(cs, cd, |c| {
            !mesh.contains(frame.from_canon(c)) || mesh.is_faulty(frame.from_canon(c))
        });
        let via_closure = oracle::reachable_2d(cs, cd,
            |c| lab.status_get(c).map(|t| t.is_unsafe()).unwrap_or(true));
        prop_assert_eq!(via_faults, via_closure,
            "closure changed torus reachability: s={} d={} faults={:?}", s, d, mesh.faults());
    }

    /// The 2-D existence condition stays exact on tori for healthy
    /// endpoints of any label.
    #[test]
    fn torus_condition2_exact(mesh in arb_torus2(), sx in 0i32..9, sy in 0i32..9,
                              dx in 0i32..9, dy in 0i32..9) {
        let (w, h) = (mesh.width(), mesh.height());
        let (s, d) = (c2(sx % w, sy % h), c2(dx % w, dy % h));
        prop_assume!(mesh.is_healthy(s) && mesh.is_healthy(d));
        let frame = Frame2::for_pair(&mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        let lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
        let set = MccSet2::compute(&lab);
        let claim = minimal_path_exists_2d(&lab, &set, cs, cd).exists();
        let truth = oracle::reachable_2d(cs, cd, |c| mesh.is_faulty(frame.from_canon(c)));
        prop_assert_eq!(claim, truth,
            "torus condition mismatch: s={} d={} cs={} cd={} faults={:?}",
            s, d, cs, cd, mesh.faults());
    }

    /// The 3-D existence condition stays exact on tori.
    #[test]
    fn torus_condition3_exact(mesh in arb_torus3(),
                              sx in 0i32..6, sy in 0i32..6, sz in 0i32..6,
                              dx in 0i32..6, dy in 0i32..6, dz in 0i32..6) {
        let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
        let (s, d) = (c3(sx % nx, sy % ny, sz % nz), c3(dx % nx, dy % ny, dz % nz));
        prop_assume!(mesh.is_healthy(s) && mesh.is_healthy(d));
        let frame = Frame3::for_pair(&mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        let lab = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
        let claim = minimal_path_exists_3d(&lab, cs, cd).exists();
        let truth = oracle::reachable_3d(cs, cd, |c| mesh.is_faulty(frame.from_canon(c)));
        prop_assert_eq!(claim, truth,
            "torus condition mismatch: s={} d={} faults={:?}", s, d, mesh.faults());
    }
}
