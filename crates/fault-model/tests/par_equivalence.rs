//! Pinning battery: the tiled wavefront labelling (`compute_par`) is
//! **bit-for-bit equal** to the sequential raster sweeps (`compute`) on
//! random meshes and tori, under both border policies, for every thread
//! count — statuses, unsafe bitsets and counts all identical. Mesh sizes
//! sit at/above the `PAR_MIN_NODES` floor so the parallel path really
//! runs (it falls back to the sequential sweeps below 4096 nodes).

use fault_model::{BorderPolicy, Labelling2, Labelling3};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, Parallelism};
use proptest::prelude::*;

/// Thread budgets exercised against the sequential baseline. 1 is the
/// fallback path; the rest force real tile fan-out (incl. more threads
/// than this machine has cores, and more tiles than rows is impossible —
/// bands() caps at the row count).
const THREADS: [usize; 4] = [1, 2, 5, 8];

fn assert_lab2_eq(mesh: &Mesh2D, frame: Frame2, policy: BorderPolicy) {
    let seq = Labelling2::compute(mesh, frame, policy);
    for t in THREADS {
        let par = Labelling2::compute_par(mesh, frame, policy, Parallelism::new(t));
        for ((c, a), (_, b)) in seq.iter().zip(par.iter()) {
            assert_eq!(a, b, "status diverged at {c} with {t} threads");
        }
        assert_eq!(seq.unsafe_set(), par.unsafe_set(), "{t} threads");
        assert_eq!(seq.unsafe_count(), par.unsafe_count());
        assert_eq!(seq.sacrificed_count(), par.sacrificed_count());
    }
}

fn assert_lab3_eq(mesh: &Mesh3D, frame: Frame3, policy: BorderPolicy) {
    let seq = Labelling3::compute(mesh, frame, policy);
    for t in THREADS {
        let par = Labelling3::compute_par(mesh, frame, policy, Parallelism::new(t));
        for ((c, a), (_, b)) in seq.iter().zip(par.iter()) {
            assert_eq!(a, b, "status diverged at {c} with {t} threads");
        }
        assert_eq!(seq.unsafe_set(), par.unsafe_set(), "{t} threads");
        assert_eq!(seq.unsafe_count(), par.unsafe_count());
        assert_eq!(seq.sacrificed_count(), par.sacrificed_count());
    }
}

/// Random faults over a `64×64` grid (4096 nodes — at the parallel
/// floor). Dense enough (up to ~12%) to build long label cascades that
/// cross tile boundaries and force wavefront re-enqueues.
fn faults2() -> impl Strategy<Value = Vec<(i32, i32)>> {
    proptest::collection::vec((0..64i32, 0..64i32), 0..500)
}

fn mesh2(faults: &[(i32, i32)], wrap: bool) -> Mesh2D {
    let mut mesh = if wrap {
        Mesh2D::torus(64, 64)
    } else {
        Mesh2D::new(64, 64)
    };
    for &(x, y) in faults {
        let c = c2(x, y);
        if mesh.is_healthy(c) {
            mesh.inject_fault(c);
        }
    }
    mesh
}

fn faults3() -> impl Strategy<Value = Vec<(i32, i32, i32)>> {
    proptest::collection::vec((0..16i32, 0..16i32, 0..16i32), 0..500)
}

fn mesh3(faults: &[(i32, i32, i32)], wrap: bool) -> Mesh3D {
    let mut mesh = if wrap {
        Mesh3D::torus_kary(16)
    } else {
        Mesh3D::kary(16)
    };
    for &(x, y, z) in faults {
        let c = c3(x, y, z);
        if mesh.is_healthy(c) {
            mesh.inject_fault(c);
        }
    }
    mesh
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_labelling2_mesh_matches_sequential(faults in faults2()) {
        let mesh = mesh2(&faults, false);
        let frame = Frame2::identity(&mesh);
        assert_lab2_eq(&mesh, frame, BorderPolicy::BorderSafe);
        assert_lab2_eq(&mesh, frame, BorderPolicy::BorderBlocked);
    }

    #[test]
    fn par_labelling2_torus_matches_sequential(faults in faults2()) {
        let torus = mesh2(&faults, true);
        let frame = Frame2::identity(&torus);
        assert_lab2_eq(&torus, frame, BorderPolicy::BorderSafe);
    }

    #[test]
    fn par_labelling2_reflected_frame_matches_sequential(faults in faults2()) {
        let mesh = mesh2(&faults, false);
        let frame = Frame2::for_pair(&mesh, c2(63, 0), c2(0, 63));
        assert_lab2_eq(&mesh, frame, BorderPolicy::BorderSafe);
    }

    #[test]
    fn par_labelling3_mesh_matches_sequential(faults in faults3()) {
        let mesh = mesh3(&faults, false);
        let frame = Frame3::identity(&mesh);
        assert_lab3_eq(&mesh, frame, BorderPolicy::BorderSafe);
        assert_lab3_eq(&mesh, frame, BorderPolicy::BorderBlocked);
    }

    #[test]
    fn par_labelling3_torus_matches_sequential(faults in faults3()) {
        let torus = mesh3(&faults, true);
        let frame = Frame3::identity(&torus);
        assert_lab3_eq(&torus, frame, BorderPolicy::BorderSafe);
    }

    #[test]
    fn par_labelling3_reflected_frame_matches_sequential(faults in faults3()) {
        let mesh = mesh3(&faults, false);
        let frame = Frame3::for_pair(&mesh, c3(15, 0, 15), c3(0, 15, 0));
        assert_lab3_eq(&mesh, frame, BorderPolicy::BorderSafe);
    }
}

/// A label cascade laid along the wrap seam, crossing every tile
/// boundary: the worst case for the wavefront (labels must propagate
/// from the last tile back through every earlier tile, one round per
/// hop). Deterministic, not random, so it always runs.
#[test]
fn par_labelling2_torus_seam_cascade_matches_sequential() {
    let mut torus = Mesh2D::torus(64, 64);
    // A diagonal staircase of faults seals a long chain of pockets.
    for k in 0..63 {
        torus.inject_fault(c2(k + 1, k));
        torus.inject_fault(c2(k, k + 1));
    }
    let frame = Frame2::identity(&torus);
    assert_lab2_eq(&torus, frame, BorderPolicy::BorderSafe);
}

#[test]
fn par_labelling2_full_column_wall_matches_sequential() {
    // A full wall minus one gap funnels labels across all row bands.
    let mut mesh = Mesh2D::new(64, 64);
    for y in 1..64 {
        mesh.inject_fault(c2(32, y));
    }
    for x in 33..64 {
        mesh.inject_fault(c2(x, 1));
    }
    let frame = Frame2::identity(&mesh);
    assert_lab2_eq(&mesh, frame, BorderPolicy::BorderSafe);
    assert_lab2_eq(&mesh, frame, BorderPolicy::BorderBlocked);
}
