//! The churn equivalence battery (headline artifact of DESIGN.md §12).
//!
//! Random churn traces — interleaved fault injections and heals on 2-D and
//! 3-D meshes **and** tori, under both border policies and thread budgets
//! 1/2/5/8 — are driven through [`IncrementalModels2`] /
//! [`IncrementalModels3`], and after **every** step each maintained model
//! is pinned bit-for-bit against a from-scratch recomputation on the
//! churned mesh:
//!
//! * node statuses and the unsafe [`NodeSet`](mesh_topo::NodeSet),
//! * component cell lists (membership *and* discovery order) and the
//!   component id of every unsafe node,
//! * MCC shapes — `Mcc2`/`Mcc3` are `PartialEq`, so ids, cells, bounds,
//!   profiles and fault/sacrificed splits are all compared at once,
//! * the rectangular block model after its lazy recompute.
//!
//! Orientation sync is deliberately staggered (one orientation synced every
//! step, the rest every few steps) so the log-replay path — not just the
//! single-batch repair — is what the battery exercises.

use fault_model::components::{Components2, Components3};
use fault_model::incremental::{IncrementalModels2, IncrementalModels3};
use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::{BorderPolicy, FaultBlocks2, FaultBlocks3, Labelling2, Labelling3};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, Parallelism, C2, C3};
use proptest::prelude::*;

/// The thread budgets of the battery (1 = sequential reference; 2/5/8
/// exercise the tiled wavefront's band seams in the bulk-repair tier).
const THREADS: [usize; 4] = [1, 2, 5, 8];

fn border(blocked: bool) -> BorderPolicy {
    if blocked {
        BorderPolicy::BorderBlocked
    } else {
        BorderPolicy::BorderSafe
    }
}

/// One churn step decoded from raw proptest integers: up to 3 injections
/// and up to 3 heals, both clamped to currently-legal nodes.
fn decode_step_2d(mesh: &Mesh2D, raw: &(Vec<(i32, i32)>, Vec<u8>)) -> (Vec<C2>, Vec<C2>) {
    let (w, h) = (mesh.width(), mesh.height());
    let mut injected = Vec::new();
    for &(x, y) in &raw.0 {
        let c = c2(x.rem_euclid(w), y.rem_euclid(h));
        if mesh.is_healthy(c) && !injected.contains(&c) {
            injected.push(c);
        }
    }
    let faults = mesh.faults();
    let mut healed = Vec::new();
    for &pick in &raw.1 {
        if faults.is_empty() {
            break;
        }
        let c = faults[pick as usize % faults.len()];
        if !healed.contains(&c) {
            healed.push(c);
        }
    }
    (injected, healed)
}

fn decode_step_3d(mesh: &Mesh3D, raw: &(Vec<(i32, i32, i32)>, Vec<u8>)) -> (Vec<C3>, Vec<C3>) {
    let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
    let mut injected = Vec::new();
    for &(x, y, z) in &raw.0 {
        let c = c3(x.rem_euclid(nx), y.rem_euclid(ny), z.rem_euclid(nz));
        if mesh.is_healthy(c) && !injected.contains(&c) {
            injected.push(c);
        }
    }
    let faults = mesh.faults();
    let mut healed = Vec::new();
    for &pick in &raw.1 {
        if faults.is_empty() {
            break;
        }
        let c = faults[pick as usize % faults.len()];
        if !healed.contains(&c) {
            healed.push(c);
        }
    }
    (injected, healed)
}

/// Pin every maintained 2-D model of `frame` against from-scratch twins.
fn assert_models_equal_fresh_2d(inc: &mut IncrementalModels2, frame: Frame2) {
    let mesh = inc.mesh().clone();
    let b = inc.border();
    let m = inc.models(frame);
    let lab = Labelling2::compute(&mesh, frame, b);
    for ((c, a), (_, f)) in m.lab.iter().zip(lab.iter()) {
        assert_eq!(a, f, "status diverged at {c} for {frame:?}");
    }
    assert_eq!(m.lab.unsafe_set(), lab.unsafe_set(), "unsafe set diverged");
    let comps = Components2::compute(&lab);
    assert_eq!(m.comps.cells, comps.cells, "component cells diverged");
    for cells in &comps.cells {
        for &c in cells {
            assert_eq!(
                m.comps.component_of(c),
                comps.component_of(c),
                "component id diverged at {c}"
            );
        }
    }
    assert_eq!(m.mccs.mccs, MccSet2::compute(&lab).mccs, "MCCs diverged");
}

fn assert_models_equal_fresh_3d(inc: &mut IncrementalModels3, frame: Frame3) {
    let mesh = inc.mesh().clone();
    let b = inc.border();
    let m = inc.models(frame);
    let lab = Labelling3::compute(&mesh, frame, b);
    for ((c, a), (_, f)) in m.lab.iter().zip(lab.iter()) {
        assert_eq!(a, f, "status diverged at {c} for {frame:?}");
    }
    assert_eq!(m.lab.unsafe_set(), lab.unsafe_set(), "unsafe set diverged");
    let comps = Components3::compute(&lab);
    assert_eq!(m.comps.cells, comps.cells, "component cells diverged");
    for cells in &comps.cells {
        for &c in cells {
            assert_eq!(
                m.comps.component_of(c),
                comps.component_of(c),
                "component id diverged at {c}"
            );
        }
    }
    assert_eq!(m.mccs.mccs, MccSet3::compute(&lab).mccs, "MCCs diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 2-D: every orientation's maintained labelling, components and MCCs
    /// stay bit-for-bit equal to from-scratch recomputation after every
    /// step of a random inject/heal trace, on mesh and torus, both border
    /// policies, every thread budget of [`THREADS`].
    #[test]
    fn incremental_equals_fresh_2d(
        dims in (7..13i32, 7..13i32),
        torus in any::<bool>(),
        border_blocked in any::<bool>(),
        threads_pick in 0..THREADS.len(),
        init in proptest::collection::vec((0..13i32, 0..13i32), 0..18),
        trace in proptest::collection::vec(
            (proptest::collection::vec((0..13i32, 0..13i32), 0..3),
             proptest::collection::vec(any::<u8>(), 0..3)),
            1..10),
    ) {
        let (w, h) = dims;
        let mut mesh = if torus { Mesh2D::torus(w, h) } else { Mesh2D::new(w, h) };
        for (x, y) in init {
            let c = c2(x % w, y % h);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let mut inc = IncrementalModels2::with_parallelism(
            mesh,
            border(border_blocked),
            Parallelism::new(THREADS[threads_pick]),
        );
        let frames = Frame2::all(inc.mesh());
        for (step, raw) in trace.iter().enumerate() {
            let (injected, healed) = decode_step_2d(inc.mesh(), raw);
            inc.apply(&injected, &healed);
            // Stagger sync: the first orientation every step, the rest only
            // every other step, so slots replay logs of varying depth.
            let sync = if step % 2 == 0 { frames.len() } else { 1 };
            for &frame in frames.iter().take(sync) {
                assert_models_equal_fresh_2d(&mut inc, frame);
            }
            let fresh_blocks = FaultBlocks2::compute(&inc.mesh().clone());
            prop_assert_eq!(inc.blocks().blocks.clone(), fresh_blocks.blocks);
        }
        for frame in frames {
            assert_models_equal_fresh_2d(&mut inc, frame);
        }
    }

    /// 3-D twin of the battery above (k-ary meshes and tori).
    #[test]
    fn incremental_equals_fresh_3d(
        k in 5..8i32,
        torus in any::<bool>(),
        border_blocked in any::<bool>(),
        threads_pick in 0..THREADS.len(),
        init in proptest::collection::vec((0..8i32, 0..8i32, 0..8i32), 0..16),
        trace in proptest::collection::vec(
            (proptest::collection::vec((0..8i32, 0..8i32, 0..8i32), 0..3),
             proptest::collection::vec(any::<u8>(), 0..3)),
            1..7),
    ) {
        let mut mesh = if torus { Mesh3D::torus(k, k, k) } else { Mesh3D::kary(k) };
        for (x, y, z) in init {
            let c = c3(x % k, y % k, z % k);
            if mesh.is_healthy(c) {
                mesh.inject_fault(c);
            }
        }
        let mut inc = IncrementalModels3::with_parallelism(
            mesh,
            border(border_blocked),
            Parallelism::new(THREADS[threads_pick]),
        );
        // Eight octant slots are too slow to pin all per step; pin the two
        // that stagger most (identity synced every step, one reflected
        // octant every other step) plus a full pass at the end.
        let frames = Frame3::all(inc.mesh());
        for (step, raw) in trace.iter().enumerate() {
            let (injected, healed) = decode_step_3d(inc.mesh(), raw);
            inc.apply(&injected, &healed);
            assert_models_equal_fresh_3d(&mut inc, frames[0]);
            if step % 2 == 1 {
                assert_models_equal_fresh_3d(&mut inc, frames[5]);
            }
            let fresh_blocks = FaultBlocks3::compute(&inc.mesh().clone());
            prop_assert_eq!(inc.blocks().blocks.clone(), fresh_blocks.blocks);
        }
        for frame in [frames[0], frames[3], frames[5], frames[7]] {
            assert_models_equal_fresh_3d(&mut inc, frame);
        }
    }
}
