//! Fixed-seed smoke battery for the adversarial boundary search — the CI
//! job runs this test target directly (`--test regime_adversarial`), so a
//! regression in the search (failing to find a violation, losing
//! 1-minimality, or drifting off the pinned seed) fails fast and by name.
//!
//! The violation being hunted is the paper's endpoint-sacrifice gap: the
//! labelling closure can mark a *healthy* endpoint useless/can't-reach
//! (e.g. the antidiagonal fault pair around a corner of the pair's
//! bounding box), so the MCC router refuses a pair the oracle can still
//! route minimally. The MCC existence condition itself stays exact —
//! `mcc_ok == oracle_ok` everywhere — which is why the minimal violating
//! sets are interesting: they chart exactly where endpoint safety, not
//! the condition, is the binding constraint.

use fault_model::regime::{adversarial_search_2d, adversarial_search_3d};
use fault_model::BorderPolicy;
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Mesh2D, Mesh3D};

const B: BorderPolicy = BorderPolicy::BorderSafe;

#[test]
fn fixed_seed_2d_search_reports_minimal_violation() {
    let mesh = Mesh2D::new(16, 16);
    let (s, d) = (c2(3, 3), c2(12, 12));
    let report = adversarial_search_2d(&mesh, s, d, 8, 42, B)
        .expect("seed 42 finds a violation on a clean 16x16 mesh");
    assert!(report.violates());
    assert!(report.oracle_ok && !report.endpoints_safe);
    // In 2-D the minimal endpoint-sacrificing set is an antidiagonal
    // fault pair: two faults.
    assert_eq!(report.cardinality(), 2, "faults: {:?}", report.faults);
    // Every reported fault is healthy-mesh-adjacent to the story: near an
    // endpoint (the search pool guarantees Chebyshev distance <= 2).
    for f in &report.faults {
        let near_s = (f.x - s.x).abs().max((f.y - s.y).abs()) <= 2;
        let near_d = (f.x - d.x).abs().max((f.y - d.y).abs()) <= 2;
        assert!(near_s || near_d, "fault {f:?} far from both endpoints");
    }
}

#[test]
fn fixed_seed_2d_search_is_deterministic() {
    let mesh = Mesh2D::new(16, 16);
    let (s, d) = (c2(3, 3), c2(12, 12));
    let a = adversarial_search_2d(&mesh, s, d, 8, 42, B).expect("violation");
    let b = adversarial_search_2d(&mesh, s, d, 8, 42, B).expect("violation");
    assert_eq!(a.faults, b.faults, "same seed, same violating set");
}

#[test]
fn fixed_seed_3d_search_reports_verified_violation() {
    let mesh = Mesh3D::kary(8);
    let (s, d) = (c3(1, 1, 1), c3(6, 6, 6));
    let report = adversarial_search_3d(&mesh, s, d, 8, 7, B)
        .expect("seed 7 finds a violation on a clean 8^3 mesh");
    assert!(report.violates());
    // 3-D endpoints have three forward neighbors, so sacrificing one
    // takes at least three faults; the pruned set must not exceed the
    // search's own working-set cap either.
    assert!(
        (3..=6).contains(&report.cardinality()),
        "cardinality {} out of range, faults: {:?}",
        report.cardinality(),
        report.faults
    );
}
