//! Orientation-keyed model caches for one fault configuration.
//!
//! Everything a routing trial consumes is a pure function of the mesh's
//! fault set plus, for the labelling family, one of the finitely many
//! canonical frame orientations (4 quadrants in 2-D, 8 octants in 3-D;
//! see [`mesh_topo::Frame2`]):
//!
//! * [`FaultBlocks2`] / [`FaultBlocks3`] — orientation-free, one per mesh,
//! * [`Labelling2`] / [`Labelling3`] — one per orientation,
//! * [`MccSet2`] / [`MccSet3`] — derived from the labelling, one per
//!   orientation.
//!
//! A [`ModelCache2`] / [`ModelCache3`] therefore memoizes each model the
//! first time an orientation asks for it and hands out borrows afterwards,
//! so a sweep that evaluates many source/destination pairs against the
//! same fault set pays for model construction at most `1 + 4` (2-D) or
//! `1 + 8` (3-D) times instead of once per pair. This is the compute layer
//! behind `mcc_routing`'s prepared-trial path (DESIGN.md §9).
//!
//! # Examples
//!
//! ```
//! use fault_model::models::ModelCache2;
//! use fault_model::BorderPolicy;
//! use mesh_topo::coord::c2;
//! use mesh_topo::{Frame2, Mesh2D};
//!
//! let mut mesh = Mesh2D::new(8, 8);
//! mesh.inject_fault(c2(4, 4));
//! let mut cache = ModelCache2::new(&mesh, BorderPolicy::BorderSafe);
//!
//! let frame = Frame2::for_pair(&mesh, c2(7, 0), c2(0, 7)); // flipped X
//! let m = cache.models(frame, true, true);
//! assert!(m.lab.is_safe(frame.to_canon(c2(0, 0))));
//! assert_eq!(m.mccs.expect("requested").len(), 1);
//! assert!(m.blocks.expect("requested").is_disabled(c2(4, 4)));
//! ```

use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, Parallelism};

use crate::mcc2::MccSet2;
use crate::mcc3::MccSet3;
use crate::rfb2::FaultBlocks2;
use crate::rfb3::FaultBlocks3;
use crate::status::BorderPolicy;
use crate::{Labelling2, Labelling3};

/// The models of one orientation: the labelling always, the MCC
/// decomposition only once something has requested it.
#[derive(Clone, Debug)]
struct Slot2 {
    lab: Labelling2,
    mccs: Option<MccSet2>,
}

/// Borrowed views of every model a trial needs, fetched (and lazily
/// computed) in one call so the borrows coexist.
#[derive(Clone, Copy, Debug)]
pub struct ModelsRef2<'a> {
    /// The labelling of the requested orientation.
    pub lab: &'a Labelling2,
    /// The MCC decomposition of that labelling, if requested.
    pub mccs: Option<&'a MccSet2>,
    /// The orientation-free rectangular block model, if requested.
    pub blocks: Option<&'a FaultBlocks2>,
}

/// Lazy per-orientation model cache over one 2-D fault configuration.
#[derive(Clone, Debug)]
pub struct ModelCache2<'m> {
    mesh: &'m Mesh2D,
    border: BorderPolicy,
    parallelism: Parallelism,
    blocks: Option<FaultBlocks2>,
    slots: [Option<Slot2>; 4],
}

impl<'m> ModelCache2<'m> {
    /// An empty cache for `mesh`; nothing is computed until requested.
    pub fn new(mesh: &'m Mesh2D, border: BorderPolicy) -> ModelCache2<'m> {
        ModelCache2::with_parallelism(mesh, border, Parallelism::SEQ)
    }

    /// An empty cache whose labellings run with `parallelism` threads
    /// (via [`Labelling2::compute_par`] — bit-for-bit equal to the
    /// sequential labelling, so cached models never depend on the budget).
    pub fn with_parallelism(
        mesh: &'m Mesh2D,
        border: BorderPolicy,
        parallelism: Parallelism,
    ) -> ModelCache2<'m> {
        ModelCache2 {
            mesh,
            border,
            parallelism,
            blocks: None,
            slots: [None, None, None, None],
        }
    }

    /// The mesh this cache describes.
    pub fn mesh(&self) -> &'m Mesh2D {
        self.mesh
    }

    /// The border policy every cached labelling uses.
    pub fn border(&self) -> BorderPolicy {
        self.border
    }

    /// Fetch the models for `frame`'s orientation, computing whatever this
    /// cache has not seen yet: the labelling on first use of the
    /// orientation, the MCC set on first use with `want_mccs`, the block
    /// model on first use with `want_blocks` (any orientation).
    ///
    /// Slots are keyed by [`Frame2::index`] but guarded by **full-frame**
    /// equality: on a torus, frames with the same reflection carry
    /// pair-specific rotations, so a slot holding a different frame is
    /// recomputed rather than wrongly reused. Mesh frames are unique per
    /// index, so mesh behavior (and its ≤ `1 + 4` compute bound) is
    /// unchanged.
    pub fn models(&mut self, frame: Frame2, want_mccs: bool, want_blocks: bool) -> ModelsRef2<'_> {
        let idx = frame.index();
        let stale = !matches!(&self.slots[idx], Some(slot) if slot.lab.frame() == frame);
        if stale {
            self.slots[idx] = Some(Slot2 {
                lab: Labelling2::compute_par(self.mesh, frame, self.border, self.parallelism),
                mccs: None,
            });
        }
        let slot = self.slots[idx].as_mut().expect("just filled");
        if want_mccs && slot.mccs.is_none() {
            slot.mccs = Some(MccSet2::compute(&slot.lab));
        }
        if want_blocks && self.blocks.is_none() {
            self.blocks = Some(FaultBlocks2::compute(self.mesh));
        }
        let slot = self.slots[idx].as_ref().expect("just filled");
        ModelsRef2 {
            lab: &slot.lab,
            mccs: if want_mccs { slot.mccs.as_ref() } else { None },
            blocks: if want_blocks {
                self.blocks.as_ref()
            } else {
                None
            },
        }
    }

    /// Number of orientations whose labelling has been computed.
    pub fn orientations_computed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// The models of one 3-D orientation (see [`Slot2`]).
#[derive(Clone, Debug)]
struct Slot3 {
    lab: Labelling3,
    mccs: Option<MccSet3>,
}

/// Borrowed views of every 3-D model a trial needs (see [`ModelsRef2`]).
#[derive(Clone, Copy, Debug)]
pub struct ModelsRef3<'a> {
    /// The labelling of the requested orientation.
    pub lab: &'a Labelling3,
    /// The MCC decomposition of that labelling, if requested.
    pub mccs: Option<&'a MccSet3>,
    /// The orientation-free cuboid block model, if requested.
    pub blocks: Option<&'a FaultBlocks3>,
}

/// Lazy per-orientation model cache over one 3-D fault configuration.
#[derive(Clone, Debug)]
pub struct ModelCache3<'m> {
    mesh: &'m Mesh3D,
    border: BorderPolicy,
    parallelism: Parallelism,
    blocks: Option<FaultBlocks3>,
    slots: [Option<Slot3>; 8],
}

impl<'m> ModelCache3<'m> {
    /// An empty cache for `mesh`; nothing is computed until requested.
    pub fn new(mesh: &'m Mesh3D, border: BorderPolicy) -> ModelCache3<'m> {
        ModelCache3::with_parallelism(mesh, border, Parallelism::SEQ)
    }

    /// An empty cache whose labellings run with `parallelism` threads
    /// (via [`Labelling3::compute_par`] — bit-for-bit equal to the
    /// sequential labelling, so cached models never depend on the budget).
    pub fn with_parallelism(
        mesh: &'m Mesh3D,
        border: BorderPolicy,
        parallelism: Parallelism,
    ) -> ModelCache3<'m> {
        ModelCache3 {
            mesh,
            border,
            parallelism,
            blocks: None,
            slots: [None, None, None, None, None, None, None, None],
        }
    }

    /// The mesh this cache describes.
    pub fn mesh(&self) -> &'m Mesh3D {
        self.mesh
    }

    /// The border policy every cached labelling uses.
    pub fn border(&self) -> BorderPolicy {
        self.border
    }

    /// Fetch the models for `frame`'s orientation (see
    /// [`ModelCache2::models`]; slots verify full-frame equality so torus
    /// rotations never alias).
    pub fn models(&mut self, frame: Frame3, want_mccs: bool, want_blocks: bool) -> ModelsRef3<'_> {
        let idx = frame.index();
        let stale = !matches!(&self.slots[idx], Some(slot) if slot.lab.frame() == frame);
        if stale {
            self.slots[idx] = Some(Slot3 {
                lab: Labelling3::compute_par(self.mesh, frame, self.border, self.parallelism),
                mccs: None,
            });
        }
        let slot = self.slots[idx].as_mut().expect("just filled");
        if want_mccs && slot.mccs.is_none() {
            slot.mccs = Some(MccSet3::compute(&slot.lab));
        }
        if want_blocks && self.blocks.is_none() {
            self.blocks = Some(FaultBlocks3::compute(self.mesh));
        }
        let slot = self.slots[idx].as_ref().expect("just filled");
        ModelsRef3 {
            lab: &slot.lab,
            mccs: if want_mccs { slot.mccs.as_ref() } else { None },
            blocks: if want_blocks {
                self.blocks.as_ref()
            } else {
                None
            },
        }
    }

    /// Number of orientations whose labelling has been computed.
    pub fn orientations_computed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};

    #[test]
    fn cache_matches_fresh_models_every_orientation() {
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(3, 3), c2(4, 3), c2(7, 6)] {
            mesh.inject_fault(c);
        }
        let mut cache = ModelCache2::new(&mesh, BorderPolicy::BorderSafe);
        for frame in Frame2::all(&mesh) {
            let fresh_lab = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
            let fresh_mccs = MccSet2::compute(&fresh_lab);
            let m = cache.models(frame, true, true);
            for c in mesh.nodes() {
                let cc = frame.to_canon(c);
                assert_eq!(m.lab.status(cc), fresh_lab.status(cc), "{frame:?} {c}");
            }
            assert_eq!(
                m.mccs.expect("requested").len(),
                fresh_mccs.len(),
                "{frame:?}"
            );
            assert_eq!(
                m.blocks.expect("requested").sacrificed_count(),
                FaultBlocks2::compute(&mesh).sacrificed_count()
            );
        }
        assert_eq!(cache.orientations_computed(), 4);
    }

    #[test]
    fn torus_rotations_never_alias_slots() {
        use crate::Labelling2;
        // On a torus every pair brings its own rotation; frames sharing a
        // reflection index must still be recomputed, never reused.
        let mut mesh = Mesh2D::torus(8, 6);
        for c in [c2(2, 2), c2(3, 2), c2(6, 4)] {
            mesh.inject_fault(c);
        }
        let mut cache = ModelCache2::new(&mesh, BorderPolicy::BorderSafe);
        for (s, d) in [
            (c2(0, 0), c2(3, 2)),
            (c2(1, 1), c2(4, 3)), // same reflection, different rotation
            (c2(5, 5), c2(1, 1)),
            (c2(0, 0), c2(3, 2)), // repeat: hits the cached slot again
        ] {
            let frame = Frame2::for_pair(&mesh, s, d);
            let m = cache.models(frame, true, true);
            assert_eq!(m.lab.frame(), frame, "slot must hold the asked frame");
            let fresh = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
            for c in mesh.nodes() {
                let cc = frame.to_canon(c);
                assert_eq!(m.lab.status(cc), fresh.status(cc), "{s}->{d} at {c}");
            }
        }
    }

    #[test]
    fn cache_is_lazy_per_orientation_and_model() {
        let mut mesh = Mesh3D::kary(6);
        mesh.inject_fault(c3(3, 3, 3));
        let mut cache = ModelCache3::new(&mesh, BorderPolicy::BorderSafe);
        assert_eq!(cache.orientations_computed(), 0);
        let frame = Frame3::for_pair(&mesh, c3(0, 0, 0), c3(5, 5, 5));
        let m = cache.models(frame, false, false);
        assert!(m.mccs.is_none() && m.blocks.is_none());
        assert_eq!(cache.orientations_computed(), 1);
        // Asking again with more models fills them in on the same slot.
        let m = cache.models(frame, true, true);
        assert!(m.mccs.is_some() && m.blocks.is_some());
        assert_eq!(cache.orientations_computed(), 1);
    }
}
