//! Hash-based reference implementations of labelling and component
//! discovery — the pre-flat-layer representation, kept as a baseline.
//!
//! Before the flat node-state layer ([`mesh_topo::nodeset`]) landed, the
//! labelling closure ran as a coordinate worklist over pointer-chased maps
//! and component discovery BFS'd through `HashSet<C2>`/`HashSet<C3>`
//! membership. This module preserves that representation verbatim for two
//! purposes:
//!
//! * **validation** — the property tests in `tests/properties.rs` assert
//!   the flat pipeline produces *identical* statuses and component
//!   partitions on random meshes, both border policies included;
//! * **benchmarking** — `mcc-bench`'s `mcc_label` bench and the
//!   `bench_label` binary time this baseline against the flat pipeline to
//!   keep the speedup on record (`BENCH_mcc_label.json`).
//!
//! Nothing in the production pipeline calls into this module.

use std::collections::{HashMap, HashSet};

use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, C2, C3};

use crate::components::{NEIGHBORS_18, NEIGHBORS_8};
use crate::status::{BorderPolicy, NodeStatus};

/// The hash-based 2-D labelling: per-node status keyed by canonical
/// coordinate.
#[derive(Clone, Debug)]
pub struct HashLabelling2 {
    /// Status of every node, keyed by canonical coordinate.
    pub status: HashMap<C2, NodeStatus>,
}

/// The hash-based 3-D labelling.
#[derive(Clone, Debug)]
pub struct HashLabelling3 {
    /// Status of every node, keyed by canonical coordinate.
    pub status: HashMap<C3, NodeStatus>,
}

impl HashLabelling2 {
    /// Run the worklist closure of Algorithm 1 over hashed coordinates.
    pub fn compute(mesh: &Mesh2D, frame: Frame2, policy: BorderPolicy) -> HashLabelling2 {
        use mesh_topo::dir::Dir2::{Xm, Xp, Ym, Yp};
        let mut status: HashMap<C2, NodeStatus> = mesh
            .nodes()
            .map(|c| (frame.to_canon(c), NodeStatus::SAFE))
            .collect();
        for &f in mesh.faults() {
            status.insert(frame.to_canon(f), NodeStatus::FAULT);
        }
        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let blocks_fwd = |st: &HashMap<C2, NodeStatus>, c: C2| match st.get(&c) {
            Some(s) => s.blocks_forward(),
            None => border_blocks,
        };
        let blocks_bwd = |st: &HashMap<C2, NodeStatus>, c: C2| match st.get(&c) {
            Some(s) => s.blocks_backward(),
            None => border_blocks,
        };

        let mut fwd: Vec<C2> = status.keys().copied().collect();
        while let Some(u) = fwd.pop() {
            let st = status[&u];
            if st.blocks_forward() {
                continue;
            }
            if blocks_fwd(&status, u.step(Xp)) && blocks_fwd(&status, u.step(Yp)) {
                status.get_mut(&u).expect("u is in the map").mark_useless();
                for v in [u.step(Xm), u.step(Ym)] {
                    if status.contains_key(&v) {
                        fwd.push(v);
                    }
                }
            }
        }
        let mut bwd: Vec<C2> = status.keys().copied().collect();
        while let Some(u) = bwd.pop() {
            let st = status[&u];
            if st.blocks_backward() {
                continue;
            }
            if blocks_bwd(&status, u.step(Xm)) && blocks_bwd(&status, u.step(Ym)) {
                status
                    .get_mut(&u)
                    .expect("u is in the map")
                    .mark_cant_reach();
                for v in [u.step(Xp), u.step(Yp)] {
                    if status.contains_key(&v) {
                        bwd.push(v);
                    }
                }
            }
        }
        HashLabelling2 { status }
    }

    /// The unsafe cells as a hash set.
    pub fn unsafe_cells(&self) -> HashSet<C2> {
        self.status
            .iter()
            .filter(|(_, s)| s.is_unsafe())
            .map(|(&c, _)| c)
            .collect()
    }
}

impl HashLabelling3 {
    /// Run the worklist closure of Algorithm 4 over hashed coordinates.
    pub fn compute(mesh: &Mesh3D, frame: Frame3, policy: BorderPolicy) -> HashLabelling3 {
        use mesh_topo::dir::Dir3::{Xm, Xp, Ym, Yp, Zm, Zp};
        let mut status: HashMap<C3, NodeStatus> = mesh
            .nodes()
            .map(|c| (frame.to_canon(c), NodeStatus::SAFE))
            .collect();
        for &f in mesh.faults() {
            status.insert(frame.to_canon(f), NodeStatus::FAULT);
        }
        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let blocks_fwd = |st: &HashMap<C3, NodeStatus>, c: C3| match st.get(&c) {
            Some(s) => s.blocks_forward(),
            None => border_blocks,
        };
        let blocks_bwd = |st: &HashMap<C3, NodeStatus>, c: C3| match st.get(&c) {
            Some(s) => s.blocks_backward(),
            None => border_blocks,
        };

        let mut fwd: Vec<C3> = status.keys().copied().collect();
        while let Some(u) = fwd.pop() {
            let st = status[&u];
            if st.blocks_forward() {
                continue;
            }
            if blocks_fwd(&status, u.step(Xp))
                && blocks_fwd(&status, u.step(Yp))
                && blocks_fwd(&status, u.step(Zp))
            {
                status.get_mut(&u).expect("u is in the map").mark_useless();
                for v in [u.step(Xm), u.step(Ym), u.step(Zm)] {
                    if status.contains_key(&v) {
                        fwd.push(v);
                    }
                }
            }
        }
        let mut bwd: Vec<C3> = status.keys().copied().collect();
        while let Some(u) = bwd.pop() {
            let st = status[&u];
            if st.blocks_backward() {
                continue;
            }
            if blocks_bwd(&status, u.step(Xm))
                && blocks_bwd(&status, u.step(Ym))
                && blocks_bwd(&status, u.step(Zm))
            {
                status
                    .get_mut(&u)
                    .expect("u is in the map")
                    .mark_cant_reach();
                for v in [u.step(Xp), u.step(Yp), u.step(Zp)] {
                    if status.contains_key(&v) {
                        bwd.push(v);
                    }
                }
            }
        }
        HashLabelling3 { status }
    }

    /// The unsafe cells as a hash set.
    pub fn unsafe_cells(&self) -> HashSet<C3> {
        self.status
            .iter()
            .filter(|(_, s)| s.is_unsafe())
            .map(|(&c, _)| c)
            .collect()
    }
}

/// Hash-based 8-connected component discovery over the unsafe set of a
/// 2-D hash labelling. Components are returned sorted (each component's
/// cells sorted, components ordered by minimum cell) so results are
/// representation-independent.
pub fn components2_hash(lab: &HashLabelling2) -> Vec<Vec<C2>> {
    let unsafe_cells = lab.unsafe_cells();
    let mut seen: HashSet<C2> = HashSet::new();
    let mut comps: Vec<Vec<C2>> = Vec::new();
    for &start in &unsafe_cells {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            comp.push(u);
            for (dx, dy) in NEIGHBORS_8 {
                let v = C2 {
                    x: u.x + dx,
                    y: u.y + dy,
                };
                if unsafe_cells.contains(&v) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        comp.sort();
        comps.push(comp);
    }
    comps.sort();
    comps
}

/// Hash-based 18-connected component discovery over the unsafe set of a
/// 3-D hash labelling (sorted like [`components2_hash`]).
pub fn components3_hash(lab: &HashLabelling3) -> Vec<Vec<C3>> {
    let unsafe_cells = lab.unsafe_cells();
    let mut seen: HashSet<C3> = HashSet::new();
    let mut comps: Vec<Vec<C3>> = Vec::new();
    for &start in &unsafe_cells {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            comp.push(u);
            for (dx, dy, dz) in NEIGHBORS_18 {
                let v = C3 {
                    x: u.x + dx,
                    y: u.y + dy,
                    z: u.z + dz,
                };
                if unsafe_cells.contains(&v) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        comp.sort();
        comps.push(comp);
    }
    comps.sort();
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};

    #[test]
    fn hash_labelling_matches_figure5() {
        let mut mesh = Mesh3D::kary(10);
        for c in [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ] {
            mesh.inject_fault(c);
        }
        let lab = HashLabelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        assert!(lab.status[&c3(5, 5, 5)].is_useless());
        assert!(lab.status[&c3(5, 5, 7)].is_cant_reach());
        assert_eq!(lab.unsafe_cells().len(), 10);
        assert_eq!(components3_hash(&lab).len(), 2);
    }

    #[test]
    fn hash_labelling_2d_antidiagonal() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 6));
        mesh.inject_fault(c2(6, 5));
        let lab = HashLabelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        assert!(lab.status[&c2(5, 5)].is_useless());
        assert!(lab.status[&c2(6, 6)].is_cant_reach());
        let comps = components2_hash(&lab);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
    }
}
