//! Fault-region statistics for the evaluation tables.
//!
//! The paper's simulation study (§1) reports, per fault count:
//!
//! * how many non-faulty nodes each fault model captures (sacrifices), and
//! * the rate of successful minimal routing under each model.
//!
//! These helpers compute the per-instance numbers; the `mcc-bench` crate
//! aggregates them over seeds into the tables of `EXPERIMENTS.md`.

use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D};
use serde::{Deserialize, Serialize};

use crate::labelling2::Labelling2;
use crate::labelling3::Labelling3;
use crate::rfb2::FaultBlocks2;
use crate::rfb3::FaultBlocks3;
use crate::status::BorderPolicy;

/// Sacrifice counts of the competing fault models on one fault configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionStats {
    /// Faulty nodes in the mesh.
    pub faults: usize,
    /// Healthy nodes captured by MCCs for the canonical orientation.
    pub mcc_sacrificed: usize,
    /// Healthy nodes captured by MCCs in the *worst* orientation.
    pub mcc_sacrificed_worst: usize,
    /// Healthy nodes captured in at least one orientation (union).
    pub mcc_sacrificed_union: usize,
    /// Healthy nodes captured by the rectangular / cuboid block model.
    pub rfb_sacrificed: usize,
    /// Number of MCCs (canonical orientation).
    pub mcc_count: usize,
    /// Number of fault blocks.
    pub rfb_count: usize,
}

/// Compute [`RegionStats`] for a 2-D mesh.
pub fn region_stats_2d(mesh: &Mesh2D, policy: BorderPolicy) -> RegionStats {
    let labs: Vec<Labelling2> = Frame2::all(mesh)
        .into_iter()
        .map(|f| Labelling2::compute(mesh, f, policy))
        .collect();
    let canonical = &labs[0];
    let mcc_sacrificed = canonical.sacrificed_count();
    let mcc_sacrificed_worst = labs.iter().map(|l| l.sacrificed_count()).max().unwrap_or(0);
    // Union over orientations, in mesh coordinates.
    let mut union = 0usize;
    for c in mesh.nodes() {
        if mesh.is_healthy(c) && labs.iter().any(|l| l.status_mesh(c).is_unsafe()) {
            union += 1;
        }
    }
    let blocks = FaultBlocks2::compute(mesh);
    let mccs = crate::mcc2::MccSet2::compute(canonical);
    RegionStats {
        faults: mesh.fault_count(),
        mcc_sacrificed,
        mcc_sacrificed_worst,
        mcc_sacrificed_union: union,
        rfb_sacrificed: blocks.sacrificed_count(),
        mcc_count: mccs.len(),
        rfb_count: blocks.blocks.len(),
    }
}

/// Compute [`RegionStats`] for a 3-D mesh.
pub fn region_stats_3d(mesh: &Mesh3D, policy: BorderPolicy) -> RegionStats {
    let labs: Vec<Labelling3> = Frame3::all(mesh)
        .into_iter()
        .map(|f| Labelling3::compute(mesh, f, policy))
        .collect();
    let canonical = &labs[0];
    let mcc_sacrificed = canonical.sacrificed_count();
    let mcc_sacrificed_worst = labs.iter().map(|l| l.sacrificed_count()).max().unwrap_or(0);
    let mut union = 0usize;
    for c in mesh.nodes() {
        if mesh.is_healthy(c) && labs.iter().any(|l| l.status_mesh(c).is_unsafe()) {
            union += 1;
        }
    }
    let blocks = FaultBlocks3::compute(mesh);
    let mccs = crate::mcc3::MccSet3::compute(canonical);
    RegionStats {
        faults: mesh.fault_count(),
        mcc_sacrificed,
        mcc_sacrificed_worst,
        mcc_sacrificed_union: union,
        rfb_sacrificed: blocks.sacrificed_count(),
        mcc_count: mccs.len(),
        rfb_count: blocks.blocks.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::FaultSpec;

    #[test]
    fn mcc_never_sacrifices_more_than_rfb_2d() {
        for seed in 0..20 {
            let mut mesh = Mesh2D::new(16, 16);
            FaultSpec::uniform(12, seed).inject_2d(&mut mesh, &[]);
            let s = region_stats_2d(&mesh, BorderPolicy::BorderSafe);
            assert!(
                s.mcc_sacrificed <= s.rfb_sacrificed,
                "seed {seed}: MCC {} > RFB {}",
                s.mcc_sacrificed,
                s.rfb_sacrificed
            );
            assert!(s.mcc_sacrificed <= s.mcc_sacrificed_worst);
            assert!(s.mcc_sacrificed_worst <= s.mcc_sacrificed_union);
        }
    }

    #[test]
    fn mcc_never_sacrifices_more_than_rfb_3d() {
        for seed in 0..10 {
            let mut mesh = Mesh3D::kary(8);
            FaultSpec::uniform(20, seed).inject_3d(&mut mesh, &[]);
            let s = region_stats_3d(&mesh, BorderPolicy::BorderSafe);
            assert!(
                s.mcc_sacrificed <= s.rfb_sacrificed,
                "seed {seed}: MCC {} > RFB {}",
                s.mcc_sacrificed,
                s.rfb_sacrificed
            );
        }
    }

    #[test]
    fn fault_free_stats_are_zero() {
        let mesh = Mesh2D::new(8, 8);
        let s = region_stats_2d(&mesh, BorderPolicy::BorderSafe);
        assert_eq!(s, RegionStats::default());
    }

    #[test]
    fn example_gap_2d() {
        // The "/" diagonal: RFB pays 2 nodes, canonical MCC pays 0.
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(4, 4));
        mesh.inject_fault(c2(5, 5));
        let s = region_stats_2d(&mesh, BorderPolicy::BorderSafe);
        assert_eq!(s.mcc_sacrificed, 0);
        assert_eq!(s.rfb_sacrificed, 2);
        // Some orientation does pay (the "\" view of the same faults).
        assert_eq!(s.mcc_sacrificed_worst, 2);
    }

    #[test]
    fn example_gap_3d() {
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(3, 3, 3));
        mesh.inject_fault(c3(4, 4, 3));
        let s = region_stats_3d(&mesh, BorderPolicy::BorderSafe);
        assert_eq!(s.mcc_sacrificed, 0);
        assert_eq!(s.mcc_sacrificed_worst, 0); // 3-D needs all 3 dims blocked
        assert_eq!(s.rfb_sacrificed, 2);
    }
}
