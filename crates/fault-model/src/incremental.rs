//! Incrementally maintained model caches under fault churn.
//!
//! [`ModelCache2`](crate::ModelCache2) memoizes the models of one *frozen*
//! fault configuration — it borrows the mesh, so any churn forces the caller
//! to throw the whole cache away. [`IncrementalModels2`] /
//! [`IncrementalModels3`] instead **own** their mesh and keep the full model
//! stack alive across batched fault injections and heals:
//!
//! * the labelling of each orientation is patched in place by
//!   [`Labelling2::repair`] (dirty-region worklist or bulk re-sweep),
//! * the component decomposition by [`Components2::repair`] (localized
//!   merge/split with carried-component provenance),
//! * the MCC shapes by [`MccSet2::repair`] (only rebuilt or status-touched
//!   components are re-extracted),
//! * the orientation-free block model is invalidated wholesale and lazily
//!   recomputed — it is cheap relative to the labelling family and has no
//!   per-orientation structure to exploit.
//!
//! Synchronization is **per orientation slot and lazy**: [`apply`] only
//! records the delta in a generation log; a slot replays the log entries it
//! has not seen the next time [`models`] asks for its orientation. A heal
//! whose effect never reaches a slot's orientation still replays there, but
//! the replay touches only the perturbation's closure cone — update cost
//! scales with the batch, not the mesh (`BENCH_churn.json`). The log is
//! compacted once every live slot has advanced past an entry, and a slot
//! left behind by more than [`LOG_CAP`] generations is dropped and rebuilt
//! from scratch on next use, bounding both memory and replay time.
//!
//! Every repaired model is **bit-for-bit equal** to recomputing from
//! scratch on the churned mesh — statuses, unsafe sets, component ids and
//! cell order, MCC shapes, and therefore every routing decision made on
//! top. The equivalence battery in `tests/churn_equiv.rs` pins this after
//! every step of random inject/heal traces (DESIGN.md §12).
//!
//! [`apply`]: IncrementalModels2::apply
//! [`models`]: IncrementalModels2::models
//!
//! # Examples
//!
//! ```
//! use fault_model::incremental::IncrementalModels2;
//! use fault_model::BorderPolicy;
//! use mesh_topo::coord::c2;
//! use mesh_topo::{Frame2, Mesh2D};
//!
//! let mut mesh = Mesh2D::new(8, 8);
//! mesh.inject_fault(c2(4, 4));
//! let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
//!
//! let frame = Frame2::identity(inc.mesh());
//! assert_eq!(inc.models(frame).mccs.len(), 1);
//!
//! // Churn: one heal, one injection — models are patched, not rebuilt.
//! inc.apply(&[c2(2, 2)], &[c2(4, 4)]);
//! let m = inc.models(frame);
//! assert!(m.lab.is_safe(c2(4, 4)));
//! assert_eq!(m.mccs.len(), 1);
//! ```

use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, NodeSet, Parallelism, C2, C3};

use crate::components::{Components2, Components3};
use crate::mcc2::MccSet2;
use crate::mcc3::MccSet3;
use crate::rfb2::FaultBlocks2;
use crate::rfb3::FaultBlocks3;
use crate::status::BorderPolicy;
use crate::{Labelling2, Labelling3};

/// Maximum number of generations a slot may lag behind before it is
/// dropped and rebuilt from scratch instead of replayed. Also bounds the
/// retained delta log.
pub const LOG_CAP: u64 = 32;

/// A churn batch rejected by validation — the mesh and every maintained
/// model are untouched (validation runs strictly before any mutation).
///
/// Batches are *deltas*, not wishes: each set must name distinct in-bounds
/// nodes, the sets must be disjoint, every injected node must currently be
/// healthy and every healed node currently faulty. The [`Display`] messages
/// keep the exact phrases the panicking [`apply`] path has always used, so
/// `#[should_panic(expected = ...)]` pins stay valid.
///
/// [`Display`]: std::fmt::Display
/// [`apply`]: IncrementalModels2::apply
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnError<C> {
    /// A named node lies outside the mesh.
    OutOfBounds(C),
    /// The same node appears twice in the injected set.
    DuplicateInjected(C),
    /// The same node appears twice in the healed set.
    DuplicateHealed(C),
    /// A node appears in both the injected and the healed set.
    Overlap(C),
    /// An injected node is already faulty.
    AlreadyFaulty(C),
    /// A healed node is not faulty.
    NotFaulty(C),
}

impl<C: std::fmt::Display> std::fmt::Display for ChurnError<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::OutOfBounds(c) => write!(f, "churn node out of bounds: {c}"),
            ChurnError::DuplicateInjected(c) => write!(f, "duplicate injected node {c}"),
            ChurnError::DuplicateHealed(c) => write!(f, "duplicate healed node {c}"),
            ChurnError::Overlap(c) => write!(f, "inject/heal sets overlap at {c}"),
            ChurnError::AlreadyFaulty(c) => write!(f, "injected node already faulty: {c}"),
            ChurnError::NotFaulty(c) => write!(f, "healed node not faulty: {c}"),
        }
    }
}

impl<C: std::fmt::Display + std::fmt::Debug> std::error::Error for ChurnError<C> {}

/// One recorded churn batch.
#[derive(Clone, Debug)]
struct LogEntry<C> {
    /// The generation this batch produced.
    gen: u64,
    injected: Vec<C>,
    healed: Vec<C>,
}

/// The incrementally maintained models of one orientation.
#[derive(Clone, Debug)]
struct IncSlot2 {
    /// Generation the models below reflect.
    synced: u64,
    lab: Labelling2,
    comps: Components2,
    mccs: MccSet2,
}

/// Borrowed views of one orientation's incrementally maintained models.
#[derive(Clone, Copy, Debug)]
pub struct IncModelsRef2<'a> {
    /// The labelling of the requested orientation.
    pub lab: &'a Labelling2,
    /// Its component decomposition.
    pub comps: &'a Components2,
    /// Its MCC shapes.
    pub mccs: &'a MccSet2,
}

/// Owned, churn-capable model cache over a 2-D mesh (see the module docs).
#[derive(Clone, Debug)]
pub struct IncrementalModels2 {
    mesh: Mesh2D,
    border: BorderPolicy,
    parallelism: Parallelism,
    /// Bumped by every [`IncrementalModels2::apply`].
    generation: u64,
    /// Churn batches not yet replayed by every live slot, ascending `gen`.
    log: Vec<LogEntry<C2>>,
    slots: [Option<IncSlot2>; 4],
    blocks: Option<FaultBlocks2>,
    /// Generation `blocks` reflects (meaningless while `blocks` is `None`).
    blocks_synced: u64,
    /// Total statuses changed by slot replays — the incremental work done.
    repaired_statuses: usize,
}

impl IncrementalModels2 {
    /// Take ownership of `mesh`; nothing is computed until requested.
    pub fn new(mesh: Mesh2D, border: BorderPolicy) -> IncrementalModels2 {
        IncrementalModels2::with_parallelism(mesh, border, Parallelism::SEQ)
    }

    /// Like [`IncrementalModels2::new`] with a thread budget for the
    /// labelling computations and bulk repairs (repaired models are
    /// bit-for-bit independent of the budget).
    pub fn with_parallelism(
        mesh: Mesh2D,
        border: BorderPolicy,
        parallelism: Parallelism,
    ) -> IncrementalModels2 {
        IncrementalModels2 {
            mesh,
            border,
            parallelism,
            generation: 0,
            log: Vec::new(),
            slots: [None, None, None, None],
            blocks: None,
            blocks_synced: 0,
            repaired_statuses: 0,
        }
    }

    /// The current (churned) mesh.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    /// The border policy every maintained labelling uses.
    pub fn border(&self) -> BorderPolicy {
        self.border
    }

    /// Number of churn batches applied so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total node statuses changed across all slot replays — grows with the
    /// perturbation sizes, not with mesh size or churn count.
    pub fn statuses_repaired(&self) -> usize {
        self.repaired_statuses
    }

    /// True if the slot holding `frame`'s orientation exists and already
    /// reflects the current generation (a [`models`] call would neither
    /// rebuild nor replay).
    ///
    /// [`models`]: IncrementalModels2::models
    pub fn slot_current(&self, frame: Frame2) -> bool {
        matches!(
            &self.slots[frame.index()],
            Some(sl) if sl.lab.frame() == frame && sl.synced == self.generation
        )
    }

    /// True if the block model exists and reflects the current generation.
    pub fn blocks_current(&self) -> bool {
        self.blocks.is_some() && self.blocks_synced == self.generation
    }

    /// Apply one churn batch: inject every fault in `injected`, heal every
    /// fault in `healed`, and record the delta for lazy slot replay.
    ///
    /// The two sets must be disjoint, `injected` all healthy and `healed`
    /// all faulty — batches are *deltas*, not wishes; an overlapping or
    /// already-satisfied entry is a caller bug and panics. Long-lived
    /// callers fed untrusted batches use [`try_apply`] instead.
    ///
    /// [`try_apply`]: IncrementalModels2::try_apply
    pub fn apply(&mut self, injected: &[C2], healed: &[C2]) {
        if let Err(e) = self.try_apply(injected, healed) {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`apply`]: validate the batch first and return a
    /// typed [`ChurnError`] instead of panicking. On `Err` the mesh, the
    /// generation counter and every maintained model are untouched, so a
    /// resident service can reject a malformed request and keep serving.
    ///
    /// [`apply`]: IncrementalModels2::apply
    pub fn try_apply(&mut self, injected: &[C2], healed: &[C2]) -> Result<(), ChurnError<C2>> {
        let (inj, heal) = self.validated_sets(injected, healed)?;
        let flipped = self.mesh.inject_fault_set(&inj) + self.mesh.heal_fault_set(&heal);
        debug_assert_eq!(flipped, injected.len() + healed.len());
        self.generation += 1;
        self.log.push(LogEntry {
            gen: self.generation,
            injected: injected.to_vec(),
            healed: healed.to_vec(),
        });
        self.compact();
        Ok(())
    }

    /// Validate a churn batch without applying it — exactly the checks
    /// [`try_apply`] runs before mutating anything. A write-ahead-logging
    /// caller validates first, journals the batch, and only then applies
    /// it, so the apply step cannot fail after the log record is durable.
    ///
    /// [`try_apply`]: IncrementalModels2::try_apply
    pub fn check(&self, injected: &[C2], healed: &[C2]) -> Result<(), ChurnError<C2>> {
        self.validated_sets(injected, healed).map(|_| ())
    }

    /// The shared validation pass behind [`check`] and [`try_apply`]:
    /// check order matches the historical assert order (duplicates,
    /// overlap, already-faulty, not-faulty) so which error a multiply
    /// malformed batch reports stays stable.
    ///
    /// [`check`]: IncrementalModels2::check
    /// [`try_apply`]: IncrementalModels2::try_apply
    fn validated_sets(
        &self,
        injected: &[C2],
        healed: &[C2],
    ) -> Result<(NodeSet, NodeSet), ChurnError<C2>> {
        let space = self.mesh.space();
        let mut inj = NodeSet::new(space.len());
        for &c in injected {
            let i = space.index_checked(c).ok_or(ChurnError::OutOfBounds(c))?;
            if !inj.insert(i) {
                return Err(ChurnError::DuplicateInjected(c));
            }
        }
        let mut heal = NodeSet::new(space.len());
        for &c in healed {
            let i = space.index_checked(c).ok_or(ChurnError::OutOfBounds(c))?;
            if !heal.insert(i) {
                return Err(ChurnError::DuplicateHealed(c));
            }
        }
        for &c in healed {
            if inj.contains(space.index(c)) {
                return Err(ChurnError::Overlap(c));
            }
        }
        for &c in injected {
            if self.mesh.fault_set().contains(space.index(c)) {
                return Err(ChurnError::AlreadyFaulty(c));
            }
        }
        for &c in healed {
            if !self.mesh.fault_set().contains(space.index(c)) {
                return Err(ChurnError::NotFaulty(c));
            }
        }
        Ok((inj, heal))
    }

    /// Drop slots too stale to replay and log entries every live slot has
    /// already consumed.
    fn compact(&mut self) {
        let cutoff = self.generation.saturating_sub(LOG_CAP);
        for slot in &mut self.slots {
            if matches!(slot, Some(sl) if sl.synced < cutoff) {
                *slot = None;
            }
        }
        let keep_after = self
            .slots
            .iter()
            .flatten()
            .map(|sl| sl.synced)
            .min()
            .unwrap_or(self.generation);
        self.log.retain(|e| e.gen > keep_after);
    }

    /// Fetch the maintained models for `frame`'s orientation, bringing its
    /// slot up to the current generation first: an empty (or, on a torus,
    /// differently-rotated) slot is built from scratch; a lagging slot
    /// replays only the churn batches it has not seen, repairing labelling,
    /// components and MCCs in place.
    pub fn models(&mut self, frame: Frame2) -> IncModelsRef2<'_> {
        let idx = frame.index();
        let rebuild = !matches!(&self.slots[idx], Some(sl) if sl.lab.frame() == frame);
        if rebuild {
            let lab = Labelling2::compute_par(&self.mesh, frame, self.border, self.parallelism);
            let comps = Components2::compute(&lab);
            let mccs = MccSet2::compute(&lab);
            self.slots[idx] = Some(IncSlot2 {
                synced: self.generation,
                lab,
                comps,
                mccs,
            });
        }
        let slot = self.slots[idx].as_mut().expect("just filled");
        if slot.synced < self.generation {
            for e in self.log.iter().filter(|e| e.gen > slot.synced) {
                let changed = slot.lab.repair(&e.injected, &e.healed, self.parallelism);
                let sources = slot.comps.repair(&slot.lab, &changed);
                slot.mccs.repair(&slot.lab, &slot.comps, &sources, &changed);
                self.repaired_statuses += changed.len();
            }
            slot.synced = self.generation;
        }
        let slot = self.slots[idx].as_ref().expect("just filled");
        IncModelsRef2 {
            lab: &slot.lab,
            comps: &slot.comps,
            mccs: &slot.mccs,
        }
    }

    /// The orientation-free block model of the current mesh, recomputed
    /// lazily after churn (any applied batch invalidates it wholesale).
    pub fn blocks(&mut self) -> &FaultBlocks2 {
        if !self.blocks_current() {
            self.blocks = Some(FaultBlocks2::compute(&self.mesh));
            self.blocks_synced = self.generation;
        }
        self.blocks.as_ref().expect("just filled")
    }
}

/// The incrementally maintained models of one 3-D orientation.
#[derive(Clone, Debug)]
struct IncSlot3 {
    synced: u64,
    lab: Labelling3,
    comps: Components3,
    mccs: MccSet3,
}

/// Borrowed views of one 3-D orientation's models (see [`IncModelsRef2`]).
#[derive(Clone, Copy, Debug)]
pub struct IncModelsRef3<'a> {
    /// The labelling of the requested orientation.
    pub lab: &'a Labelling3,
    /// Its component decomposition.
    pub comps: &'a Components3,
    /// Its MCC shapes.
    pub mccs: &'a MccSet3,
}

/// Owned, churn-capable model cache over a 3-D mesh — the twin of
/// [`IncrementalModels2`] with eight orientation slots.
#[derive(Clone, Debug)]
pub struct IncrementalModels3 {
    mesh: Mesh3D,
    border: BorderPolicy,
    parallelism: Parallelism,
    generation: u64,
    log: Vec<LogEntry<C3>>,
    slots: [Option<IncSlot3>; 8],
    blocks: Option<FaultBlocks3>,
    blocks_synced: u64,
    repaired_statuses: usize,
}

impl IncrementalModels3 {
    /// Take ownership of `mesh`; nothing is computed until requested.
    pub fn new(mesh: Mesh3D, border: BorderPolicy) -> IncrementalModels3 {
        IncrementalModels3::with_parallelism(mesh, border, Parallelism::SEQ)
    }

    /// Like [`IncrementalModels3::new`] with a thread budget (repaired
    /// models are bit-for-bit independent of the budget).
    pub fn with_parallelism(
        mesh: Mesh3D,
        border: BorderPolicy,
        parallelism: Parallelism,
    ) -> IncrementalModels3 {
        IncrementalModels3 {
            mesh,
            border,
            parallelism,
            generation: 0,
            log: Vec::new(),
            slots: [None, None, None, None, None, None, None, None],
            blocks: None,
            blocks_synced: 0,
            repaired_statuses: 0,
        }
    }

    /// The current (churned) mesh.
    pub fn mesh(&self) -> &Mesh3D {
        &self.mesh
    }

    /// The border policy every maintained labelling uses.
    pub fn border(&self) -> BorderPolicy {
        self.border
    }

    /// Number of churn batches applied so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total node statuses changed across all slot replays.
    pub fn statuses_repaired(&self) -> usize {
        self.repaired_statuses
    }

    /// True if `frame`'s slot exists and reflects the current generation.
    pub fn slot_current(&self, frame: Frame3) -> bool {
        matches!(
            &self.slots[frame.index()],
            Some(sl) if sl.lab.frame() == frame && sl.synced == self.generation
        )
    }

    /// True if the block model exists and reflects the current generation.
    pub fn blocks_current(&self) -> bool {
        self.blocks.is_some() && self.blocks_synced == self.generation
    }

    /// Apply one churn batch (see [`IncrementalModels2::apply`]).
    pub fn apply(&mut self, injected: &[C3], healed: &[C3]) {
        if let Err(e) = self.try_apply(injected, healed) {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`apply`] (see [`IncrementalModels2::try_apply`]).
    ///
    /// [`apply`]: IncrementalModels3::apply
    pub fn try_apply(&mut self, injected: &[C3], healed: &[C3]) -> Result<(), ChurnError<C3>> {
        let (inj, heal) = self.validated_sets(injected, healed)?;
        let flipped = self.mesh.inject_fault_set(&inj) + self.mesh.heal_fault_set(&heal);
        debug_assert_eq!(flipped, injected.len() + healed.len());
        self.generation += 1;
        self.log.push(LogEntry {
            gen: self.generation,
            injected: injected.to_vec(),
            healed: healed.to_vec(),
        });
        self.compact();
        Ok(())
    }

    /// Validate a churn batch without applying it (see
    /// [`IncrementalModels2::check`]).
    pub fn check(&self, injected: &[C3], healed: &[C3]) -> Result<(), ChurnError<C3>> {
        self.validated_sets(injected, healed).map(|_| ())
    }

    /// Shared validation pass behind [`check`] and [`try_apply`]; check
    /// order matches the historical assert order (see
    /// [`IncrementalModels2`]'s twin for the rationale).
    ///
    /// [`check`]: IncrementalModels3::check
    /// [`try_apply`]: IncrementalModels3::try_apply
    fn validated_sets(
        &self,
        injected: &[C3],
        healed: &[C3],
    ) -> Result<(NodeSet, NodeSet), ChurnError<C3>> {
        let space = self.mesh.space();
        let mut inj = NodeSet::new(space.len());
        for &c in injected {
            let i = space.index_checked(c).ok_or(ChurnError::OutOfBounds(c))?;
            if !inj.insert(i) {
                return Err(ChurnError::DuplicateInjected(c));
            }
        }
        let mut heal = NodeSet::new(space.len());
        for &c in healed {
            let i = space.index_checked(c).ok_or(ChurnError::OutOfBounds(c))?;
            if !heal.insert(i) {
                return Err(ChurnError::DuplicateHealed(c));
            }
        }
        for &c in healed {
            if inj.contains(space.index(c)) {
                return Err(ChurnError::Overlap(c));
            }
        }
        for &c in injected {
            if self.mesh.fault_set().contains(space.index(c)) {
                return Err(ChurnError::AlreadyFaulty(c));
            }
        }
        for &c in healed {
            if !self.mesh.fault_set().contains(space.index(c)) {
                return Err(ChurnError::NotFaulty(c));
            }
        }
        Ok((inj, heal))
    }

    fn compact(&mut self) {
        let cutoff = self.generation.saturating_sub(LOG_CAP);
        for slot in &mut self.slots {
            if matches!(slot, Some(sl) if sl.synced < cutoff) {
                *slot = None;
            }
        }
        let keep_after = self
            .slots
            .iter()
            .flatten()
            .map(|sl| sl.synced)
            .min()
            .unwrap_or(self.generation);
        self.log.retain(|e| e.gen > keep_after);
    }

    /// Fetch the maintained models for `frame`'s orientation (see
    /// [`IncrementalModels2::models`]).
    pub fn models(&mut self, frame: Frame3) -> IncModelsRef3<'_> {
        let idx = frame.index();
        let rebuild = !matches!(&self.slots[idx], Some(sl) if sl.lab.frame() == frame);
        if rebuild {
            let lab = Labelling3::compute_par(&self.mesh, frame, self.border, self.parallelism);
            let comps = Components3::compute(&lab);
            let mccs = MccSet3::compute(&lab);
            self.slots[idx] = Some(IncSlot3 {
                synced: self.generation,
                lab,
                comps,
                mccs,
            });
        }
        let slot = self.slots[idx].as_mut().expect("just filled");
        if slot.synced < self.generation {
            for e in self.log.iter().filter(|e| e.gen > slot.synced) {
                let changed = slot.lab.repair(&e.injected, &e.healed, self.parallelism);
                let sources = slot.comps.repair(&slot.lab, &changed);
                slot.mccs.repair(&slot.lab, &slot.comps, &sources, &changed);
                self.repaired_statuses += changed.len();
            }
            slot.synced = self.generation;
        }
        let slot = self.slots[idx].as_ref().expect("just filled");
        IncModelsRef3 {
            lab: &slot.lab,
            comps: &slot.comps,
            mccs: &slot.mccs,
        }
    }

    /// The orientation-free block model of the current mesh, recomputed
    /// lazily after churn.
    pub fn blocks(&mut self) -> &FaultBlocks3 {
        if !self.blocks_current() {
            self.blocks = Some(FaultBlocks3::compute(&self.mesh));
            self.blocks_synced = self.generation;
        }
        self.blocks.as_ref().expect("just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};

    fn assert_slot_matches_fresh(inc: &mut IncrementalModels2, frame: Frame2) {
        let mesh = inc.mesh().clone();
        let border = inc.border();
        let m = inc.models(frame);
        let lab = Labelling2::compute(&mesh, frame, border);
        for ((c, a), (_, b)) in m.lab.iter().zip(lab.iter()) {
            assert_eq!(a, b, "status diverged at {c} for {frame:?}");
        }
        assert_eq!(m.lab.unsafe_set(), lab.unsafe_set());
        let comps = Components2::compute(&lab);
        assert_eq!(m.comps.cells, comps.cells);
        let mccs = MccSet2::compute(&lab);
        assert_eq!(m.mccs.mccs, mccs.mccs);
    }

    #[test]
    fn maintained_models_match_fresh_across_churn_and_orientations() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let (w, h) = (10, 9);
        let mut mesh = Mesh2D::new(w, h);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            mesh.inject_fault(c2(rng.gen_range(0..w), rng.gen_range(0..h)));
        }
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        let frames = Frame2::all(inc.mesh());
        for step in 0..20 {
            let mut injected = Vec::new();
            let mut healed = Vec::new();
            for _ in 0..rng.gen_range(0..3) {
                let c = c2(rng.gen_range(0..w), rng.gen_range(0..h));
                if inc.mesh().is_healthy(c) && !injected.contains(&c) {
                    injected.push(c);
                }
            }
            let faults = inc.mesh().faults().to_vec();
            if !faults.is_empty() {
                for _ in 0..rng.gen_range(0..3) {
                    let c = faults[rng.gen_range(0..faults.len())];
                    if !healed.contains(&c) {
                        healed.push(c);
                    }
                }
            }
            inc.apply(&injected, &healed);
            // Interleave sync patterns: some steps sync every orientation,
            // some only one, so slots lag by varying amounts.
            for &frame in frames.iter().take(if step % 3 == 0 { 4 } else { 1 }) {
                assert_slot_matches_fresh(&mut inc, frame);
            }
        }
        for frame in frames {
            assert_slot_matches_fresh(&mut inc, frame);
        }
        assert!(inc.statuses_repaired() > 0, "replays must have done work");
    }

    #[test]
    fn churn_flips_a_slot_from_valid_to_stale() {
        let mut mesh = Mesh2D::new(8, 8);
        mesh.inject_fault(c2(3, 3));
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        let frame = Frame2::identity(inc.mesh());
        assert!(!inc.slot_current(frame), "nothing computed yet");
        inc.models(frame);
        assert!(inc.slot_current(frame));
        // A heal far outside the cached labelling's unsafe region still
        // invalidates the slot — staleness is generation-based, and the
        // replay (not the validity test) is what localizes the work.
        inc.apply(&[], &[c2(3, 3)]);
        assert!(!inc.slot_current(frame), "churn must stale the slot");
        inc.models(frame);
        assert!(inc.slot_current(frame), "models() re-syncs the slot");
    }

    #[test]
    fn heal_that_ungrounds_a_fault_block_forces_block_recompute() {
        // Two fault pairs close enough for the rectangle closure to disable
        // the healthy nodes between them; healing one fault shrinks the
        // block and must re-enable them.
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(4, 4), c2(4, 6), c2(5, 5)] {
            mesh.inject_fault(c);
        }
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        assert!(!inc.blocks_current());
        assert!(inc.blocks().is_disabled(c2(4, 5)), "interior is blocked");
        assert!(inc.blocks_current());
        inc.apply(&[], &[c2(4, 4)]);
        assert!(!inc.blocks_current(), "churn must stale the block model");
        let fresh = FaultBlocks2::compute(inc.mesh());
        let blocks = inc.blocks();
        assert_eq!(blocks.sacrificed_count(), fresh.sacrificed_count());
        assert_eq!(blocks.blocks, fresh.blocks);
        assert!(
            !blocks.is_disabled(c2(4, 4)),
            "healed node must leave the block"
        );
    }

    #[test]
    fn lagging_slot_is_dropped_and_rebuilt_after_log_cap() {
        let mut mesh = Mesh2D::new(9, 9);
        mesh.inject_fault(c2(4, 4));
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        let frames = Frame2::all(inc.mesh());
        inc.models(frames[0]);
        inc.models(frames[1]);
        // Churn far past LOG_CAP, keeping only frames[0] in sync.
        for i in 0..(LOG_CAP + 10) {
            let c = c2((i % 7) as i32, (i / 7 % 7) as i32 + 1);
            if inc.mesh().is_healthy(c) {
                inc.apply(&[c], &[]);
            } else {
                inc.apply(&[], &[c]);
            }
            inc.models(frames[0]);
        }
        assert!(
            inc.log.len() <= LOG_CAP as usize + 1,
            "log must stay bounded, got {}",
            inc.log.len()
        );
        assert!(inc.slots[frames[1].index()].is_none(), "stale slot dropped");
        // The rebuilt slot still matches a from-scratch computation.
        assert_slot_matches_fresh(&mut inc, frames[1]);
        assert_slot_matches_fresh(&mut inc, frames[0]);
    }

    #[test]
    fn maintained_models_match_fresh_3d() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let k = 6;
        let mut mesh = Mesh3D::torus(k, k, k);
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..12 {
            mesh.inject_fault(c3(
                rng.gen_range(0..k),
                rng.gen_range(0..k),
                rng.gen_range(0..k),
            ));
        }
        let mut inc = IncrementalModels3::new(mesh, BorderPolicy::BorderSafe);
        let frame = Frame3::identity(inc.mesh());
        for _ in 0..12 {
            let mut injected = Vec::new();
            let mut healed = Vec::new();
            for _ in 0..rng.gen_range(0..3) {
                let c = c3(
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                );
                if inc.mesh().is_healthy(c) && !injected.contains(&c) {
                    injected.push(c);
                }
            }
            let faults = inc.mesh().faults().to_vec();
            if !faults.is_empty() {
                healed.push(faults[rng.gen_range(0..faults.len())]);
            }
            inc.apply(&injected, &healed);
            let mesh = inc.mesh().clone();
            let m = inc.models(frame);
            let lab = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
            for ((c, a), (_, b)) in m.lab.iter().zip(lab.iter()) {
                assert_eq!(a, b, "status diverged at {c}");
            }
            assert_eq!(m.comps.cells, Components3::compute(&lab).cells);
            assert_eq!(m.mccs.mccs, MccSet3::compute(&lab).mccs);
            assert!(inc.blocks_current() || inc.generation() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "healed node not faulty")]
    fn healing_a_healthy_node_panics() {
        let mesh = Mesh2D::new(6, 6);
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        inc.apply(&[], &[c2(2, 2)]);
    }

    #[test]
    #[should_panic(expected = "inject/heal sets overlap")]
    fn overlapping_batch_panics() {
        let mut mesh = Mesh2D::new(6, 6);
        mesh.inject_fault(c2(2, 2));
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        inc.apply(&[c2(2, 2)], &[c2(2, 2)]);
    }

    #[test]
    fn try_apply_rejects_without_mutating() {
        let mut mesh = Mesh2D::new(6, 6);
        mesh.inject_fault(c2(2, 2));
        let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
        let frame = Frame2::identity(inc.mesh());
        inc.models(frame);
        let before_faults = inc.mesh().fault_set().clone();

        let cases: Vec<(Vec<C2>, Vec<C2>, ChurnError<C2>)> = vec![
            (vec![c2(9, 0)], vec![], ChurnError::OutOfBounds(c2(9, 0))),
            (
                vec![c2(1, 1), c2(1, 1)],
                vec![],
                ChurnError::DuplicateInjected(c2(1, 1)),
            ),
            (
                vec![],
                vec![c2(2, 2), c2(2, 2)],
                ChurnError::DuplicateHealed(c2(2, 2)),
            ),
            (
                vec![c2(2, 2)],
                vec![c2(2, 2)],
                ChurnError::Overlap(c2(2, 2)),
            ),
            (vec![c2(2, 2)], vec![], ChurnError::AlreadyFaulty(c2(2, 2))),
            (vec![], vec![c2(3, 3)], ChurnError::NotFaulty(c2(3, 3))),
        ];
        for (injected, healed, want) in cases {
            assert_eq!(inc.try_apply(&injected, &healed), Err(want));
            assert_eq!(inc.generation(), 0, "rejected batch must not bump gen");
            assert_eq!(inc.mesh().fault_set(), &before_faults);
            assert!(inc.slot_current(frame), "rejected batch must not stale");
        }

        // A valid batch after the rejections still applies cleanly.
        assert_eq!(inc.try_apply(&[c2(4, 4)], &[c2(2, 2)]), Ok(()));
        assert_eq!(inc.generation(), 1);
        assert!(inc.mesh().is_healthy(c2(2, 2)));
    }

    #[test]
    fn try_apply_rejects_without_mutating_3d() {
        let mut mesh = Mesh3D::new(5, 5, 5);
        mesh.inject_fault(c3(1, 1, 1));
        let mut inc = IncrementalModels3::new(mesh, BorderPolicy::BorderSafe);
        assert_eq!(
            inc.try_apply(&[c3(1, 1, 1)], &[]),
            Err(ChurnError::AlreadyFaulty(c3(1, 1, 1)))
        );
        assert_eq!(
            inc.try_apply(&[], &[c3(0, 0, 0)]),
            Err(ChurnError::NotFaulty(c3(0, 0, 0)))
        );
        assert_eq!(
            inc.try_apply(&[c3(5, 0, 0)], &[]),
            Err(ChurnError::OutOfBounds(c3(5, 0, 0)))
        );
        assert_eq!(inc.generation(), 0);
        assert_eq!(inc.try_apply(&[c3(2, 2, 2)], &[c3(1, 1, 1)]), Ok(()));
        assert_eq!(inc.generation(), 1);
    }

    /// The mutation-style negative test: with the heal-retraction path of
    /// the labelling repair deliberately skipped, the equivalence check the
    /// battery relies on must FAIL — proving the battery would catch a
    /// missing invalidation path, not silently pass.
    #[test]
    fn skipping_heal_retraction_breaks_equivalence() {
        use crate::labelling2::mutation::SKIP_HEAL_RETRACTION;

        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                SKIP_HEAL_RETRACTION.with(|f| f.set(false));
            }
        }
        let _reset = Reset;

        // The seam-crossing scenario on a torus large enough that a
        // one-node heal stays below the bulk-tier cut-over (the bulk tier
        // recomputes from scratch and is immune to the skipped path):
        // healing (1,2) must retract the useless label of (0,2) and,
        // across the wrap seam, (11,2).
        let mut torus = Mesh2D::torus(12, 5);
        for c in [c2(1, 2), c2(0, 3), c2(11, 3)] {
            torus.inject_fault(c);
        }
        let mut inc = IncrementalModels2::new(torus, BorderPolicy::BorderSafe);
        let frame = Frame2::identity(inc.mesh());
        assert!(inc.models(frame).lab.status(c2(11, 2)).is_useless());

        SKIP_HEAL_RETRACTION.with(|f| f.set(true));
        inc.apply(&[], &[c2(1, 2)]);
        let mesh = inc.mesh().clone();
        let stale = inc.models(frame).lab.status(c2(11, 2));
        let fresh = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
        assert!(
            fresh.status(c2(11, 2)).is_safe(),
            "ground truth: the label must retract"
        );
        assert!(
            stale.is_useless(),
            "mutated repair must leave the stale label the battery would flag"
        );
        assert_ne!(stale, fresh.status(c2(11, 2)), "equivalence check fails");
    }
}
