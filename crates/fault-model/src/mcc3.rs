//! Minimal Connected Components in 3-D meshes.
//!
//! A 3-D MCC is an 18-connected component (face + planar diagonal, see
//! [`crate::components`]) of the unsafe set of a 3-D labelling. Unlike the 2-D case its plane sections need not be convex —
//! the paper's Figure 5 component has a hole at `(6,6,5)` in its `z = 5`
//! section — so shapes are kept as explicit cell sets plus derived
//! *line-extent* tables:
//!
//! * for every axis line through the component (e.g. the X-line at fixed
//!   `(y, z)`) the minimum and maximum occupied coordinate,
//! * per-plane 2-D *sections*, which the identification protocol walks.
//!
//! From the line extents come the 3-D forbidden/critical regions: `Q_Y(M)`
//! is everything strictly below the whole Y-extent of its `(x, z)` line,
//! `Q'_Y(M)` everything strictly above, and analogously for X and Z.
//!
//! Storage is bounding-box-local and flat: membership is a
//! [`mesh_topo::NodeSet`] bitset over the box and the line-extent tables are
//! dense arrays indexed by the box-relative plane coordinates — the former
//! `HashSet<C3>` / `BTreeMap` representation survives only in
//! [`crate::reference`] as the validation baseline. Note the trade-off:
//! per-component memory is O(bounding-box volume), not O(cells) — compact
//! for the localized regions fault injection produces, but a long diagonal
//! chain of cells would allocate its whole spanning box (one bit per box
//! node); revisit with a sparse fallback if such shapes ever dominate.

use mesh_topo::{Axis3, Box3, NodeSet, NodeSpace3, C2, C3};
use serde::{Deserialize, Serialize};

use crate::components::{CompSource, Components3};
use crate::labelling3::Labelling3;

/// Sentinel line extent meaning "the component does not touch this line".
const NO_LINE: (i32, i32) = (i32::MAX, i32::MIN);

/// One Minimal Connected Component of a 3-D labelling (canonical coords).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mcc3 {
    /// Component id (index into the owning [`MccSet3`]).
    pub id: u32,
    /// All member cells.
    pub cells: Vec<C3>,
    /// Bounding box.
    pub bounds: Box3,
    /// Number of faulty cells.
    pub fault_count: usize,
    /// Number of healthy (labelled) cells.
    pub sacrificed_count: usize,
    /// Linearization of the bounding box (box-relative coordinates).
    box_space: NodeSpace3,
    /// Membership bitset over `box_space`.
    cell_set: NodeSet,
    /// Per-X-line extents, indexed by box-relative `(y, z)`.
    line_x: Vec<(i32, i32)>,
    /// Per-Y-line extents, indexed by box-relative `(x, z)`.
    line_y: Vec<(i32, i32)>,
    /// Per-Z-line extents, indexed by box-relative `(x, y)`.
    line_z: Vec<(i32, i32)>,
}

/// All MCCs of one 3-D labelling.
#[derive(Clone, Debug, Default)]
pub struct MccSet3 {
    /// The components, indexed by id.
    pub mccs: Vec<Mcc3>,
}

impl Mcc3 {
    pub(crate) fn from_cells(id: u32, cells: Vec<C3>, lab: &Labelling3) -> Mcc3 {
        debug_assert!(!cells.is_empty());
        let mut bounds = Box3::point(cells[0]);
        for &c in &cells[1..] {
            bounds.include(c);
        }
        let (bx, by, bz) = (
            bounds.hi.x - bounds.lo.x + 1,
            bounds.hi.y - bounds.lo.y + 1,
            bounds.hi.z - bounds.lo.z + 1,
        );
        let box_space = NodeSpace3::new(bx, by, bz);
        let mut cell_set = NodeSet::new(box_space.len());
        let mut line_x = vec![NO_LINE; (by * bz) as usize];
        let mut line_y = vec![NO_LINE; (bx * bz) as usize];
        let mut line_z = vec![NO_LINE; (bx * by) as usize];
        let mut fault_count = 0;
        for &c in &cells {
            let r = c - bounds.lo;
            cell_set.insert(box_space.index(r));
            let ex = &mut line_x[(r.z * by + r.y) as usize];
            ex.0 = ex.0.min(c.x);
            ex.1 = ex.1.max(c.x);
            let ey = &mut line_y[(r.z * bx + r.x) as usize];
            ey.0 = ey.0.min(c.y);
            ey.1 = ey.1.max(c.y);
            let ez = &mut line_z[(r.y * bx + r.x) as usize];
            ez.0 = ez.0.min(c.z);
            ez.1 = ez.1.max(c.z);
            if lab.status(c).is_faulty() {
                fault_count += 1;
            }
        }
        let sacrificed_count = cells.len() - fault_count;
        Mcc3 {
            id,
            cells,
            bounds,
            fault_count,
            sacrificed_count,
            box_space,
            cell_set,
            line_x,
            line_y,
            line_z,
        }
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// MCCs are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// True if the component occupies cell `c`.
    #[inline]
    pub fn contains(&self, c: C3) -> bool {
        if !self.bounds.contains(c) {
            return false;
        }
        self.cell_set
            .contains(self.box_space.index(c - self.bounds.lo))
    }

    /// The occupied extent `[lo, hi]` of the axis line through `c`, if the
    /// component touches that line. For `axis = Y` the line is
    /// `{(c.x, *, c.z)}`, etc.
    pub fn line_extent(&self, axis: Axis3, c: C3) -> Option<(i32, i32)> {
        let (lo, hi) = (self.bounds.lo, self.bounds.hi);
        let (bx, by) = (hi.x - lo.x + 1, hi.y - lo.y + 1);
        let entry = match axis {
            Axis3::X => {
                if c.y < lo.y || c.y > hi.y || c.z < lo.z || c.z > hi.z {
                    return None;
                }
                self.line_x[((c.z - lo.z) * by + (c.y - lo.y)) as usize]
            }
            Axis3::Y => {
                if c.x < lo.x || c.x > hi.x || c.z < lo.z || c.z > hi.z {
                    return None;
                }
                self.line_y[((c.z - lo.z) * bx + (c.x - lo.x)) as usize]
            }
            Axis3::Z => {
                if c.x < lo.x || c.x > hi.x || c.y < lo.y || c.y > hi.y {
                    return None;
                }
                self.line_z[((c.y - lo.y) * bx + (c.x - lo.x)) as usize]
            }
        };
        (entry != NO_LINE).then_some(entry)
    }

    /// `c ∈ Q_axis(M)`: strictly on the negative side of the component's
    /// whole extent on `c`'s axis line.
    pub fn in_forbidden(&self, axis: Axis3, c: C3) -> bool {
        matches!(self.line_extent(axis, c), Some((lo, _)) if c.get(axis) < lo)
    }

    /// `c ∈ Q'_axis(M)`: strictly on the positive side of the component's
    /// whole extent on `c`'s axis line.
    pub fn in_critical(&self, axis: Axis3, c: C3) -> bool {
        matches!(self.line_extent(axis, c), Some((_, hi)) if c.get(axis) > hi)
    }

    /// The 2-D section of the component on the plane `axis = plane`
    /// (projected coordinates, see [`C3::project`]). Sections are what the
    /// distributed identification process walks; they may be empty.
    pub fn section(&self, axis: Axis3, plane: i32) -> Vec<C2> {
        self.cells
            .iter()
            .filter(|c| c.get(axis) == plane)
            .map(|c| c.project(axis))
            .collect()
    }

    /// All plane coordinates along `axis` where the component has cells.
    pub fn section_planes(&self, axis: Axis3) -> Vec<i32> {
        let (lo, hi) = match axis {
            Axis3::X => (self.bounds.lo.x, self.bounds.hi.x),
            Axis3::Y => (self.bounds.lo.y, self.bounds.hi.y),
            Axis3::Z => (self.bounds.lo.z, self.bounds.hi.z),
        };
        (lo..=hi)
            .filter(|&p| self.cells.iter().any(|c| c.get(axis) == p))
            .collect()
    }
}

impl MccSet3 {
    /// Extract all MCCs of a labelling.
    pub fn compute(lab: &Labelling3) -> MccSet3 {
        let comps = Components3::compute(lab);
        MccSet3 {
            mccs: comps
                .cells
                .into_iter()
                .enumerate()
                .map(|(i, cells)| Mcc3::from_cells(i as u32, cells, lab))
                .collect(),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.mccs.len()
    }

    /// True if there are no unsafe nodes.
    pub fn is_empty(&self) -> bool {
        self.mccs.is_empty()
    }

    /// Iterate the components.
    pub fn iter(&self) -> impl Iterator<Item = &Mcc3> {
        self.mccs.iter()
    }

    /// Total healthy nodes captured by fault regions.
    pub fn total_sacrificed(&self) -> usize {
        self.mccs.iter().map(|m| m.sacrificed_count).sum()
    }

    /// The component containing canonical `c`, if any.
    pub fn component_containing(&self, c: C3) -> Option<&Mcc3> {
        self.mccs.iter().find(|m| m.contains(c))
    }

    /// Incrementally repair the MCC shapes after a component repair — the
    /// 3-D twin of [`MccSet2::repair`](crate::mcc2::MccSet2::repair), with the same contract: rebuilt or
    /// status-touched components are re-extracted, the rest reused with
    /// renumbered ids, bit-for-bit equal to `MccSet3::compute(lab)`.
    pub fn repair(
        &mut self,
        lab: &Labelling3,
        comps: &Components3,
        sources: &[CompSource],
        changed: &[usize],
    ) {
        let space = lab.space();
        let mut dirty = vec![false; comps.len()];
        for &i in changed {
            if let Some(id) = comps.component_of(space.coord(i)) {
                dirty[id as usize] = true;
            }
        }
        let mut old: Vec<Option<Mcc3>> = std::mem::take(&mut self.mccs)
            .into_iter()
            .map(Some)
            .collect();
        self.mccs = sources
            .iter()
            .enumerate()
            .map(|(j, src)| match *src {
                CompSource::Carried { old: o } if !dirty[j] => {
                    let mut m = old[o].take().expect("component carried twice");
                    m.id = j as u32;
                    m
                }
                _ => Mcc3::from_cells(j as u32, comps.cells[j].clone(), lab),
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::BorderPolicy;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::{Frame3, Mesh3D};

    fn figure5() -> (Labelling3, MccSet3) {
        let mut mesh = Mesh3D::kary(10);
        for c in [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ] {
            mesh.inject_fault(c);
        }
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        let set = MccSet3::compute(&lab);
        (lab, set)
    }

    #[test]
    fn figure5_sections() {
        let (_, set) = figure5();
        assert_eq!(set.len(), 2);
        let big = set.component_containing(c3(5, 5, 5)).unwrap();
        // Section z=5 per the paper: (6,5),(5,6),(6,7),(7,6) faults plus the
        // useless (5,5); the hole (6,6) is NOT part of the region.
        let mut sec: Vec<C2> = big.section(Axis3::Z, 5);
        sec.sort();
        let mut expect = vec![c2(5, 5), c2(6, 5), c2(5, 6), c2(7, 6), c2(6, 7)];
        expect.sort();
        assert_eq!(sec, expect);
        assert!(!big.contains(c3(6, 6, 5)), "hole must stay outside the MCC");
    }

    #[test]
    fn figure5_section_planes() {
        let (_, set) = figure5();
        let big = set.component_containing(c3(5, 5, 5)).unwrap();
        assert_eq!(big.section_planes(Axis3::Z), vec![5, 6, 7]);
        let small = set.component_containing(c3(7, 8, 4)).unwrap();
        assert_eq!(small.section_planes(Axis3::Z), vec![4]);
        assert_eq!(small.section_planes(Axis3::X), vec![7]);
    }

    #[test]
    fn line_extents_and_regions() {
        let (_, set) = figure5();
        let big = set.component_containing(c3(5, 5, 5)).unwrap();
        // Z-line through (5,5): cells (5,5,5),(5,5,6),(5,5,7) -> extent 5..7.
        assert_eq!(big.line_extent(Axis3::Z, c3(5, 5, 0)), Some((5, 7)));
        assert!(big.in_forbidden(Axis3::Z, c3(5, 5, 3)));
        assert!(big.in_critical(Axis3::Z, c3(5, 5, 9)));
        assert!(!big.in_forbidden(Axis3::Z, c3(5, 5, 6))); // inside, not below
                                                           // Lines the component does not touch yield no regions.
        assert_eq!(big.line_extent(Axis3::Z, c3(0, 0, 0)), None);
        assert!(!big.in_forbidden(Axis3::Z, c3(0, 0, 0)));
    }

    #[test]
    fn hole_is_not_in_forbidden_or_critical() {
        let (_, set) = figure5();
        let big = set.component_containing(c3(5, 5, 5)).unwrap();
        let hole = c3(6, 6, 5);
        // The hole sits between cells on its X-line ((5,6,5) and (7,6,5)):
        // neither strictly below nor strictly above the extent.
        assert!(!big.in_forbidden(Axis3::X, hole));
        assert!(!big.in_critical(Axis3::X, hole));
    }

    #[test]
    fn counts() {
        let (lab, set) = figure5();
        let big = set.component_containing(c3(5, 5, 5)).unwrap();
        assert_eq!(big.fault_count, 7);
        assert_eq!(big.sacrificed_count, 2);
        assert_eq!(set.total_sacrificed(), lab.sacrificed_count());
    }

    #[test]
    fn bounds_cover_cells() {
        let (_, set) = figure5();
        for m in set.iter() {
            for &c in &m.cells {
                assert!(m.bounds.contains(c));
            }
        }
    }

    #[test]
    fn component_containing_lookup() {
        let (_, set) = figure5();
        assert!(set.component_containing(c3(0, 0, 0)).is_none());
        assert_eq!(set.component_containing(c3(7, 8, 4)).unwrap().len(), 1);
    }

    #[test]
    fn repair_matches_compute_on_random_churn_3d() {
        use crate::components::Components3;
        use mesh_topo::Parallelism;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for torus in [false, true] {
            let k = 6;
            let mut mesh = if torus {
                Mesh3D::torus(k, k, k)
            } else {
                Mesh3D::kary(k)
            };
            let mut rng = SmallRng::seed_from_u64(torus as u64 + 31);
            for _ in 0..18 {
                mesh.inject_fault(c3(
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                ));
            }
            let mut l =
                Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            let mut comps = Components3::compute(&l);
            let mut set = MccSet3::compute(&l);
            for _ in 0..25 {
                let mut injected = Vec::new();
                let mut healed = Vec::new();
                for _ in 0..rng.gen_range(0..4) {
                    let c = c3(
                        rng.gen_range(0..k),
                        rng.gen_range(0..k),
                        rng.gen_range(0..k),
                    );
                    if mesh.is_healthy(c) && !injected.contains(&c) {
                        injected.push(c);
                    }
                }
                let faults = mesh.faults().to_vec();
                for _ in 0..rng.gen_range(0..4) {
                    let c = faults[rng.gen_range(0..faults.len())];
                    if !healed.contains(&c) {
                        healed.push(c);
                    }
                }
                for &c in &injected {
                    mesh.inject_fault(c);
                }
                for &c in &healed {
                    mesh.heal_fault(c);
                }
                let changed = l.repair(&injected, &healed, Parallelism::SEQ);
                let sources = comps.repair(&l, &changed);
                set.repair(&l, &comps, &sources, &changed);
                let fresh = MccSet3::compute(&l);
                assert_eq!(set.mccs, fresh.mccs);
            }
        }
    }
}
