//! Tiled wavefront execution of the labelling sweeps (crate-internal).
//!
//! The labelling closures are monotone fixpoints: labels are only ever
//! *added*, and a rule that fires under an under-approximation of the
//! final labels also fires at the fixpoint. Any chaotic iteration that
//! (a) only marks justified labels and (b) terminates with no applicable
//! rule therefore converges to the **unique least fixpoint** — the same
//! one the sequential raster sweeps compute. That argument is what makes
//! the tiled schedule here bit-for-bit equal to the sequential code (see
//! DESIGN.md §11).
//!
//! The schedule is a bulk-synchronous wavefront over contiguous row
//! (2-D) / plane (3-D) tiles:
//!
//! 1. every tile is enqueued for round one;
//! 2. each enqueued tile freezes a one-row *halo* copy of the neighboring
//!    tile's boundary row, then runs its local sweep to the tile-local
//!    fixpoint on its own scoped thread (tiles are disjoint `&mut` slices
//!    of the status array — no sharing, no atomics);
//! 3. a tile whose *dependency-facing* boundary row gained labels
//!    re-enqueues the one tile that reads that row; rounds repeat until
//!    no tile is enqueued.
//!
//! Termination leaves no applicable rule anywhere (tile-local fixpoints
//! plus re-enqueue on every cross-tile change), so the result is the
//! least fixpoint regardless of tile count, thread count or interleaving.

use std::ops::Range;

use mesh_topo::NodeSet;

use crate::status::NodeStatus;

/// Raster direction of a labelling sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum SweepDir {
    /// Decreasing `(y, x)` / `(z, y, x)` — the useless closure. A tile's
    /// dependency points *up*: it reads the first row of the tile above,
    /// and its own first row is read by the tile below.
    Decreasing,
    /// Increasing order — the can't-reach closure, the mirror image.
    Increasing,
}

/// One unit of wavefront work: `(band index, band slice, frozen halo)`.
type Tile<'a, 'h> = (usize, &'a mut [NodeStatus], Option<&'h [NodeStatus]>);

/// Split `s` (a `rows × row_len` raster) into per-band `&mut` slices.
fn band_slices<'a>(
    mut s: &'a mut [NodeStatus],
    row_len: usize,
    bands: &[Range<usize>],
) -> Vec<&'a mut [NodeStatus]> {
    let mut out = Vec::with_capacity(bands.len());
    for b in bands {
        let (head, tail) = s.split_at_mut(b.len() * row_len);
        out.push(head);
        s = tail;
    }
    debug_assert!(s.is_empty(), "bands must cover the raster exactly");
    out
}

/// Run one labelling phase over `s` as a tiled wavefront until quiescent.
///
/// `bands` partitions the `nrows` rows (2-D) or planes (3-D, with
/// `row_len = nx·ny`) into contiguous tiles. `sweep` runs one tile's
/// local sweep — `(tile slice, frozen halo row or `None` for the mesh
/// border)` — to the tile-local fixpoint and returns whether the tile's
/// dependency-facing boundary row (first row for [`SweepDir::Decreasing`],
/// last for [`SweepDir::Increasing`]) gained a label.
pub(crate) fn wavefront(
    s: &mut [NodeStatus],
    row_len: usize,
    bands: &[Range<usize>],
    threads: usize,
    wraps: bool,
    dir: SweepDir,
    sweep: impl Fn(&mut [NodeStatus], Option<&[NodeStatus]>) -> bool + Sync,
) {
    let nb = bands.len();
    let nrows = bands.last().map_or(0, |b| b.end);
    let mut dirty = vec![true; nb];
    let mut next_dirty = vec![false; nb];
    loop {
        let active = dirty.iter().filter(|&&d| d).count();
        if active == 0 {
            break;
        }
        // Freeze each enqueued tile's halo row before any tile runs, so
        // every tile of a round reads the same pre-round boundary state.
        let halos: Vec<Option<Vec<NodeStatus>>> = (0..nb)
            .map(|k| {
                if !dirty[k] {
                    return None;
                }
                let r = match dir {
                    SweepDir::Decreasing => {
                        let r = bands[k].end;
                        (r < nrows).then_some(r).or_else(|| wraps.then_some(0))
                    }
                    SweepDir::Increasing => {
                        let r = bands[k].start;
                        r.checked_sub(1).or_else(|| wraps.then_some(nrows - 1))
                    }
                };
                r.map(|r| s[r * row_len..(r + 1) * row_len].to_vec())
            })
            .collect();
        // Deal the enqueued tiles round-robin onto the worker threads.
        let workers = threads.min(active).max(1);
        let mut buckets: Vec<Vec<Tile<'_, '_>>> = (0..workers).map(|_| Vec::new()).collect();
        for (slot, (k, slice)) in band_slices(s, row_len, bands)
            .into_iter()
            .enumerate()
            .filter(|&(k, _)| dirty[k])
            .enumerate()
        {
            buckets[slot % workers].push((k, slice, halos[k].as_deref()));
        }
        next_dirty.iter_mut().for_each(|d| *d = false);
        let mut enqueue_dependent = |k: usize| {
            let dep = match dir {
                SweepDir::Decreasing => k.checked_sub(1).or_else(|| wraps.then_some(nb - 1)),
                SweepDir::Increasing => {
                    let next = k + 1;
                    (next < nb).then_some(next).or_else(|| wraps.then_some(0))
                }
            };
            if let Some(d) = dep {
                next_dirty[d] = true;
            }
        };
        if workers == 1 {
            for (k, slice, halo) in buckets.pop().expect("one bucket") {
                if sweep(slice, halo) {
                    enqueue_dependent(k);
                }
            }
        } else {
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        let sweep = &sweep;
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(k, slice, halo)| (k, sweep(slice, halo)))
                                .collect::<Vec<(usize, bool)>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("wavefront tile thread panicked"))
                    .collect::<Vec<_>>()
            });
            for (k, boundary_changed) in results {
                if boundary_changed {
                    enqueue_dependent(k);
                }
            }
        }
        std::mem::swap(&mut dirty, &mut next_dirty);
    }
}

/// Build the unsafe-node bitset from a status array, word-chunk parallel:
/// each worker fills a disjoint `&mut [u64]` chunk (word `w` covers
/// indices `64·w..64·w+64`, never straddling chunks), and
/// [`NodeSet::from_raw_words`] adopts the buffer. Identical to the
/// sequential insert loop for every thread count.
pub(crate) fn unsafe_set_par(status: &[NodeStatus], threads: usize) -> NodeSet {
    let nbits = status.len();
    let nwords = nbits.div_ceil(64);
    let mut words = vec![0u64; nwords];
    let chunks = mesh_topo::par::bands(nwords, threads);
    if chunks.len() <= 1 {
        fill_words(&mut words, 0, status);
    } else {
        std::thread::scope(|scope| {
            let mut rest: &mut [u64] = &mut words;
            for c in &chunks {
                let (head, tail) = rest.split_at_mut(c.len());
                rest = tail;
                let off = c.start;
                scope.spawn(move || fill_words(head, off, status));
            }
        });
    }
    NodeSet::from_raw_words(nbits, words)
}

fn fill_words(words: &mut [u64], word_offset: usize, status: &[NodeStatus]) {
    for (k, w) in words.iter_mut().enumerate() {
        let base = (word_offset + k) * 64;
        let n = 64.min(status.len() - base);
        let mut bits = 0u64;
        for (j, st) in status[base..base + n].iter().enumerate() {
            bits |= (st.is_unsafe() as u64) << j;
        }
        *w = bits;
    }
}

/// Node-count floor below which `compute_par` falls back to the
/// sequential sweeps: a sub-4096-node labelling finishes in microseconds,
/// under the cost of spawning the tile threads.
pub(crate) const PAR_MIN_NODES: usize = 4096;

/// Tiles per worker thread. More than one keeps the re-enqueue rounds of
/// the wavefront fine-grained (a round-two tile re-sweep costs one tile,
/// not one thread's whole share) at a negligible seam cost.
pub(crate) const TILES_PER_THREAD: usize = 2;
