//! Rectangular faulty blocks — the classical 2-D baseline model.
//!
//! The conventional orthogonal convex fault model (Boppana–Chalasani; Wu's
//! safety levels operate on the same regions): a healthy node is *disabled*
//! if it has **two or more** faulty-or-disabled neighbors. The closure is
//! iterated together with rectangle completion (components are widened to
//! their bounding rectangles, overlapping rectangles merge) until the
//! disabled set is a disjoint union of full rectangles.
//!
//! Compared to the MCC model the rectangle closure is orientation-blind and
//! much more aggressive: it is the baseline the paper's evaluation counts
//! sacrificed healthy nodes against.

use mesh_topo::{Mesh2D, NodeSet, NodeSpace2, Rect, C2};

use crate::oracle;

/// The rectangular-faulty-block decomposition of a mesh.
///
/// The disabled set lives on the flat node-state layer: a [`NodeSet`]
/// bitset over the mesh's [`NodeSpace2`], with the closure worklist and
/// component scans running over linear node indices.
#[derive(Clone, Debug)]
pub struct FaultBlocks2 {
    space: NodeSpace2,
    disabled: NodeSet,
    /// The maximal fault rectangles (disjoint, each fully disabled).
    pub blocks: Vec<Rect>,
    fault_count: usize,
}

impl FaultBlocks2 {
    /// Compute the rectangular-block closure of the mesh's fault set.
    ///
    /// Mesh coordinates are used throughout (the model is
    /// orientation-independent).
    pub fn compute(mesh: &Mesh2D) -> FaultBlocks2 {
        let space = mesh.space();
        let mut disabled = mesh.fault_set().clone();
        let mut blocks;
        loop {
            let grew = Self::close_rule(space, &mut disabled);
            blocks = Self::boxes_of_components(space, &disabled);
            let filled = Self::fill_boxes(space, &mut disabled, &blocks);
            if !grew && !filled {
                break;
            }
        }
        FaultBlocks2 {
            space,
            disabled,
            blocks,
            fault_count: mesh.fault_count(),
        }
    }

    /// One pass of the "two or more faulty/disabled neighbors" rule to a
    /// fixpoint. Returns true if any node was newly disabled.
    fn close_rule(space: NodeSpace2, disabled: &mut NodeSet) -> bool {
        let rule = |set: &NodeSet, i: usize| {
            let mut n = 0;
            space.for_neighbors4(i, |j| n += set.contains(j) as usize);
            n >= 2
        };
        let mut grew = false;
        let mut work: Vec<usize> = (0..space.len()).collect();
        while let Some(u) = work.pop() {
            if disabled.contains(u) || !rule(disabled, u) {
                continue;
            }
            disabled.insert(u);
            grew = true;
            space.for_neighbors4(u, |v| {
                if !disabled.contains(v) {
                    work.push(v);
                }
            });
        }
        grew
    }

    /// Bounding rectangles of the connected disabled components, merged
    /// until pairwise disjoint.
    fn boxes_of_components(space: NodeSpace2, disabled: &NodeSet) -> Vec<Rect> {
        let mut seen = NodeSet::new(space.len());
        let mut blocks: Vec<Rect> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for start in disabled.iter() {
            if seen.contains(start) {
                continue;
            }
            let mut rect = Rect::point(space.coord(start));
            queue.clear();
            queue.push(start);
            seen.insert(start);
            while let Some(u) = queue.pop() {
                rect.include(space.coord(u));
                space.for_neighbors4(u, |v| {
                    if disabled.contains(v) && seen.insert(v) {
                        queue.push(v);
                    }
                });
            }
            blocks.push(rect);
        }
        loop {
            let mut merged = false;
            'outer: for i in 0..blocks.len() {
                for j in (i + 1)..blocks.len() {
                    if blocks[i].intersects(&blocks[j]) {
                        blocks[i] = blocks[i].union(&blocks[j]);
                        blocks.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                return blocks;
            }
        }
    }

    /// Disable every cell of every block. Returns true if anything changed.
    fn fill_boxes(space: NodeSpace2, disabled: &mut NodeSet, blocks: &[Rect]) -> bool {
        let mut changed = false;
        for r in blocks {
            for c in r.iter() {
                if let Some(i) = space.index_checked(c) {
                    changed |= disabled.insert(i);
                }
            }
        }
        changed
    }

    /// True if `c` is inside some fault block (faulty or disabled).
    #[inline]
    pub fn is_disabled(&self, c: C2) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| self.disabled.contains(i))
    }

    /// Healthy nodes sacrificed by the model (disabled but not faulty).
    pub fn sacrificed_count(&self) -> usize {
        self.disabled.len() - self.fault_count
    }

    /// Total disabled nodes (faulty + sacrificed).
    pub fn disabled_count(&self) -> usize {
        self.disabled.len()
    }

    /// Existence of a minimal path from `s` to `d` **under the block model**:
    /// a monotone path (after canonicalization) avoiding every disabled node.
    /// This is how block-based routing decides success — endpoints inside a
    /// block or separated by blocks fail even when the physical fault set
    /// would admit a minimal path. `s`, `d` are mesh coordinates.
    pub fn minimal_path_exists(&self, mesh: &Mesh2D, s: C2, d: C2) -> bool {
        self.minimal_path_exists_in(mesh, s, d, &mut oracle::Useful2::scratch())
    }

    /// [`FaultBlocks2::minimal_path_exists`] with a caller-provided scratch
    /// buffer for the reachability sweep (see [`oracle::Useful2::recompute`]).
    pub fn minimal_path_exists_in(
        &self,
        mesh: &Mesh2D,
        s: C2,
        d: C2,
        useful: &mut oracle::Useful2,
    ) -> bool {
        if self.is_disabled(s) || self.is_disabled(d) {
            return false;
        }
        let frame = mesh_topo::Frame2::for_pair(mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        oracle::reachable_2d_in(cs, cd, |c| self.is_disabled(frame.from_canon(c)), useful)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;

    fn blocks_of(faults: &[C2], w: i32, h: i32) -> (Mesh2D, FaultBlocks2) {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let b = FaultBlocks2::compute(&mesh);
        (mesh, b)
    }

    #[test]
    fn single_fault_single_cell_block() {
        let (_, b) = blocks_of(&[c2(4, 4)], 10, 10);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0], Rect::spanning(c2(4, 4), c2(4, 4)));
        assert_eq!(b.sacrificed_count(), 0);
    }

    #[test]
    fn diagonal_faults_close_to_rectangle() {
        // Both diagonal orientations close under the RFB rule (unlike MCC).
        let (_, b) = blocks_of(&[c2(4, 4), c2(5, 5)], 10, 10);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0], Rect::spanning(c2(4, 4), c2(5, 5)));
        assert_eq!(b.sacrificed_count(), 2);
        let (_, b2) = blocks_of(&[c2(4, 5), c2(5, 4)], 10, 10);
        assert_eq!(b2.blocks.len(), 1);
        assert_eq!(b2.sacrificed_count(), 2);
    }

    #[test]
    fn gap_of_one_in_a_column_closes() {
        // Two faulty nodes two apart in a column: the node between them has
        // two faulty neighbors -> disabled -> a 1x3 rectangle.
        let (_, b) = blocks_of(&[c2(4, 4), c2(4, 6)], 10, 10);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0], Rect::spanning(c2(4, 4), c2(4, 6)));
        assert_eq!(b.sacrificed_count(), 1);
    }

    #[test]
    fn l_shape_fills_rectangle() {
        let (_, b) = blocks_of(&[c2(4, 4), c2(4, 6), c2(6, 4)], 12, 12);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0], Rect::spanning(c2(4, 4), c2(6, 6)));
        assert_eq!(b.sacrificed_count(), 6);
    }

    #[test]
    fn blocks_are_full_rectangles() {
        let (_, b) = blocks_of(&[c2(2, 2), c2(3, 3), c2(2, 4), c2(8, 1), c2(8, 2)], 12, 12);
        for r in &b.blocks {
            for c in r.iter() {
                assert!(b.is_disabled(c), "{c} inside block {r:?} but not disabled");
            }
        }
        let total: u64 = b.blocks.iter().map(|r| r.area()).sum();
        assert_eq!(total as usize, b.disabled_count());
        // and blocks are pairwise disjoint
        for i in 0..b.blocks.len() {
            for j in (i + 1)..b.blocks.len() {
                assert!(!b.blocks[i].intersects(&b.blocks[j]));
            }
        }
    }

    #[test]
    fn far_apart_faults_stay_separate() {
        let (_, b) = blocks_of(&[c2(2, 2), c2(8, 8)], 12, 12);
        assert_eq!(b.blocks.len(), 2);
    }

    #[test]
    fn rfb_is_coarser_than_mcc() {
        use crate::labelling2::Labelling2;
        use crate::mcc2::MccSet2;
        use crate::status::BorderPolicy;
        use mesh_topo::Frame2;
        // "/"-oriented diagonal: MCC sacrifices nothing, RFB sacrifices 2.
        let (mesh, b) = blocks_of(&[c2(4, 4), c2(5, 5)], 10, 10);
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let mccs = MccSet2::compute(&lab);
        assert_eq!(mccs.total_sacrificed(), 0);
        assert_eq!(b.sacrificed_count(), 2);
    }

    #[test]
    fn minimal_path_under_blocks() {
        let (mesh, b) = blocks_of(&[c2(3, 3), c2(4, 4)], 8, 8);
        // Block is [3..4]x[3..4]; s below it in col 3, d above it in col 4.
        assert!(!b.minimal_path_exists(&mesh, c2(3, 0), c2(4, 7)));
        // Wider RMP escapes.
        assert!(b.minimal_path_exists(&mesh, c2(0, 0), c2(7, 7)));
    }

    #[test]
    fn block_success_implies_fault_oracle_success() {
        // The block model is conservative: whenever it says a minimal path
        // exists, one really does exist among the physical faults.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let mut mesh = Mesh2D::new(12, 12);
            for _ in 0..rng.gen_range(0..14) {
                let c = c2(rng.gen_range(0..12), rng.gen_range(0..12));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let b = FaultBlocks2::compute(&mesh);
            let s = c2(rng.gen_range(0..12), rng.gen_range(0..12));
            let d = c2(rng.gen_range(0..12), rng.gen_range(0..12));
            if mesh.is_faulty(s) || mesh.is_faulty(d) {
                continue;
            }
            if b.minimal_path_exists(&mesh, s, d) {
                let frame = mesh_topo::Frame2::for_pair(&mesh, s, d);
                assert!(oracle::reachable_2d(
                    frame.to_canon(s),
                    frame.to_canon(d),
                    |c| {
                        mesh.is_faulty(frame.from_canon(c)) || !mesh.contains(frame.from_canon(c))
                    }
                ));
            }
        }
    }

    #[test]
    fn endpoint_in_block_fails() {
        let (mesh, b) = blocks_of(&[c2(3, 3), c2(4, 4)], 8, 8);
        // (3,4) is healthy but disabled.
        assert!(b.is_disabled(c2(3, 4)));
        assert!(mesh.is_healthy(c2(3, 4)));
        assert!(!b.minimal_path_exists(&mesh, c2(0, 0), c2(3, 4)));
    }
}
