//! Algorithm 4 — the MCC labelling closure in 3-D meshes.
//!
//! The 3-D rules strengthen the 2-D ones: a safe node is *useless* only if
//! **all three** of its `+X`, `+Y`, `+Z` neighbors are faulty-or-useless
//! (with only two blocked the message can still escape along the third
//! positive dimension), and *can't-reach* only if all three negative
//! neighbors are faulty-or-can't-reach.
//!
//! Like the 2-D closure, this runs as two raster sweeps over a flat status
//! array on the node-state layer ([`mesh_topo::nodeset`]): the useless rule
//! depends only on strictly-larger `(z, y, x)`, so a single decreasing
//! sweep reaches the fixpoint, and the can't-reach rule is the increasing
//! mirror image. On a torus the sweeps read the wrapped neighbors and
//! iterate to the fixpoint (see [`crate::labelling2`]).

use mesh_topo::{par, Frame3, Mesh3D, NodeGrid, NodeSet, NodeSpace3, Parallelism, C3};

use crate::par::{unsafe_set_par, wavefront, SweepDir, PAR_MIN_NODES, TILES_PER_THREAD};
use crate::status::{BorderPolicy, NodeStatus};

/// The fixpoint of Algorithm 4 for one octant orientation of a 3-D mesh.
///
/// Coordinates exposed by this type are **canonical** (post-reflection).
#[derive(Clone, Debug)]
pub struct Labelling3 {
    frame: Frame3,
    policy: BorderPolicy,
    space: NodeSpace3,
    status: NodeGrid<NodeStatus>,
    unsafe_set: NodeSet,
}

impl Labelling3 {
    /// Run the labelling closure for `mesh` under `frame`.
    pub fn compute(mesh: &Mesh3D, frame: Frame3, policy: BorderPolicy) -> Labelling3 {
        let space = mesh.space();
        let mut status = NodeGrid::new(space.len(), NodeStatus::SAFE);
        for &f in mesh.faults() {
            status[space.index(frame.to_canon(f))] = NodeStatus::FAULT;
        }

        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let nx = space.nx() as usize;
        let ny = space.ny() as usize;
        let nz = space.nz() as usize;
        let wraps = space.wraps();
        let s = status.as_mut_slice();

        useless_fixpoint3(s, nx, ny, nz, wraps, border_blocks);
        cant_reach_fixpoint3(s, nx, ny, nz, wraps, border_blocks);

        let mut unsafe_set = NodeSet::new(space.len());
        for (i, st) in status.iter() {
            if st.is_unsafe() {
                unsafe_set.insert(i);
            }
        }
        Labelling3 {
            frame,
            policy,
            space,
            status,
            unsafe_set,
        }
    }

    /// Run the labelling closure with a thread budget: the raster sweeps
    /// run as a tiled wavefront over contiguous **z-plane** bands (see
    /// `crate::par` and DESIGN.md §11), **bit-for-bit equal** to
    /// [`Labelling3::compute`] for every thread count. The `±X` and `±Y`
    /// dependencies (including their torus wraps) stay inside a band's
    /// planes; only `±Z` crosses bands, through the one frozen halo plane.
    /// Falls back to the sequential sweeps when the budget resolves to one
    /// thread, the mesh is small, or there are not at least two bands.
    pub fn compute_par(
        mesh: &Mesh3D,
        frame: Frame3,
        policy: BorderPolicy,
        parallelism: Parallelism,
    ) -> Labelling3 {
        let space = mesh.space();
        let threads = parallelism.resolve();
        let nz = space.nz() as usize;
        let bands = par::bands(nz, threads * TILES_PER_THREAD);
        if threads <= 1 || space.len() < PAR_MIN_NODES || bands.len() < 2 {
            return Labelling3::compute(mesh, frame, policy);
        }

        let mut status = NodeGrid::new(space.len(), NodeStatus::SAFE);
        for &f in mesh.faults() {
            status[space.index(frame.to_canon(f))] = NodeStatus::FAULT;
        }
        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let nx = space.nx() as usize;
        let ny = space.ny() as usize;
        let plane = nx * ny;
        let wraps = space.wraps();
        let s = status.as_mut_slice();

        wavefront(s, plane, &bands, threads, wraps, SweepDir::Decreasing, {
            |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                sweep_useless_band3(band, nx, ny, wraps, border_blocks, halo)
            }
        });
        wavefront(s, plane, &bands, threads, wraps, SweepDir::Increasing, {
            |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                sweep_cant_reach_band3(band, nx, ny, wraps, border_blocks, halo)
            }
        });

        let unsafe_set = unsafe_set_par(status.as_slice(), threads);
        Labelling3 {
            frame,
            policy,
            space,
            status,
            unsafe_set,
        }
    }

    /// Run the labelling for the pair `(s, d)` in mesh coordinates.
    pub fn for_pair(mesh: &Mesh3D, s: C3, d: C3, policy: BorderPolicy) -> Labelling3 {
        Labelling3::compute(mesh, Frame3::for_pair(mesh, s, d), policy)
    }

    /// The octant frame this labelling was computed under.
    #[inline]
    pub fn frame(&self) -> Frame3 {
        self.frame
    }

    /// The border policy used.
    #[inline]
    pub fn policy(&self) -> BorderPolicy {
        self.policy
    }

    /// The linear index space of the underlying mesh (canonical coords).
    #[inline]
    pub fn space(&self) -> NodeSpace3 {
        self.space
    }

    /// Status of the node at **canonical** coordinate `c`.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    #[inline]
    pub fn status(&self, c: C3) -> NodeStatus {
        self.status[self.space.index(c)]
    }

    /// Status at canonical `c`, or `None` if outside the mesh.
    #[inline]
    pub fn status_get(&self, c: C3) -> Option<NodeStatus> {
        self.space.index_checked(c).map(|i| self.status[i])
    }

    /// True if canonical `c` is inside the mesh and unsafe.
    #[inline]
    pub fn is_unsafe(&self, c: C3) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| self.unsafe_set.contains(i))
    }

    /// True if canonical `c` is inside the mesh and safe.
    #[inline]
    pub fn is_safe(&self, c: C3) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| !self.unsafe_set.contains(i))
    }

    /// Status of the node at **mesh** coordinate `c`.
    #[inline]
    pub fn status_mesh(&self, c: C3) -> NodeStatus {
        self.status[self.space.index(self.frame.to_canon(c))]
    }

    /// The unsafe nodes (faulty + labelled) as a bitset over
    /// [`Labelling3::space`] — the flat input of component discovery.
    #[inline]
    pub fn unsafe_set(&self) -> &NodeSet {
        &self.unsafe_set
    }

    /// Total number of unsafe nodes (faulty + labelled).
    #[inline]
    pub fn unsafe_count(&self) -> usize {
        self.unsafe_set.len()
    }

    /// Number of healthy nodes labelled unsafe.
    pub fn sacrificed_count(&self) -> usize {
        self.unsafe_set
            .iter()
            .filter(|&i| !self.status[i].is_faulty())
            .count()
    }

    /// Extent along X.
    #[inline]
    pub fn nx(&self) -> i32 {
        self.space.nx()
    }

    /// Extent along Y.
    #[inline]
    pub fn ny(&self) -> i32 {
        self.space.ny()
    }

    /// Extent along Z.
    #[inline]
    pub fn nz(&self) -> i32 {
        self.space.nz()
    }

    /// Iterate `(canonical coordinate, status)` for all nodes.
    pub fn iter(&self) -> impl Iterator<Item = (C3, NodeStatus)> + '_ {
        self.space
            .coords()
            .zip(self.status.as_slice().iter().copied())
    }

    /// Incrementally repair this labelling after a fault-churn batch —
    /// the 3-D twin of [`crate::Labelling2::repair`], with the same
    /// contract: `injected`/`healed` in mesh coordinates, disjoint and
    /// duplicate-free; afterwards statuses and the unsafe set are
    /// bit-for-bit equal to a from-scratch [`Labelling3::compute`] on the
    /// churned mesh; returns the changed canonical indices, sorted
    /// ascending. Small batches run the node-granular worklist, batches
    /// over `nodes /` [`crate::labelling2::BULK_REPAIR_FANOUT`] fall back
    /// to a full relabel under `parallelism`.
    pub fn repair(
        &mut self,
        injected: &[C3],
        healed: &[C3],
        parallelism: Parallelism,
    ) -> Vec<usize> {
        let space = self.space;
        let frame = self.frame;
        let inj: Vec<usize> = injected
            .iter()
            .map(|&c| space.index(frame.to_canon(c)))
            .collect();
        let heal: Vec<usize> = healed
            .iter()
            .map(|&c| space.index(frame.to_canon(c)))
            .collect();
        if inj.is_empty() && heal.is_empty() {
            return Vec::new();
        }
        let bulk = (inj.len() + heal.len()) * crate::labelling2::BULK_REPAIR_FANOUT >= space.len();
        let mut changed = if bulk {
            self.repair_bulk(&inj, &heal, parallelism)
        } else {
            self.repair_worklist(&inj, &heal)
        };
        changed.sort_unstable();
        for &i in &changed {
            if self.status[i].is_unsafe() {
                self.unsafe_set.insert(i);
            } else {
                self.unsafe_set.remove(i);
            }
        }
        changed
    }

    /// Node-granular repair tier. Returns the changed indices, unsorted.
    fn repair_worklist(&mut self, inj: &[usize], heal: &[usize]) -> Vec<usize> {
        let nx = self.space.nx() as usize;
        let ny = self.space.ny() as usize;
        let nz = self.space.nz() as usize;
        let plane = nx * ny;
        let wraps = self.space.wraps();
        let border_blocks = matches!(self.policy, BorderPolicy::BorderBlocked);
        let s = self.status.as_mut_slice();

        // `(index, status at first touch)` — see the 2-D twin for the
        // dedup argument.
        let mut touched: Vec<(usize, NodeStatus)> = Vec::new();
        for &i in heal {
            debug_assert!(s[i].is_faulty(), "healed node was not faulty");
            touched.push((i, s[i]));
            s[i] = NodeStatus::SAFE;
        }
        for &i in inj {
            debug_assert!(!s[i].is_faulty(), "injected node was already faulty");
            touched.push((i, s[i]));
            s[i] = NodeStatus::FAULT;
        }

        // Readers per closure: the wrapped -X/-Y/-Z neighbors for useless
        // (the rule reads +X/+Y/+Z), the positive mirror for can't-reach.
        let readers_useless = |i: usize, f: &mut dyn FnMut(usize)| {
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / plane;
            if x > 0 {
                f(i - 1);
            } else if wraps {
                f(i + nx - 1);
            }
            if y > 0 {
                f(i - nx);
            } else if wraps {
                f(z * plane + (ny - 1) * nx + x);
            }
            if z > 0 {
                f(i - plane);
            } else if wraps {
                f((nz - 1) * plane + y * nx + x);
            }
        };
        let readers_cant_reach = |i: usize, f: &mut dyn FnMut(usize)| {
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / plane;
            if x + 1 < nx {
                f(i + 1);
            } else if wraps {
                f(i - x);
            }
            if y + 1 < ny {
                f(i + nx);
            } else if wraps {
                f(z * plane + x);
            }
            if z + 1 < nz {
                f(i + plane);
            } else if wraps {
                f(y * nx + x);
            }
        };
        let useless_fires = |s: &[NodeStatus], i: usize| {
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / plane;
            let row = i - x;
            let xp = if x + 1 < nx {
                s[i + 1].blocks_forward()
            } else if wraps {
                s[row].blocks_forward()
            } else {
                border_blocks
            };
            let yp = if y + 1 < ny {
                s[i + nx].blocks_forward()
            } else if wraps {
                s[z * plane + x].blocks_forward()
            } else {
                border_blocks
            };
            let zp = if z + 1 < nz {
                s[i + plane].blocks_forward()
            } else if wraps {
                s[y * nx + x].blocks_forward()
            } else {
                border_blocks
            };
            xp && yp && zp
        };
        let cant_reach_fires = |s: &[NodeStatus], i: usize| {
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / plane;
            let row = i - x;
            let xm = if x > 0 {
                s[i - 1].blocks_backward()
            } else if wraps {
                s[row + nx - 1].blocks_backward()
            } else {
                border_blocks
            };
            let ym = if y > 0 {
                s[i - nx].blocks_backward()
            } else if wraps {
                s[z * plane + (ny - 1) * nx + x].blocks_backward()
            } else {
                border_blocks
            };
            let zm = if z > 0 {
                s[i - plane].blocks_backward()
            } else if wraps {
                s[(nz - 1) * plane + y * nx + x].blocks_backward()
            } else {
                border_blocks
            };
            xm && ym && zm
        };

        // Useless closure: retract the reader cone of the healed nodes,
        // then re-propagate from the perturbed seeds (see the 2-D twin).
        let mut stack: Vec<usize> = Vec::new();
        let mut work: Vec<usize> = Vec::new();
        for &i in heal {
            readers_useless(i, &mut |j| {
                if s[j].is_useless() {
                    stack.push(j);
                }
            });
        }
        while let Some(i) = stack.pop() {
            if !s[i].is_useless() {
                continue;
            }
            touched.push((i, s[i]));
            s[i].clear_useless();
            work.push(i);
            readers_useless(i, &mut |j| {
                if s[j].is_useless() {
                    stack.push(j);
                }
            });
        }
        work.extend_from_slice(heal);
        for &i in inj {
            readers_useless(i, &mut |j| work.push(j));
        }
        while let Some(i) = work.pop() {
            if s[i].blocks_forward() {
                continue;
            }
            if useless_fires(s, i) {
                touched.push((i, s[i]));
                s[i].mark_useless();
                readers_useless(i, &mut |j| work.push(j));
            }
        }

        // Can't-reach closure: the independent mirror image.
        debug_assert!(stack.is_empty() && work.is_empty());
        for &i in heal {
            readers_cant_reach(i, &mut |j| {
                if s[j].is_cant_reach() {
                    stack.push(j);
                }
            });
        }
        while let Some(i) = stack.pop() {
            if !s[i].is_cant_reach() {
                continue;
            }
            touched.push((i, s[i]));
            s[i].clear_cant_reach();
            work.push(i);
            readers_cant_reach(i, &mut |j| {
                if s[j].is_cant_reach() {
                    stack.push(j);
                }
            });
        }
        work.extend_from_slice(heal);
        for &i in inj {
            readers_cant_reach(i, &mut |j| work.push(j));
        }
        while let Some(i) = work.pop() {
            if s[i].blocks_backward() {
                continue;
            }
            if cant_reach_fires(s, i) {
                touched.push((i, s[i]));
                s[i].mark_cant_reach();
                readers_cant_reach(i, &mut |j| work.push(j));
            }
        }

        touched.sort_by_key(|&(i, _)| i);
        touched.dedup_by_key(|&mut (i, _)| i);
        touched
            .into_iter()
            .filter(|&(i, old)| s[i] != old)
            .map(|(i, _)| i)
            .collect()
    }

    /// Bulk repair tier: reset every label bit and rerun the closures over
    /// the whole grid, sequentially or via the tiled wavefront.
    fn repair_bulk(
        &mut self,
        inj: &[usize],
        heal: &[usize],
        parallelism: Parallelism,
    ) -> Vec<usize> {
        let nx = self.space.nx() as usize;
        let ny = self.space.ny() as usize;
        let nz = self.space.nz() as usize;
        let plane = nx * ny;
        let wraps = self.space.wraps();
        let border_blocks = matches!(self.policy, BorderPolicy::BorderBlocked);
        let snapshot = self.status.as_slice().to_vec();
        let s = self.status.as_mut_slice();
        for &i in heal {
            debug_assert!(s[i].is_faulty(), "healed node was not faulty");
            s[i] = NodeStatus::SAFE;
        }
        for &i in inj {
            debug_assert!(!s[i].is_faulty(), "injected node was already faulty");
            s[i] = NodeStatus::FAULT;
        }
        for st in s.iter_mut() {
            *st = if st.is_faulty() {
                NodeStatus::FAULT
            } else {
                NodeStatus::SAFE
            };
        }
        let threads = parallelism.resolve();
        let bands = par::bands(nz, threads * TILES_PER_THREAD);
        if threads <= 1 || s.len() < PAR_MIN_NODES || bands.len() < 2 {
            useless_fixpoint3(s, nx, ny, nz, wraps, border_blocks);
            cant_reach_fixpoint3(s, nx, ny, nz, wraps, border_blocks);
        } else {
            wavefront(s, plane, &bands, threads, wraps, SweepDir::Decreasing, {
                |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                    sweep_useless_band3(band, nx, ny, wraps, border_blocks, halo)
                }
            });
            wavefront(s, plane, &bands, threads, wraps, SweepDir::Increasing, {
                |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                    sweep_cant_reach_band3(band, nx, ny, wraps, border_blocks, halo)
                }
            });
        }
        snapshot
            .iter()
            .enumerate()
            .filter(|&(i, &old)| s[i] != old)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The useless closure over the whole 3-D grid, sequential. On a mesh the
/// dependencies point to `+X`/`+Y`/`+Z` only, so one decreasing-
/// `(z, y, x)` sweep reaches the fixpoint and the loop runs once. On a
/// torus the rules read the wrapped neighbors; the ring cycles mean the
/// sweep iterates until quiescent, and the border policy is irrelevant
/// (no border exists, `border_blocks` is never read).
fn useless_fixpoint3(
    s: &mut [NodeStatus],
    nx: usize,
    ny: usize,
    nz: usize,
    wraps: bool,
    border_blocks: bool,
) {
    let plane = nx * ny;
    loop {
        let mut changed = false;
        for z in (0..nz).rev() {
            for y in (0..ny).rev() {
                let row = z * plane + y * nx;
                for x in (0..nx).rev() {
                    let i = row + x;
                    if s[i].blocks_forward() {
                        continue;
                    }
                    let xp = if x + 1 < nx {
                        s[i + 1].blocks_forward()
                    } else if wraps {
                        s[row].blocks_forward()
                    } else {
                        border_blocks
                    };
                    let yp = if y + 1 < ny {
                        s[i + nx].blocks_forward()
                    } else if wraps {
                        s[z * plane + x].blocks_forward()
                    } else {
                        border_blocks
                    };
                    let zp = if z + 1 < nz {
                        s[i + plane].blocks_forward()
                    } else if wraps {
                        s[y * nx + x].blocks_forward()
                    } else {
                        border_blocks
                    };
                    if xp && yp && zp {
                        s[i].mark_useless();
                        changed = true;
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
}

/// The can't-reach mirror of [`useless_fixpoint3`]: `-X`/`-Y`/`-Z`
/// dependencies, increasing-`(z, y, x)` sweep.
fn cant_reach_fixpoint3(
    s: &mut [NodeStatus],
    nx: usize,
    ny: usize,
    nz: usize,
    wraps: bool,
    border_blocks: bool,
) {
    let plane = nx * ny;
    loop {
        let mut changed = false;
        for z in 0..nz {
            for y in 0..ny {
                let row = z * plane + y * nx;
                for x in 0..nx {
                    let i = row + x;
                    if s[i].blocks_backward() {
                        continue;
                    }
                    let xm = if x > 0 {
                        s[i - 1].blocks_backward()
                    } else if wraps {
                        s[row + nx - 1].blocks_backward()
                    } else {
                        border_blocks
                    };
                    let ym = if y > 0 {
                        s[i - nx].blocks_backward()
                    } else if wraps {
                        s[z * plane + (ny - 1) * nx + x].blocks_backward()
                    } else {
                        border_blocks
                    };
                    let zm = if z > 0 {
                        s[i - plane].blocks_backward()
                    } else if wraps {
                        s[(nz - 1) * plane + y * nx + x].blocks_backward()
                    } else {
                        border_blocks
                    };
                    if xm && ym && zm {
                        s[i].mark_cant_reach();
                        changed = true;
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
}

/// One z-plane band's useless sweep to the band-local fixpoint. `halo` is
/// the frozen `+Z` plane above the band (`None` only on the mesh border).
/// The `±X`/`±Y` reads — wrapped or not — never leave the band, so on a
/// torus the loop-until-quiescent resolves the in-plane ring cycles
/// locally. Returns whether the band's first plane (read by the band
/// below through `+Z`) gained a label.
fn sweep_useless_band3(
    band: &mut [NodeStatus],
    nx: usize,
    ny: usize,
    wraps: bool,
    border_blocks: bool,
    halo: Option<&[NodeStatus]>,
) -> bool {
    let plane = nx * ny;
    let planes = band.len() / plane;
    let mut boundary_changed = false;
    loop {
        let mut changed = false;
        for z in (0..planes).rev() {
            for y in (0..ny).rev() {
                let row = z * plane + y * nx;
                for x in (0..nx).rev() {
                    let i = row + x;
                    if band[i].blocks_forward() {
                        continue;
                    }
                    let xp = if x + 1 < nx {
                        band[i + 1].blocks_forward()
                    } else if wraps {
                        band[row].blocks_forward()
                    } else {
                        border_blocks
                    };
                    let yp = if y + 1 < ny {
                        band[i + nx].blocks_forward()
                    } else if wraps {
                        band[z * plane + x].blocks_forward()
                    } else {
                        border_blocks
                    };
                    let zp = if z + 1 < planes {
                        band[i + plane].blocks_forward()
                    } else {
                        match halo {
                            Some(h) => h[y * nx + x].blocks_forward(),
                            None => border_blocks,
                        }
                    };
                    if xp && yp && zp {
                        band[i].mark_useless();
                        changed = true;
                        if z == 0 {
                            boundary_changed = true;
                        }
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
    boundary_changed
}

/// The can't-reach mirror of [`sweep_useless_band3`]: increasing order,
/// `-X`/`-Y`/`-Z` reads, `halo` is the plane below the band's first
/// plane. Returns whether the band's last plane gained a label.
fn sweep_cant_reach_band3(
    band: &mut [NodeStatus],
    nx: usize,
    ny: usize,
    wraps: bool,
    border_blocks: bool,
    halo: Option<&[NodeStatus]>,
) -> bool {
    let plane = nx * ny;
    let planes = band.len() / plane;
    let mut boundary_changed = false;
    loop {
        let mut changed = false;
        for z in 0..planes {
            for y in 0..ny {
                let row = z * plane + y * nx;
                for x in 0..nx {
                    let i = row + x;
                    if band[i].blocks_backward() {
                        continue;
                    }
                    let xm = if x > 0 {
                        band[i - 1].blocks_backward()
                    } else if wraps {
                        band[row + nx - 1].blocks_backward()
                    } else {
                        border_blocks
                    };
                    let ym = if y > 0 {
                        band[i - nx].blocks_backward()
                    } else if wraps {
                        band[z * plane + (ny - 1) * nx + x].blocks_backward()
                    } else {
                        border_blocks
                    };
                    let zm = if z > 0 {
                        band[i - plane].blocks_backward()
                    } else {
                        match halo {
                            Some(h) => h[y * nx + x].blocks_backward(),
                            None => border_blocks,
                        }
                    };
                    if xm && ym && zm {
                        band[i].mark_cant_reach();
                        changed = true;
                        if z == planes - 1 {
                            boundary_changed = true;
                        }
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
    boundary_changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c3;

    fn lab(mesh: &Mesh3D) -> Labelling3 {
        Labelling3::compute(mesh, Frame3::identity(mesh), BorderPolicy::BorderSafe)
    }

    /// The exact fault set of Figure 5 of the paper.
    fn figure5_mesh() -> Mesh3D {
        let mut mesh = Mesh3D::kary(10);
        for c in [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ] {
            mesh.inject_fault(c);
        }
        mesh
    }

    #[test]
    fn figure5_labelling_matches_paper() {
        // The paper states: "(5,5,5) becomes useless and (5,5,7) becomes
        // can't-reach in our labelling process."
        let l = lab(&figure5_mesh());
        assert!(
            l.status(c3(5, 5, 5)).is_useless(),
            "(5,5,5) must be useless"
        );
        assert!(
            l.status(c3(5, 5, 7)).is_cant_reach(),
            "(5,5,7) must be can't-reach"
        );
        // And exactly those two healthy nodes are sacrificed.
        assert_eq!(l.sacrificed_count(), 2);
        assert_eq!(l.unsafe_count(), 10);
    }

    #[test]
    fn figure5_other_neighbors_stay_safe() {
        let l = lab(&figure5_mesh());
        // The isolated fault (7,8,4) labels nothing around it.
        for c in [
            c3(6, 8, 4),
            c3(7, 7, 4),
            c3(7, 8, 3),
            c3(7, 8, 5),
            c3(8, 8, 4),
        ] {
            assert!(l.status(c).is_safe(), "{c} should stay safe");
        }
        // The hole (6,6,5) of the section z=5 stays safe (non-convex section).
        assert!(l.status(c3(6, 6, 5)).is_safe());
    }

    #[test]
    fn two_blocked_dims_are_not_enough_in_3d() {
        // +X and +Y blocked, +Z open -> still safe (escape along +Z).
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(5, 4, 4));
        mesh.inject_fault(c3(4, 5, 4));
        let l = lab(&mesh);
        assert!(l.status(c3(4, 4, 4)).is_safe());
        assert_eq!(l.sacrificed_count(), 0);
    }

    #[test]
    fn three_blocked_dims_label_useless() {
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(5, 4, 4));
        mesh.inject_fault(c3(4, 5, 4));
        mesh.inject_fault(c3(4, 4, 5));
        let l = lab(&mesh);
        assert!(l.status(c3(4, 4, 4)).is_useless());
        // and the symmetric pocket on the other side stays safe
        assert!(l.status(c3(5, 5, 5)).is_safe());
    }

    #[test]
    fn cant_reach_in_3d() {
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(3, 4, 4));
        mesh.inject_fault(c3(4, 3, 4));
        mesh.inject_fault(c3(4, 4, 3));
        let l = lab(&mesh);
        assert!(l.status(c3(4, 4, 4)).is_cant_reach());
        assert_eq!(l.sacrificed_count(), 1);
    }

    #[test]
    fn torus_pocket_wraps_in_all_three_dimensions() {
        // The corner node (4,4,4) of a 5-ary torus is sealed by its three
        // *wrapped* positive neighbors; on the mesh the BorderSafe policy
        // keeps it safe.
        let faults = [c3(0, 4, 4), c3(4, 0, 4), c3(4, 4, 0)];
        let mut torus = Mesh3D::torus_kary(5);
        for c in faults {
            torus.inject_fault(c);
        }
        let lt = Labelling3::compute(&torus, Frame3::identity(&torus), BorderPolicy::BorderSafe);
        assert!(lt.status(c3(4, 4, 4)).is_useless());
        assert_eq!(lt.sacrificed_count(), 1);

        let mut mesh = Mesh3D::kary(5);
        for c in faults {
            mesh.inject_fault(c);
        }
        let lm = lab(&mesh);
        assert!(lm.status(c3(4, 4, 4)).is_safe());
        assert_eq!(lm.sacrificed_count(), 0);
    }

    #[test]
    fn fault_free_all_safe() {
        let mesh = Mesh3D::kary(6);
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 0);
    }

    #[test]
    fn octant_reflection_changes_labelling() {
        // A useless pocket for the identity octant is a can't-reach pocket
        // for the fully flipped octant.
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(5, 4, 4));
        mesh.inject_fault(c3(4, 5, 4));
        mesh.inject_fault(c3(4, 4, 5));
        let f = Frame3::for_pair(&mesh, c3(7, 7, 7), c3(0, 0, 0));
        let l = Labelling3::compute(&mesh, f, BorderPolicy::BorderSafe);
        assert!(l.status_mesh(c3(4, 4, 4)).is_cant_reach());
    }

    #[test]
    fn repair_matches_recompute_on_random_churn_3d() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for torus in [false, true] {
            for policy in [BorderPolicy::BorderSafe, BorderPolicy::BorderBlocked] {
                let k = 6;
                let mut mesh = if torus {
                    Mesh3D::torus_kary(k)
                } else {
                    Mesh3D::kary(k)
                };
                let mut rng = SmallRng::seed_from_u64(torus as u64 * 2 + 3);
                for _ in 0..20 {
                    mesh.inject_fault(c3(
                        rng.gen_range(0..k),
                        rng.gen_range(0..k),
                        rng.gen_range(0..k),
                    ));
                }
                let mut l = Labelling3::compute(&mesh, Frame3::identity(&mesh), policy);
                for _ in 0..30 {
                    let mut injected = Vec::new();
                    let mut healed = Vec::new();
                    for _ in 0..rng.gen_range(0..4) {
                        let c = c3(
                            rng.gen_range(0..k),
                            rng.gen_range(0..k),
                            rng.gen_range(0..k),
                        );
                        if mesh.is_healthy(c) && !injected.contains(&c) {
                            injected.push(c);
                        }
                    }
                    let faults = mesh.faults().to_vec();
                    for _ in 0..rng.gen_range(0..4) {
                        let c = faults[rng.gen_range(0..faults.len())];
                        if !healed.contains(&c) {
                            healed.push(c);
                        }
                    }
                    for &c in &injected {
                        assert!(mesh.inject_fault(c));
                    }
                    for &c in &healed {
                        assert!(mesh.heal_fault(c));
                    }
                    l.repair(&injected, &healed, Parallelism::SEQ);
                    let fresh = Labelling3::compute(&mesh, l.frame(), policy);
                    for ((c, a), (_, b)) in l.iter().zip(fresh.iter()) {
                        assert_eq!(a, b, "status diverged at {c}");
                    }
                    assert_eq!(l.unsafe_set(), fresh.unsafe_set());
                }
            }
        }
    }

    #[test]
    fn status_mesh_roundtrip() {
        let mut mesh = Mesh3D::kary(5);
        mesh.inject_fault(c3(2, 2, 2));
        for f in Frame3::all(&mesh) {
            let l = Labelling3::compute(&mesh, f, BorderPolicy::BorderSafe);
            for c in mesh.nodes() {
                assert_eq!(l.status_mesh(c), l.status(f.to_canon(c)));
            }
        }
    }
}
