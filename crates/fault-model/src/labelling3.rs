//! Algorithm 4 — the MCC labelling closure in 3-D meshes.
//!
//! The 3-D rules strengthen the 2-D ones: a safe node is *useless* only if
//! **all three** of its `+X`, `+Y`, `+Z` neighbors are faulty-or-useless
//! (with only two blocked the message can still escape along the third
//! positive dimension), and *can't-reach* only if all three negative
//! neighbors are faulty-or-can't-reach.

use mesh_topo::{Frame3, Grid3, Mesh3D, C3};

use crate::status::{BorderPolicy, NodeStatus};

/// The fixpoint of Algorithm 4 for one octant orientation of a 3-D mesh.
///
/// Coordinates exposed by this type are **canonical** (post-reflection).
#[derive(Clone, Debug)]
pub struct Labelling3 {
    frame: Frame3,
    policy: BorderPolicy,
    status: Grid3<NodeStatus>,
    unsafe_count: usize,
}

impl Labelling3 {
    /// Run the labelling closure for `mesh` under `frame`.
    pub fn compute(mesh: &Mesh3D, frame: Frame3, policy: BorderPolicy) -> Labelling3 {
        let mut status = Grid3::new(mesh.nx(), mesh.ny(), mesh.nz(), NodeStatus::SAFE);
        for &f in mesh.faults() {
            status[frame.to_canon(f)] = NodeStatus::FAULT;
        }
        let mut lab = Labelling3 {
            frame,
            policy,
            status,
            unsafe_count: mesh.fault_count(),
        };
        lab.close();
        lab
    }

    /// Run the labelling for the pair `(s, d)` in mesh coordinates.
    pub fn for_pair(mesh: &Mesh3D, s: C3, d: C3, policy: BorderPolicy) -> Labelling3 {
        Labelling3::compute(mesh, Frame3::for_pair(mesh, s, d), policy)
    }

    fn blocks_forward(&self, c: C3) -> bool {
        match self.status.get(c) {
            Some(s) => s.blocks_forward(),
            None => matches!(self.policy, BorderPolicy::BorderBlocked),
        }
    }

    fn blocks_backward(&self, c: C3) -> bool {
        match self.status.get(c) {
            Some(s) => s.blocks_backward(),
            None => matches!(self.policy, BorderPolicy::BorderBlocked),
        }
    }

    fn close(&mut self) {
        use mesh_topo::dir::Dir3::{Xm, Xp, Ym, Yp, Zm, Zp};
        let mut fwd: Vec<C3> = self.status.coords().collect();
        while let Some(u) = fwd.pop() {
            let Some(&st) = self.status.get(u) else {
                continue;
            };
            if st.blocks_forward() {
                continue;
            }
            if self.blocks_forward(u.step(Xp))
                && self.blocks_forward(u.step(Yp))
                && self.blocks_forward(u.step(Zp))
            {
                self.status[u].mark_useless();
                if !st.is_unsafe() {
                    self.unsafe_count += 1;
                }
                for v in [u.step(Xm), u.step(Ym), u.step(Zm)] {
                    if self.status.contains(v) {
                        fwd.push(v);
                    }
                }
            }
        }
        let mut bwd: Vec<C3> = self.status.coords().collect();
        while let Some(u) = bwd.pop() {
            let Some(&st) = self.status.get(u) else {
                continue;
            };
            if st.blocks_backward() {
                continue;
            }
            if self.blocks_backward(u.step(Xm))
                && self.blocks_backward(u.step(Ym))
                && self.blocks_backward(u.step(Zm))
            {
                let already_unsafe = st.is_unsafe();
                self.status[u].mark_cant_reach();
                if !already_unsafe {
                    self.unsafe_count += 1;
                }
                for v in [u.step(Xp), u.step(Yp), u.step(Zp)] {
                    if self.status.contains(v) {
                        bwd.push(v);
                    }
                }
            }
        }
    }

    /// The octant frame this labelling was computed under.
    #[inline]
    pub fn frame(&self) -> Frame3 {
        self.frame
    }

    /// The border policy used.
    #[inline]
    pub fn policy(&self) -> BorderPolicy {
        self.policy
    }

    /// Status of the node at **canonical** coordinate `c`.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    #[inline]
    pub fn status(&self, c: C3) -> NodeStatus {
        self.status[c]
    }

    /// Status at canonical `c`, or `None` if outside the mesh.
    #[inline]
    pub fn status_get(&self, c: C3) -> Option<NodeStatus> {
        self.status.get(c).copied()
    }

    /// True if canonical `c` is inside the mesh and unsafe.
    #[inline]
    pub fn is_unsafe(&self, c: C3) -> bool {
        self.status.get(c).map(|s| s.is_unsafe()).unwrap_or(false)
    }

    /// True if canonical `c` is inside the mesh and safe.
    #[inline]
    pub fn is_safe(&self, c: C3) -> bool {
        self.status.get(c).map(|s| s.is_safe()).unwrap_or(false)
    }

    /// Status of the node at **mesh** coordinate `c`.
    #[inline]
    pub fn status_mesh(&self, c: C3) -> NodeStatus {
        self.status[self.frame.to_canon(c)]
    }

    /// Total number of unsafe nodes (faulty + labelled).
    #[inline]
    pub fn unsafe_count(&self) -> usize {
        self.unsafe_count
    }

    /// Number of healthy nodes labelled unsafe.
    pub fn sacrificed_count(&self) -> usize {
        self.status
            .iter()
            .filter(|(_, s)| s.is_unsafe() && !s.is_faulty())
            .count()
    }

    /// Extent along X.
    #[inline]
    pub fn nx(&self) -> i32 {
        self.status.nx()
    }

    /// Extent along Y.
    #[inline]
    pub fn ny(&self) -> i32 {
        self.status.ny()
    }

    /// Extent along Z.
    #[inline]
    pub fn nz(&self) -> i32 {
        self.status.nz()
    }

    /// Iterate `(canonical coordinate, status)` for all nodes.
    pub fn iter(&self) -> impl Iterator<Item = (C3, NodeStatus)> + '_ {
        self.status.iter().map(|(c, &s)| (c, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c3;

    fn lab(mesh: &Mesh3D) -> Labelling3 {
        Labelling3::compute(mesh, Frame3::identity(mesh), BorderPolicy::BorderSafe)
    }

    /// The exact fault set of Figure 5 of the paper.
    fn figure5_mesh() -> Mesh3D {
        let mut mesh = Mesh3D::kary(10);
        for c in [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ] {
            mesh.inject_fault(c);
        }
        mesh
    }

    #[test]
    fn figure5_labelling_matches_paper() {
        // The paper states: "(5,5,5) becomes useless and (5,5,7) becomes
        // can't-reach in our labelling process."
        let l = lab(&figure5_mesh());
        assert!(
            l.status(c3(5, 5, 5)).is_useless(),
            "(5,5,5) must be useless"
        );
        assert!(
            l.status(c3(5, 5, 7)).is_cant_reach(),
            "(5,5,7) must be can't-reach"
        );
        // And exactly those two healthy nodes are sacrificed.
        assert_eq!(l.sacrificed_count(), 2);
        assert_eq!(l.unsafe_count(), 10);
    }

    #[test]
    fn figure5_other_neighbors_stay_safe() {
        let l = lab(&figure5_mesh());
        // The isolated fault (7,8,4) labels nothing around it.
        for c in [
            c3(6, 8, 4),
            c3(7, 7, 4),
            c3(7, 8, 3),
            c3(7, 8, 5),
            c3(8, 8, 4),
        ] {
            assert!(l.status(c).is_safe(), "{c} should stay safe");
        }
        // The hole (6,6,5) of the section z=5 stays safe (non-convex section).
        assert!(l.status(c3(6, 6, 5)).is_safe());
    }

    #[test]
    fn two_blocked_dims_are_not_enough_in_3d() {
        // +X and +Y blocked, +Z open -> still safe (escape along +Z).
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(5, 4, 4));
        mesh.inject_fault(c3(4, 5, 4));
        let l = lab(&mesh);
        assert!(l.status(c3(4, 4, 4)).is_safe());
        assert_eq!(l.sacrificed_count(), 0);
    }

    #[test]
    fn three_blocked_dims_label_useless() {
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(5, 4, 4));
        mesh.inject_fault(c3(4, 5, 4));
        mesh.inject_fault(c3(4, 4, 5));
        let l = lab(&mesh);
        assert!(l.status(c3(4, 4, 4)).is_useless());
        // and the symmetric pocket on the other side stays safe
        assert!(l.status(c3(5, 5, 5)).is_safe());
    }

    #[test]
    fn cant_reach_in_3d() {
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(3, 4, 4));
        mesh.inject_fault(c3(4, 3, 4));
        mesh.inject_fault(c3(4, 4, 3));
        let l = lab(&mesh);
        assert!(l.status(c3(4, 4, 4)).is_cant_reach());
        assert_eq!(l.sacrificed_count(), 1);
    }

    #[test]
    fn fault_free_all_safe() {
        let mesh = Mesh3D::kary(6);
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 0);
    }

    #[test]
    fn octant_reflection_changes_labelling() {
        // A useless pocket for the identity octant is a can't-reach pocket
        // for the fully flipped octant.
        let mut mesh = Mesh3D::kary(8);
        mesh.inject_fault(c3(5, 4, 4));
        mesh.inject_fault(c3(4, 5, 4));
        mesh.inject_fault(c3(4, 4, 5));
        let f = Frame3::for_pair(&mesh, c3(7, 7, 7), c3(0, 0, 0));
        let l = Labelling3::compute(&mesh, f, BorderPolicy::BorderSafe);
        assert!(l.status_mesh(c3(4, 4, 4)).is_cant_reach());
    }

    #[test]
    fn status_mesh_roundtrip() {
        let mut mesh = Mesh3D::kary(5);
        mesh.inject_fault(c3(2, 2, 2));
        for f in Frame3::all(&mesh) {
            let l = Labelling3::compute(&mesh, f, BorderPolicy::BorderSafe);
            for c in mesh.nodes() {
                assert_eq!(l.status_mesh(c), l.status(f.to_canon(c)));
            }
        }
    }
}
