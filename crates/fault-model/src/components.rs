//! Connected components of unsafe nodes.
//!
//! Each connected component of the unsafe set is one fault region — under
//! the MCC labelling it is exactly one Minimal Connected Component.
//!
//! Connectivity is **8-connectivity** in 2-D and **18-connectivity** (face
//! plus planar-diagonal) in 3-D. Diagonally adjacent unsafe nodes share edge
//! nodes, so the paper's identification process walks them as one region;
//! the Figure 5 example fixes the 3-D flavor: its large MCC holds cells like
//! `(5,6,5)` and `(6,7,5)` (an XY-diagonal pair) while the space-diagonal
//! neighbor `(7,8,4)` forms its own MCC — exactly 18-connectivity.
//!
//! Discovery runs on the flat node-state layer: the labelling's
//! [`mesh_topo::NodeSet`] of unsafe nodes is scanned word-by-word for
//! unvisited seeds, and the BFS frontier holds linear node indices whose
//! neighbors come from [`NodeSpace2::for_neighbors8`] /
//! [`NodeSpace3::for_neighbors18`] — no hashing, no per-node coordinate
//! arithmetic beyond one decode per visit.

use mesh_topo::{NodeGrid, NodeSpace2, NodeSpace3, C2, C3};

use crate::labelling2::Labelling2;
use crate::labelling3::Labelling3;

/// Sentinel for "not part of any component".
pub const NO_COMPONENT: u32 = u32::MAX;

/// The 8-neighborhood (face + diagonal) used for 2-D region connectivity.
pub const NEIGHBORS_8: [(i32, i32); 8] = [
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
];

/// The 18-neighborhood (face + planar-diagonal) used for 3-D region
/// connectivity. Space diagonals (all three coordinates differing) are
/// excluded, matching the paper's Figure 5 decomposition.
pub const NEIGHBORS_18: [(i32, i32, i32); 18] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (-1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (-1, 0, 1),
    (-1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (0, -1, 1),
    (0, -1, -1),
];

/// Component decomposition of the unsafe set of a 2-D labelling.
#[derive(Clone, Debug)]
pub struct Components2 {
    space: NodeSpace2,
    id: NodeGrid<u32>,
    /// Cells of each component, in discovery (BFS) order.
    pub cells: Vec<Vec<C2>>,
}

/// Component decomposition of the unsafe set of a 3-D labelling.
#[derive(Clone, Debug)]
pub struct Components3 {
    space: NodeSpace3,
    id: NodeGrid<u32>,
    /// Cells of each component, in discovery (BFS) order.
    pub cells: Vec<Vec<C3>>,
}

impl Components2 {
    /// Decompose the unsafe set of `lab` into connected components.
    pub fn compute(lab: &Labelling2) -> Components2 {
        let space = lab.space();
        let unsafe_set = lab.unsafe_set();
        let mut id = NodeGrid::new(space.len(), NO_COMPONENT);
        let mut cells: Vec<Vec<C2>> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for start in unsafe_set.iter() {
            if id[start] != NO_COMPONENT {
                continue;
            }
            let comp = cells.len() as u32;
            let mut comp_cells = Vec::new();
            queue.clear();
            queue.push(start);
            id[start] = comp;
            while let Some(u) = queue.pop() {
                comp_cells.push(space.coord(u));
                space.for_neighbors8(u, |v| {
                    if unsafe_set.contains(v) && id[v] == NO_COMPONENT {
                        id[v] = comp;
                        queue.push(v);
                    }
                });
            }
            cells.push(comp_cells);
        }
        Components2 { space, id, cells }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the unsafe set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Component id of canonical `c`, if it is unsafe.
    pub fn component_of(&self, c: C2) -> Option<u32> {
        match self.space.index_checked(c).map(|i| self.id[i]) {
            Some(i) if i != NO_COMPONENT => Some(i),
            _ => None,
        }
    }
}

impl Components3 {
    /// Decompose the unsafe set of `lab` into connected components.
    pub fn compute(lab: &Labelling3) -> Components3 {
        let space = lab.space();
        let unsafe_set = lab.unsafe_set();
        let mut id = NodeGrid::new(space.len(), NO_COMPONENT);
        let mut cells: Vec<Vec<C3>> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for start in unsafe_set.iter() {
            if id[start] != NO_COMPONENT {
                continue;
            }
            let comp = cells.len() as u32;
            let mut comp_cells = Vec::new();
            queue.clear();
            queue.push(start);
            id[start] = comp;
            while let Some(u) = queue.pop() {
                comp_cells.push(space.coord(u));
                space.for_neighbors18(u, |v| {
                    if unsafe_set.contains(v) && id[v] == NO_COMPONENT {
                        id[v] = comp;
                        queue.push(v);
                    }
                });
            }
            cells.push(comp_cells);
        }
        Components3 { space, id, cells }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the unsafe set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Component id of canonical `c`, if it is unsafe.
    pub fn component_of(&self, c: C3) -> Option<u32> {
        match self.space.index_checked(c).map(|i| self.id[i]) {
            Some(i) if i != NO_COMPONENT => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::BorderPolicy;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D};

    #[test]
    fn two_isolated_faults_two_components() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(2, 2));
        mesh.inject_fault(c2(7, 7));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        assert_eq!(comps.len(), 2);
        assert_ne!(comps.component_of(c2(2, 2)), comps.component_of(c2(7, 7)));
        assert_eq!(comps.component_of(c2(5, 5)), None);
    }

    #[test]
    fn closure_merges_antidiagonal_faults() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 6));
        mesh.inject_fault(c2(6, 5));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps.cells[0].len(), 4);
    }

    #[test]
    fn figure5_has_two_components() {
        let mut mesh = Mesh3D::kary(10);
        for c in [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ] {
            mesh.inject_fault(c);
        }
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components3::compute(&lab);
        // Paper: "One MCC contains only one faulty node (7,8,4) and the other
        // MCC contains all the other unsafe nodes."
        assert_eq!(comps.len(), 2);
        let big = comps.component_of(c3(5, 5, 5)).unwrap();
        let small = comps.component_of(c3(7, 8, 4)).unwrap();
        assert_ne!(big, small);
        let big_cells = &comps.cells[big as usize];
        assert_eq!(big_cells.len(), 9); // 7 faults + useless + can't-reach
        assert_eq!(comps.cells[small as usize].len(), 1);
    }

    #[test]
    fn all_cells_have_consistent_ids() {
        let mut mesh = Mesh2D::new(12, 12);
        for c in [c2(3, 4), c2(4, 3), c2(4, 4), c2(8, 8), c2(8, 9)] {
            mesh.inject_fault(c);
        }
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        for (i, cells) in comps.cells.iter().enumerate() {
            for &c in cells {
                assert_eq!(comps.component_of(c), Some(i as u32));
            }
        }
        let total: usize = comps.cells.iter().map(|c| c.len()).sum();
        assert_eq!(total, lab.unsafe_count());
    }

    #[test]
    fn empty_mesh_no_components() {
        let mesh = Mesh3D::kary(4);
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        assert!(Components3::compute(&lab).is_empty());
    }
}
