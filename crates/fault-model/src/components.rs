//! Connected components of unsafe nodes.
//!
//! Each connected component of the unsafe set is one fault region — under
//! the MCC labelling it is exactly one Minimal Connected Component.
//!
//! Connectivity is **8-connectivity** in 2-D and **18-connectivity** (face
//! plus planar-diagonal) in 3-D. Diagonally adjacent unsafe nodes share edge
//! nodes, so the paper's identification process walks them as one region;
//! the Figure 5 example fixes the 3-D flavor: its large MCC holds cells like
//! `(5,6,5)` and `(6,7,5)` (an XY-diagonal pair) while the space-diagonal
//! neighbor `(7,8,4)` forms its own MCC — exactly 18-connectivity.
//!
//! Discovery runs on the flat node-state layer: the labelling's
//! [`mesh_topo::NodeSet`] of unsafe nodes is scanned word-by-word for
//! unvisited seeds, and the BFS frontier holds linear node indices whose
//! neighbors come from [`NodeSpace2::for_neighbors8`] /
//! [`NodeSpace3::for_neighbors18`] — no hashing, no per-node coordinate
//! arithmetic beyond one decode per visit.

use mesh_topo::{NodeGrid, NodeSpace2, NodeSpace3, C2, C3};

use crate::labelling2::Labelling2;
use crate::labelling3::Labelling3;

/// Sentinel for "not part of any component".
pub const NO_COMPONENT: u32 = u32::MAX;

/// The 8-neighborhood (face + diagonal) used for 2-D region connectivity.
pub const NEIGHBORS_8: [(i32, i32); 8] = [
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
];

/// The 18-neighborhood (face + planar-diagonal) used for 3-D region
/// connectivity. Space diagonals (all three coordinates differing) are
/// excluded, matching the paper's Figure 5 decomposition.
pub const NEIGHBORS_18: [(i32, i32, i32); 18] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (-1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (-1, 0, 1),
    (-1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (0, -1, 1),
    (0, -1, -1),
];

/// Provenance of one component after an incremental repair
/// ([`Components2::repair`] / [`Components3::repair`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompSource {
    /// Fresh DFS re-discovery: membership or cell order may have changed.
    Rebuilt,
    /// Carried over intact from the pre-repair decomposition, where it was
    /// component `old` (only its id can have shifted).
    Carried {
        /// Index of this component before the repair.
        old: usize,
    },
}

/// Component decomposition of the unsafe set of a 2-D labelling.
#[derive(Clone, Debug)]
pub struct Components2 {
    space: NodeSpace2,
    id: NodeGrid<u32>,
    /// Cells of each component, in discovery (BFS) order.
    pub cells: Vec<Vec<C2>>,
}

/// Component decomposition of the unsafe set of a 3-D labelling.
#[derive(Clone, Debug)]
pub struct Components3 {
    space: NodeSpace3,
    id: NodeGrid<u32>,
    /// Cells of each component, in discovery (BFS) order.
    pub cells: Vec<Vec<C3>>,
}

impl Components2 {
    /// Decompose the unsafe set of `lab` into connected components.
    pub fn compute(lab: &Labelling2) -> Components2 {
        let space = lab.space();
        let unsafe_set = lab.unsafe_set();
        let mut id = NodeGrid::new(space.len(), NO_COMPONENT);
        let mut cells: Vec<Vec<C2>> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for start in unsafe_set.iter() {
            if id[start] != NO_COMPONENT {
                continue;
            }
            let comp = cells.len() as u32;
            let mut comp_cells = Vec::new();
            queue.clear();
            queue.push(start);
            id[start] = comp;
            while let Some(u) = queue.pop() {
                comp_cells.push(space.coord(u));
                space.for_neighbors8(u, |v| {
                    if unsafe_set.contains(v) && id[v] == NO_COMPONENT {
                        id[v] = comp;
                        queue.push(v);
                    }
                });
            }
            cells.push(comp_cells);
        }
        Components2 { space, id, cells }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the unsafe set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Component id of canonical `c`, if it is unsafe.
    pub fn component_of(&self, c: C2) -> Option<u32> {
        match self.space.index_checked(c).map(|i| self.id[i]) {
            Some(i) if i != NO_COMPONENT => Some(i),
            _ => None,
        }
    }

    /// Incrementally repair the decomposition after a labelling repair:
    /// `lab` is the repaired labelling and `changed` the sorted dirty
    /// region [`Labelling2::repair`] returned. Components touched by a
    /// membership flip — they lost a cell, or gained or became adjacent to
    /// one — are re-discovered with [`Components2::compute`]'s exact DFS;
    /// the rest are carried over, renumbered into the same min-cell-index
    /// order `compute` emits. Ids, component order and per-component cell
    /// order end up **bit-for-bit identical** to a from-scratch
    /// `Components2::compute(lab)` (see DESIGN.md §12).
    ///
    /// Returns the provenance of every post-repair component — the input
    /// MCC repair needs to decide which shapes to re-extract.
    pub fn repair(&mut self, lab: &Labelling2, changed: &[usize]) -> Vec<CompSource> {
        let space = self.space;
        let unsafe_set = lab.unsafe_set();
        let id = &mut self.id;
        let cells = &mut self.cells;
        let mut affected: Vec<u32> = Vec::new();
        let mut added: Vec<usize> = Vec::new();
        for &i in changed {
            let now = unsafe_set.contains(i);
            let was = id[i] != NO_COMPONENT;
            if now && !was {
                added.push(i);
                space.for_neighbors8(i, |v| {
                    if id[v] != NO_COMPONENT {
                        affected.push(id[v]);
                    }
                });
            } else if !now && was {
                affected.push(id[i]);
            }
        }
        if added.is_empty() && affected.is_empty() {
            return (0..cells.len())
                .map(|old| CompSource::Carried { old })
                .collect();
        }
        affected.sort_unstable();
        affected.dedup();
        // Clear the affected components and collect the rebuild seeds:
        // their still-unsafe cells plus the newly unsafe nodes, ascending.
        let mut seeds = added;
        for &a in &affected {
            for &c in &cells[a as usize] {
                let i = space.index(c);
                id[i] = NO_COMPONENT;
                if unsafe_set.contains(i) {
                    seeds.push(i);
                }
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        // Re-discover inside the cleared region with compute()'s DFS. A
        // surviving component is never adjacent to the region: any bridge
        // runs through an added node, whose neighbor components were all
        // marked affected above — so the `id[v] == NO_COMPONENT` guard
        // confines the walk exactly as in a full compute.
        let mut rebuilt: Vec<Vec<C2>> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for &start in &seeds {
            if id[start] != NO_COMPONENT {
                continue;
            }
            let mark = (cells.len() + rebuilt.len()) as u32;
            let mut comp_cells = Vec::new();
            queue.clear();
            queue.push(start);
            id[start] = mark;
            while let Some(u) = queue.pop() {
                comp_cells.push(space.coord(u));
                space.for_neighbors8(u, |v| {
                    if unsafe_set.contains(v) && id[v] == NO_COMPONENT {
                        id[v] = mark;
                        queue.push(v);
                    }
                });
            }
            rebuilt.push(comp_cells);
        }
        // Merge survivors and rebuilds in min-cell-index order — the order
        // compute() discovers components in (each seed above, like each
        // compute() seed, is its component's smallest index) — rewriting
        // ids only where they differ from the pre-repair value.
        let mut affected_mask = vec![false; cells.len()];
        for &a in &affected {
            affected_mask[a as usize] = true;
        }
        let survivors: Vec<(usize, Vec<C2>)> = std::mem::take(cells)
            .into_iter()
            .enumerate()
            .filter(|&(o, _)| !affected_mask[o])
            .collect();
        let mut out: Vec<Vec<C2>> = Vec::with_capacity(survivors.len() + rebuilt.len());
        let mut sources: Vec<CompSource> = Vec::with_capacity(survivors.len() + rebuilt.len());
        let mut sv = survivors.into_iter().peekable();
        let mut rb = rebuilt.into_iter().peekable();
        loop {
            let take_survivor = match (sv.peek(), rb.peek()) {
                (Some((_, sc)), Some(rc)) => space.index(sc[0]) < space.index(rc[0]),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let new_id = out.len() as u32;
            if take_survivor {
                let (old, comp_cells) = sv.next().expect("peeked");
                if old as u32 != new_id {
                    for &c in &comp_cells {
                        id[space.index(c)] = new_id;
                    }
                }
                sources.push(CompSource::Carried { old });
                out.push(comp_cells);
            } else {
                let comp_cells = rb.next().expect("peeked");
                for &c in &comp_cells {
                    id[space.index(c)] = new_id;
                }
                sources.push(CompSource::Rebuilt);
                out.push(comp_cells);
            }
        }
        *cells = out;
        sources
    }
}

impl Components3 {
    /// Decompose the unsafe set of `lab` into connected components.
    pub fn compute(lab: &Labelling3) -> Components3 {
        let space = lab.space();
        let unsafe_set = lab.unsafe_set();
        let mut id = NodeGrid::new(space.len(), NO_COMPONENT);
        let mut cells: Vec<Vec<C3>> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for start in unsafe_set.iter() {
            if id[start] != NO_COMPONENT {
                continue;
            }
            let comp = cells.len() as u32;
            let mut comp_cells = Vec::new();
            queue.clear();
            queue.push(start);
            id[start] = comp;
            while let Some(u) = queue.pop() {
                comp_cells.push(space.coord(u));
                space.for_neighbors18(u, |v| {
                    if unsafe_set.contains(v) && id[v] == NO_COMPONENT {
                        id[v] = comp;
                        queue.push(v);
                    }
                });
            }
            cells.push(comp_cells);
        }
        Components3 { space, id, cells }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the unsafe set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Component id of canonical `c`, if it is unsafe.
    pub fn component_of(&self, c: C3) -> Option<u32> {
        match self.space.index_checked(c).map(|i| self.id[i]) {
            Some(i) if i != NO_COMPONENT => Some(i),
            _ => None,
        }
    }

    /// Incrementally repair the decomposition — the 3-D twin of
    /// [`Components2::repair`], over 18-connectivity. Same contract:
    /// bit-for-bit identical to `Components3::compute(lab)`, returns the
    /// per-component provenance.
    pub fn repair(&mut self, lab: &Labelling3, changed: &[usize]) -> Vec<CompSource> {
        let space = self.space;
        let unsafe_set = lab.unsafe_set();
        let id = &mut self.id;
        let cells = &mut self.cells;
        let mut affected: Vec<u32> = Vec::new();
        let mut added: Vec<usize> = Vec::new();
        for &i in changed {
            let now = unsafe_set.contains(i);
            let was = id[i] != NO_COMPONENT;
            if now && !was {
                added.push(i);
                space.for_neighbors18(i, |v| {
                    if id[v] != NO_COMPONENT {
                        affected.push(id[v]);
                    }
                });
            } else if !now && was {
                affected.push(id[i]);
            }
        }
        if added.is_empty() && affected.is_empty() {
            return (0..cells.len())
                .map(|old| CompSource::Carried { old })
                .collect();
        }
        affected.sort_unstable();
        affected.dedup();
        let mut seeds = added;
        for &a in &affected {
            for &c in &cells[a as usize] {
                let i = space.index(c);
                id[i] = NO_COMPONENT;
                if unsafe_set.contains(i) {
                    seeds.push(i);
                }
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        let mut rebuilt: Vec<Vec<C3>> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for &start in &seeds {
            if id[start] != NO_COMPONENT {
                continue;
            }
            let mark = (cells.len() + rebuilt.len()) as u32;
            let mut comp_cells = Vec::new();
            queue.clear();
            queue.push(start);
            id[start] = mark;
            while let Some(u) = queue.pop() {
                comp_cells.push(space.coord(u));
                space.for_neighbors18(u, |v| {
                    if unsafe_set.contains(v) && id[v] == NO_COMPONENT {
                        id[v] = mark;
                        queue.push(v);
                    }
                });
            }
            rebuilt.push(comp_cells);
        }
        let mut affected_mask = vec![false; cells.len()];
        for &a in &affected {
            affected_mask[a as usize] = true;
        }
        let survivors: Vec<(usize, Vec<C3>)> = std::mem::take(cells)
            .into_iter()
            .enumerate()
            .filter(|&(o, _)| !affected_mask[o])
            .collect();
        let mut out: Vec<Vec<C3>> = Vec::with_capacity(survivors.len() + rebuilt.len());
        let mut sources: Vec<CompSource> = Vec::with_capacity(survivors.len() + rebuilt.len());
        let mut sv = survivors.into_iter().peekable();
        let mut rb = rebuilt.into_iter().peekable();
        loop {
            let take_survivor = match (sv.peek(), rb.peek()) {
                (Some((_, sc)), Some(rc)) => space.index(sc[0]) < space.index(rc[0]),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let new_id = out.len() as u32;
            if take_survivor {
                let (old, comp_cells) = sv.next().expect("peeked");
                if old as u32 != new_id {
                    for &c in &comp_cells {
                        id[space.index(c)] = new_id;
                    }
                }
                sources.push(CompSource::Carried { old });
                out.push(comp_cells);
            } else {
                let comp_cells = rb.next().expect("peeked");
                for &c in &comp_cells {
                    id[space.index(c)] = new_id;
                }
                sources.push(CompSource::Rebuilt);
                out.push(comp_cells);
            }
        }
        *cells = out;
        sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::BorderPolicy;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D};

    #[test]
    fn two_isolated_faults_two_components() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(2, 2));
        mesh.inject_fault(c2(7, 7));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        assert_eq!(comps.len(), 2);
        assert_ne!(comps.component_of(c2(2, 2)), comps.component_of(c2(7, 7)));
        assert_eq!(comps.component_of(c2(5, 5)), None);
    }

    #[test]
    fn closure_merges_antidiagonal_faults() {
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 6));
        mesh.inject_fault(c2(6, 5));
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps.cells[0].len(), 4);
    }

    #[test]
    fn figure5_has_two_components() {
        let mut mesh = Mesh3D::kary(10);
        for c in [
            c3(5, 5, 6),
            c3(6, 5, 5),
            c3(5, 6, 5),
            c3(6, 7, 5),
            c3(7, 6, 5),
            c3(5, 4, 7),
            c3(4, 5, 7),
            c3(7, 8, 4),
        ] {
            mesh.inject_fault(c);
        }
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components3::compute(&lab);
        // Paper: "One MCC contains only one faulty node (7,8,4) and the other
        // MCC contains all the other unsafe nodes."
        assert_eq!(comps.len(), 2);
        let big = comps.component_of(c3(5, 5, 5)).unwrap();
        let small = comps.component_of(c3(7, 8, 4)).unwrap();
        assert_ne!(big, small);
        let big_cells = &comps.cells[big as usize];
        assert_eq!(big_cells.len(), 9); // 7 faults + useless + can't-reach
        assert_eq!(comps.cells[small as usize].len(), 1);
    }

    #[test]
    fn all_cells_have_consistent_ids() {
        let mut mesh = Mesh2D::new(12, 12);
        for c in [c2(3, 4), c2(4, 3), c2(4, 4), c2(8, 8), c2(8, 9)] {
            mesh.inject_fault(c);
        }
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let comps = Components2::compute(&lab);
        for (i, cells) in comps.cells.iter().enumerate() {
            for &c in cells {
                assert_eq!(comps.component_of(c), Some(i as u32));
            }
        }
        let total: usize = comps.cells.iter().map(|c| c.len()).sum();
        assert_eq!(total, lab.unsafe_count());
    }

    #[test]
    fn empty_mesh_no_components() {
        let mesh = Mesh3D::kary(4);
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        assert!(Components3::compute(&lab).is_empty());
    }

    use mesh_topo::Parallelism;

    fn churn_and_repair(
        mesh: &mut Mesh2D,
        lab: &mut Labelling2,
        comps: &mut Components2,
        injected: &[C2],
        healed: &[C2],
    ) -> Vec<CompSource> {
        for &c in injected {
            assert!(mesh.inject_fault(c));
        }
        for &c in healed {
            assert!(mesh.heal_fault(c));
        }
        let changed = lab.repair(injected, healed, Parallelism::SEQ);
        comps.repair(lab, &changed)
    }

    fn assert_comps_match(lab: &Labelling2, comps: &Components2) {
        let fresh = Components2::compute(lab);
        assert_eq!(comps.cells, fresh.cells, "cells/order diverged");
        assert_eq!(comps.id, fresh.id, "id grid diverged");
    }

    #[test]
    fn component_split_then_remerge_tracks_compute() {
        // A 3-cell bar at y=4: healing the middle cell splits the region in
        // two; re-injecting it merges them back. Ids, component order and
        // cell order must track a from-scratch compute at every step.
        let mut mesh = Mesh2D::new(12, 12);
        for c in [c2(3, 4), c2(4, 4), c2(5, 4), c2(9, 9)] {
            mesh.inject_fault(c);
        }
        let mut lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let mut comps = Components2::compute(&lab);
        assert_eq!(comps.len(), 2);

        let sources = churn_and_repair(&mut mesh, &mut lab, &mut comps, &[], &[c2(4, 4)]);
        assert_eq!(comps.len(), 3, "split must produce two bar components");
        assert_comps_match(&lab, &comps);
        // The far (9,9) singleton survived the split untouched.
        assert!(sources.contains(&CompSource::Carried { old: 1 }));

        let sources = churn_and_repair(&mut mesh, &mut lab, &mut comps, &[c2(4, 4)], &[]);
        assert_eq!(comps.len(), 2, "re-injection must remerge the bars");
        assert_comps_match(&lab, &comps);
        assert_eq!(
            sources,
            vec![CompSource::Rebuilt, CompSource::Carried { old: 2 }]
        );
    }

    #[test]
    fn repair_matches_compute_on_random_churn() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for torus in [false, true] {
            let (w, h) = (11, 8);
            let mut mesh = if torus {
                Mesh2D::torus(w, h)
            } else {
                Mesh2D::new(w, h)
            };
            let mut rng = SmallRng::seed_from_u64(29 + torus as u64);
            for _ in 0..14 {
                mesh.inject_fault(c2(rng.gen_range(0..w), rng.gen_range(0..h)));
            }
            let mut lab =
                Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
            let mut comps = Components2::compute(&lab);
            for _ in 0..40 {
                let mut injected = Vec::new();
                let mut healed = Vec::new();
                for _ in 0..rng.gen_range(0..3) {
                    let c = c2(rng.gen_range(0..w), rng.gen_range(0..h));
                    if mesh.is_healthy(c) && !injected.contains(&c) {
                        injected.push(c);
                    }
                }
                let faults = mesh.faults().to_vec();
                for _ in 0..rng.gen_range(0..3) {
                    let c = faults[rng.gen_range(0..faults.len())];
                    if !healed.contains(&c) {
                        healed.push(c);
                    }
                }
                churn_and_repair(&mut mesh, &mut lab, &mut comps, &injected, &healed);
                assert_comps_match(&lab, &comps);
            }
        }
    }

    #[test]
    fn repair_matches_compute_on_random_churn_3d() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for torus in [false, true] {
            let k = 6;
            let mut mesh = if torus {
                Mesh3D::torus_kary(k)
            } else {
                Mesh3D::kary(k)
            };
            let mut rng = SmallRng::seed_from_u64(53 + torus as u64);
            for _ in 0..18 {
                mesh.inject_fault(c3(
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                ));
            }
            let mut lab =
                Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
            let mut comps = Components3::compute(&lab);
            for _ in 0..25 {
                let mut injected = Vec::new();
                let mut healed = Vec::new();
                for _ in 0..rng.gen_range(0..3) {
                    let c = c3(
                        rng.gen_range(0..k),
                        rng.gen_range(0..k),
                        rng.gen_range(0..k),
                    );
                    if mesh.is_healthy(c) && !injected.contains(&c) {
                        injected.push(c);
                    }
                }
                let faults = mesh.faults().to_vec();
                for _ in 0..rng.gen_range(0..3) {
                    let c = faults[rng.gen_range(0..faults.len())];
                    if !healed.contains(&c) {
                        healed.push(c);
                    }
                }
                for &c in &injected {
                    assert!(mesh.inject_fault(c));
                }
                for &c in &healed {
                    assert!(mesh.heal_fault(c));
                }
                let changed = lab.repair(&injected, &healed, Parallelism::SEQ);
                comps.repair(&lab, &changed);
                let fresh = Components3::compute(&lab);
                assert_eq!(comps.cells, fresh.cells);
                assert_eq!(comps.id, fresh.id);
            }
        }
    }
}
