//! Cuboid faulty blocks — the classical 3-D baseline model.
//!
//! The 3-D generalization of the rectangular block model (Boppana–Chalasani
//! style, as used by the routing literature the paper compares against): a
//! healthy node is *disabled* if it has **two or more** faulty-or-disabled
//! neighbors. The closure is iterated together with cuboid completion
//! (components widen to bounding boxes, intersecting boxes merge, boxes are
//! filled) until the disabled set is a disjoint union of full cuboids.

use mesh_topo::{Box3, Mesh3D, NodeSet, NodeSpace3, C3};

use crate::oracle;

/// The cuboid-faulty-block decomposition of a 3-D mesh.
///
/// Like [`crate::rfb2::FaultBlocks2`], the disabled set is a [`NodeSet`]
/// bitset over the mesh's [`NodeSpace3`], and the closure runs on linear
/// node indices.
#[derive(Clone, Debug)]
pub struct FaultBlocks3 {
    space: NodeSpace3,
    disabled: NodeSet,
    /// The fault cuboids (bounding boxes of the disabled components).
    pub blocks: Vec<Box3>,
    fault_count: usize,
}

impl FaultBlocks3 {
    /// Compute the cuboid-block closure of the mesh's fault set.
    pub fn compute(mesh: &Mesh3D) -> FaultBlocks3 {
        let space = mesh.space();
        let mut disabled = mesh.fault_set().clone();
        let mut blocks;
        loop {
            let grew = Self::close_rule(space, &mut disabled);
            blocks = Self::boxes_of_components(space, &disabled);
            let filled = Self::fill_boxes(space, &mut disabled, &blocks);
            if !grew && !filled {
                break;
            }
        }
        FaultBlocks3 {
            space,
            disabled,
            blocks,
            fault_count: mesh.fault_count(),
        }
    }

    /// "Two or more faulty/disabled neighbors" rule, to a fixpoint.
    /// Returns true if any node was newly disabled.
    fn close_rule(space: NodeSpace3, disabled: &mut NodeSet) -> bool {
        let rule = |set: &NodeSet, i: usize| {
            let mut n = 0;
            space.for_neighbors6(i, |j| n += set.contains(j) as usize);
            n >= 2
        };
        let mut grew = false;
        let mut work: Vec<usize> = (0..space.len()).collect();
        while let Some(u) = work.pop() {
            if disabled.contains(u) || !rule(disabled, u) {
                continue;
            }
            disabled.insert(u);
            grew = true;
            space.for_neighbors6(u, |v| {
                if !disabled.contains(v) {
                    work.push(v);
                }
            });
        }
        grew
    }

    /// Bounding boxes of the connected disabled components, merged until
    /// pairwise disjoint.
    fn boxes_of_components(space: NodeSpace3, disabled: &NodeSet) -> Vec<Box3> {
        let mut seen = NodeSet::new(space.len());
        let mut blocks: Vec<Box3> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        for start in disabled.iter() {
            if seen.contains(start) {
                continue;
            }
            let mut bb = Box3::point(space.coord(start));
            queue.clear();
            queue.push(start);
            seen.insert(start);
            while let Some(u) = queue.pop() {
                bb.include(space.coord(u));
                space.for_neighbors6(u, |v| {
                    if disabled.contains(v) && seen.insert(v) {
                        queue.push(v);
                    }
                });
            }
            blocks.push(bb);
        }
        loop {
            let mut merged = false;
            'outer: for i in 0..blocks.len() {
                for j in (i + 1)..blocks.len() {
                    if blocks[i].intersects(&blocks[j]) {
                        blocks[i] = blocks[i].union(&blocks[j]);
                        blocks.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                return blocks;
            }
        }
    }

    /// Disable every cell of every block. Returns true if anything changed.
    fn fill_boxes(space: NodeSpace3, disabled: &mut NodeSet, blocks: &[Box3]) -> bool {
        let mut changed = false;
        for b in blocks {
            for c in b.iter() {
                if let Some(i) = space.index_checked(c) {
                    changed |= disabled.insert(i);
                }
            }
        }
        changed
    }

    /// True if `c` is inside some fault cuboid.
    #[inline]
    pub fn is_disabled(&self, c: C3) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| self.disabled.contains(i))
    }

    /// Healthy nodes sacrificed by the model.
    pub fn sacrificed_count(&self) -> usize {
        self.disabled.len() - self.fault_count
    }

    /// Total disabled nodes (faulty + sacrificed).
    pub fn disabled_count(&self) -> usize {
        self.disabled.len()
    }

    /// Existence of a minimal path from `s` to `d` under the cuboid model:
    /// a monotone path (after canonicalization) avoiding every disabled
    /// node. `s`, `d` are mesh coordinates.
    pub fn minimal_path_exists(&self, mesh: &Mesh3D, s: C3, d: C3) -> bool {
        self.minimal_path_exists_in(mesh, s, d, &mut oracle::Useful3::scratch())
    }

    /// [`FaultBlocks3::minimal_path_exists`] with a caller-provided scratch
    /// buffer for the reachability sweep (see [`oracle::Useful3::recompute`]).
    pub fn minimal_path_exists_in(
        &self,
        mesh: &Mesh3D,
        s: C3,
        d: C3,
        useful: &mut oracle::Useful3,
    ) -> bool {
        if self.is_disabled(s) || self.is_disabled(d) {
            return false;
        }
        let frame = mesh_topo::Frame3::for_pair(mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        oracle::reachable_3d_in(cs, cd, |c| self.is_disabled(frame.from_canon(c)), useful)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c3;

    fn blocks_of(faults: &[C3], k: i32) -> (Mesh3D, FaultBlocks3) {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let b = FaultBlocks3::compute(&mesh);
        (mesh, b)
    }

    #[test]
    fn single_fault_single_cell() {
        let (_, b) = blocks_of(&[c3(3, 3, 3)], 8);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0].volume(), 1);
        assert_eq!(b.sacrificed_count(), 0);
    }

    #[test]
    fn diagonal_pair_merges_in_3d_blocks() {
        // Planar diagonal: the two nodes between them each see two faulty
        // neighbors -> disabled -> one 2x2x1 block.
        let (_, b) = blocks_of(&[c3(3, 3, 3), c3(4, 4, 3)], 8);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0], Box3::spanning(c3(3, 3, 3), c3(4, 4, 3)));
        assert_eq!(b.sacrificed_count(), 2);
    }

    #[test]
    fn space_diagonal_stays_separate() {
        // Space diagonal (differs in all 3 coords): no node has two
        // faulty neighbors, and the two singleton boxes do not intersect.
        let (_, b) = blocks_of(&[c3(4, 4, 4), c3(5, 5, 5)], 8);
        assert_eq!(b.blocks.len(), 2);
    }

    #[test]
    fn blocks_are_filled_cuboids() {
        let (_, b) = blocks_of(&[c3(2, 2, 2), c3(3, 3, 2), c3(2, 3, 3)], 8);
        for blk in &b.blocks {
            for c in blk.iter() {
                assert!(b.is_disabled(c), "{c} in block {blk:?} not disabled");
            }
        }
        let total: u64 = b.blocks.iter().map(|bb| bb.volume()).sum();
        assert_eq!(total as usize, b.disabled_count());
    }

    #[test]
    fn rfb3_coarser_than_mcc3() {
        use crate::labelling3::Labelling3;
        use crate::status::BorderPolicy;
        use mesh_topo::Frame3;
        let (mesh, b) = blocks_of(&[c3(3, 3, 3), c3(4, 4, 3)], 8);
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        // MCC: two blocked dims are not enough in 3-D -> nothing sacrificed.
        assert_eq!(lab.sacrificed_count(), 0);
        assert_eq!(b.sacrificed_count(), 2);
    }

    #[test]
    fn minimal_path_under_cuboids() {
        // A cuboid spanning the full RMP cross-section blocks.
        let mut faults = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                faults.push(c3(x, y, 2));
            }
        }
        let (mesh, b) = blocks_of(&faults, 8);
        assert!(!b.minimal_path_exists(&mesh, c3(0, 0, 0), c3(3, 3, 4)));
        assert!(b.minimal_path_exists(&mesh, c3(0, 0, 0), c3(4, 3, 4)));
    }

    #[test]
    fn endpoint_in_block_fails() {
        let (mesh, b) = blocks_of(&[c3(3, 3, 3), c3(4, 4, 3)], 8);
        assert!(b.is_disabled(c3(3, 4, 3)));
        assert!(mesh.is_healthy(c3(3, 4, 3)));
        assert!(!b.minimal_path_exists(&mesh, c3(0, 0, 0), c3(3, 4, 3)));
    }

    #[test]
    fn disjoint_blocks_stay_disjoint() {
        let (_, b) = blocks_of(&[c3(1, 1, 1), c3(6, 6, 6)], 8);
        assert_eq!(b.blocks.len(), 2);
        assert!(!b.blocks[0].intersects(&b.blocks[1]));
    }
}
