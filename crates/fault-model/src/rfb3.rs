//! Cuboid faulty blocks — the classical 3-D baseline model.
//!
//! The 3-D generalization of the rectangular block model (Boppana–Chalasani
//! style, as used by the routing literature the paper compares against): a
//! healthy node is *disabled* if it has **two or more** faulty-or-disabled
//! neighbors. The closure is iterated together with cuboid completion
//! (components widen to bounding boxes, intersecting boxes merge, boxes are
//! filled) until the disabled set is a disjoint union of full cuboids.

use mesh_topo::{Box3, Grid3, Mesh3D, C3};

use crate::oracle;

/// The cuboid-faulty-block decomposition of a 3-D mesh.
#[derive(Clone, Debug)]
pub struct FaultBlocks3 {
    disabled: Grid3<bool>,
    /// The fault cuboids (bounding boxes of the disabled components).
    pub blocks: Vec<Box3>,
    fault_count: usize,
    disabled_count: usize,
}

impl FaultBlocks3 {
    /// Compute the cuboid-block closure of the mesh's fault set.
    pub fn compute(mesh: &Mesh3D) -> FaultBlocks3 {
        let mut disabled = Grid3::new(mesh.nx(), mesh.ny(), mesh.nz(), false);
        for &f in mesh.faults() {
            disabled[f] = true;
        }
        let mut blocks;
        loop {
            let grew = Self::close_rule(&mut disabled);
            blocks = Self::boxes_of_components(&disabled);
            let filled = Self::fill_boxes(&mut disabled, &blocks);
            if !grew && !filled {
                break;
            }
        }
        let disabled_count = disabled.iter().filter(|(_, &b)| b).count();
        FaultBlocks3 {
            disabled,
            blocks,
            fault_count: mesh.fault_count(),
            disabled_count,
        }
    }

    /// "Two or more faulty/disabled neighbors" rule, to a fixpoint.
    /// Returns true if any node was newly disabled.
    fn close_rule(disabled: &mut Grid3<bool>) -> bool {
        let blocked = |g: &Grid3<bool>, c: C3| g.get(c).copied().unwrap_or(false);
        let rule = |g: &Grid3<bool>, c: C3| {
            mesh_topo::Dir3::ALL
                .iter()
                .filter(|&&d| blocked(g, c.step(d)))
                .count()
                >= 2
        };
        let mut grew = false;
        let mut work: Vec<C3> = disabled.coords().collect();
        while let Some(u) = work.pop() {
            if disabled[u] || !rule(disabled, u) {
                continue;
            }
            disabled[u] = true;
            grew = true;
            for d in mesh_topo::Dir3::ALL {
                let v = u.step(d);
                if disabled.contains(v) && !disabled[v] {
                    work.push(v);
                }
            }
        }
        grew
    }

    /// Bounding boxes of the connected disabled components, merged until
    /// pairwise disjoint.
    fn boxes_of_components(disabled: &Grid3<bool>) -> Vec<Box3> {
        let mut seen = Grid3::new(disabled.nx(), disabled.ny(), disabled.nz(), false);
        let mut blocks: Vec<Box3> = Vec::new();
        let mut queue = Vec::new();
        for start in disabled.coords() {
            if !disabled[start] || seen[start] {
                continue;
            }
            let mut bb = Box3::point(start);
            queue.clear();
            queue.push(start);
            seen[start] = true;
            while let Some(u) = queue.pop() {
                bb.include(u);
                for d in mesh_topo::Dir3::ALL {
                    let v = u.step(d);
                    if disabled.contains(v) && disabled[v] && !seen[v] {
                        seen[v] = true;
                        queue.push(v);
                    }
                }
            }
            blocks.push(bb);
        }
        loop {
            let mut merged = false;
            'outer: for i in 0..blocks.len() {
                for j in (i + 1)..blocks.len() {
                    if blocks[i].intersects(&blocks[j]) {
                        blocks[i] = blocks[i].union(&blocks[j]);
                        blocks.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
            if !merged {
                return blocks;
            }
        }
    }

    /// Disable every cell of every block. Returns true if anything changed.
    fn fill_boxes(disabled: &mut Grid3<bool>, blocks: &[Box3]) -> bool {
        let mut changed = false;
        for b in blocks {
            for c in b.iter() {
                if disabled.contains(c) && !disabled[c] {
                    disabled[c] = true;
                    changed = true;
                }
            }
        }
        changed
    }

    /// True if `c` is inside some fault cuboid.
    #[inline]
    pub fn is_disabled(&self, c: C3) -> bool {
        self.disabled.get(c).copied().unwrap_or(false)
    }

    /// Healthy nodes sacrificed by the model.
    pub fn sacrificed_count(&self) -> usize {
        self.disabled_count - self.fault_count
    }

    /// Total disabled nodes (faulty + sacrificed).
    pub fn disabled_count(&self) -> usize {
        self.disabled_count
    }

    /// Existence of a minimal path from `s` to `d` under the cuboid model:
    /// a monotone path (after canonicalization) avoiding every disabled
    /// node. `s`, `d` are mesh coordinates.
    pub fn minimal_path_exists(&self, mesh: &Mesh3D, s: C3, d: C3) -> bool {
        if self.is_disabled(s) || self.is_disabled(d) {
            return false;
        }
        let frame = mesh_topo::Frame3::for_pair(mesh, s, d);
        let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
        oracle::reachable_3d(cs, cd, |c| self.is_disabled(frame.from_canon(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c3;

    fn blocks_of(faults: &[C3], k: i32) -> (Mesh3D, FaultBlocks3) {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let b = FaultBlocks3::compute(&mesh);
        (mesh, b)
    }

    #[test]
    fn single_fault_single_cell() {
        let (_, b) = blocks_of(&[c3(3, 3, 3)], 8);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0].volume(), 1);
        assert_eq!(b.sacrificed_count(), 0);
    }

    #[test]
    fn diagonal_pair_merges_in_3d_blocks() {
        // Planar diagonal: the two nodes between them each see two faulty
        // neighbors -> disabled -> one 2x2x1 block.
        let (_, b) = blocks_of(&[c3(3, 3, 3), c3(4, 4, 3)], 8);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0], Box3::spanning(c3(3, 3, 3), c3(4, 4, 3)));
        assert_eq!(b.sacrificed_count(), 2);
    }

    #[test]
    fn space_diagonal_stays_separate() {
        // Space diagonal (differs in all 3 coords): no node has two
        // faulty neighbors, and the two singleton boxes do not intersect.
        let (_, b) = blocks_of(&[c3(4, 4, 4), c3(5, 5, 5)], 8);
        assert_eq!(b.blocks.len(), 2);
    }

    #[test]
    fn blocks_are_filled_cuboids() {
        let (_, b) = blocks_of(&[c3(2, 2, 2), c3(3, 3, 2), c3(2, 3, 3)], 8);
        for blk in &b.blocks {
            for c in blk.iter() {
                assert!(b.is_disabled(c), "{c} in block {blk:?} not disabled");
            }
        }
        let total: u64 = b.blocks.iter().map(|bb| bb.volume()).sum();
        assert_eq!(total as usize, b.disabled_count());
    }

    #[test]
    fn rfb3_coarser_than_mcc3() {
        use crate::labelling3::Labelling3;
        use crate::status::BorderPolicy;
        use mesh_topo::Frame3;
        let (mesh, b) = blocks_of(&[c3(3, 3, 3), c3(4, 4, 3)], 8);
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        // MCC: two blocked dims are not enough in 3-D -> nothing sacrificed.
        assert_eq!(lab.sacrificed_count(), 0);
        assert_eq!(b.sacrificed_count(), 2);
    }

    #[test]
    fn minimal_path_under_cuboids() {
        // A cuboid spanning the full RMP cross-section blocks.
        let mut faults = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                faults.push(c3(x, y, 2));
            }
        }
        let (mesh, b) = blocks_of(&faults, 8);
        assert!(!b.minimal_path_exists(&mesh, c3(0, 0, 0), c3(3, 3, 4)));
        assert!(b.minimal_path_exists(&mesh, c3(0, 0, 0), c3(4, 3, 4)));
    }

    #[test]
    fn endpoint_in_block_fails() {
        let (mesh, b) = blocks_of(&[c3(3, 3, 3), c3(4, 4, 3)], 8);
        assert!(b.is_disabled(c3(3, 4, 3)));
        assert!(mesh.is_healthy(c3(3, 4, 3)));
        assert!(!b.minimal_path_exists(&mesh, c3(0, 0, 0), c3(3, 4, 3)));
    }

    #[test]
    fn disjoint_blocks_stay_disjoint() {
        let (_, b) = blocks_of(&[c3(1, 1, 1), c3(6, 6, 6)], 8);
        assert_eq!(b.blocks.len(), 2);
        assert!(!b.blocks[0].intersects(&b.blocks[1]));
    }
}
