//! Theorem 2 — existence of a minimal path in 3-D meshes.
//!
//! The paper's Theorem 2 states the condition in terms of boundary
//! intersections, whose operational (detection-message) form lives in the
//! routing crate. This module provides the *semantic evaluation* of the
//! theorem: with both endpoints safe, a minimal path exists iff the
//! destination is monotonically reachable while avoiding the **unsafe
//! closure** — by the MCC minimality theorem this is equivalent to avoiding
//! only the faults (the crate's property tests verify that equivalence, and
//! the detection-walk implementation is tested against this function).
//!
//! Endpoint triage mirrors the 2-D case: faulty endpoints are invalid, a
//! can't-reach destination (safe source) is unreachable, a useless source
//! (safe destination) is stuck, and queries with labelled endpoints fall
//! back to the exact fault-avoiding oracle.

use mesh_topo::C3;
use serde::{Deserialize, Serialize};

use crate::labelling3::Labelling3;
use crate::oracle;

/// Outcome of the 3-D existence condition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Existence3 {
    /// A minimal path exists (both endpoints safe).
    Exists,
    /// No minimal path: the fault regions separate `s` from `d` inside the
    /// Region of Minimal Paths.
    Blocked,
    /// No minimal path: the destination is can't-reach.
    DestinationCantReach,
    /// No minimal path: the source is useless.
    SourceUseless,
    /// An endpoint is faulty — invalid query.
    EndpointFaulty,
    /// Labelled endpoint(s): decided by the exact fault-avoiding oracle.
    OracleExists,
    /// Same, negative.
    OracleBlocked,
}

impl Existence3 {
    /// True when a minimal path exists.
    pub fn exists(self) -> bool {
        matches!(self, Existence3::Exists | Existence3::OracleExists)
    }
}

/// Evaluate the existence condition for canonical `s ≤ d` under `lab`.
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn minimal_path_exists_3d(lab: &Labelling3, s: C3, d: C3) -> Existence3 {
    minimal_path_exists_3d_in(lab, s, d, &mut oracle::Useful3::scratch())
}

/// [`minimal_path_exists_3d`] with a caller-provided scratch buffer for
/// the reachability sweep (see [`oracle::Useful3::recompute`]).
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn minimal_path_exists_3d_in(
    lab: &Labelling3,
    s: C3,
    d: C3,
    useful: &mut oracle::Useful3,
) -> Existence3 {
    assert!(
        s.dominated_by(d),
        "condition requires canonical coordinates with s <= d, got {s:?} {d:?}"
    );
    let ss = lab.status(s);
    let sd = lab.status(d);
    if ss.is_faulty() || sd.is_faulty() {
        return Existence3::EndpointFaulty;
    }
    if s == d {
        return Existence3::Exists;
    }
    match (ss.is_unsafe(), sd.is_unsafe()) {
        (false, false) => {
            // Avoiding the closure loses nothing for safe endpoints
            // (property-tested); this is the semantic content of Theorem 2.
            let ok = oracle::reachable_3d_in(
                s,
                d,
                |c| lab.status_get(c).map(|st| st.is_unsafe()).unwrap_or(true),
                useful,
            );
            if ok {
                Existence3::Exists
            } else {
                Existence3::Blocked
            }
        }
        (false, true) if sd.is_cant_reach() => Existence3::DestinationCantReach,
        (true, false) if ss.is_useless() => Existence3::SourceUseless,
        _ => {
            let ok = oracle::reachable_3d_in(
                s,
                d,
                |c| lab.status_get(c).map(|st| st.is_faulty()).unwrap_or(true),
                useful,
            );
            if ok {
                Existence3::OracleExists
            } else {
                Existence3::OracleBlocked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::BorderPolicy;
    use mesh_topo::coord::c3;
    use mesh_topo::{Frame3, Mesh3D};

    fn setup(faults: &[C3], k: i32) -> Labelling3 {
        let mut mesh = Mesh3D::kary(k);
        for &f in faults {
            mesh.inject_fault(f);
        }
        Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe)
    }

    #[test]
    fn open_mesh_exists() {
        let lab = setup(&[], 6);
        assert_eq!(
            minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(5, 5, 5)),
            Existence3::Exists
        );
    }

    #[test]
    fn single_fault_never_blocks_wide_rmp() {
        let lab = setup(&[c3(2, 2, 2)], 6);
        assert!(minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(5, 5, 5)).exists());
    }

    #[test]
    fn fault_blocks_degenerate_line_rmp() {
        let lab = setup(&[c3(0, 0, 3)], 8);
        // RMP is the single line x=0,y=0: the fault on it blocks.
        let r = minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(0, 0, 6));
        assert_eq!(r, Existence3::Blocked);
    }

    #[test]
    fn plane_wall_blocks() {
        // Block the full antidiagonal plane x+y+z = 5 inside [0..4]^3... a
        // simpler barrier: the full plane z=2 within the RMP cross-section.
        let mut faults = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                faults.push(c3(x, y, 2));
            }
        }
        let lab = setup(&faults, 8);
        assert_eq!(
            minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(3, 3, 4)),
            Existence3::Blocked
        );
        // Going around the wall (d.x beyond the wall) restores the path.
        assert!(minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(4, 3, 4)).exists());
    }

    #[test]
    fn endpoint_faulty() {
        let lab = setup(&[c3(1, 1, 1)], 4);
        assert_eq!(
            minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(1, 1, 1)),
            Existence3::EndpointFaulty
        );
        assert_eq!(
            minimal_path_exists_3d(&lab, c3(1, 1, 1), c3(3, 3, 3)),
            Existence3::EndpointFaulty
        );
    }

    #[test]
    fn cant_reach_destination() {
        // Seal (4,4,4) from below in all three dimensions, and extend the
        // walls so the closure survives: a full 3x3 wall on each negative
        // face of the 2x2x2 cube rooted at (4,4,4).
        let mut faults = Vec::new();
        for a in 4..=5 {
            for b in 4..=5 {
                faults.push(c3(3, a, b));
                faults.push(c3(a, 3, b));
                faults.push(c3(a, b, 3));
            }
        }
        let lab = setup(&faults, 9);
        assert!(lab.status(c3(4, 4, 4)).is_cant_reach());
        assert_eq!(
            minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(4, 4, 4)),
            Existence3::DestinationCantReach
        );
    }

    #[test]
    fn useless_source() {
        let mut faults = Vec::new();
        for a in 3..=4 {
            for b in 3..=4 {
                faults.push(c3(5, a, b));
                faults.push(c3(a, 5, b));
                faults.push(c3(a, b, 5));
            }
        }
        let lab = setup(&faults, 9);
        assert!(lab.status(c3(4, 4, 4)).is_useless());
        assert_eq!(
            minimal_path_exists_3d(&lab, c3(4, 4, 4), c3(8, 8, 8)),
            Existence3::SourceUseless
        );
    }

    #[test]
    fn useless_destination_reachable_via_oracle() {
        let mut faults = Vec::new();
        for a in 3..=4 {
            for b in 3..=4 {
                faults.push(c3(5, a, b));
                faults.push(c3(a, 5, b));
                faults.push(c3(a, b, 5));
            }
        }
        let lab = setup(&faults, 9);
        assert!(lab.status(c3(4, 4, 4)).is_useless());
        let r = minimal_path_exists_3d(&lab, c3(0, 0, 0), c3(4, 4, 4));
        assert_eq!(r, Existence3::OracleExists);
    }

    #[test]
    fn same_node_trivial() {
        let lab = setup(&[c3(1, 1, 1)], 4);
        assert!(minimal_path_exists_3d(&lab, c3(2, 2, 2), c3(2, 2, 2)).exists());
    }
}
