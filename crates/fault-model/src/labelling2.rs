//! Algorithm 1 — the MCC labelling closure in 2-D meshes.
//!
//! For a routing from `(0,0)` toward a destination in the all-positive
//! quadrant (after [`Frame2`] canonicalization):
//!
//! 1. faulty nodes are labelled *faulty*, all others *safe*;
//! 2. a safe node whose `+X` **and** `+Y` neighbors are faulty-or-useless
//!    becomes *useless*;
//! 3. a safe node whose `-X` **and** `-Y` neighbors are faulty-or-can't-reach
//!    becomes *can't-reach*;
//! 4. repeat until no new label.
//!
//! The closure runs on the flat node-state layer
//! ([`mesh_topo::nodeset`]) as **two raster sweeps** over a dense status
//! array, not as a worklist: rule 2 makes a node's label depend only on its
//! `+X` and `+Y` neighbors, so one sweep in decreasing `(y, x)` order sees
//! every dependency already finalized and reaches the fixpoint in a single
//! pass; rule 3 is the mirror image, one sweep in increasing order. Each
//! sweep is a linear scan of a flat `u8` array — O(V) with perfect cache
//! behavior and no per-node hashing or queueing. The hash-based worklist
//! formulation is preserved in [`crate::reference`] and property-tested
//! equal.
//!
//! On a **torus** the rules read the wrapped neighbors, whose ring cycles
//! defeat the single-pass argument: the sweeps iterate until quiescent
//! (extra passes only when a label chain crosses the wrap seam), and the
//! fixpoint is property-tested equal to the definitional worklist closure
//! over the wrapped neighbor relation (`tests/properties.rs`).

use mesh_topo::{par, Frame2, Mesh2D, NodeGrid, NodeSet, NodeSpace2, Parallelism, C2};

use crate::par::{unsafe_set_par, wavefront, SweepDir, PAR_MIN_NODES, TILES_PER_THREAD};
use crate::status::{BorderPolicy, NodeStatus};

/// The fixpoint of Algorithm 1 for one quadrant orientation of a mesh.
///
/// All coordinates exposed by this type are **canonical** (post-reflection);
/// use [`Labelling2::frame`] to translate to and from mesh coordinates.
#[derive(Clone, Debug)]
pub struct Labelling2 {
    frame: Frame2,
    policy: BorderPolicy,
    space: NodeSpace2,
    status: NodeGrid<NodeStatus>,
    unsafe_set: NodeSet,
}

impl Labelling2 {
    /// Run the labelling closure for `mesh` under `frame`.
    pub fn compute(mesh: &Mesh2D, frame: Frame2, policy: BorderPolicy) -> Labelling2 {
        let space = mesh.space();
        let mut status = NodeGrid::new(space.len(), NodeStatus::SAFE);
        for &f in mesh.faults() {
            status[space.index(frame.to_canon(f))] = NodeStatus::FAULT;
        }

        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let w = space.width() as usize;
        let h = space.height() as usize;
        let s = status.as_mut_slice();

        if space.wraps() {
            // Torus: both rules read the wrapped +/- neighbors, so the
            // dependency graph has ring cycles and one sweep is no longer
            // guaranteed to finalize every dependency. Each extra sweep
            // only matters when a label chain crosses the wrap seam, so
            // the loop almost always runs twice (once to converge, once to
            // observe quiescence); the border policy is irrelevant (a
            // torus has no border).
            loop {
                let mut changed = false;
                for y in (0..h).rev() {
                    let row = y * w;
                    for x in (0..w).rev() {
                        let i = row + x;
                        if s[i].blocks_forward() {
                            continue;
                        }
                        let xp = s[if x + 1 < w { i + 1 } else { row }].blocks_forward();
                        let yp = s[if y + 1 < h { i + w } else { x }].blocks_forward();
                        if xp && yp {
                            s[i].mark_useless();
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            loop {
                let mut changed = false;
                for y in 0..h {
                    let row = y * w;
                    for x in 0..w {
                        let i = row + x;
                        if s[i].blocks_backward() {
                            continue;
                        }
                        let xm = s[if x > 0 { i - 1 } else { row + w - 1 }].blocks_backward();
                        let ym = s[if y > 0 { i - w } else { x + w * (h - 1) }].blocks_backward();
                        if xm && ym {
                            s[i].mark_cant_reach();
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        } else {
            // Rule 2 (useless) depends only on the +X / +Y neighbors, which
            // a decreasing-(y, x) sweep has already finalized: one pass
            // reaches the worklist fixpoint.
            for y in (0..h).rev() {
                let row = y * w;
                for x in (0..w).rev() {
                    let i = row + x;
                    if s[i].blocks_forward() {
                        continue;
                    }
                    let xp = if x + 1 < w {
                        s[i + 1].blocks_forward()
                    } else {
                        border_blocks
                    };
                    let yp = if y + 1 < h {
                        s[i + w].blocks_forward()
                    } else {
                        border_blocks
                    };
                    if xp && yp {
                        s[i].mark_useless();
                    }
                }
            }
            // Rule 3 (can't-reach) is the mirror image: -X / -Y
            // dependencies, increasing-(y, x) sweep.
            for y in 0..h {
                let row = y * w;
                for x in 0..w {
                    let i = row + x;
                    if s[i].blocks_backward() {
                        continue;
                    }
                    let xm = if x > 0 {
                        s[i - 1].blocks_backward()
                    } else {
                        border_blocks
                    };
                    let ym = if y > 0 {
                        s[i - w].blocks_backward()
                    } else {
                        border_blocks
                    };
                    if xm && ym {
                        s[i].mark_cant_reach();
                    }
                }
            }
        }

        let mut unsafe_set = NodeSet::new(space.len());
        for (i, st) in status.iter() {
            if st.is_unsafe() {
                unsafe_set.insert(i);
            }
        }
        Labelling2 {
            frame,
            policy,
            space,
            status,
            unsafe_set,
        }
    }

    /// Run the labelling closure with a thread budget: the raster sweeps
    /// run as a tiled wavefront over contiguous row bands (see
    /// `crate::par` and DESIGN.md §11), **bit-for-bit equal** to
    /// [`Labelling2::compute`] for every thread count. Falls back to the
    /// sequential sweeps when the budget resolves to one thread, the mesh
    /// is small, or there are not at least two row bands.
    pub fn compute_par(
        mesh: &Mesh2D,
        frame: Frame2,
        policy: BorderPolicy,
        parallelism: Parallelism,
    ) -> Labelling2 {
        let space = mesh.space();
        let threads = parallelism.resolve();
        let h = space.height() as usize;
        let bands = par::bands(h, threads * TILES_PER_THREAD);
        if threads <= 1 || space.len() < PAR_MIN_NODES || bands.len() < 2 {
            return Labelling2::compute(mesh, frame, policy);
        }

        let mut status = NodeGrid::new(space.len(), NodeStatus::SAFE);
        for &f in mesh.faults() {
            status[space.index(frame.to_canon(f))] = NodeStatus::FAULT;
        }
        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let w = space.width() as usize;
        let wraps = space.wraps();
        let s = status.as_mut_slice();

        wavefront(s, w, &bands, threads, wraps, SweepDir::Decreasing, {
            |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                sweep_useless_band(band, w, wraps, border_blocks, halo)
            }
        });
        wavefront(s, w, &bands, threads, wraps, SweepDir::Increasing, {
            |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                sweep_cant_reach_band(band, w, wraps, border_blocks, halo)
            }
        });

        let unsafe_set = unsafe_set_par(status.as_slice(), threads);
        Labelling2 {
            frame,
            policy,
            space,
            status,
            unsafe_set,
        }
    }

    /// Run the labelling for the canonical pair `(s, d)` in mesh coordinates:
    /// picks the quadrant frame for the pair and computes the closure.
    pub fn for_pair(mesh: &Mesh2D, s: C2, d: C2, policy: BorderPolicy) -> Labelling2 {
        Labelling2::compute(mesh, Frame2::for_pair(mesh, s, d), policy)
    }

    /// The quadrant frame this labelling was computed under.
    #[inline]
    pub fn frame(&self) -> Frame2 {
        self.frame
    }

    /// The border policy used.
    #[inline]
    pub fn policy(&self) -> BorderPolicy {
        self.policy
    }

    /// The linear index space of the underlying mesh (canonical coords).
    #[inline]
    pub fn space(&self) -> NodeSpace2 {
        self.space
    }

    /// Status of the node at **canonical** coordinate `c`.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    #[inline]
    pub fn status(&self, c: C2) -> NodeStatus {
        self.status[self.space.index(c)]
    }

    /// Status at canonical `c`, or `None` if outside the mesh.
    #[inline]
    pub fn status_get(&self, c: C2) -> Option<NodeStatus> {
        self.space.index_checked(c).map(|i| self.status[i])
    }

    /// True if canonical `c` is inside the mesh and unsafe.
    #[inline]
    pub fn is_unsafe(&self, c: C2) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| self.unsafe_set.contains(i))
    }

    /// True if canonical `c` is inside the mesh and safe.
    #[inline]
    pub fn is_safe(&self, c: C2) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| !self.unsafe_set.contains(i))
    }

    /// Status of the node at **mesh** coordinate `c`.
    #[inline]
    pub fn status_mesh(&self, c: C2) -> NodeStatus {
        self.status[self.space.index(self.frame.to_canon(c))]
    }

    /// The unsafe nodes (faulty + labelled) as a bitset over
    /// [`Labelling2::space`] — the flat input of component discovery.
    #[inline]
    pub fn unsafe_set(&self) -> &NodeSet {
        &self.unsafe_set
    }

    /// Total number of unsafe nodes (faulty + labelled).
    #[inline]
    pub fn unsafe_count(&self) -> usize {
        self.unsafe_set.len()
    }

    /// Number of healthy nodes labelled unsafe (useless and/or can't-reach):
    /// the "sacrificed" nodes the evaluation counts.
    pub fn sacrificed_count(&self) -> usize {
        self.unsafe_set
            .iter()
            .filter(|&i| !self.status[i].is_faulty())
            .count()
    }

    /// Grid width.
    #[inline]
    pub fn width(&self) -> i32 {
        self.space.width()
    }

    /// Grid height.
    #[inline]
    pub fn height(&self) -> i32 {
        self.space.height()
    }

    /// Iterate `(canonical coordinate, status)` for all nodes.
    pub fn iter(&self) -> impl Iterator<Item = (C2, NodeStatus)> + '_ {
        self.space
            .coords()
            .zip(self.status.as_slice().iter().copied())
    }
}

/// One tile's useless sweep to the tile-local fixpoint. `halo` is the
/// frozen copy of the row the tile's top row reads through `+Y` (`None`
/// only on the mesh border, where the border policy applies). Mirrors the
/// sequential sweep exactly: one decreasing-`(y, x)` pass suffices on a
/// mesh (all `+X`/`+Y` dependencies inside the tile are already final),
/// while the torus in-row `x`-ring needs the loop-until-quiescent.
/// Returns whether the tile's first row (the row the tile below reads)
/// gained a label.
fn sweep_useless_band(
    band: &mut [NodeStatus],
    w: usize,
    wraps: bool,
    border_blocks: bool,
    halo: Option<&[NodeStatus]>,
) -> bool {
    let rows = band.len() / w;
    let mut boundary_changed = false;
    loop {
        let mut changed = false;
        for y in (0..rows).rev() {
            let row = y * w;
            for x in (0..w).rev() {
                let i = row + x;
                if band[i].blocks_forward() {
                    continue;
                }
                let xp = if x + 1 < w {
                    band[i + 1].blocks_forward()
                } else if wraps {
                    band[row].blocks_forward()
                } else {
                    border_blocks
                };
                let yp = if y + 1 < rows {
                    band[i + w].blocks_forward()
                } else {
                    match halo {
                        Some(h) => h[x].blocks_forward(),
                        None => border_blocks,
                    }
                };
                if xp && yp {
                    band[i].mark_useless();
                    changed = true;
                    if y == 0 {
                        boundary_changed = true;
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
    boundary_changed
}

/// The can't-reach mirror of [`sweep_useless_band`]: increasing order,
/// `-X`/`-Y` reads, `halo` is the row below the tile's first row. Returns
/// whether the tile's last row (read by the tile above) gained a label.
fn sweep_cant_reach_band(
    band: &mut [NodeStatus],
    w: usize,
    wraps: bool,
    border_blocks: bool,
    halo: Option<&[NodeStatus]>,
) -> bool {
    let rows = band.len() / w;
    let mut boundary_changed = false;
    loop {
        let mut changed = false;
        for y in 0..rows {
            let row = y * w;
            for x in 0..w {
                let i = row + x;
                if band[i].blocks_backward() {
                    continue;
                }
                let xm = if x > 0 {
                    band[i - 1].blocks_backward()
                } else if wraps {
                    band[row + w - 1].blocks_backward()
                } else {
                    border_blocks
                };
                let ym = if y > 0 {
                    band[i - w].blocks_backward()
                } else {
                    match halo {
                        Some(h) => h[x].blocks_backward(),
                        None => border_blocks,
                    }
                };
                if xm && ym {
                    band[i].mark_cant_reach();
                    changed = true;
                    if y == rows - 1 {
                        boundary_changed = true;
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
    boundary_changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;

    fn lab(mesh: &Mesh2D) -> Labelling2 {
        Labelling2::compute(mesh, Frame2::identity(mesh), BorderPolicy::BorderSafe)
    }

    #[test]
    fn fault_free_mesh_is_all_safe() {
        let mesh = Mesh2D::new(8, 8);
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 0);
        assert!(l.iter().all(|(_, s)| s.is_safe()));
    }

    #[test]
    fn single_fault_labels_nothing_else() {
        let mut mesh = Mesh2D::new(8, 8);
        mesh.inject_fault(c2(4, 4));
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 1);
        assert_eq!(l.sacrificed_count(), 0);
        assert!(l.status(c2(4, 4)).is_faulty());
    }

    #[test]
    fn antidiagonal_pair_fills_corners() {
        // Faults at (5,6) and (6,5): (5,5) gets useless (+X and +Y faulty),
        // (6,6) gets can't-reach (-X and -Y faulty).
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 6));
        mesh.inject_fault(c2(6, 5));
        let l = lab(&mesh);
        assert!(l.status(c2(5, 5)).is_useless());
        assert!(l.status(c2(6, 6)).is_cant_reach());
        assert_eq!(l.unsafe_count(), 4);
        assert_eq!(l.sacrificed_count(), 2);
    }

    #[test]
    fn main_diagonal_pair_stays_separate() {
        // Faults at (5,5) and (6,6) do not interact (the "/" orientation).
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 5));
        mesh.inject_fault(c2(6, 6));
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 2);
        assert_eq!(l.sacrificed_count(), 0);
    }

    #[test]
    fn useless_cascade() {
        // A column of faults at x=6 and a row of faults at y=6 with a safe
        // pocket in the corner: the pocket cell (5,5) is useless, and the
        // cascade continues to (4,4)? No — only if both its +X and +Y are
        // unsafe. Construct an L that forces a 2-step cascade.
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(6, 5), c2(6, 4), c2(5, 6), c2(4, 6)] {
            mesh.inject_fault(c);
        }
        let l = lab(&mesh);
        // (5,5): +X=(6,5) faulty, +Y=(5,6) faulty -> useless.
        assert!(l.status(c2(5, 5)).is_useless());
        // (4,5): +X=(5,5) useless, +Y=(4,6) faulty -> useless.
        assert!(l.status(c2(4, 5)).is_useless());
        // (5,4): +X=(6,4) faulty, +Y=(5,5) useless -> useless.
        assert!(l.status(c2(5, 4)).is_useless());
        // (4,4): +X=(5,4) useless, +Y=(4,5) useless -> useless.
        assert!(l.status(c2(4, 4)).is_useless());
        // (3,3) is not: +X=(4,3) safe.
        assert!(l.status(c2(3, 3)).is_safe());
    }

    #[test]
    fn cant_reach_pocket() {
        // Wall on -X and -Y of a pocket: (6,6) with faults at (5,6) and (6,5).
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(5, 6), c2(6, 5), c2(5, 7), c2(7, 5)] {
            mesh.inject_fault(c);
        }
        let l = lab(&mesh);
        assert!(l.status(c2(6, 6)).is_cant_reach());
        // (6,7): -X=(5,7) faulty, -Y=(6,6) cant-reach -> cant-reach.
        assert!(l.status(c2(6, 7)).is_cant_reach());
        assert!(l.status(c2(7, 6)).is_cant_reach());
        assert!(l.status(c2(7, 7)).is_cant_reach());
    }

    #[test]
    fn border_safe_policy_keeps_far_corner_safe() {
        let mut mesh = Mesh2D::new(8, 8);
        mesh.inject_fault(c2(3, 3));
        let l = lab(&mesh);
        // With BorderSafe the mesh corner (7,7) must stay safe.
        assert!(l.status(c2(7, 7)).is_safe());
    }

    #[test]
    fn border_blocked_policy_cascades_from_corner() {
        let mesh = {
            let mut m = Mesh2D::new(4, 4);
            // no faults needed; the border itself blocks
            m.inject_fault(c2(0, 0)); // keep one fault so closure has work
            m
        };
        let l = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderBlocked);
        // (3,3): +X and +Y out of mesh -> useless under BorderBlocked.
        assert!(l.status(c2(3, 3)).is_useless());
    }

    #[test]
    fn frame_reflection_relabels() {
        // A fault pattern that is "/"-oriented for the identity frame is
        // "\"-oriented after an X flip, so the labelling differs.
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 5));
        mesh.inject_fault(c2(6, 6));
        let id = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        assert_eq!(id.sacrificed_count(), 0);
        let flipped = Frame2::for_pair(&mesh, c2(9, 0), c2(0, 9)); // flip_x
        let lf = Labelling2::compute(&mesh, flipped, BorderPolicy::BorderSafe);
        assert_eq!(lf.sacrificed_count(), 2);
        // In mesh coordinates the filled cells are (6,5) and (5,6).
        assert!(lf.status_mesh(c2(6, 5)).is_unsafe());
        assert!(lf.status_mesh(c2(5, 6)).is_unsafe());
    }

    #[test]
    fn status_mesh_matches_canonical() {
        let mut mesh = Mesh2D::new(6, 6);
        mesh.inject_fault(c2(2, 3));
        let f = Frame2::for_pair(&mesh, c2(5, 5), c2(0, 0));
        let l = Labelling2::compute(&mesh, f, BorderPolicy::BorderSafe);
        for c in mesh.nodes() {
            assert_eq!(l.status_mesh(c), l.status(f.to_canon(c)));
        }
    }

    #[test]
    fn torus_labels_wrap_across_the_seam() {
        // (0,2) is useless from its in-grid neighbors; (7,2) then becomes
        // useless through the wrap link (its +X neighbor is (0,2)). The
        // decreasing-x sweep sees that dependency only on its second pass,
        // so this also exercises the fixpoint iteration.
        let faults = [c2(1, 2), c2(0, 3), c2(7, 3)];
        let mut torus = Mesh2D::torus(8, 5);
        for c in faults {
            torus.inject_fault(c);
        }
        let lt = lab(&torus);
        assert!(lt.status(c2(0, 2)).is_useless());
        assert!(lt.status(c2(7, 2)).is_useless(), "label must wrap");
        // (1,3) is can't-reach on both topologies: -X=(0,3), -Y=(1,2).
        assert!(lt.status(c2(1, 3)).is_cant_reach());
        assert_eq!(lt.sacrificed_count(), 3);

        // On the mesh with the same faults the seam does not exist: the
        // border is safe and (7,2) keeps its label.
        let mut mesh = Mesh2D::new(8, 5);
        for c in faults {
            mesh.inject_fault(c);
        }
        let lm = lab(&mesh);
        assert!(lm.status(c2(0, 2)).is_useless());
        assert!(lm.status(c2(7, 2)).is_safe());
    }

    #[test]
    fn torus_fixpoint_has_no_missed_labels() {
        // Closure property: no safe node may have both wrapped positive
        // (or both wrapped negative) neighbors blocked.
        let mut torus = Mesh2D::torus(7, 6);
        for c in [c2(0, 0), c2(6, 1), c2(1, 5), c2(3, 3), c2(4, 2), c2(2, 4)] {
            torus.inject_fault(c);
        }
        let l = lab(&torus);
        let space = torus.space();
        for c in torus.nodes() {
            let st = l.status(c);
            let nxp = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Xp)));
            let nyp = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Yp)));
            let nxm = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Xm)));
            let nym = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Ym)));
            if !st.blocks_forward() {
                assert!(
                    !(nxp.blocks_forward() && nyp.blocks_forward()),
                    "{c} missed useless"
                );
            }
            if !st.blocks_backward() {
                assert!(
                    !(nxm.blocks_backward() && nym.blocks_backward()),
                    "{c} missed can't-reach"
                );
            }
        }
    }

    #[test]
    fn unsafe_set_matches_statuses() {
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(5, 6), c2(6, 5), c2(2, 2)] {
            mesh.inject_fault(c);
        }
        let l = lab(&mesh);
        let set = l.unsafe_set();
        for c in mesh.nodes() {
            assert_eq!(set.contains(l.space().index(c)), l.status(c).is_unsafe());
        }
        assert_eq!(set.len(), l.unsafe_count());
    }
}
