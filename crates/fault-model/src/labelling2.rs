//! Algorithm 1 — the MCC labelling closure in 2-D meshes.
//!
//! For a routing from `(0,0)` toward a destination in the all-positive
//! quadrant (after [`Frame2`] canonicalization):
//!
//! 1. faulty nodes are labelled *faulty*, all others *safe*;
//! 2. a safe node whose `+X` **and** `+Y` neighbors are faulty-or-useless
//!    becomes *useless*;
//! 3. a safe node whose `-X` **and** `-Y` neighbors are faulty-or-can't-reach
//!    becomes *can't-reach*;
//! 4. repeat until no new label.
//!
//! The closure runs on the flat node-state layer
//! ([`mesh_topo::nodeset`]) as **two raster sweeps** over a dense status
//! array, not as a worklist: rule 2 makes a node's label depend only on its
//! `+X` and `+Y` neighbors, so one sweep in decreasing `(y, x)` order sees
//! every dependency already finalized and reaches the fixpoint in a single
//! pass; rule 3 is the mirror image, one sweep in increasing order. Each
//! sweep is a linear scan of a flat `u8` array — O(V) with perfect cache
//! behavior and no per-node hashing or queueing. The hash-based worklist
//! formulation is preserved in [`crate::reference`] and property-tested
//! equal.
//!
//! On a **torus** the rules read the wrapped neighbors, whose ring cycles
//! defeat the single-pass argument: the sweeps iterate until quiescent
//! (extra passes only when a label chain crosses the wrap seam), and the
//! fixpoint is property-tested equal to the definitional worklist closure
//! over the wrapped neighbor relation (`tests/properties.rs`).

use mesh_topo::{par, Frame2, Mesh2D, NodeGrid, NodeSet, NodeSpace2, Parallelism, C2};

use crate::par::{unsafe_set_par, wavefront, SweepDir, PAR_MIN_NODES, TILES_PER_THREAD};
use crate::status::{BorderPolicy, NodeStatus};

/// The fixpoint of Algorithm 1 for one quadrant orientation of a mesh.
///
/// All coordinates exposed by this type are **canonical** (post-reflection);
/// use [`Labelling2::frame`] to translate to and from mesh coordinates.
#[derive(Clone, Debug)]
pub struct Labelling2 {
    frame: Frame2,
    policy: BorderPolicy,
    space: NodeSpace2,
    status: NodeGrid<NodeStatus>,
    unsafe_set: NodeSet,
}

impl Labelling2 {
    /// Run the labelling closure for `mesh` under `frame`.
    pub fn compute(mesh: &Mesh2D, frame: Frame2, policy: BorderPolicy) -> Labelling2 {
        let space = mesh.space();
        let mut status = NodeGrid::new(space.len(), NodeStatus::SAFE);
        for &f in mesh.faults() {
            status[space.index(frame.to_canon(f))] = NodeStatus::FAULT;
        }

        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let w = space.width() as usize;
        let h = space.height() as usize;
        let wraps = space.wraps();
        let s = status.as_mut_slice();

        useless_fixpoint(s, w, h, wraps, border_blocks);
        cant_reach_fixpoint(s, w, h, wraps, border_blocks);

        let mut unsafe_set = NodeSet::new(space.len());
        for (i, st) in status.iter() {
            if st.is_unsafe() {
                unsafe_set.insert(i);
            }
        }
        Labelling2 {
            frame,
            policy,
            space,
            status,
            unsafe_set,
        }
    }

    /// Run the labelling closure with a thread budget: the raster sweeps
    /// run as a tiled wavefront over contiguous row bands (see
    /// `crate::par` and DESIGN.md §11), **bit-for-bit equal** to
    /// [`Labelling2::compute`] for every thread count. Falls back to the
    /// sequential sweeps when the budget resolves to one thread, the mesh
    /// is small, or there are not at least two row bands.
    pub fn compute_par(
        mesh: &Mesh2D,
        frame: Frame2,
        policy: BorderPolicy,
        parallelism: Parallelism,
    ) -> Labelling2 {
        let space = mesh.space();
        let threads = parallelism.resolve();
        let h = space.height() as usize;
        let bands = par::bands(h, threads * TILES_PER_THREAD);
        if threads <= 1 || space.len() < PAR_MIN_NODES || bands.len() < 2 {
            return Labelling2::compute(mesh, frame, policy);
        }

        let mut status = NodeGrid::new(space.len(), NodeStatus::SAFE);
        for &f in mesh.faults() {
            status[space.index(frame.to_canon(f))] = NodeStatus::FAULT;
        }
        let border_blocks = matches!(policy, BorderPolicy::BorderBlocked);
        let w = space.width() as usize;
        let wraps = space.wraps();
        let s = status.as_mut_slice();

        wavefront(s, w, &bands, threads, wraps, SweepDir::Decreasing, {
            |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                sweep_useless_band(band, w, wraps, border_blocks, halo)
            }
        });
        wavefront(s, w, &bands, threads, wraps, SweepDir::Increasing, {
            |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                sweep_cant_reach_band(band, w, wraps, border_blocks, halo)
            }
        });

        let unsafe_set = unsafe_set_par(status.as_slice(), threads);
        Labelling2 {
            frame,
            policy,
            space,
            status,
            unsafe_set,
        }
    }

    /// Run the labelling for the canonical pair `(s, d)` in mesh coordinates:
    /// picks the quadrant frame for the pair and computes the closure.
    pub fn for_pair(mesh: &Mesh2D, s: C2, d: C2, policy: BorderPolicy) -> Labelling2 {
        Labelling2::compute(mesh, Frame2::for_pair(mesh, s, d), policy)
    }

    /// The quadrant frame this labelling was computed under.
    #[inline]
    pub fn frame(&self) -> Frame2 {
        self.frame
    }

    /// The border policy used.
    #[inline]
    pub fn policy(&self) -> BorderPolicy {
        self.policy
    }

    /// The linear index space of the underlying mesh (canonical coords).
    #[inline]
    pub fn space(&self) -> NodeSpace2 {
        self.space
    }

    /// Status of the node at **canonical** coordinate `c`.
    ///
    /// # Panics
    /// If `c` is outside the mesh.
    #[inline]
    pub fn status(&self, c: C2) -> NodeStatus {
        self.status[self.space.index(c)]
    }

    /// Status at canonical `c`, or `None` if outside the mesh.
    #[inline]
    pub fn status_get(&self, c: C2) -> Option<NodeStatus> {
        self.space.index_checked(c).map(|i| self.status[i])
    }

    /// True if canonical `c` is inside the mesh and unsafe.
    #[inline]
    pub fn is_unsafe(&self, c: C2) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| self.unsafe_set.contains(i))
    }

    /// True if canonical `c` is inside the mesh and safe.
    #[inline]
    pub fn is_safe(&self, c: C2) -> bool {
        self.space
            .index_checked(c)
            .is_some_and(|i| !self.unsafe_set.contains(i))
    }

    /// Status of the node at **mesh** coordinate `c`.
    #[inline]
    pub fn status_mesh(&self, c: C2) -> NodeStatus {
        self.status[self.space.index(self.frame.to_canon(c))]
    }

    /// The unsafe nodes (faulty + labelled) as a bitset over
    /// [`Labelling2::space`] — the flat input of component discovery.
    #[inline]
    pub fn unsafe_set(&self) -> &NodeSet {
        &self.unsafe_set
    }

    /// Total number of unsafe nodes (faulty + labelled).
    #[inline]
    pub fn unsafe_count(&self) -> usize {
        self.unsafe_set.len()
    }

    /// Number of healthy nodes labelled unsafe (useless and/or can't-reach):
    /// the "sacrificed" nodes the evaluation counts.
    pub fn sacrificed_count(&self) -> usize {
        self.unsafe_set
            .iter()
            .filter(|&i| !self.status[i].is_faulty())
            .count()
    }

    /// Grid width.
    #[inline]
    pub fn width(&self) -> i32 {
        self.space.width()
    }

    /// Grid height.
    #[inline]
    pub fn height(&self) -> i32 {
        self.space.height()
    }

    /// Iterate `(canonical coordinate, status)` for all nodes.
    pub fn iter(&self) -> impl Iterator<Item = (C2, NodeStatus)> + '_ {
        self.space
            .coords()
            .zip(self.status.as_slice().iter().copied())
    }

    /// Incrementally repair this labelling after a fault-churn batch on the
    /// underlying mesh: `injected` went healthy→faulty and `healed`
    /// faulty→healthy (both in **mesh** coordinates, like
    /// [`Mesh2D::faults`]; the lists must be disjoint and duplicate-free).
    /// Afterwards every status, and the unsafe set, is **bit-for-bit
    /// equal** to a from-scratch [`Labelling2::compute`] on the churned
    /// mesh — see DESIGN.md §12 for the least-fixpoint argument.
    ///
    /// Small perturbations run a node-granular worklist: labels whose
    /// justification may depend on a healed node are retracted by a flood
    /// over the label's reader direction, then both closures re-propagate
    /// from the perturbed seeds only — O(perturbation + retraction cone),
    /// independent of mesh size. Once the batch is a sizeable fraction of
    /// the mesh (`1/`[`BULK_REPAIR_FANOUT`]) the worklist's per-node
    /// overhead loses to the raster sweeps and the repair falls back to
    /// relabelling via the same tiled wavefront `compute_par` uses, under
    /// `parallelism`. Both tiers return the same statuses and the same
    /// changed list; the tier cut-over is a pure function of batch and
    /// mesh size, never of the thread budget.
    ///
    /// Returns the canonical indices whose status byte changed, sorted
    /// ascending — the dirty region that drives component and MCC repair.
    pub fn repair(
        &mut self,
        injected: &[C2],
        healed: &[C2],
        parallelism: Parallelism,
    ) -> Vec<usize> {
        let space = self.space;
        let frame = self.frame;
        let inj: Vec<usize> = injected
            .iter()
            .map(|&c| space.index(frame.to_canon(c)))
            .collect();
        let heal: Vec<usize> = healed
            .iter()
            .map(|&c| space.index(frame.to_canon(c)))
            .collect();
        if inj.is_empty() && heal.is_empty() {
            return Vec::new();
        }
        let mut changed = if (inj.len() + heal.len()) * BULK_REPAIR_FANOUT >= space.len() {
            self.repair_bulk(&inj, &heal, parallelism)
        } else {
            self.repair_worklist(&inj, &heal)
        };
        changed.sort_unstable();
        for &i in &changed {
            if self.status[i].is_unsafe() {
                self.unsafe_set.insert(i);
            } else {
                self.unsafe_set.remove(i);
            }
        }
        changed
    }

    /// Node-granular repair tier. Returns the changed indices, unsorted.
    fn repair_worklist(&mut self, inj: &[usize], heal: &[usize]) -> Vec<usize> {
        let w = self.space.width() as usize;
        let h = self.space.height() as usize;
        let wraps = self.space.wraps();
        let border_blocks = matches!(self.policy, BorderPolicy::BorderBlocked);
        let s = self.status.as_mut_slice();

        #[cfg(test)]
        let skip_retraction = mutation::SKIP_HEAL_RETRACTION.with(|c| c.get());
        #[cfg(not(test))]
        let skip_retraction = false;

        // `(index, status at first touch)`: every mutation below pushes the
        // node's pre-mutation status first, so after a stable sort the first
        // entry per index holds the true pre-churn status and the rest are
        // intermediate states the dedup drops.
        let mut touched: Vec<(usize, NodeStatus)> = Vec::new();
        for &i in heal {
            debug_assert!(s[i].is_faulty(), "healed node was not faulty");
            touched.push((i, s[i]));
            s[i] = NodeStatus::SAFE;
        }
        for &i in inj {
            debug_assert!(!s[i].is_faulty(), "injected node was already faulty");
            touched.push((i, s[i]));
            s[i] = NodeStatus::FAULT;
        }

        // Readers of node `i` per closure: the nodes whose rule input
        // includes `i` — the wrapped `-X`/`-Y` neighbors for useless
        // (rule 2 reads `+X`/`+Y`), the wrapped `+X`/`+Y` neighbors for
        // can't-reach. Mirrors the sweep formulas exactly.
        let readers_useless = |i: usize, f: &mut dyn FnMut(usize)| {
            let (x, y) = (i % w, i / w);
            if x > 0 {
                f(i - 1);
            } else if wraps {
                f(i + w - 1);
            }
            if y > 0 {
                f(i - w);
            } else if wraps {
                f(x + w * (h - 1));
            }
        };
        let readers_cant_reach = |i: usize, f: &mut dyn FnMut(usize)| {
            let (x, y) = (i % w, i / w);
            if x + 1 < w {
                f(i + 1);
            } else if wraps {
                f(i - x);
            }
            if y + 1 < h {
                f(i + w);
            } else if wraps {
                f(x);
            }
        };
        let useless_fires = |s: &[NodeStatus], i: usize| {
            let (x, y) = (i % w, i / w);
            let row = i - x;
            let xp = if x + 1 < w {
                s[i + 1].blocks_forward()
            } else if wraps {
                s[row].blocks_forward()
            } else {
                border_blocks
            };
            let yp = if y + 1 < h {
                s[i + w].blocks_forward()
            } else if wraps {
                s[x].blocks_forward()
            } else {
                border_blocks
            };
            xp && yp
        };
        let cant_reach_fires = |s: &[NodeStatus], i: usize| {
            let (x, y) = (i % w, i / w);
            let row = i - x;
            let xm = if x > 0 {
                s[i - 1].blocks_backward()
            } else if wraps {
                s[row + w - 1].blocks_backward()
            } else {
                border_blocks
            };
            let ym = if y > 0 {
                s[i - w].blocks_backward()
            } else if wraps {
                s[x + w * (h - 1)].blocks_backward()
            } else {
                border_blocks
            };
            xm && ym
        };

        // Useless closure: retract the reader cone of every healed node
        // (clearing doubles as the visited mark), then re-propagate from
        // the cleared nodes, the healed nodes themselves, and the readers
        // of injected nodes. Injection is monotone (a faulty node still
        // blocks both closures), so it never needs retraction.
        let mut stack: Vec<usize> = Vec::new();
        let mut work: Vec<usize> = Vec::new();
        if !skip_retraction {
            for &i in heal {
                readers_useless(i, &mut |j| {
                    if s[j].is_useless() {
                        stack.push(j);
                    }
                });
            }
            while let Some(i) = stack.pop() {
                if !s[i].is_useless() {
                    continue;
                }
                touched.push((i, s[i]));
                s[i].clear_useless();
                work.push(i);
                readers_useless(i, &mut |j| {
                    if s[j].is_useless() {
                        stack.push(j);
                    }
                });
            }
        }
        work.extend_from_slice(heal);
        for &i in inj {
            readers_useless(i, &mut |j| work.push(j));
        }
        while let Some(i) = work.pop() {
            if s[i].blocks_forward() {
                continue;
            }
            if useless_fires(s, i) {
                touched.push((i, s[i]));
                s[i].mark_useless();
                readers_useless(i, &mut |j| work.push(j));
            }
        }

        // Can't-reach closure: the independent mirror image.
        debug_assert!(stack.is_empty() && work.is_empty());
        for &i in heal {
            readers_cant_reach(i, &mut |j| {
                if s[j].is_cant_reach() {
                    stack.push(j);
                }
            });
        }
        while let Some(i) = stack.pop() {
            if !s[i].is_cant_reach() {
                continue;
            }
            touched.push((i, s[i]));
            s[i].clear_cant_reach();
            work.push(i);
            readers_cant_reach(i, &mut |j| {
                if s[j].is_cant_reach() {
                    stack.push(j);
                }
            });
        }
        work.extend_from_slice(heal);
        for &i in inj {
            readers_cant_reach(i, &mut |j| work.push(j));
        }
        while let Some(i) = work.pop() {
            if s[i].blocks_backward() {
                continue;
            }
            if cant_reach_fires(s, i) {
                touched.push((i, s[i]));
                s[i].mark_cant_reach();
                readers_cant_reach(i, &mut |j| work.push(j));
            }
        }

        touched.sort_by_key(|&(i, _)| i);
        touched.dedup_by_key(|&mut (i, _)| i);
        touched
            .into_iter()
            .filter(|&(i, old)| s[i] != old)
            .map(|(i, _)| i)
            .collect()
    }

    /// Bulk repair tier: reset every label bit and rerun the closures over
    /// the whole grid — sequentially, or via the same tiled wavefront as
    /// [`Labelling2::compute_par`] when the budget and mesh warrant it.
    /// The changed list comes from diffing a pre-churn snapshot.
    fn repair_bulk(
        &mut self,
        inj: &[usize],
        heal: &[usize],
        parallelism: Parallelism,
    ) -> Vec<usize> {
        let w = self.space.width() as usize;
        let h = self.space.height() as usize;
        let wraps = self.space.wraps();
        let border_blocks = matches!(self.policy, BorderPolicy::BorderBlocked);
        let snapshot = self.status.as_slice().to_vec();
        let s = self.status.as_mut_slice();
        for &i in heal {
            debug_assert!(s[i].is_faulty(), "healed node was not faulty");
            s[i] = NodeStatus::SAFE;
        }
        for &i in inj {
            debug_assert!(!s[i].is_faulty(), "injected node was already faulty");
            s[i] = NodeStatus::FAULT;
        }
        for st in s.iter_mut() {
            *st = if st.is_faulty() {
                NodeStatus::FAULT
            } else {
                NodeStatus::SAFE
            };
        }
        let threads = parallelism.resolve();
        let bands = par::bands(h, threads * TILES_PER_THREAD);
        if threads <= 1 || s.len() < PAR_MIN_NODES || bands.len() < 2 {
            useless_fixpoint(s, w, h, wraps, border_blocks);
            cant_reach_fixpoint(s, w, h, wraps, border_blocks);
        } else {
            wavefront(s, w, &bands, threads, wraps, SweepDir::Decreasing, {
                |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                    sweep_useless_band(band, w, wraps, border_blocks, halo)
                }
            });
            wavefront(s, w, &bands, threads, wraps, SweepDir::Increasing, {
                |band: &mut [NodeStatus], halo: Option<&[NodeStatus]>| {
                    sweep_cant_reach_band(band, w, wraps, border_blocks, halo)
                }
            });
        }
        snapshot
            .iter()
            .enumerate()
            .filter(|&(i, &old)| s[i] != old)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Perturbation-size fanout above which [`Labelling2::repair`] (and its
/// 3-D twin) abandons the node-granular worklist for a full relabel:
/// batches of `≥ nodes / BULK_REPAIR_FANOUT` flips re-sweep the grid. A
/// pure function of batch and mesh size — never thread count — so the
/// repair path taken is identical under every parallelism budget.
pub const BULK_REPAIR_FANOUT: usize = 48;

/// Test-only fault injection for the mutation-style negative tests: prove
/// the churn equivalence gates actually bite by disabling one invalidation
/// path and watching them fail (see `crate::incremental` unit tests).
#[cfg(test)]
pub(crate) mod mutation {
    use std::cell::Cell;
    thread_local! {
        /// When set on the calling thread, [`super::Labelling2::repair`]
        /// skips the heal-retraction flood of the useless closure — exactly
        /// the silent-staleness bug the equivalence battery must catch.
        pub static SKIP_HEAL_RETRACTION: Cell<bool> = const { Cell::new(false) };
    }
}

/// The useless closure over the whole grid, sequential. On a mesh
/// (`wraps == false`) rule 2 depends only on the `+X`/`+Y` neighbors,
/// which a decreasing-`(y, x)` sweep has already finalized, so the loop
/// runs exactly one pass. On a torus the rules read the wrapped
/// neighbors, whose ring cycles defeat the single-pass argument: the
/// sweep iterates until quiescent (extra passes only when a label chain
/// crosses the wrap seam), and the border policy is irrelevant (a torus
/// has no border, so `border_blocks` is never read).
fn useless_fixpoint(s: &mut [NodeStatus], w: usize, h: usize, wraps: bool, border_blocks: bool) {
    loop {
        let mut changed = false;
        for y in (0..h).rev() {
            let row = y * w;
            for x in (0..w).rev() {
                let i = row + x;
                if s[i].blocks_forward() {
                    continue;
                }
                let xp = if x + 1 < w {
                    s[i + 1].blocks_forward()
                } else if wraps {
                    s[row].blocks_forward()
                } else {
                    border_blocks
                };
                let yp = if y + 1 < h {
                    s[i + w].blocks_forward()
                } else if wraps {
                    s[x].blocks_forward()
                } else {
                    border_blocks
                };
                if xp && yp {
                    s[i].mark_useless();
                    changed = true;
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
}

/// The can't-reach mirror of [`useless_fixpoint`]: `-X`/`-Y`
/// dependencies, increasing-`(y, x)` sweep.
fn cant_reach_fixpoint(s: &mut [NodeStatus], w: usize, h: usize, wraps: bool, border_blocks: bool) {
    loop {
        let mut changed = false;
        for y in 0..h {
            let row = y * w;
            for x in 0..w {
                let i = row + x;
                if s[i].blocks_backward() {
                    continue;
                }
                let xm = if x > 0 {
                    s[i - 1].blocks_backward()
                } else if wraps {
                    s[row + w - 1].blocks_backward()
                } else {
                    border_blocks
                };
                let ym = if y > 0 {
                    s[i - w].blocks_backward()
                } else if wraps {
                    s[x + w * (h - 1)].blocks_backward()
                } else {
                    border_blocks
                };
                if xm && ym {
                    s[i].mark_cant_reach();
                    changed = true;
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
}

/// One tile's useless sweep to the tile-local fixpoint. `halo` is the
/// frozen copy of the row the tile's top row reads through `+Y` (`None`
/// only on the mesh border, where the border policy applies). Mirrors the
/// sequential sweep exactly: one decreasing-`(y, x)` pass suffices on a
/// mesh (all `+X`/`+Y` dependencies inside the tile are already final),
/// while the torus in-row `x`-ring needs the loop-until-quiescent.
/// Returns whether the tile's first row (the row the tile below reads)
/// gained a label.
fn sweep_useless_band(
    band: &mut [NodeStatus],
    w: usize,
    wraps: bool,
    border_blocks: bool,
    halo: Option<&[NodeStatus]>,
) -> bool {
    let rows = band.len() / w;
    let mut boundary_changed = false;
    loop {
        let mut changed = false;
        for y in (0..rows).rev() {
            let row = y * w;
            for x in (0..w).rev() {
                let i = row + x;
                if band[i].blocks_forward() {
                    continue;
                }
                let xp = if x + 1 < w {
                    band[i + 1].blocks_forward()
                } else if wraps {
                    band[row].blocks_forward()
                } else {
                    border_blocks
                };
                let yp = if y + 1 < rows {
                    band[i + w].blocks_forward()
                } else {
                    match halo {
                        Some(h) => h[x].blocks_forward(),
                        None => border_blocks,
                    }
                };
                if xp && yp {
                    band[i].mark_useless();
                    changed = true;
                    if y == 0 {
                        boundary_changed = true;
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
    boundary_changed
}

/// The can't-reach mirror of [`sweep_useless_band`]: increasing order,
/// `-X`/`-Y` reads, `halo` is the row below the tile's first row. Returns
/// whether the tile's last row (read by the tile above) gained a label.
fn sweep_cant_reach_band(
    band: &mut [NodeStatus],
    w: usize,
    wraps: bool,
    border_blocks: bool,
    halo: Option<&[NodeStatus]>,
) -> bool {
    let rows = band.len() / w;
    let mut boundary_changed = false;
    loop {
        let mut changed = false;
        for y in 0..rows {
            let row = y * w;
            for x in 0..w {
                let i = row + x;
                if band[i].blocks_backward() {
                    continue;
                }
                let xm = if x > 0 {
                    band[i - 1].blocks_backward()
                } else if wraps {
                    band[row + w - 1].blocks_backward()
                } else {
                    border_blocks
                };
                let ym = if y > 0 {
                    band[i - w].blocks_backward()
                } else {
                    match halo {
                        Some(h) => h[x].blocks_backward(),
                        None => border_blocks,
                    }
                };
                if xm && ym {
                    band[i].mark_cant_reach();
                    changed = true;
                    if y == rows - 1 {
                        boundary_changed = true;
                    }
                }
            }
        }
        if !(wraps && changed) {
            break;
        }
    }
    boundary_changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::c2;

    fn lab(mesh: &Mesh2D) -> Labelling2 {
        Labelling2::compute(mesh, Frame2::identity(mesh), BorderPolicy::BorderSafe)
    }

    #[test]
    fn fault_free_mesh_is_all_safe() {
        let mesh = Mesh2D::new(8, 8);
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 0);
        assert!(l.iter().all(|(_, s)| s.is_safe()));
    }

    #[test]
    fn single_fault_labels_nothing_else() {
        let mut mesh = Mesh2D::new(8, 8);
        mesh.inject_fault(c2(4, 4));
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 1);
        assert_eq!(l.sacrificed_count(), 0);
        assert!(l.status(c2(4, 4)).is_faulty());
    }

    #[test]
    fn antidiagonal_pair_fills_corners() {
        // Faults at (5,6) and (6,5): (5,5) gets useless (+X and +Y faulty),
        // (6,6) gets can't-reach (-X and -Y faulty).
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 6));
        mesh.inject_fault(c2(6, 5));
        let l = lab(&mesh);
        assert!(l.status(c2(5, 5)).is_useless());
        assert!(l.status(c2(6, 6)).is_cant_reach());
        assert_eq!(l.unsafe_count(), 4);
        assert_eq!(l.sacrificed_count(), 2);
    }

    #[test]
    fn main_diagonal_pair_stays_separate() {
        // Faults at (5,5) and (6,6) do not interact (the "/" orientation).
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 5));
        mesh.inject_fault(c2(6, 6));
        let l = lab(&mesh);
        assert_eq!(l.unsafe_count(), 2);
        assert_eq!(l.sacrificed_count(), 0);
    }

    #[test]
    fn useless_cascade() {
        // A column of faults at x=6 and a row of faults at y=6 with a safe
        // pocket in the corner: the pocket cell (5,5) is useless, and the
        // cascade continues to (4,4)? No — only if both its +X and +Y are
        // unsafe. Construct an L that forces a 2-step cascade.
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(6, 5), c2(6, 4), c2(5, 6), c2(4, 6)] {
            mesh.inject_fault(c);
        }
        let l = lab(&mesh);
        // (5,5): +X=(6,5) faulty, +Y=(5,6) faulty -> useless.
        assert!(l.status(c2(5, 5)).is_useless());
        // (4,5): +X=(5,5) useless, +Y=(4,6) faulty -> useless.
        assert!(l.status(c2(4, 5)).is_useless());
        // (5,4): +X=(6,4) faulty, +Y=(5,5) useless -> useless.
        assert!(l.status(c2(5, 4)).is_useless());
        // (4,4): +X=(5,4) useless, +Y=(4,5) useless -> useless.
        assert!(l.status(c2(4, 4)).is_useless());
        // (3,3) is not: +X=(4,3) safe.
        assert!(l.status(c2(3, 3)).is_safe());
    }

    #[test]
    fn cant_reach_pocket() {
        // Wall on -X and -Y of a pocket: (6,6) with faults at (5,6) and (6,5).
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(5, 6), c2(6, 5), c2(5, 7), c2(7, 5)] {
            mesh.inject_fault(c);
        }
        let l = lab(&mesh);
        assert!(l.status(c2(6, 6)).is_cant_reach());
        // (6,7): -X=(5,7) faulty, -Y=(6,6) cant-reach -> cant-reach.
        assert!(l.status(c2(6, 7)).is_cant_reach());
        assert!(l.status(c2(7, 6)).is_cant_reach());
        assert!(l.status(c2(7, 7)).is_cant_reach());
    }

    #[test]
    fn border_safe_policy_keeps_far_corner_safe() {
        let mut mesh = Mesh2D::new(8, 8);
        mesh.inject_fault(c2(3, 3));
        let l = lab(&mesh);
        // With BorderSafe the mesh corner (7,7) must stay safe.
        assert!(l.status(c2(7, 7)).is_safe());
    }

    #[test]
    fn border_blocked_policy_cascades_from_corner() {
        let mesh = {
            let mut m = Mesh2D::new(4, 4);
            // no faults needed; the border itself blocks
            m.inject_fault(c2(0, 0)); // keep one fault so closure has work
            m
        };
        let l = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderBlocked);
        // (3,3): +X and +Y out of mesh -> useless under BorderBlocked.
        assert!(l.status(c2(3, 3)).is_useless());
    }

    #[test]
    fn frame_reflection_relabels() {
        // A fault pattern that is "/"-oriented for the identity frame is
        // "\"-oriented after an X flip, so the labelling differs.
        let mut mesh = Mesh2D::new(10, 10);
        mesh.inject_fault(c2(5, 5));
        mesh.inject_fault(c2(6, 6));
        let id = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        assert_eq!(id.sacrificed_count(), 0);
        let flipped = Frame2::for_pair(&mesh, c2(9, 0), c2(0, 9)); // flip_x
        let lf = Labelling2::compute(&mesh, flipped, BorderPolicy::BorderSafe);
        assert_eq!(lf.sacrificed_count(), 2);
        // In mesh coordinates the filled cells are (6,5) and (5,6).
        assert!(lf.status_mesh(c2(6, 5)).is_unsafe());
        assert!(lf.status_mesh(c2(5, 6)).is_unsafe());
    }

    #[test]
    fn status_mesh_matches_canonical() {
        let mut mesh = Mesh2D::new(6, 6);
        mesh.inject_fault(c2(2, 3));
        let f = Frame2::for_pair(&mesh, c2(5, 5), c2(0, 0));
        let l = Labelling2::compute(&mesh, f, BorderPolicy::BorderSafe);
        for c in mesh.nodes() {
            assert_eq!(l.status_mesh(c), l.status(f.to_canon(c)));
        }
    }

    #[test]
    fn torus_labels_wrap_across_the_seam() {
        // (0,2) is useless from its in-grid neighbors; (7,2) then becomes
        // useless through the wrap link (its +X neighbor is (0,2)). The
        // decreasing-x sweep sees that dependency only on its second pass,
        // so this also exercises the fixpoint iteration.
        let faults = [c2(1, 2), c2(0, 3), c2(7, 3)];
        let mut torus = Mesh2D::torus(8, 5);
        for c in faults {
            torus.inject_fault(c);
        }
        let lt = lab(&torus);
        assert!(lt.status(c2(0, 2)).is_useless());
        assert!(lt.status(c2(7, 2)).is_useless(), "label must wrap");
        // (1,3) is can't-reach on both topologies: -X=(0,3), -Y=(1,2).
        assert!(lt.status(c2(1, 3)).is_cant_reach());
        assert_eq!(lt.sacrificed_count(), 3);

        // On the mesh with the same faults the seam does not exist: the
        // border is safe and (7,2) keeps its label.
        let mut mesh = Mesh2D::new(8, 5);
        for c in faults {
            mesh.inject_fault(c);
        }
        let lm = lab(&mesh);
        assert!(lm.status(c2(0, 2)).is_useless());
        assert!(lm.status(c2(7, 2)).is_safe());
    }

    #[test]
    fn torus_fixpoint_has_no_missed_labels() {
        // Closure property: no safe node may have both wrapped positive
        // (or both wrapped negative) neighbors blocked.
        let mut torus = Mesh2D::torus(7, 6);
        for c in [c2(0, 0), c2(6, 1), c2(1, 5), c2(3, 3), c2(4, 2), c2(2, 4)] {
            torus.inject_fault(c);
        }
        let l = lab(&torus);
        let space = torus.space();
        for c in torus.nodes() {
            let st = l.status(c);
            let nxp = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Xp)));
            let nyp = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Yp)));
            let nxm = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Xm)));
            let nym = l.status(space.wrap_coord(c.step(mesh_topo::Dir2::Ym)));
            if !st.blocks_forward() {
                assert!(
                    !(nxp.blocks_forward() && nyp.blocks_forward()),
                    "{c} missed useless"
                );
            }
            if !st.blocks_backward() {
                assert!(
                    !(nxm.blocks_backward() && nym.blocks_backward()),
                    "{c} missed can't-reach"
                );
            }
        }
    }

    fn churn_once(
        mesh: &mut Mesh2D,
        lab: &mut Labelling2,
        injected: &[C2],
        healed: &[C2],
    ) -> Vec<usize> {
        for &c in injected {
            assert!(mesh.inject_fault(c));
        }
        for &c in healed {
            assert!(mesh.heal_fault(c));
        }
        lab.repair(injected, healed, Parallelism::SEQ)
    }

    fn assert_matches_recompute(mesh: &Mesh2D, lab: &Labelling2) {
        let fresh = Labelling2::compute(mesh, lab.frame(), lab.policy());
        for ((c, a), (_, b)) in lab.iter().zip(fresh.iter()) {
            assert_eq!(a, b, "status diverged at {c}");
        }
        assert_eq!(lab.unsafe_set(), fresh.unsafe_set());
    }

    #[test]
    fn repair_reverses_the_seam_crossing_label() {
        // The torus_labels_wrap_across_the_seam scenario, then heal (1,2):
        // (0,2) loses useless, and the retraction must cross the wrap seam
        // backwards to also clear (7,2), whose +X neighbor is (0,2).
        let mut torus = Mesh2D::torus(8, 5);
        for c in [c2(1, 2), c2(0, 3), c2(7, 3)] {
            torus.inject_fault(c);
        }
        let mut l = lab(&torus);
        assert!(l.status(c2(7, 2)).is_useless());
        let changed = churn_once(&mut torus, &mut l, &[], &[c2(1, 2)]);
        assert!(l.status(c2(0, 2)).is_safe());
        assert!(
            l.status(c2(7, 2)).is_safe(),
            "retraction must cross the seam"
        );
        assert!(changed.contains(&l.space().index(c2(7, 2))));
        assert_matches_recompute(&torus, &l);
    }

    #[test]
    fn repair_changed_list_is_exact() {
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(6, 5), c2(6, 4), c2(5, 6), c2(4, 6)] {
            mesh.inject_fault(c);
        }
        let mut l = lab(&mesh);
        let before: Vec<NodeStatus> = l.iter().map(|(_, s)| s).collect();
        let changed = churn_once(&mut mesh, &mut l, &[c2(2, 2)], &[c2(6, 5)]);
        assert_matches_recompute(&mesh, &l);
        let diff: Vec<usize> = l
            .iter()
            .enumerate()
            .filter(|&(i, (_, s))| s != before[i])
            .map(|(i, _)| i)
            .collect();
        assert_eq!(changed, diff);
        assert!(changed.windows(2).all(|p| p[0] < p[1]), "sorted ascending");
    }

    #[test]
    fn repair_matches_recompute_on_random_churn() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for torus in [false, true] {
            for policy in [BorderPolicy::BorderSafe, BorderPolicy::BorderBlocked] {
                let (w, h) = (12, 9);
                let mut mesh = if torus {
                    Mesh2D::torus(w, h)
                } else {
                    Mesh2D::new(w, h)
                };
                let mut rng = SmallRng::seed_from_u64(torus as u64 * 2 + 11);
                for _ in 0..16 {
                    mesh.inject_fault(c2(rng.gen_range(0..w), rng.gen_range(0..h)));
                }
                let mut l = Labelling2::compute(&mesh, Frame2::identity(&mesh), policy);
                for _ in 0..50 {
                    let mut injected = Vec::new();
                    let mut healed = Vec::new();
                    for _ in 0..rng.gen_range(0..4) {
                        let c = c2(rng.gen_range(0..w), rng.gen_range(0..h));
                        if mesh.is_healthy(c) && !injected.contains(&c) {
                            injected.push(c);
                        }
                    }
                    let faults = mesh.faults().to_vec();
                    for _ in 0..rng.gen_range(0..4) {
                        let c = faults[rng.gen_range(0..faults.len())];
                        if !healed.contains(&c) {
                            healed.push(c);
                        }
                    }
                    churn_once(&mut mesh, &mut l, &injected, &healed);
                    assert_matches_recompute(&mesh, &l);
                }
            }
        }
    }

    #[test]
    fn bulk_repair_tier_matches_worklist_tier() {
        // A batch big enough to trip the BULK_REPAIR_FANOUT cut-over on an
        // 8×8 grid (64 nodes: >= 2 flips), exercised against recompute on
        // both topologies and both tiers' parallel fallbacks.
        for torus in [false, true] {
            let mut mesh = if torus {
                Mesh2D::torus(8, 8)
            } else {
                Mesh2D::new(8, 8)
            };
            for x in 0..8 {
                mesh.inject_fault(c2(x, 3));
            }
            let mut l = lab(&mesh);
            let injected: Vec<C2> = (0..8)
                .map(|y| c2(5, y))
                .filter(|&c| mesh.is_healthy(c))
                .collect();
            let healed = vec![c2(1, 3), c2(2, 3)];
            for &c in &injected {
                mesh.inject_fault(c);
            }
            for &c in &healed {
                mesh.heal_fault(c);
            }
            let changed = l.repair(&injected, &healed, Parallelism::new(4));
            assert_matches_recompute(&mesh, &l);
            assert!(changed.windows(2).all(|p| p[0] < p[1]));
        }
    }

    #[test]
    fn unsafe_set_matches_statuses() {
        let mut mesh = Mesh2D::new(10, 10);
        for c in [c2(5, 6), c2(6, 5), c2(2, 2)] {
            mesh.inject_fault(c);
        }
        let l = lab(&mesh);
        let set = l.unsafe_set();
        for c in mesh.nodes() {
            assert_eq!(set.contains(l.space().index(c)), l.status(c).is_unsafe());
        }
        assert_eq!(set.len(), l.unsafe_count());
    }
}
