//! Composable fault regimes: how fault sets come into being.
//!
//! The original stack hard-wired two spatial patterns — uniform and
//! clustered — through `mesh_topo::FaultSpec`. This module lifts fault
//! injection into a first-class *regime* abstraction so benchmarks can
//! also exercise the failure shapes the fault-block literature worries
//! about but rarely measures:
//!
//! * [`FaultRegime::Uniform`] / [`FaultRegime::Clustered`] — the legacy
//!   patterns, delegating to the very same samplers `FaultSpec` uses
//!   (`mesh_topo::faults::{sample_uniform, sample_clustered}`) with the
//!   identical eligible-candidate order and RNG seeding, so every
//!   checked-in golden stays byte-identical (pinned by
//!   `regime_matches_fault_spec` below);
//! * [`FaultRegime::CorrelatedFront`] — compact failure blobs grown by a
//!   bounded breadth-first flood from seeded epicenters (the rack/cooling
//!   failure analogue: shells fill before the front advances, unlike the
//!   dendritic random growth of `Clustered`);
//! * [`FaultRegime::SweepingPlane`] — an axis-aligned slab of faults
//!   that, under churn, advances across the mesh one band per round;
//! * [`FaultRegime::TransientSchedule`] — faults with duty-cycled repair:
//!   each site oscillates on/off with a seeded phase, producing
//!   inject/heal deltas that feed
//!   [`IncrementalModels2::try_apply`](crate::IncrementalModels2)
//!   directly;
//! * [`FaultRegime::AdversarialBoundary`] — a seeded random-restart
//!   hill-climb (with an annealing accept rule and a 1-minimal pruning
//!   pass) for fault sets that violate the MCC admission conditions at
//!   minimal cardinality while the oracle still routes, reported as an
//!   [`AdversarialReport`].
//!
//! # Determinism contract
//!
//! Every regime is a pure function of `(mesh, count, seed, protected)`:
//! sampling uses a private `SmallRng` seeded from the caller's seed, and
//! candidate orders come from `mesh_topo::faults::eligible_indices_2d`/
//! `_3d`, whose iteration order is fixed. No regime reads thread counts,
//! wall clocks or global state, so fault sets are bit-identical across
//! `MCC_THREADS` settings — the scenario layer's thread-invariance
//! battery relies on this.
//!
//! Torus meshes work everywhere except the adversarial search (whose
//! violation predicate is defined over the canonical monotone frame of a
//! non-wrapping pair); the scenario layer rejects that combination up
//! front.

use std::collections::VecDeque;

use mesh_topo::faults::{
    eligible_indices_2d, eligible_indices_3d, sample_clustered, sample_uniform,
};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, NodeSet, C2, C3};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::labelling2::Labelling2;
use crate::labelling3::Labelling3;
use crate::oracle;
use crate::status::BorderPolicy;

/// How a fault set comes into being: the spatial/temporal law faults are
/// drawn from. See the module docs for the regime taxonomy.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum FaultRegime {
    /// Uniformly random distinct nodes (legacy `FaultPattern::Uniform`).
    Uniform,
    /// Faults grown in connected clusters around random seed points
    /// (legacy `FaultPattern::Clustered`).
    Clustered {
        /// Number of cluster seed points.
        clusters: usize,
    },
    /// Compact correlated failure blobs: breadth-first flood from seeded
    /// epicenters, filling each shell (in seeded order) before advancing.
    CorrelatedFront {
        /// Number of epicenters the flood grows from.
        fronts: usize,
    },
    /// An axis-aligned slab of faults; under churn the slab slides along
    /// the axis one band per round (direction drawn from the seed).
    SweepingPlane {
        /// Sweep axis: `0` = X, `1` = Y, `2` = Z (3-D only).
        axis: usize,
    },
    /// Duty-cycled transient faults: `count` sites sampled uniformly,
    /// each on for `duty·period` of every `period` rounds with a seeded
    /// phase. The churn schedule feeds incremental maintenance directly.
    TransientSchedule {
        /// Length of one on/off cycle in churn rounds (≥ 2).
        period: usize,
        /// Fraction of the period a site spends faulty (in `(0, 1)`).
        duty: f64,
    },
    /// Seeded adversarial search for a minimal-cardinality fault set that
    /// makes an endpoint unsafe while the oracle still routes.
    AdversarialBoundary {
        /// Number of random restarts of the hill-climb.
        restarts: usize,
    },
}

impl FaultRegime {
    /// Stable lowercase regime name, used in scenario TOML and snapshot
    /// JSON (`"regime": …`).
    pub fn name(&self) -> &'static str {
        match self {
            FaultRegime::Uniform => "uniform",
            FaultRegime::Clustered { .. } => "clustered",
            FaultRegime::CorrelatedFront { .. } => "front",
            FaultRegime::SweepingPlane { .. } => "plane",
            FaultRegime::TransientSchedule { .. } => "transient",
            FaultRegime::AdversarialBoundary { .. } => "adversarial",
        }
    }

    /// True for the regimes the legacy `[faults] pattern = …` key can
    /// express (and that scenario TOML still emits in legacy form).
    pub fn is_legacy(&self) -> bool {
        matches!(self, FaultRegime::Uniform | FaultRegime::Clustered { .. })
    }

    /// Inject `count` faults into a 2-D mesh, never touching `protected`
    /// nodes. Returns the number actually injected (short only when the
    /// mesh runs out of eligible nodes, or when the adversarial search
    /// finds a violating set smaller than `count` and cannot pad).
    ///
    /// `border` is only consulted by [`FaultRegime::AdversarialBoundary`]
    /// (its violation predicate labels the mesh); all other regimes are
    /// purely spatial.
    pub fn inject_2d(
        &self,
        mesh: &mut Mesh2D,
        count: usize,
        seed: u64,
        protected: &[C2],
        border: BorderPolicy,
    ) -> usize {
        let space = mesh.space();
        let chosen: Vec<usize> = match *self {
            FaultRegime::Uniform => {
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_uniform(&eligible_indices_2d(mesh, protected), count, &mut rng)
            }
            FaultRegime::Clustered { clusters } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_clustered(
                    space.len(),
                    &eligible_indices_2d(mesh, protected),
                    count,
                    clusters,
                    &mut rng,
                    |i, out| space.for_neighbors4(i, |j| out.push(j)),
                )
            }
            FaultRegime::CorrelatedFront { fronts } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_front(
                    space.len(),
                    &eligible_indices_2d(mesh, protected),
                    count,
                    fronts,
                    &mut rng,
                    |i, out| space.for_neighbors4(i, |j| out.push(j)),
                )
            }
            FaultRegime::SweepingPlane { axis } => {
                let mut order = plane_order_2d(mesh, protected, axis, seed);
                order.truncate(count.min(order.len()));
                order
            }
            FaultRegime::TransientSchedule { period, duty } => {
                let sites = transient_sites_2d(mesh, protected, count, period, duty, seed);
                sites.on_at(0).into_iter().map(|c| space.index(c)).collect()
            }
            FaultRegime::AdversarialBoundary { restarts } => {
                return inject_adversarial_2d(mesh, count, seed, protected, border, restarts);
            }
        };
        let n = chosen.len();
        for i in chosen {
            mesh.inject_fault(space.coord(i));
        }
        n
    }

    /// 3-D twin of [`inject_2d`](FaultRegime::inject_2d).
    pub fn inject_3d(
        &self,
        mesh: &mut Mesh3D,
        count: usize,
        seed: u64,
        protected: &[C3],
        border: BorderPolicy,
    ) -> usize {
        let space = mesh.space();
        let chosen: Vec<usize> = match *self {
            FaultRegime::Uniform => {
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_uniform(&eligible_indices_3d(mesh, protected), count, &mut rng)
            }
            FaultRegime::Clustered { clusters } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_clustered(
                    space.len(),
                    &eligible_indices_3d(mesh, protected),
                    count,
                    clusters,
                    &mut rng,
                    |i, out| space.for_neighbors6(i, |j| out.push(j)),
                )
            }
            FaultRegime::CorrelatedFront { fronts } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                sample_front(
                    space.len(),
                    &eligible_indices_3d(mesh, protected),
                    count,
                    fronts,
                    &mut rng,
                    |i, out| space.for_neighbors6(i, |j| out.push(j)),
                )
            }
            FaultRegime::SweepingPlane { axis } => {
                let mut order = plane_order_3d(mesh, protected, axis, seed);
                order.truncate(count.min(order.len()));
                order
            }
            FaultRegime::TransientSchedule { period, duty } => {
                let sites = transient_sites_3d(mesh, protected, count, period, duty, seed);
                sites.on_at(0).into_iter().map(|c| space.index(c)).collect()
            }
            FaultRegime::AdversarialBoundary { restarts } => {
                return inject_adversarial_3d(mesh, count, seed, protected, border, restarts);
            }
        };
        let n = chosen.len();
        for i in chosen {
            mesh.inject_fault(space.coord(i));
        }
        n
    }

    /// Build the churn schedule this regime prescribes over a **clean**
    /// (pre-injection) 2-D mesh, or `None` for regimes whose churn is
    /// externally driven (uniform/clustered/front random flips) or
    /// undefined (adversarial).
    ///
    /// The schedule's [`initial_faults`](Schedule::initial_faults) equal
    /// exactly what [`inject_2d`](FaultRegime::inject_2d) would inject
    /// for the same `(count, seed, protected)`, so drivers can inject the
    /// initial population and then step the schedule without drift.
    pub fn schedule_2d(
        &self,
        mesh: &Mesh2D,
        count: usize,
        seed: u64,
        protected: &[C2],
    ) -> Option<Schedule<C2>> {
        match *self {
            FaultRegime::SweepingPlane { axis } => {
                let space = mesh.space();
                let order: Vec<C2> = plane_order_2d(mesh, protected, axis, seed)
                    .into_iter()
                    .map(|i| space.coord(i))
                    .collect();
                Some(Schedule::plane(order, count))
            }
            FaultRegime::TransientSchedule { period, duty } => Some(Schedule::Transient(
                transient_sites_2d(mesh, protected, count, period, duty, seed),
            )),
            _ => None,
        }
    }

    /// 3-D twin of [`schedule_2d`](FaultRegime::schedule_2d).
    pub fn schedule_3d(
        &self,
        mesh: &Mesh3D,
        count: usize,
        seed: u64,
        protected: &[C3],
    ) -> Option<Schedule<C3>> {
        match *self {
            FaultRegime::SweepingPlane { axis } => {
                let space = mesh.space();
                let order: Vec<C3> = plane_order_3d(mesh, protected, axis, seed)
                    .into_iter()
                    .map(|i| space.coord(i))
                    .collect();
                Some(Schedule::plane(order, count))
            }
            FaultRegime::TransientSchedule { period, duty } => Some(Schedule::Transient(
                transient_sites_3d(mesh, protected, count, period, duty, seed),
            )),
            _ => None,
        }
    }
}

/// The flood-fill sampler behind [`FaultRegime::CorrelatedFront`].
///
/// Epicenters are placed with the same retry discipline as the clustered
/// sampler's seeds; growth then proceeds breadth-first from a FIFO
/// frontier, shuffling each node's eligible unchosen neighbors before
/// admitting them, so blobs stay compact (roughly metric balls) instead
/// of dendritic. Enclosed floods fall back to a deterministic scan fill,
/// mirroring the clustered sampler's stall fallback.
fn sample_front(
    space_len: usize,
    eligible: &[usize],
    count: usize,
    fronts: usize,
    rng: &mut SmallRng,
    neighbors_of: impl Fn(usize, &mut Vec<usize>),
) -> Vec<usize> {
    if eligible.is_empty() || count == 0 {
        return Vec::new();
    }
    let eligible_set = NodeSet::from_indices(space_len, eligible.iter().copied());
    let target = count.min(eligible.len());
    let mut chosen: Vec<usize> = Vec::with_capacity(target);
    let mut chosen_set = NodeSet::new(space_len);
    for _ in 0..fronts.max(1).min(count) {
        let mut placed = false;
        for _ in 0..32 {
            let c = eligible[rng.gen_range(0..eligible.len())];
            if chosen_set.insert(c) {
                chosen.push(c);
                placed = true;
                break;
            }
        }
        if !placed {
            if let Some(&c) = eligible.iter().find(|&&c| !chosen_set.contains(c)) {
                chosen_set.insert(c);
                chosen.push(c);
            }
        }
    }
    let mut queue: VecDeque<usize> = chosen.iter().copied().collect();
    let mut nbrs: Vec<usize> = Vec::with_capacity(6);
    while chosen.len() < target {
        let Some(base) = queue.pop_front() else {
            break;
        };
        nbrs.clear();
        neighbors_of(base, &mut nbrs);
        nbrs.retain(|&c| eligible_set.contains(c) && !chosen_set.contains(c));
        nbrs.shuffle(rng);
        for &c in nbrs.iter() {
            if chosen.len() >= target {
                break;
            }
            chosen_set.insert(c);
            chosen.push(c);
            queue.push_back(c);
        }
    }
    if chosen.len() < target {
        for &c in eligible {
            if chosen.len() >= target {
                break;
            }
            if chosen_set.insert(c) {
                chosen.push(c);
            }
        }
    }
    chosen
}

/// Eligible 2-D node indices sorted along the sweep axis; the seed draws
/// the sweep direction (ascending or descending coordinate). The sort is
/// stable, so ties keep node-iteration order — part of the determinism
/// contract.
fn plane_order_2d(mesh: &Mesh2D, protected: &[C2], axis: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let descending = rng.gen_range(0..2) == 1;
    let space = mesh.space();
    let mut order = eligible_indices_2d(mesh, protected);
    order.sort_by_key(|&i| {
        let c = space.coord(i);
        let k = if axis == 0 { c.x } else { c.y };
        if descending {
            -k
        } else {
            k
        }
    });
    order
}

/// 3-D twin of [`plane_order_2d`].
fn plane_order_3d(mesh: &Mesh3D, protected: &[C3], axis: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let descending = rng.gen_range(0..2) == 1;
    let space = mesh.space();
    let mut order = eligible_indices_3d(mesh, protected);
    order.sort_by_key(|&i| {
        let c = space.coord(i);
        let k = match axis {
            0 => c.x,
            1 => c.y,
            _ => c.z,
        };
        if descending {
            -k
        } else {
            k
        }
    });
    order
}

/// The site table of a [`FaultRegime::TransientSchedule`]: uniformly
/// sampled sites with seeded phases, plus the resolved on-window length.
/// A site with phase `p` is faulty in round `r` iff
/// `(r + p) % period < on_rounds`.
#[derive(Clone, Debug)]
pub struct TransientSites<C> {
    sites: Vec<(C, usize)>,
    period: usize,
    on_rounds: usize,
    round: usize,
}

impl<C: Copy> TransientSites<C> {
    fn active(&self, phase: usize, round: usize) -> bool {
        (round + phase) % self.period < self.on_rounds
    }

    /// The sites that are faulty in churn round `round`.
    pub fn on_at(&self, round: usize) -> Vec<C> {
        self.sites
            .iter()
            .filter(|&&(_, p)| self.active(p, round))
            .map(|&(c, _)| c)
            .collect()
    }
}

fn transient_on_rounds(period: usize, duty: f64) -> usize {
    (((period as f64) * duty).round() as usize).clamp(1, period.saturating_sub(1).max(1))
}

fn transient_sites_2d(
    mesh: &Mesh2D,
    protected: &[C2],
    count: usize,
    period: usize,
    duty: f64,
    seed: u64,
) -> TransientSites<C2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let space = mesh.space();
    let period = period.max(2);
    let sites = sample_uniform(&eligible_indices_2d(mesh, protected), count, &mut rng)
        .into_iter()
        .map(|i| (space.coord(i), rng.gen_range(0..period)))
        .collect();
    TransientSites {
        sites,
        period,
        on_rounds: transient_on_rounds(period, duty),
        round: 0,
    }
}

fn transient_sites_3d(
    mesh: &Mesh3D,
    protected: &[C3],
    count: usize,
    period: usize,
    duty: f64,
    seed: u64,
) -> TransientSites<C3> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let space = mesh.space();
    let period = period.max(2);
    let sites = sample_uniform(&eligible_indices_3d(mesh, protected), count, &mut rng)
        .into_iter()
        .map(|i| (space.coord(i), rng.gen_range(0..period)))
        .collect();
    TransientSites {
        sites,
        period,
        on_rounds: transient_on_rounds(period, duty),
        round: 0,
    }
}

/// A regime-prescribed churn schedule: per-round inject/heal deltas meant
/// to be fed to `IncrementalModels2/3::try_apply`. Produced by
/// [`FaultRegime::schedule_2d`]/[`schedule_3d`](FaultRegime::schedule_3d).
#[derive(Clone, Debug)]
pub enum Schedule<C> {
    /// Sliding slab: `order` is the full eligible sweep order, the faulty
    /// window is `[start, start + count)` (mod `len`), advancing by the
    /// requested flip budget each round.
    Plane {
        /// Eligible nodes in sweep order.
        order: Vec<C>,
        /// Window offset into `order`.
        start: usize,
        /// Window length (the live fault population).
        count: usize,
    },
    /// Duty-cycled sites; the per-round delta is the symmetric difference
    /// between consecutive rounds' active sets. Ignores the flip budget.
    Transient(TransientSites<C>),
}

impl<C: Copy + PartialEq> Schedule<C> {
    fn plane(order: Vec<C>, count: usize) -> Schedule<C> {
        let count = count.min(order.len());
        Schedule::Plane {
            order,
            start: 0,
            count,
        }
    }

    /// The round-0 fault population — identical to what the regime's
    /// `inject` method places for the same arguments.
    pub fn initial_faults(&self) -> Vec<C> {
        match self {
            Schedule::Plane { order, count, .. } => order[..*count].to_vec(),
            Schedule::Transient(sites) => sites.on_at(0),
        }
    }

    /// Advance one churn round and return `(injected, healed)`: the nodes
    /// newly faulty and newly repaired this round. `flips` bounds the
    /// band width for the sliding plane (and is ignored by transient
    /// schedules, whose deltas follow the duty cycle).
    pub fn step(&mut self, flips: usize) -> (Vec<C>, Vec<C>) {
        match self {
            Schedule::Plane {
                order,
                start,
                count,
            } => {
                let len = order.len();
                let eff = flips.min(*count).min(len - *count);
                let mut healed = Vec::with_capacity(eff);
                let mut injected = Vec::with_capacity(eff);
                for k in 0..eff {
                    healed.push(order[(*start + k) % len]);
                    injected.push(order[(*start + *count + k) % len]);
                }
                *start = (*start + eff) % len;
                (injected, healed)
            }
            Schedule::Transient(sites) => {
                let prev = sites.round;
                let next = prev + 1;
                let mut injected = Vec::new();
                let mut healed = Vec::new();
                for &(c, p) in &sites.sites {
                    let was = sites.active(p, prev);
                    let is = sites.active(p, next);
                    if is && !was {
                        injected.push(c);
                    } else if was && !is {
                        healed.push(c);
                    }
                }
                sites.round = next;
                (injected, healed)
            }
        }
    }
}

/// Outcome of one adversarial boundary search: a fault set under which
/// the oracle still admits a minimal path for the target pair but the MCC
/// labelling sacrifices an endpoint, so the paper's router refuses a
/// routable pair. `faults` is 1-minimal: removing any single fault breaks
/// the violation.
#[derive(Clone, Debug)]
pub struct AdversarialReport<C> {
    /// The violating fault set, in search order.
    pub faults: Vec<C>,
    /// Target source (mesh coordinates).
    pub s: C,
    /// Target destination (mesh coordinates).
    pub d: C,
    /// The oracle still found a minimal path under `faults` (always true
    /// for a reported violation).
    pub oracle_ok: bool,
    /// Both endpoints stayed safe under the labelling (always false for a
    /// reported violation).
    pub endpoints_safe: bool,
}

impl<C> AdversarialReport<C> {
    /// Number of faults in the violating set.
    pub fn cardinality(&self) -> usize {
        self.faults.len()
    }

    /// The defining predicate: routable by the oracle, refused by the
    /// endpoint-safety gate.
    pub fn violates(&self) -> bool {
        self.oracle_ok && !self.endpoints_safe
    }
}

const ANNEAL_STEPS: usize = 200;
const MAX_SET_2D: usize = 4;
const MAX_SET_3D: usize = 6;

/// Evaluate the violation predicate for `faults` against pair `(s, d)` on
/// an otherwise-clean `mesh` (restored before returning). Returns
/// `(oracle_ok, endpoints_safe)`.
fn probe_2d(mesh: &mut Mesh2D, faults: &[C2], s: C2, d: C2, border: BorderPolicy) -> (bool, bool) {
    for &f in faults {
        mesh.inject_fault(f);
    }
    let frame = Frame2::for_pair(mesh, s, d);
    let lab = Labelling2::compute(mesh, frame, border);
    let endpoints_safe = lab.status_mesh(s).is_safe() && lab.status_mesh(d).is_safe();
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    let oracle_ok = oracle::reachable_2d(cs, cd, |c| mesh.is_faulty(frame.from_canon(c)));
    for &f in faults {
        mesh.heal_fault(f);
    }
    (oracle_ok, endpoints_safe)
}

/// 3-D twin of [`probe_2d`].
fn probe_3d(mesh: &mut Mesh3D, faults: &[C3], s: C3, d: C3, border: BorderPolicy) -> (bool, bool) {
    for &f in faults {
        mesh.inject_fault(f);
    }
    let frame = Frame3::for_pair(mesh, s, d);
    let lab = Labelling3::compute(mesh, frame, border);
    let endpoints_safe = lab.status_mesh(s).is_safe() && lab.status_mesh(d).is_safe();
    let (cs, cd) = (frame.to_canon(s), frame.to_canon(d));
    let oracle_ok = oracle::reachable_3d(cs, cd, |c| mesh.is_faulty(frame.from_canon(c)));
    for &f in faults {
        mesh.heal_fault(f);
    }
    (oracle_ok, endpoints_safe)
}

/// Hill-climb score: a violating set dominates everything and prefers
/// smaller cardinality; otherwise reward unsafe endpoints (the goal),
/// a surviving oracle (the constraint) and faults sitting axis-adjacent
/// to an endpoint (`adj` — the gradient that lets the climb assemble a
/// blocking set one fault at a time), lightly penalizing size.
fn score(oracle_ok: bool, endpoints_safe: bool, len: usize, adj: i64) -> i64 {
    if oracle_ok && !endpoints_safe {
        10_000 - 10 * len as i64
    } else {
        let mut s = 4 * adj - len as i64;
        if !endpoints_safe {
            s += 50;
        }
        if oracle_ok {
            s += 30;
        }
        s
    }
}

macro_rules! adversarial_search_impl {
    ($name:ident, $mesh:ty, $coord:ty, $probe:ident, $max_set:expr, $cheb:expr) => {
        /// Seeded random-restart hill-climb for a 1-minimal fault set
        /// violating the MCC endpoint-safety gate for pair `(s, d)` while
        /// the oracle still routes. Candidates are drawn from the healthy
        /// nodes near either endpoint (the only region where small sets
        /// can sacrifice an endpoint). Returns `None` when no violation
        /// is found (e.g. degenerate pairs or wrapped meshes).
        pub fn $name(
            mesh: &$mesh,
            s: $coord,
            d: $coord,
            restarts: usize,
            seed: u64,
            border: BorderPolicy,
        ) -> Option<AdversarialReport<$coord>> {
            if mesh.wraps() || s == d || !mesh.is_healthy(s) || !mesh.is_healthy(d) {
                return None;
            }
            let mut scratch = mesh.clone();
            let pool: Vec<$coord> = mesh
                .nodes()
                .filter(|&c| {
                    c != s && c != d && mesh.is_healthy(c) && ($cheb(c, s) <= 2 || $cheb(c, d) <= 2)
                })
                .collect();
            if pool.len() < 2 {
                return None;
            }
            let max_set = $max_set.min(pool.len());
            let adjacency = |set: &[$coord]| -> i64 {
                set.iter()
                    .filter(|&&f| mesh.are_neighbors(f, s) || mesh.are_neighbors(f, d))
                    .count() as i64
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut best: Option<Vec<$coord>> = None;
            for _ in 0..restarts.max(1) {
                let mut cur: Vec<$coord> = {
                    let mut p = pool.clone();
                    p.shuffle(&mut rng);
                    p.truncate(rng.gen_range(2..=max_set));
                    p
                };
                let (mut ok, mut eps) = $probe(&mut scratch, &cur, s, d, border);
                let mut cur_score = score(ok, eps, cur.len(), adjacency(&cur));
                for step in 0..ANNEAL_STEPS {
                    if ok && !eps {
                        break;
                    }
                    let mut cand = cur.clone();
                    match rng.gen_range(0..3) {
                        0 if cand.len() > 2 => {
                            let i = rng.gen_range(0..cand.len());
                            cand.swap_remove(i);
                        }
                        1 if cand.len() < max_set => {
                            let c = pool[rng.gen_range(0..pool.len())];
                            if !cand.contains(&c) {
                                cand.push(c);
                            }
                        }
                        _ => {
                            let i = rng.gen_range(0..cand.len());
                            let c = pool[rng.gen_range(0..pool.len())];
                            if !cand.contains(&c) {
                                cand[i] = c;
                            }
                        }
                    }
                    let (cok, ceps) = $probe(&mut scratch, &cand, s, d, border);
                    let cand_score = score(cok, ceps, cand.len(), adjacency(&cand));
                    // Annealing accept: always take improvements; in the
                    // first half of the walk also take one-in-four
                    // regressions to escape local optima.
                    if cand_score >= cur_score
                        || (step < ANNEAL_STEPS / 2 && rng.gen_range(0..4) == 0)
                    {
                        cur = cand;
                        cur_score = cand_score;
                        ok = cok;
                        eps = ceps;
                    }
                }
                if !(ok && !eps) {
                    continue;
                }
                // Greedy 1-minimal pruning: drop any fault whose removal
                // preserves the violation.
                'prune: loop {
                    for i in 0..cur.len() {
                        let mut cand = cur.clone();
                        cand.remove(i);
                        let (cok, ceps) = $probe(&mut scratch, &cand, s, d, border);
                        if cok && !ceps {
                            cur = cand;
                            continue 'prune;
                        }
                    }
                    break;
                }
                if best.as_ref().is_none_or(|b| cur.len() < b.len()) {
                    best = Some(cur);
                }
            }
            best.map(|faults| {
                let (oracle_ok, endpoints_safe) = $probe(&mut scratch, &faults, s, d, border);
                AdversarialReport {
                    faults,
                    s,
                    d,
                    oracle_ok,
                    endpoints_safe,
                }
            })
        }
    };
}

fn cheb2(a: C2, b: C2) -> i32 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

fn cheb3(a: C3, b: C3) -> i32 {
    (a.x - b.x)
        .abs()
        .max((a.y - b.y).abs())
        .max((a.z - b.z).abs())
}

adversarial_search_impl!(
    adversarial_search_2d,
    Mesh2D,
    C2,
    probe_2d,
    MAX_SET_2D,
    cheb2
);
adversarial_search_impl!(
    adversarial_search_3d,
    Mesh3D,
    C3,
    probe_3d,
    MAX_SET_3D,
    cheb3
);

/// Inject the adversarial regime's fault set: the found violating set
/// (targeting `protected[0] → protected[1]` when given, else the mesh
/// corner pair), padded up to `count` with uniformly sampled filler from
/// a derived seed stream.
fn inject_adversarial_2d(
    mesh: &mut Mesh2D,
    count: usize,
    seed: u64,
    protected: &[C2],
    border: BorderPolicy,
    restarts: usize,
) -> usize {
    let (s, d) = match protected {
        [s, d, ..] => (*s, *d),
        _ => {
            let b = mesh.bounds();
            (
                mesh_topo::coord::c2(b.x0, b.y0),
                mesh_topo::coord::c2(b.x1, b.y1),
            )
        }
    };
    let mut injected = 0usize;
    if let Some(report) = adversarial_search_2d(mesh, s, d, restarts, seed, border) {
        for &f in report.faults.iter().take(count) {
            if mesh.is_healthy(f) {
                mesh.inject_fault(f);
                injected += 1;
            }
        }
    }
    if injected < count {
        // Filler stream is decoupled from the search stream so a changed
        // search never perturbs the padding draw.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xadfa_u64.rotate_left(32));
        let space = mesh.space();
        let mut shield: Vec<C2> = protected.to_vec();
        if !shield.contains(&s) {
            shield.push(s);
        }
        if !shield.contains(&d) {
            shield.push(d);
        }
        for i in sample_uniform(
            &eligible_indices_2d(mesh, &shield),
            count - injected,
            &mut rng,
        ) {
            mesh.inject_fault(space.coord(i));
            injected += 1;
        }
    }
    injected
}

/// 3-D twin of [`inject_adversarial_2d`].
fn inject_adversarial_3d(
    mesh: &mut Mesh3D,
    count: usize,
    seed: u64,
    protected: &[C3],
    border: BorderPolicy,
    restarts: usize,
) -> usize {
    let (s, d) = match protected {
        [s, d, ..] => (*s, *d),
        _ => {
            let b = mesh.bounds();
            (b.lo, b.hi)
        }
    };
    let mut injected = 0usize;
    if let Some(report) = adversarial_search_3d(mesh, s, d, restarts, seed, border) {
        for &f in report.faults.iter().take(count) {
            if mesh.is_healthy(f) {
                mesh.inject_fault(f);
                injected += 1;
            }
        }
    }
    if injected < count {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xadfa_u64.rotate_left(32));
        let space = mesh.space();
        let mut shield: Vec<C3> = protected.to_vec();
        if !shield.contains(&s) {
            shield.push(s);
        }
        if !shield.contains(&d) {
            shield.push(d);
        }
        for i in sample_uniform(
            &eligible_indices_3d(mesh, &shield),
            count - injected,
            &mut rng,
        ) {
            mesh.inject_fault(space.coord(i));
            injected += 1;
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalModels2;
    use mesh_topo::coord::{c2, c3};
    use mesh_topo::FaultSpec;

    const B: BorderPolicy = BorderPolicy::BorderSafe;

    /// Acceptance pin: the Uniform/Clustered regimes reproduce the legacy
    /// `FaultSpec` RNG sequence exactly — fault sets equal including
    /// injection order — so every checked-in golden stays byte-identical.
    #[test]
    fn regime_matches_fault_spec() {
        for seed in [0u64, 3, 42, 0xfeed_f00d] {
            for &(count, clusters) in &[(12usize, 1usize), (40, 3), (80, 5)] {
                let protected = [c2(1, 1), c2(10, 8)];
                let mut legacy = Mesh2D::new(14, 12);
                FaultSpec::uniform(count, seed).inject_2d(&mut legacy, &protected);
                let mut regime = Mesh2D::new(14, 12);
                FaultRegime::Uniform.inject_2d(&mut regime, count, seed, &protected, B);
                assert_eq!(legacy.faults(), regime.faults(), "2d uniform seed {seed}");

                let mut legacy = Mesh2D::new(14, 12);
                FaultSpec::clustered(count, clusters, seed).inject_2d(&mut legacy, &protected);
                let mut regime = Mesh2D::new(14, 12);
                FaultRegime::Clustered { clusters }.inject_2d(
                    &mut regime,
                    count,
                    seed,
                    &protected,
                    B,
                );
                assert_eq!(legacy.faults(), regime.faults(), "2d clustered seed {seed}");

                let p3 = [c3(0, 0, 0)];
                let mut legacy = Mesh3D::kary(8);
                FaultSpec::uniform(count, seed).inject_3d(&mut legacy, &p3);
                let mut regime = Mesh3D::kary(8);
                FaultRegime::Uniform.inject_3d(&mut regime, count, seed, &p3, B);
                assert_eq!(legacy.faults(), regime.faults(), "3d uniform seed {seed}");

                let mut legacy = Mesh3D::kary(8);
                FaultSpec::clustered(count, clusters, seed).inject_3d(&mut legacy, &p3);
                let mut regime = Mesh3D::kary(8);
                FaultRegime::Clustered { clusters }.inject_3d(&mut regime, count, seed, &p3, B);
                assert_eq!(legacy.faults(), regime.faults(), "3d clustered seed {seed}");
            }
        }
    }

    #[test]
    fn front_blobs_are_connected_and_reproducible() {
        let regime = FaultRegime::CorrelatedFront { fronts: 2 };
        let mut m1 = Mesh2D::new(20, 20);
        let mut m2 = Mesh2D::new(20, 20);
        assert_eq!(regime.inject_2d(&mut m1, 36, 11, &[], B), 36);
        assert_eq!(regime.inject_2d(&mut m2, 36, 11, &[], B), 36);
        assert_eq!(m1.faults(), m2.faults());
        // At most the two epicenters may be isolated from other faults.
        let isolated = m1
            .faults()
            .iter()
            .filter(|&&c| m1.neighbors(c).all(|v| !m1.is_faulty(v)))
            .count();
        assert!(isolated <= 2, "front blobs disconnected: {isolated}");
    }

    #[test]
    fn front_respects_protection_and_saturates() {
        let regime = FaultRegime::CorrelatedFront { fronts: 3 };
        let mut m = Mesh2D::new(4, 4);
        let n = regime.inject_2d(&mut m, 100, 5, &[c2(0, 0)], B);
        assert_eq!(n, 15);
        assert!(m.is_healthy(c2(0, 0)));
    }

    #[test]
    fn plane_injects_an_axis_slab() {
        let regime = FaultRegime::SweepingPlane { axis: 0 };
        let mut m = Mesh2D::new(10, 10);
        assert_eq!(regime.inject_2d(&mut m, 30, 7, &[], B), 30);
        // 30 faults on a 10-wide mesh = exactly three full columns from
        // one side (which side depends on the seeded direction).
        let xs: Vec<i32> = m.faults().iter().map(|c| c.x).collect();
        let lo = *xs.iter().min().unwrap();
        let hi = *xs.iter().max().unwrap();
        assert_eq!(hi - lo, 2, "slab spans columns {lo}..={hi}");
        assert!(lo == 0 || hi == 9, "slab hugs a mesh face");
    }

    #[test]
    fn plane_schedule_matches_injection_and_slides() {
        let regime = FaultRegime::SweepingPlane { axis: 1 };
        let clean = Mesh2D::new(8, 8);
        let mut schedule = regime
            .schedule_2d(&clean, 16, 3, &[])
            .expect("plane churns");
        let mut mesh = Mesh2D::new(8, 8);
        assert_eq!(regime.inject_2d(&mut mesh, 16, 3, &[], B), 16);
        assert_eq!(schedule.initial_faults(), mesh.faults().to_vec());
        // Slide three rounds of 4 flips through incremental maintenance.
        let mut inc = IncrementalModels2::new(mesh, B);
        for _ in 0..3 {
            let (injected, healed) = schedule.step(4);
            assert_eq!(injected.len(), 4);
            assert_eq!(healed.len(), 4);
            inc.try_apply(&injected, &healed).expect("legal churn");
            assert_eq!(inc.mesh().fault_count(), 16);
        }
    }

    #[test]
    fn transient_schedule_cycles_and_feeds_try_apply() {
        let regime = FaultRegime::TransientSchedule {
            period: 4,
            duty: 0.5,
        };
        let clean = Mesh2D::new(12, 12);
        let mut schedule = regime
            .schedule_2d(&clean, 20, 9, &[])
            .expect("transient churns");
        let mut mesh = Mesh2D::new(12, 12);
        let injected = regime.inject_2d(&mut mesh, 20, 9, &[], B);
        assert_eq!(schedule.initial_faults(), mesh.faults().to_vec());
        assert!(
            injected > 0 && injected < 20,
            "duty cycle partial: {injected}"
        );
        let mut inc = IncrementalModels2::new(mesh, B);
        let mut populations = Vec::new();
        for _ in 0..8 {
            let (inj, heal) = schedule.step(0);
            inc.try_apply(&inj, &heal).expect("legal churn");
            populations.push(inc.mesh().fault_count());
        }
        // Period 4: round r and r+4 have identical populations.
        assert_eq!(populations[0..4], populations[4..8]);
        // Sites actually oscillate.
        assert!(populations.iter().any(|&p| p != populations[0]) || injected != populations[0]);
    }

    #[test]
    fn adversarial_finds_minimal_violation_verified_by_oracle() {
        let mesh = Mesh2D::new(12, 12);
        let (s, d) = (c2(2, 2), c2(9, 9));
        let report = adversarial_search_2d(&mesh, s, d, 8, 1, B).expect("violation exists");
        assert!(
            report.violates(),
            "oracle routes but an endpoint is sacrificed"
        );
        // The minimal construction is the antidiagonal pair around an
        // endpoint: cardinality 2 (1-minimal by the pruning pass).
        assert_eq!(report.cardinality(), 2, "faults: {:?}", report.faults);
        // Independent re-verification against the oracle and labelling.
        let mut probe = mesh.clone();
        let (oracle_ok, endpoints_safe) = probe_2d(&mut probe, &report.faults, s, d, B);
        assert!(oracle_ok && !endpoints_safe);
    }

    #[test]
    fn adversarial_inject_pads_to_count() {
        let regime = FaultRegime::AdversarialBoundary { restarts: 4 };
        let mut mesh = Mesh2D::new(12, 12);
        let n = regime.inject_2d(&mut mesh, 6, 2, &[c2(1, 1), c2(10, 10)], B);
        assert_eq!(n, 6);
        assert!(mesh.is_healthy(c2(1, 1)) && mesh.is_healthy(c2(10, 10)));
    }

    #[test]
    fn adversarial_declines_torus_and_degenerate_pairs() {
        let torus = Mesh2D::torus(8, 8);
        assert!(adversarial_search_2d(&torus, c2(0, 0), c2(5, 5), 4, 1, B).is_none());
        let mesh = Mesh2D::new(8, 8);
        assert!(adversarial_search_2d(&mesh, c2(3, 3), c2(3, 3), 4, 1, B).is_none());
    }

    #[test]
    fn regime_names_are_stable() {
        assert_eq!(FaultRegime::Uniform.name(), "uniform");
        assert_eq!(FaultRegime::Clustered { clusters: 3 }.name(), "clustered");
        assert_eq!(FaultRegime::CorrelatedFront { fronts: 2 }.name(), "front");
        assert_eq!(FaultRegime::SweepingPlane { axis: 0 }.name(), "plane");
        assert_eq!(
            FaultRegime::TransientSchedule {
                period: 4,
                duty: 0.5
            }
            .name(),
            "transient"
        );
        assert_eq!(
            FaultRegime::AdversarialBoundary { restarts: 8 }.name(),
            "adversarial"
        );
    }
}
