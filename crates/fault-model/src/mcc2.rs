//! Minimal Connected Components in 2-D meshes: shape extraction.
//!
//! Each connected component of the unsafe set (8-connectivity, see
//! [`crate::components`]) is an MCC. Wang's structural theorem (re-checked by
//! our property tests) says a closed MCC is a *rectilinear-monotone
//! polygonal* region; the property our region machinery relies on is
//! HV-convexity:
//!
//! * its occupancy in every column `x` is one contiguous interval
//!   `[bot(x), top(x)]`, and likewise in every row.
//!
//! From the profiles we obtain the forbidden region `Q` and critical region
//! `Q'` of the component per axis:
//!
//! * `Q_Y(M)` — nodes strictly below `M` in an `M`-spanned column (a routing
//!   that enters it while the destination lies above `M` is doomed),
//! * `Q'_Y(M)` — nodes strictly above `M` in an `M`-spanned column,
//! * `Q_X` / `Q'_X` — the row-wise (left / right) analogues.
//!
//! The module also identifies the *initialization corner* and *opposite
//! corner* used by the distributed identification process of the paper.

use mesh_topo::{Rect, C2};
use serde::{Deserialize, Serialize};

use crate::components::{CompSource, Components2};
use crate::labelling2::Labelling2;

/// The axis a forbidden/critical region pair refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RegionAxis2 {
    /// `Q_X` (left of the MCC) / `Q'_X` (right of the MCC).
    X,
    /// `Q_Y` (below the MCC) / `Q'_Y` (above the MCC).
    Y,
}

/// One Minimal Connected Component of a 2-D labelling, with its shape
/// profiles and region predicates. Coordinates are canonical.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mcc2 {
    /// Component id (index into the owning [`MccSet2`]).
    pub id: u32,
    /// All member cells.
    pub cells: Vec<C2>,
    /// Bounding rectangle.
    pub bounds: Rect,
    /// Number of faulty cells.
    pub fault_count: usize,
    /// Number of healthy (useless / can't-reach) cells.
    pub sacrificed_count: usize,
    /// Per-column lowest occupied y, indexed by `x - bounds.x0`.
    col_bot: Vec<i32>,
    /// Per-column highest occupied y.
    col_top: Vec<i32>,
    /// Per-row lowest occupied x, indexed by `y - bounds.y0`.
    row_lo: Vec<i32>,
    /// Per-row highest occupied x.
    row_hi: Vec<i32>,
}

/// All MCCs of one labelling.
#[derive(Clone, Debug, Default)]
pub struct MccSet2 {
    /// The components, indexed by id.
    pub mccs: Vec<Mcc2>,
}

impl Mcc2 {
    pub(crate) fn from_cells(id: u32, cells: Vec<C2>, lab: &Labelling2) -> Mcc2 {
        debug_assert!(!cells.is_empty());
        let mut bounds = Rect::point(cells[0]);
        for &c in &cells[1..] {
            bounds.include(c);
        }
        let w = (bounds.x1 - bounds.x0 + 1) as usize;
        let h = (bounds.y1 - bounds.y0 + 1) as usize;
        let mut col_bot = vec![i32::MAX; w];
        let mut col_top = vec![i32::MIN; w];
        let mut row_lo = vec![i32::MAX; h];
        let mut row_hi = vec![i32::MIN; h];
        let mut fault_count = 0;
        for &c in &cells {
            let ci = (c.x - bounds.x0) as usize;
            let ri = (c.y - bounds.y0) as usize;
            col_bot[ci] = col_bot[ci].min(c.y);
            col_top[ci] = col_top[ci].max(c.y);
            row_lo[ri] = row_lo[ri].min(c.x);
            row_hi[ri] = row_hi[ri].max(c.x);
            if lab.status(c).is_faulty() {
                fault_count += 1;
            }
        }
        let sacrificed_count = cells.len() - fault_count;
        Mcc2 {
            id,
            cells,
            bounds,
            fault_count,
            sacrificed_count,
            col_bot,
            col_top,
            row_lo,
            row_hi,
        }
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// MCCs are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The occupied y-interval `[bot, top]` of column `x`, if spanned.
    pub fn col_interval(&self, x: i32) -> Option<(i32, i32)> {
        if x < self.bounds.x0 || x > self.bounds.x1 {
            return None;
        }
        let i = (x - self.bounds.x0) as usize;
        if self.col_bot[i] > self.col_top[i] {
            None
        } else {
            Some((self.col_bot[i], self.col_top[i]))
        }
    }

    /// The occupied x-interval `[lo, hi]` of row `y`, if spanned.
    pub fn row_interval(&self, y: i32) -> Option<(i32, i32)> {
        if y < self.bounds.y0 || y > self.bounds.y1 {
            return None;
        }
        let i = (y - self.bounds.y0) as usize;
        if self.row_lo[i] > self.row_hi[i] {
            None
        } else {
            Some((self.row_lo[i], self.row_hi[i]))
        }
    }

    /// True if the component occupies cell `c`.
    ///
    /// Valid for *closed* MCCs (contiguous row/column intervals) — the form
    /// guaranteed by the labelling closure and asserted by
    /// [`Mcc2::is_hv_convex`].
    pub fn contains(&self, c: C2) -> bool {
        match self.col_interval(c.x) {
            Some((bot, top)) => c.y >= bot && c.y <= top,
            None => false,
        }
    }

    /// `c ∈ Q_Y(M)` — strictly below the component in a spanned column.
    #[inline]
    pub fn in_forbidden_y(&self, c: C2) -> bool {
        matches!(self.col_interval(c.x), Some((bot, _)) if c.y < bot)
    }

    /// `c ∈ Q'_Y(M)` — strictly above the component in a spanned column.
    #[inline]
    pub fn in_critical_y(&self, c: C2) -> bool {
        matches!(self.col_interval(c.x), Some((_, top)) if c.y > top)
    }

    /// `c ∈ Q_X(M)` — strictly left of the component in a spanned row.
    #[inline]
    pub fn in_forbidden_x(&self, c: C2) -> bool {
        matches!(self.row_interval(c.y), Some((lo, _)) if c.x < lo)
    }

    /// `c ∈ Q'_X(M)` — strictly right of the component in a spanned row.
    #[inline]
    pub fn in_critical_x(&self, c: C2) -> bool {
        matches!(self.row_interval(c.y), Some((_, hi)) if c.x > hi)
    }

    /// Region membership by axis.
    pub fn in_forbidden(&self, axis: RegionAxis2, c: C2) -> bool {
        match axis {
            RegionAxis2::X => self.in_forbidden_x(c),
            RegionAxis2::Y => self.in_forbidden_y(c),
        }
    }

    /// Critical-region membership by axis.
    pub fn in_critical(&self, axis: RegionAxis2, c: C2) -> bool {
        match axis {
            RegionAxis2::X => self.in_critical_x(c),
            RegionAxis2::Y => self.in_critical_y(c),
        }
    }

    /// Structural check: every row/column occupancy of the component is one
    /// contiguous interval and every row/column of the bounding box is
    /// occupied (HV-convexity). `true` for every closed MCC; the region
    /// predicates above assume it.
    pub fn is_hv_convex(&self) -> bool {
        // Count cells per column/row and compare with interval widths.
        let w = (self.bounds.x1 - self.bounds.x0 + 1) as usize;
        let h = (self.bounds.y1 - self.bounds.y0 + 1) as usize;
        let mut col_n = vec![0i64; w];
        let mut row_n = vec![0i64; h];
        for &c in &self.cells {
            col_n[(c.x - self.bounds.x0) as usize] += 1;
            row_n[(c.y - self.bounds.y0) as usize] += 1;
        }
        for x in self.bounds.x0..=self.bounds.x1 {
            match self.col_interval(x) {
                Some((bot, top)) => {
                    if col_n[(x - self.bounds.x0) as usize] != (top - bot + 1) as i64 {
                        return false; // hole in the column
                    }
                }
                None => return false, // bounding box column not spanned
            }
        }
        for y in self.bounds.y0..=self.bounds.y1 {
            match self.row_interval(y) {
                Some((lo, hi)) => {
                    if row_n[(y - self.bounds.y0) as usize] != (hi - lo + 1) as i64 {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    /// The `(+Y-X)`-corner cell of the component: among the cells with
    /// maximum y, the one with minimum x (the paper's corner naming for the
    /// section identification process).
    pub fn corner_cell_yx(&self) -> C2 {
        *self
            .cells
            .iter()
            .max_by_key(|c| (c.y, -c.x))
            .expect("MCC is never empty")
    }

    /// The `(+X-Y)`-corner cell: among the cells with maximum x, the one
    /// with minimum y.
    pub fn corner_cell_xy(&self) -> C2 {
        *self
            .cells
            .iter()
            .max_by_key(|c| (c.x, -c.y))
            .expect("MCC is never empty")
    }

    /// The *initialization corner* of the identification process: the safe
    /// node diagonally up-left of the `(+Y-X)`-corner cell; its `+X` and
    /// `+Y` neighbors are edge nodes of the MCC.
    pub fn init_corner(&self) -> C2 {
        let t = self.corner_cell_yx();
        C2 {
            x: t.x - 1,
            y: t.y + 1,
        }
    }

    /// The *opposite corner*: the safe node diagonally down-right of the
    /// (min-y, then max-x) cell; its `-X` and `-Y` neighbors are edge nodes.
    pub fn opposite_corner(&self) -> C2 {
        let b = *self
            .cells
            .iter()
            .min_by_key(|c| (c.y, -c.x))
            .expect("MCC is never empty");
        C2 {
            x: b.x + 1,
            y: b.y - 1,
        }
    }
}

impl MccSet2 {
    /// Extract all MCCs of a labelling.
    pub fn compute(lab: &Labelling2) -> MccSet2 {
        let comps = Components2::compute(lab);
        MccSet2 {
            mccs: comps
                .cells
                .into_iter()
                .enumerate()
                .map(|(i, cells)| Mcc2::from_cells(i as u32, cells, lab))
                .collect(),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.mccs.len()
    }

    /// True if there are no unsafe nodes.
    pub fn is_empty(&self) -> bool {
        self.mccs.is_empty()
    }

    /// Iterate the components.
    pub fn iter(&self) -> impl Iterator<Item = &Mcc2> {
        self.mccs.iter()
    }

    /// Total healthy nodes captured by fault regions.
    pub fn total_sacrificed(&self) -> usize {
        self.mccs.iter().map(|m| m.sacrificed_count).sum()
    }

    /// Incrementally repair the MCC shapes after a component repair:
    /// `comps` is the repaired decomposition, `sources` its per-component
    /// provenance, and `changed` the same dirty region the labelling
    /// repair produced. A rebuilt component is re-extracted; so is a
    /// carried component holding **any** status-changed cell — a cell can
    /// flip useless→faulty without a membership change, which moves the
    /// fault/sacrificed split even though the shape is untouched. Every
    /// other MCC is reused with only its id renumbered, making the result
    /// bit-for-bit equal to `MccSet2::compute(lab)` (DESIGN.md §12).
    pub fn repair(
        &mut self,
        lab: &Labelling2,
        comps: &Components2,
        sources: &[CompSource],
        changed: &[usize],
    ) {
        let space = lab.space();
        let mut dirty = vec![false; comps.len()];
        for &i in changed {
            if let Some(id) = comps.component_of(space.coord(i)) {
                dirty[id as usize] = true;
            }
        }
        let mut old: Vec<Option<Mcc2>> = std::mem::take(&mut self.mccs)
            .into_iter()
            .map(Some)
            .collect();
        self.mccs = sources
            .iter()
            .enumerate()
            .map(|(j, src)| match *src {
                CompSource::Carried { old: o } if !dirty[j] => {
                    let mut m = old[o].take().expect("component carried twice");
                    m.id = j as u32;
                    m
                }
                _ => Mcc2::from_cells(j as u32, comps.cells[j].clone(), lab),
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::BorderPolicy;
    use mesh_topo::coord::c2;
    use mesh_topo::{Frame2, Mesh2D};

    fn mccs_of(faults: &[C2], w: i32, h: i32) -> (Labelling2, MccSet2) {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let set = MccSet2::compute(&lab);
        (lab, set)
    }

    #[test]
    fn single_fault_profiles() {
        let (_, set) = mccs_of(&[c2(4, 5)], 10, 10);
        assert_eq!(set.len(), 1);
        let m = &set.mccs[0];
        assert_eq!(m.len(), 1);
        assert_eq!(m.col_interval(4), Some((5, 5)));
        assert_eq!(m.col_interval(5), None);
        assert_eq!(m.row_interval(5), Some((4, 4)));
        assert!(m.is_hv_convex());
        assert!(m.contains(c2(4, 5)));
        assert!(!m.contains(c2(4, 6)));
    }

    #[test]
    fn region_membership_single_cell() {
        let (_, set) = mccs_of(&[c2(4, 5)], 10, 10);
        let m = &set.mccs[0];
        assert!(m.in_forbidden_y(c2(4, 0)));
        assert!(m.in_critical_y(c2(4, 9)));
        assert!(!m.in_forbidden_y(c2(3, 0))); // column not spanned
        assert!(m.in_forbidden_x(c2(0, 5)));
        assert!(m.in_critical_x(c2(9, 5)));
        assert!(!m.in_critical_x(c2(9, 6)));
        // axis dispatcher agrees
        assert!(m.in_forbidden(RegionAxis2::Y, c2(4, 0)));
        assert!(m.in_critical(RegionAxis2::X, c2(9, 5)));
    }

    #[test]
    fn antidiagonal_band_is_monotone() {
        // Faults on x+y = 10, x in 3..=7 — the closure thickens this into a
        // connected monotone band.
        let faults: Vec<C2> = (3..=7).map(|x| c2(x, 10 - x)).collect();
        let (_, set) = mccs_of(&faults, 14, 14);
        assert_eq!(set.len(), 1, "closure must bridge antidiagonal faults");
        let m = &set.mccs[0];
        assert!(m.is_hv_convex());
        // Profiles descend left to right for a "\\" band.
        let (b3, t3) = m.col_interval(3).unwrap();
        let (b7, t7) = m.col_interval(7).unwrap();
        assert!(b3 >= b7 && t3 >= t7);
        assert!(m.sacrificed_count > 0);
    }

    #[test]
    fn main_diagonal_band_is_one_mcc() {
        // "/"-oriented faults are 8-connected: one MCC, nothing sacrificed,
        // ascending profiles, still HV-convex.
        let faults: Vec<C2> = (3..=7).map(|x| c2(x, x)).collect();
        let (_, set) = mccs_of(&faults, 14, 14);
        assert_eq!(set.len(), 1);
        let m = &set.mccs[0];
        assert_eq!(m.sacrificed_count, 0);
        assert!(m.is_hv_convex());
        let (b3, _) = m.col_interval(3).unwrap();
        let (b7, _) = m.col_interval(7).unwrap();
        assert!(b3 < b7);
    }

    #[test]
    fn vertical_wall_profiles() {
        let faults: Vec<C2> = (2..=6).map(|y| c2(5, y)).collect();
        let (_, set) = mccs_of(&faults, 10, 10);
        let m = &set.mccs[0];
        assert_eq!(m.col_interval(5), Some((2, 6)));
        assert_eq!(m.sacrificed_count, 0);
        assert!(m.in_forbidden_y(c2(5, 1)));
        assert!(m.in_critical_y(c2(5, 7)));
        for y in 2..=6 {
            assert!(m.in_forbidden_x(c2(0, y)));
            assert!(m.in_critical_x(c2(9, y)));
        }
    }

    #[test]
    fn corners_of_staircase() {
        let faults: Vec<C2> = (3..=7).map(|x| c2(x, 10 - x)).collect();
        let (lab, set) = mccs_of(&faults, 14, 14);
        let m = &set.mccs[0];
        let ic = m.init_corner();
        let oc = m.opposite_corner();
        // Corners are safe nodes diagonally adjacent to extreme cells.
        assert!(lab.status(ic).is_safe());
        assert!(lab.status(oc).is_safe());
        assert!(m.contains(c2(ic.x + 1, ic.y - 1)));
        assert!(m.contains(c2(oc.x - 1, oc.y + 1)));
        assert_eq!(c2(ic.x + 1, ic.y - 1), m.corner_cell_yx());
    }

    #[test]
    fn disjoint_mccs_do_not_interfere() {
        let (_, set) = mccs_of(&[c2(2, 2), c2(8, 8)], 12, 12);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_sacrificed(), 0);
        let a = &set.mccs[0];
        assert!(a.in_critical_y(c2(2, 5)) ^ a.in_forbidden_y(c2(2, 5)) || a.bounds.x0 != 2);
    }

    #[test]
    fn contains_agrees_with_cells() {
        let faults: Vec<C2> = vec![c2(4, 6), c2(5, 5), c2(6, 4), c2(5, 6), c2(4, 5)];
        let (_, set) = mccs_of(&faults, 12, 12);
        for m in set.iter() {
            for &c in &m.cells {
                assert!(m.contains(c));
            }
            assert!(m.is_hv_convex());
        }
    }

    #[test]
    fn repair_matches_compute_on_random_churn() {
        use crate::components::Components2;
        use mesh_topo::Parallelism;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for torus in [false, true] {
            let (w, h) = (11, 8);
            let mut mesh = if torus {
                Mesh2D::torus(w, h)
            } else {
                Mesh2D::new(w, h)
            };
            let mut rng = SmallRng::seed_from_u64(torus as u64 + 23);
            for _ in 0..14 {
                mesh.inject_fault(c2(rng.gen_range(0..w), rng.gen_range(0..h)));
            }
            let mut l =
                Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
            let mut comps = Components2::compute(&l);
            let mut set = MccSet2::compute(&l);
            for _ in 0..40 {
                let mut injected = Vec::new();
                let mut healed = Vec::new();
                for _ in 0..rng.gen_range(0..4) {
                    let c = c2(rng.gen_range(0..w), rng.gen_range(0..h));
                    if mesh.is_healthy(c) && !injected.contains(&c) {
                        injected.push(c);
                    }
                }
                let faults = mesh.faults().to_vec();
                for _ in 0..rng.gen_range(0..4) {
                    let c = faults[rng.gen_range(0..faults.len())];
                    if !healed.contains(&c) {
                        healed.push(c);
                    }
                }
                for &c in &injected {
                    mesh.inject_fault(c);
                }
                for &c in &healed {
                    mesh.heal_fault(c);
                }
                let changed = l.repair(&injected, &healed, Parallelism::SEQ);
                let sources = comps.repair(&l, &changed);
                set.repair(&l, &comps, &sources, &changed);
                let fresh = MccSet2::compute(&l);
                assert_eq!(set.mccs, fresh.mccs);
            }
        }
    }
}
