//! Lemma 1 / Theorem 1 — existence of a minimal path in 2-D meshes.
//!
//! *Lemma 1 (Wang, rewritten by the paper):* a routing from canonical
//! `s` to `d` has **no** minimal path iff there exists an MCC `M` with
//! `s ∈ Q_X(M) ∧ d ∈ Q'_X(M)`, or `s ∈ Q_Y(M) ∧ d ∈ Q'_Y(M)` — where the
//! regions are the *merged* regions of the boundary construction: when the
//! boundary of one MCC runs into another MCC, the forbidden regions union
//! (Algorithm 2 step 3 / Theorem 1's boundary-intersection clause).
//!
//! Semantically the merged condition equals monotone reachability avoiding
//! the **unsafe closure**, which by MCC minimality equals reachability
//! avoiding only the faults (both equalities are property-tested). This
//! module therefore evaluates the condition that way; the *operational*
//! merged form — detection messages walking around fault regions, exactly
//! Algorithm 3 step 1 — lives in `mcc-routing::feasibility2` and is tested
//! equivalent.
//!
//! The per-MCC *unmerged* pair check is still exposed as
//! [`pair_blocking_mcc`]: it is sufficient (when it fires, no minimal path
//! exists) and is what boundary records let individual nodes evaluate
//! locally; it is not necessary in multi-MCC compositions.
//!
//! Endpoint triage: the theorems assume safe endpoints. A can't-reach
//! destination (safe source) is unreachable; a useless source (safe
//! destination) is stuck; other labelled-endpoint combinations fall back to
//! the exact fault-avoiding oracle.

use mesh_topo::C2;
use serde::{Deserialize, Serialize};

use crate::labelling2::Labelling2;
use crate::mcc2::{Mcc2, MccSet2, RegionAxis2};
use crate::oracle;

/// Outcome of the 2-D existence condition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Existence2 {
    /// A minimal path exists (both endpoints safe).
    Exists,
    /// No minimal path: the merged fault regions separate `s` from `d`
    /// inside the Region of Minimal Paths.
    Blocked,
    /// No minimal path: the destination is can't-reach.
    DestinationCantReach,
    /// No minimal path: the source is useless.
    SourceUseless,
    /// An endpoint is faulty — invalid query.
    EndpointFaulty,
    /// Labelled endpoint(s): decided by the exact fault-avoiding oracle.
    OracleExists,
    /// Same, negative.
    OracleBlocked,
}

impl Existence2 {
    /// True when a minimal path exists.
    pub fn exists(self) -> bool {
        matches!(self, Existence2::Exists | Existence2::OracleExists)
    }
}

/// Evaluate the existence condition for canonical `s ≤ d`.
///
/// `lab` must be the labelling for the quadrant of `(s, d)`.
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn minimal_path_exists_2d(lab: &Labelling2, mccs: &MccSet2, s: C2, d: C2) -> Existence2 {
    minimal_path_exists_2d_in(lab, mccs, s, d, &mut oracle::Useful2::scratch())
}

/// [`minimal_path_exists_2d`] with a caller-provided scratch buffer for
/// the reachability sweep (see [`oracle::Useful2::recompute`]).
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn minimal_path_exists_2d_in(
    lab: &Labelling2,
    _mccs: &MccSet2,
    s: C2,
    d: C2,
    useful: &mut oracle::Useful2,
) -> Existence2 {
    assert!(
        s.dominated_by(d),
        "condition requires canonical coordinates with s <= d, got {s:?} {d:?}"
    );
    let ss = lab.status(s);
    let sd = lab.status(d);
    if ss.is_faulty() || sd.is_faulty() {
        return Existence2::EndpointFaulty;
    }
    if s == d {
        return Existence2::Exists;
    }
    match (ss.is_unsafe(), sd.is_unsafe()) {
        (false, false) => {
            // Safe endpoints: avoiding the closure loses nothing
            // (property-tested); this is the semantic content of Lemma 1
            // with merged regions.
            let ok = oracle::reachable_2d_in(
                s,
                d,
                |c| lab.status_get(c).map(|st| st.is_unsafe()).unwrap_or(true),
                useful,
            );
            if ok {
                Existence2::Exists
            } else {
                Existence2::Blocked
            }
        }
        (false, true) if sd.is_cant_reach() => Existence2::DestinationCantReach,
        (true, false) if ss.is_useless() => Existence2::SourceUseless,
        _ => {
            let ok = oracle::reachable_2d_in(
                s,
                d,
                |c| lab.status_get(c).map(|st| st.is_faulty()).unwrap_or(true),
                useful,
            );
            if ok {
                Existence2::OracleExists
            } else {
                Existence2::OracleBlocked
            }
        }
    }
}

/// The *unmerged* per-MCC pair condition: the first MCC (and axis) for which
/// `s` lies in the forbidden region and `d` in the matching critical region.
///
/// Sufficient for blocking — a hit means no minimal path — but not
/// necessary: compositions of several MCCs (or an MCC and the mesh border)
/// can block even though no single component's pair fires. The boundary
/// construction exists precisely to merge those regions.
pub fn pair_blocking_mcc(mccs: &MccSet2, s: C2, d: C2) -> Option<(&Mcc2, RegionAxis2)> {
    for m in mccs.iter() {
        if m.in_forbidden_x(s) && m.in_critical_x(d) {
            return Some((m, RegionAxis2::X));
        }
        if m.in_forbidden_y(s) && m.in_critical_y(d) {
            return Some((m, RegionAxis2::Y));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::BorderPolicy;
    use mesh_topo::coord::c2;
    use mesh_topo::{Frame2, Mesh2D};

    fn setup(faults: &[C2], w: i32, h: i32) -> (Labelling2, MccSet2) {
        let mut mesh = Mesh2D::new(w, h);
        for &f in faults {
            mesh.inject_fault(f);
        }
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        let set = MccSet2::compute(&lab);
        (lab, set)
    }

    #[test]
    fn open_mesh_exists() {
        let (lab, set) = setup(&[], 8, 8);
        assert_eq!(
            minimal_path_exists_2d(&lab, &set, c2(0, 0), c2(7, 7)),
            Existence2::Exists
        );
    }

    #[test]
    fn wall_blocks_same_column() {
        // Fault directly between s and d in a degenerate (single-column) RMP.
        let (lab, set) = setup(&[c2(3, 4)], 8, 8);
        let r = minimal_path_exists_2d(&lab, &set, c2(3, 0), c2(3, 7));
        assert_eq!(r, Existence2::Blocked);
        // The unmerged pair condition agrees here (single MCC).
        let (m, axis) = pair_blocking_mcc(&set, c2(3, 0), c2(3, 7)).unwrap();
        assert_eq!(axis, RegionAxis2::Y);
        assert_eq!(m.fault_count, 1);
        // Two-column RMP can route around it.
        assert!(minimal_path_exists_2d(&lab, &set, c2(2, 0), c2(3, 7)).exists());
    }

    #[test]
    fn row_wall_blocks_x_axis() {
        let (lab, set) = setup(&[c2(4, 3)], 8, 8);
        let r = minimal_path_exists_2d(&lab, &set, c2(0, 3), c2(7, 3));
        assert_eq!(r, Existence2::Blocked);
        let (_, axis) = pair_blocking_mcc(&set, c2(0, 3), c2(7, 3)).unwrap();
        assert_eq!(axis, RegionAxis2::X);
    }

    #[test]
    fn full_antidiagonal_blocks() {
        // Faults on every cell of the antidiagonal x+y = 6 within the RMP
        // [0,0]..[6,6]: no monotone path exists. The useless cascade reaches
        // the source, so the triage reports SourceUseless.
        let faults: Vec<C2> = (0..=6).map(|x| c2(x, 6 - x)).collect();
        let (lab, set) = setup(&faults, 10, 10);
        let r = minimal_path_exists_2d(&lab, &set, c2(0, 0), c2(6, 6));
        assert!(!r.exists(), "{r:?}");
    }

    #[test]
    fn band_away_from_source_blocks_via_pair() {
        // Antidiagonal band x+y=8, x in 2..=6. s=(2,0) is safe (the useless
        // cascade stops where paths can escape under the band's right end);
        // d=(4,8) is safe above the band. Blocked, and the single-MCC pair
        // condition detects it.
        let faults: Vec<C2> = (2..=6).map(|x| c2(x, 8 - x)).collect();
        let (lab, set) = setup(&faults, 12, 12);
        let (s, d) = (c2(2, 0), c2(4, 8));
        assert!(lab.status(s).is_safe(), "{:?}", lab.status(s));
        assert!(lab.status(d).is_safe(), "{:?}", lab.status(d));
        assert_eq!(
            minimal_path_exists_2d(&lab, &set, s, d),
            Existence2::Blocked
        );
        let (m, axis) = pair_blocking_mcc(&set, s, d).unwrap();
        assert_eq!(axis, RegionAxis2::Y);
        assert!(m.fault_count == 5);
    }

    #[test]
    fn two_mccs_jointly_block_narrow_rmp() {
        // Two isolated faults in a two-column RMP: neither single MCC's
        // pair fires, but the merged condition (oracle semantics) blocks.
        let (lab, set) = setup(&[c2(2, 1), c2(3, 8)], 12, 12);
        let (s, d) = (c2(2, 0), c2(3, 10));
        assert!(lab.status(s).is_safe() && lab.status(d).is_safe());
        assert_eq!(
            minimal_path_exists_2d(&lab, &set, s, d),
            Existence2::Blocked
        );
        assert!(
            pair_blocking_mcc(&set, s, d).is_none(),
            "unmerged pair must miss this"
        );
    }

    #[test]
    fn pair_condition_is_sufficient() {
        // Whenever the pair fires, the exact condition must agree.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let mut fired = 0;
        for _ in 0..400 {
            let mut mesh = Mesh2D::new(12, 12);
            for _ in 0..rng.gen_range(1..16) {
                let c = c2(rng.gen_range(0..12), rng.gen_range(0..12));
                if mesh.is_healthy(c) {
                    mesh.inject_fault(c);
                }
            }
            let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
            let set = MccSet2::compute(&lab);
            let s = c2(rng.gen_range(0..6), rng.gen_range(0..6));
            let d = c2(rng.gen_range(6..12), rng.gen_range(6..12));
            if !lab.status(s).is_safe() || !lab.status(d).is_safe() {
                continue;
            }
            if pair_blocking_mcc(&set, s, d).is_some() {
                fired += 1;
                assert!(
                    !minimal_path_exists_2d(&lab, &set, s, d).exists(),
                    "pair fired but a path exists: s={s} d={d} faults={:?}",
                    mesh.faults()
                );
            }
        }
        assert!(fired > 0, "test never exercised the pair condition");
    }

    #[test]
    fn endpoint_faulty() {
        let (lab, set) = setup(&[c2(2, 2)], 6, 6);
        assert_eq!(
            minimal_path_exists_2d(&lab, &set, c2(0, 0), c2(2, 2)),
            Existence2::EndpointFaulty
        );
    }

    #[test]
    fn cant_reach_destination_blocked() {
        let faults = [c2(4, 5), c2(5, 4), c2(4, 6), c2(6, 4)];
        let (lab, set) = setup(&faults, 9, 9);
        assert!(lab.status(c2(5, 5)).is_cant_reach());
        assert_eq!(
            minimal_path_exists_2d(&lab, &set, c2(0, 0), c2(5, 5)),
            Existence2::DestinationCantReach
        );
    }

    #[test]
    fn useless_source_blocked() {
        let faults = [c2(3, 2), c2(2, 3), c2(3, 1), c2(1, 3)];
        let (lab, set) = setup(&faults, 9, 9);
        assert!(lab.status(c2(2, 2)).is_useless());
        assert_eq!(
            minimal_path_exists_2d(&lab, &set, c2(2, 2), c2(8, 8)),
            Existence2::SourceUseless
        );
    }

    #[test]
    fn useless_destination_still_reachable() {
        let faults = [c2(6, 5), c2(5, 6)];
        let (lab, set) = setup(&faults, 9, 9);
        assert!(lab.status(c2(5, 5)).is_useless());
        let r = minimal_path_exists_2d(&lab, &set, c2(0, 0), c2(5, 5));
        assert_eq!(r, Existence2::OracleExists);
        assert!(r.exists());
    }

    #[test]
    fn both_endpoints_in_region_route_within() {
        // Corridor of useless cells: s and d inside, straight path exists.
        let mut faults: Vec<C2> = (0..=6).map(|x| c2(x, 6)).collect();
        faults.push(c2(7, 5));
        let (lab, set) = setup(&faults, 10, 10);
        assert!(lab.status(c2(3, 5)).is_useless());
        assert!(lab.status(c2(6, 5)).is_useless());
        assert_eq!(
            minimal_path_exists_2d(&lab, &set, c2(3, 5), c2(6, 5)),
            Existence2::OracleExists
        );
    }

    #[test]
    fn trivial_same_node() {
        let (lab, set) = setup(&[c2(1, 1)], 4, 4);
        assert!(minimal_path_exists_2d(&lab, &set, c2(2, 2), c2(2, 2)).exists());
    }
}
