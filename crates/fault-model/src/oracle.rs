//! Exact monotone-reachability ground truth.
//!
//! A minimal route from a canonical `s` to `d` (`s ≤ d` componentwise) uses
//! only positive moves and never leaves the Region of Minimal Paths
//! `[s, d]`. Whether such a route exists around a blocked set is a simple
//! dynamic program over that box. This module is the *oracle* the whole
//! reproduction is validated against:
//!
//! * the MCC existence conditions (Lemma 1 / Theorems 1–2) must agree with
//!   [`reachable_2d`] / [`reachable_3d`] on the fault set,
//! * Wang's minimality theorem — avoiding the unsafe *closure* blocks no more
//!   destinations than avoiding the faults — is property-tested by comparing
//!   the oracle on the two blocked sets,
//! * per-hop routing decisions use the backward variant ([`Useful2`] /
//!   [`Useful3`]): the set of nodes from which the destination is still
//!   monotonically reachable.

use mesh_topo::{NodeSet, C2, C3};

/// True if a monotone (`+X`/`+Y`) path from `s` to `d` exists that avoids
/// every node for which `blocked` returns true. Requires `s ≤ d`
/// componentwise; endpoints themselves must not be blocked.
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn reachable_2d(s: C2, d: C2, blocked: impl Fn(C2) -> bool) -> bool {
    Useful2::compute(s, d, blocked).contains(s)
}

/// [`reachable_2d`] with a caller-provided scratch buffer (see
/// [`Useful2::recompute`]); the buffer's previous contents are discarded.
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn reachable_2d_in(s: C2, d: C2, blocked: impl Fn(C2) -> bool, useful: &mut Useful2) -> bool {
    useful.recompute(s, d, blocked);
    useful.contains(s)
}

/// True if a monotone (`+X`/`+Y`/`+Z`) path from `s` to `d` exists avoiding
/// `blocked` nodes. Requires `s ≤ d` componentwise.
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn reachable_3d(s: C3, d: C3, blocked: impl Fn(C3) -> bool) -> bool {
    Useful3::compute(s, d, blocked).contains(s)
}

/// [`reachable_3d`] with a caller-provided scratch buffer (see
/// [`Useful3::recompute`]); the buffer's previous contents are discarded.
///
/// # Panics
/// If `s` does not precede `d` componentwise.
pub fn reachable_3d_in(s: C3, d: C3, blocked: impl Fn(C3) -> bool, useful: &mut Useful3) -> bool {
    useful.recompute(s, d, blocked);
    useful.contains(s)
}

/// The backward reachability set in 2-D: all nodes `u` in `[s, d]` from which
/// `d` is monotonically reachable avoiding blocked nodes.
///
/// A fully-adaptive minimal router that only ever steps onto *useful*
/// neighbors can never get stuck and always produces a minimal path.
///
/// The set is a packed [`NodeSet`] over the RMP box, filled by one reverse
/// raster sweep.
#[derive(Clone, Debug)]
pub struct Useful2 {
    s: C2,
    d: C2,
    w: i32,
    useful: NodeSet,
}

impl Useful2 {
    /// An empty scratch instance (a degenerate one-node box) whose storage
    /// is meant to be recycled through [`Useful2::recompute`].
    pub fn scratch() -> Useful2 {
        Useful2 {
            s: C2::ORIGIN,
            d: C2::ORIGIN,
            w: 1,
            useful: NodeSet::new(1),
        }
    }

    /// Recompute the useful set for a new box `[s, d]`, reusing this
    /// instance's bitset storage (no allocation once the buffer has grown
    /// to the largest box seen). Equivalent to `*self = Useful2::compute(..)`.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn recompute(&mut self, s: C2, d: C2, blocked: impl Fn(C2) -> bool) {
        assert!(
            s.dominated_by(d),
            "oracle requires canonical s <= d, got {s:?} {d:?}"
        );
        let w = d.x - s.x + 1;
        let h = d.y - s.y + 1;
        self.useful.reset((w as usize) * (h as usize));
        let useful = &mut self.useful;
        let idx = |c: C2| ((c.y - s.y) as usize) * (w as usize) + ((c.x - s.x) as usize);
        // Sweep from d down to s; at c, usefulness depends on c+X / c+Y which
        // are later in the sweep order reversed, i.e. already computed.
        for y in (s.y..=d.y).rev() {
            for x in (s.x..=d.x).rev() {
                let c = C2 { x, y };
                if blocked(c) {
                    continue;
                }
                let ok = (c == d)
                    || (x < d.x && useful.contains(idx(C2 { x: x + 1, y })))
                    || (y < d.y && useful.contains(idx(C2 { x, y: y + 1 })));
                if ok {
                    useful.insert(idx(c));
                }
            }
        }
        self.s = s;
        self.d = d;
        self.w = w;
    }

    /// Compute the useful set for the box `[s, d]`.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn compute(s: C2, d: C2, blocked: impl Fn(C2) -> bool) -> Useful2 {
        let mut u = Useful2::scratch();
        u.recompute(s, d, blocked);
        u
    }

    /// True if `c` lies in `[s, d]` and `d` is monotonically reachable from it.
    #[inline]
    pub fn contains(&self, c: C2) -> bool {
        if !(self.s.dominated_by(c) && c.dominated_by(self.d)) {
            return false;
        }
        self.useful
            .contains(((c.y - self.s.y) as usize) * (self.w as usize) + ((c.x - self.s.x) as usize))
    }

    /// Number of useful nodes in the box.
    pub fn count(&self) -> usize {
        self.useful.len()
    }
}

/// The backward reachability set in 3-D (see [`Useful2`]).
#[derive(Clone, Debug)]
pub struct Useful3 {
    s: C3,
    d: C3,
    wx: i32,
    wy: i32,
    useful: NodeSet,
}

impl Useful3 {
    /// An empty scratch instance (a degenerate one-node box) whose storage
    /// is meant to be recycled through [`Useful3::recompute`].
    pub fn scratch() -> Useful3 {
        Useful3 {
            s: C3::ORIGIN,
            d: C3::ORIGIN,
            wx: 1,
            wy: 1,
            useful: NodeSet::new(1),
        }
    }

    /// Recompute the useful set for a new box `[s, d]`, reusing this
    /// instance's bitset storage (no allocation once the buffer has grown
    /// to the largest box seen). Equivalent to `*self = Useful3::compute(..)`.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn recompute(&mut self, s: C3, d: C3, blocked: impl Fn(C3) -> bool) {
        assert!(
            s.dominated_by(d),
            "oracle requires canonical s <= d, got {s:?} {d:?}"
        );
        let wx = d.x - s.x + 1;
        let wy = d.y - s.y + 1;
        let wz = d.z - s.z + 1;
        self.useful
            .reset((wx as usize) * (wy as usize) * (wz as usize));
        let useful = &mut self.useful;
        let idx = |c: C3| {
            (((c.z - s.z) as usize) * (wy as usize) + ((c.y - s.y) as usize)) * (wx as usize)
                + ((c.x - s.x) as usize)
        };
        for z in (s.z..=d.z).rev() {
            for y in (s.y..=d.y).rev() {
                for x in (s.x..=d.x).rev() {
                    let c = C3 { x, y, z };
                    if blocked(c) {
                        continue;
                    }
                    let ok = (c == d)
                        || (x < d.x && useful.contains(idx(C3 { x: x + 1, y, z })))
                        || (y < d.y && useful.contains(idx(C3 { x, y: y + 1, z })))
                        || (z < d.z && useful.contains(idx(C3 { x, y, z: z + 1 })));
                    if ok {
                        useful.insert(idx(c));
                    }
                }
            }
        }
        self.s = s;
        self.d = d;
        self.wx = wx;
        self.wy = wy;
    }

    /// Compute the useful set for the box `[s, d]`.
    ///
    /// # Panics
    /// If `s` does not precede `d` componentwise.
    pub fn compute(s: C3, d: C3, blocked: impl Fn(C3) -> bool) -> Useful3 {
        let mut u = Useful3::scratch();
        u.recompute(s, d, blocked);
        u
    }

    /// True if `c` lies in `[s, d]` and `d` is monotonically reachable from it.
    #[inline]
    pub fn contains(&self, c: C3) -> bool {
        if !(self.s.dominated_by(c) && c.dominated_by(self.d)) {
            return false;
        }
        let i = (((c.z - self.s.z) as usize) * (self.wy as usize) + ((c.y - self.s.y) as usize))
            * (self.wx as usize)
            + ((c.x - self.s.x) as usize);
        self.useful.contains(i)
    }

    /// Number of useful nodes in the box.
    pub fn count(&self) -> usize {
        self.useful.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::coord::{c2, c3};
    use std::collections::HashSet;

    #[test]
    fn open_box_everything_reachable() {
        assert!(reachable_2d(c2(0, 0), c2(5, 5), |_| false));
        let u = Useful2::compute(c2(0, 0), c2(3, 2), |_| false);
        assert_eq!(u.count(), 12);
        assert!(reachable_3d(c3(0, 0, 0), c3(3, 3, 3), |_| false));
    }

    #[test]
    fn single_node_path() {
        assert!(reachable_2d(c2(2, 2), c2(2, 2), |_| false));
        assert!(!reachable_2d(c2(2, 2), c2(2, 2), |c| c == c2(2, 2)));
    }

    #[test]
    fn column_wall_blocks_2d() {
        // Wall across the full height of the box at x=3.
        let wall: HashSet<_> = (0..=5).map(|y| c2(3, y)).collect();
        assert!(!reachable_2d(c2(0, 0), c2(5, 5), |c| wall.contains(&c)));
        // Gap at the top lets it through.
        let mut gapped = wall.clone();
        gapped.remove(&c2(3, 5));
        assert!(reachable_2d(c2(0, 0), c2(5, 5), |c| gapped.contains(&c)));
    }

    #[test]
    fn antidiagonal_wall_blocks_2d() {
        // Cells with x+y == 4 block every monotone path in [0,0]..[4,4]
        // only if every lattice point on that antidiagonal is blocked.
        let diag: HashSet<_> = (0..=4).map(|x| c2(x, 4 - x)).collect();
        assert!(!reachable_2d(c2(0, 0), c2(4, 4), |c| diag.contains(&c)));
        let mut gapped = diag.clone();
        gapped.remove(&c2(2, 2));
        assert!(reachable_2d(c2(0, 0), c2(4, 4), |c| gapped.contains(&c)));
    }

    #[test]
    fn wall_outside_box_is_ignored() {
        let wall: HashSet<_> = (0..=9).map(|y| c2(6, y)).collect();
        // d.x = 5 < 6: the wall lies outside the RMP.
        assert!(reachable_2d(c2(0, 0), c2(5, 9), |c| wall.contains(&c)));
    }

    #[test]
    fn plane_wall_blocks_3d() {
        // Full plane x=2 inside [0,0,0]..[4,4,4].
        let blocked = |c: C3| c.x == 2;
        assert!(!reachable_3d(c3(0, 0, 0), c3(4, 4, 4), blocked));
        // One hole in the plane suffices.
        let holey = |c: C3| c.x == 2 && c != c3(2, 1, 3);
        assert!(reachable_3d(c3(0, 0, 0), c3(4, 4, 4), holey));
    }

    #[test]
    fn useful_set_is_monotone_closed() {
        // Every useful node other than d has a useful positive neighbor.
        let blocked: HashSet<_> = [c2(2, 2), c2(3, 1), c2(1, 3), c2(4, 0)]
            .into_iter()
            .collect();
        let s = c2(0, 0);
        let d = c2(5, 5);
        let u = Useful2::compute(s, d, |c| blocked.contains(&c));
        for x in 0..=5 {
            for y in 0..=5 {
                let c = c2(x, y);
                if u.contains(c) && c != d {
                    assert!(
                        u.contains(c2(x + 1, y)) || u.contains(c2(x, y + 1)),
                        "{c} useful but stuck"
                    );
                }
            }
        }
    }

    #[test]
    fn useful3_set_is_monotone_closed() {
        let blocked: HashSet<_> = [c3(1, 1, 1), c3(2, 0, 1), c3(0, 2, 2)]
            .into_iter()
            .collect();
        let s = c3(0, 0, 0);
        let d = c3(3, 3, 3);
        let u = Useful3::compute(s, d, |c| blocked.contains(&c));
        assert!(u.contains(s));
        for x in 0..=3 {
            for y in 0..=3 {
                for z in 0..=3 {
                    let c = c3(x, y, z);
                    if u.contains(c) && c != d {
                        assert!(
                            u.contains(c3(x + 1, y, z))
                                || u.contains(c3(x, y + 1, z))
                                || u.contains(c3(x, y, z + 1)),
                            "{c} useful but stuck"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn recompute_matches_fresh_compute_across_boxes() {
        // One scratch instance cycled through boxes of shrinking and
        // growing size must agree with a fresh compute every time.
        let blocked2 = |c: C2| (c.x + 2 * c.y) % 5 == 0;
        let mut scratch = Useful2::scratch();
        for (s, d) in [
            (c2(0, 0), c2(9, 7)),
            (c2(3, 3), c2(4, 3)),
            (c2(1, 2), c2(11, 12)),
            (c2(5, 5), c2(5, 5)),
        ] {
            scratch.recompute(s, d, blocked2);
            let fresh = Useful2::compute(s, d, blocked2);
            assert_eq!(scratch.count(), fresh.count(), "{s} -> {d}");
            for x in s.x..=d.x {
                for y in s.y..=d.y {
                    assert_eq!(scratch.contains(c2(x, y)), fresh.contains(c2(x, y)));
                }
            }
        }
        let blocked3 = |c: C3| (c.x + c.y + c.z) % 4 == 1;
        let mut scratch = Useful3::scratch();
        for (s, d) in [
            (c3(0, 0, 0), c3(5, 6, 4)),
            (c3(2, 2, 2), c3(3, 2, 2)),
            (c3(1, 0, 1), c3(7, 7, 7)),
        ] {
            scratch.recompute(s, d, blocked3);
            let fresh = Useful3::compute(s, d, blocked3);
            assert_eq!(scratch.count(), fresh.count(), "{s} -> {d}");
            for x in s.x..=d.x {
                for y in s.y..=d.y {
                    for z in s.z..=d.z {
                        assert_eq!(scratch.contains(c3(x, y, z)), fresh.contains(c3(x, y, z)));
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_destination_unreachable() {
        assert!(!reachable_2d(c2(0, 0), c2(3, 3), |c| c == c2(3, 3)));
        assert!(!reachable_3d(c3(0, 0, 0), c3(2, 2, 2), |c| c == c3(2, 2, 2)));
    }

    #[test]
    #[should_panic]
    fn non_canonical_pair_panics() {
        reachable_2d(c2(3, 0), c2(0, 3), |_| false);
    }
}
