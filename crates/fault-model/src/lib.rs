//! # fault-model — the MCC fault information model (2-D and 3-D)
//!
//! This crate implements the *semantic layer* of the reproduction of
//! Jiang, Wu & Wang, "A New Fault Information Model for Fault-Tolerant
//! Adaptive and Minimal Routing in 3-D Meshes" (ICPP 2005):
//!
//! * [`status`] — node status lattice (safe / faulty / useless / can't-reach)
//!   and the mesh-border policy,
//! * [`labelling2`] / [`labelling3`] — the recursive labelling closures
//!   (Algorithm 1 and Algorithm 4 of the paper),
//! * [`components`] — connected components of unsafe nodes,
//! * [`mcc2`] / [`mcc3`] — Minimal Connected Components: shape extraction,
//!   profiles, corners and sections,
//! * [`condition2`] / [`condition3`] — the sufficient & necessary conditions
//!   for existence of a minimal path (Lemma 1 / Theorem 1 / Theorem 2),
//! * [`rfb2`] / [`rfb3`] — the rectangular / cuboid faulty-block baseline
//!   models the paper compares against,
//! * [`oracle`] — exact monotone-reachability ground truth used to validate
//!   everything above,
//! * [`stats`] — fault-region statistics for the evaluation.
//!
//! All labelling-level computation happens in *canonical coordinates*: the
//! source/destination pair is first reflected by a
//! [`mesh_topo::Frame2`]/[`mesh_topo::Frame3`] so that the destination
//! dominates the source and the preferred directions are the positive ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod condition2;
pub mod condition3;
pub mod labelling2;
pub mod labelling3;
pub mod mcc2;
pub mod mcc3;
pub mod oracle;
pub mod rfb2;
pub mod rfb3;
pub mod stats;
pub mod status;

pub use condition2::{minimal_path_exists_2d, Existence2};
pub use condition3::{minimal_path_exists_3d, Existence3};
pub use labelling2::Labelling2;
pub use labelling3::Labelling3;
pub use mcc2::Mcc2;
pub use mcc3::Mcc3;
pub use rfb2::FaultBlocks2;
pub use rfb3::FaultBlocks3;
pub use status::{BorderPolicy, NodeStatus};
