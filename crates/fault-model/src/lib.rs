//! # fault-model — the MCC fault information model (2-D and 3-D)
//!
//! This crate implements the *semantic layer* of the reproduction of
//! Jiang, Wu & Wang, "A New Fault Information Model for Fault-Tolerant
//! Adaptive and Minimal Routing in 3-D Meshes" (ICPP 2005):
//!
//! * [`status`] — node status lattice (safe / faulty / useless / can't-reach)
//!   and the mesh-border policy,
//! * [`labelling2`] / [`labelling3`] — the recursive labelling closures
//!   (Algorithm 1 and Algorithm 4 of the paper),
//! * [`components`] — connected components of unsafe nodes,
//! * [`mcc2`] / [`mcc3`] — Minimal Connected Components: shape extraction,
//!   profiles, corners and sections,
//! * [`condition2`] / [`condition3`] — the sufficient & necessary conditions
//!   for existence of a minimal path (Lemma 1 / Theorem 1 / Theorem 2),
//! * [`models`] — orientation-keyed lazy caches of labellings, MCC sets and
//!   fault blocks for one fault configuration (the compute layer behind
//!   the prepared-trial path of `mcc-routing`),
//! * [`rfb2`] / [`rfb3`] — the rectangular / cuboid faulty-block baseline
//!   models the paper compares against,
//! * [`oracle`] — exact monotone-reachability ground truth used to validate
//!   everything above,
//! * [`reference`](mod@reference) — the hash-based pre-flat-layer
//!   pipeline, kept as the validation and benchmarking baseline,
//! * [`stats`] — fault-region statistics for the evaluation.
//!
//! Module ↔ paper map: [`status`] and [`labelling2`] implement the node
//! states and Algorithm 1 of Section 3 (2-D model); [`labelling3`] is
//! Algorithm 4 of Section 4, whose Figure 5 example is pinned by this
//! crate's tests; [`mcc2`]/[`mcc3`] realize the MCC shape machinery
//! (boundaries, corners, sections) of Sections 3–4; [`condition2`] is
//! Lemma 1/Theorem 1, [`condition3`] Theorem 2; [`rfb2`]/[`rfb3`] are the
//! faulty-block baselines of the Section 6 evaluation.
//!
//! All labelling-level computation happens in *canonical coordinates*: the
//! source/destination pair is first reflected by a
//! [`mesh_topo::Frame2`]/[`mesh_topo::Frame3`] so that the destination
//! dominates the source and the preferred directions are the positive ones.
//!
//! Hot paths run on the flat node-state layer of [`mesh_topo::nodeset`]:
//! the labelling closures are raster sweeps over a dense status array and
//! component discovery BFSs over a packed unsafe-node bitset.
//!
//! # Examples
//!
//! Label a faulty mesh, extract its fault regions, and decide minimal-path
//! existence (the antidiagonal pair of Section 3: two faults capture two
//! healthy nodes):
//!
//! ```
//! use fault_model::mcc2::MccSet2;
//! use fault_model::{minimal_path_exists_2d, BorderPolicy, Labelling2};
//! use mesh_topo::coord::c2;
//! use mesh_topo::{Frame2, Mesh2D};
//!
//! let mut mesh = Mesh2D::new(10, 10);
//! mesh.inject_fault(c2(5, 6));
//! mesh.inject_fault(c2(6, 5));
//!
//! let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
//! assert!(lab.status(c2(5, 5)).is_useless());
//! assert!(lab.status(c2(6, 6)).is_cant_reach());
//! assert_eq!(lab.sacrificed_count(), 2);
//!
//! let mccs = MccSet2::compute(&lab);
//! assert_eq!(mccs.len(), 1); // one 8-connected fault region
//!
//! // The region blocks nothing for a wide routing...
//! assert!(minimal_path_exists_2d(&lab, &mccs, c2(0, 0), c2(9, 9)).exists());
//! // ...but pins a single-column routing through its span.
//! assert!(!minimal_path_exists_2d(&lab, &mccs, c2(6, 0), c2(6, 9)).exists());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod condition2;
pub mod condition3;
pub mod incremental;
pub mod labelling2;
pub mod labelling3;
pub mod mcc2;
pub mod mcc3;
pub mod models;
pub mod oracle;
mod par;
pub mod reference;
pub mod regime;
pub mod rfb2;
pub mod rfb3;
pub mod stats;
pub mod status;

pub use components::CompSource;
pub use condition2::{minimal_path_exists_2d, minimal_path_exists_2d_in, Existence2};
pub use condition3::{minimal_path_exists_3d, minimal_path_exists_3d_in, Existence3};
pub use incremental::{ChurnError, IncrementalModels2, IncrementalModels3};
pub use labelling2::Labelling2;
pub use labelling3::Labelling3;
pub use mcc2::Mcc2;
pub use mcc3::Mcc3;
pub use models::{ModelCache2, ModelCache3};
pub use regime::{AdversarialReport, FaultRegime, Schedule};
pub use rfb2::FaultBlocks2;
pub use rfb3::FaultBlocks3;
pub use status::{BorderPolicy, NodeStatus};
