//! Node status lattice for the labelling procedures.
//!
//! A node is **faulty**, or healthy with zero or more of the labels
//! **useless** (entering it forces a `-X`/`-Y`(`/-Z`) move next, w.r.t. the
//! canonical routing direction) and **can't-reach** (entering it requires a
//! `-X`/`-Y`(`/-Z`) move). The two labels propagate through *separate*
//! closures — useless spreads over `faulty ∪ useless`, can't-reach over
//! `faulty ∪ can't-reach` — so a node may carry both. Any labelled or faulty
//! node is **unsafe**; the rest are **safe**.

use serde::{Deserialize, Serialize};

/// Status of a single node under the MCC labelling.
///
/// Internally a small bitmask so the closure can treat "faulty or useless"
/// and "faulty or can't-reach" as cheap mask tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct NodeStatus(u8);

impl NodeStatus {
    const FAULTY: u8 = 0b001;
    const USELESS: u8 = 0b010;
    const CANT_REACH: u8 = 0b100;

    /// A healthy, unlabelled (safe) node.
    pub const SAFE: NodeStatus = NodeStatus(0);

    /// A faulty node.
    pub const FAULT: NodeStatus = NodeStatus(Self::FAULTY);

    /// True for faulty nodes.
    #[inline]
    pub fn is_faulty(self) -> bool {
        self.0 & Self::FAULTY != 0
    }

    /// True for healthy nodes labelled useless (possibly also can't-reach).
    #[inline]
    pub fn is_useless(self) -> bool {
        self.0 & Self::USELESS != 0
    }

    /// True for healthy nodes labelled can't-reach (possibly also useless).
    #[inline]
    pub fn is_cant_reach(self) -> bool {
        self.0 & Self::CANT_REACH != 0
    }

    /// True if the node blocks the **useless** closure: faulty or useless.
    #[inline]
    pub fn blocks_forward(self) -> bool {
        self.0 & (Self::FAULTY | Self::USELESS) != 0
    }

    /// True if the node blocks the **can't-reach** closure: faulty or
    /// can't-reach.
    #[inline]
    pub fn blocks_backward(self) -> bool {
        self.0 & (Self::FAULTY | Self::CANT_REACH) != 0
    }

    /// True for any faulty or labelled node — the nodes that form MCCs.
    #[inline]
    pub fn is_unsafe(self) -> bool {
        self.0 != 0
    }

    /// True for healthy, unlabelled nodes.
    #[inline]
    pub fn is_safe(self) -> bool {
        self.0 == 0
    }

    /// Add the useless label. No effect on faulty nodes' faulty bit.
    #[inline]
    pub fn mark_useless(&mut self) {
        self.0 |= Self::USELESS;
    }

    /// Add the can't-reach label.
    #[inline]
    pub fn mark_cant_reach(&mut self) {
        self.0 |= Self::CANT_REACH;
    }

    /// Remove the useless label — the retraction half of incremental
    /// labelling repair. Other bits are untouched.
    #[inline]
    pub fn clear_useless(&mut self) {
        self.0 &= !Self::USELESS;
    }

    /// Remove the can't-reach label. Other bits are untouched.
    #[inline]
    pub fn clear_cant_reach(&mut self) {
        self.0 &= !Self::CANT_REACH;
    }
}

impl core::fmt::Debug for NodeStatus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_safe() {
            return f.write_str("safe");
        }
        let mut parts = Vec::new();
        if self.is_faulty() {
            parts.push("faulty");
        }
        if self.is_useless() {
            parts.push("useless");
        }
        if self.is_cant_reach() {
            parts.push("cant-reach");
        }
        f.write_str(&parts.join("+"))
    }
}

/// How the labelling closure treats neighbors that fall outside the mesh.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum BorderPolicy {
    /// Out-of-mesh neighbors count as **safe** (default).
    ///
    /// This is the reading consistent with the model: a minimal route only
    /// sits on the mesh border when the destination shares that border
    /// coordinate, in which case the missing direction is never *needed*.
    /// Treating the border as blocking would label the far corner of a
    /// fault-free mesh useless and cascade along the border.
    #[default]
    BorderSafe,
    /// Out-of-mesh neighbors count as **unsafe** (blocking). Provided for
    /// ablation studies; not used by the paper-faithful pipeline.
    BorderBlocked,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_safe() {
        let s = NodeStatus::default();
        assert!(s.is_safe());
        assert!(!s.is_unsafe());
        assert!(!s.blocks_forward());
        assert!(!s.blocks_backward());
    }

    #[test]
    fn faulty_blocks_both_closures() {
        let s = NodeStatus::FAULT;
        assert!(s.is_faulty() && s.is_unsafe());
        assert!(s.blocks_forward() && s.blocks_backward());
        assert!(!s.is_useless() && !s.is_cant_reach());
    }

    #[test]
    fn labels_are_independent() {
        let mut s = NodeStatus::SAFE;
        s.mark_useless();
        assert!(s.is_useless() && !s.is_cant_reach());
        assert!(s.blocks_forward() && !s.blocks_backward());
        s.mark_cant_reach();
        assert!(s.is_useless() && s.is_cant_reach());
        assert!(s.blocks_forward() && s.blocks_backward());
        assert!(!s.is_faulty());
    }

    #[test]
    fn debug_formatting() {
        let mut s = NodeStatus::FAULT;
        s.mark_useless();
        assert_eq!(format!("{s:?}"), "faulty+useless");
        assert_eq!(format!("{:?}", NodeStatus::SAFE), "safe");
    }
}
