//! Dependency-free log-bucketed latency histogram (HDR-style).
//!
//! The loadgen harness ([`crate::loadgen`]) records one latency sample per
//! request and needs per-step `p50`/`p99`/`p999` without keeping every
//! sample (an open-loop step at high rate can issue millions of requests).
//! [`LatencyHist`] follows the classic HDR layout: values below
//! 2^[`SUB_BITS`] land in exact unit buckets, and every power-of-two
//! octave above that is split into 2^[`SUB_BITS`] linear sub-buckets, so
//! the relative quantization error is bounded by `1 / 2^SUB_BITS`
//! (≈ 1.6 % at the default of 6 sub-bucket bits) across the full `u64`
//! range. The bucket count is fixed (3776 `u64` slots ≈ 30 KiB), so
//! recording is O(1) with no allocation and shard histograms merge by
//! element-wise addition — the property the per-worker sharding in the
//! loadgen relies on (merge-of-shards ≡ single-histogram recording, pinned
//! by the `hist_props` proptest battery).
//!
//! Units are the caller's choice; the loadgen records nanoseconds.
//!
//! ```
//! use mcc_bench::hist::LatencyHist;
//!
//! let mut h = LatencyHist::new();
//! for v in [10, 20, 30, 40, 1_000_000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert!(h.percentile(0.50) <= h.percentile(0.99));
//! // Bucket bounds bracket every recorded value.
//! let (lo, hi) = LatencyHist::bucket_bounds(LatencyHist::bucket_index(30));
//! assert!(lo <= 30 && 30 <= hi);
//! ```

use serde::{Deserialize, Serialize};

/// Linear sub-bucket bits per power-of-two octave: 2^6 = 64 sub-buckets,
/// bounding relative quantization error by 1/64.
pub const SUB_BITS: u32 = 6;

const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: one exact unit bucket per value below [`SUB`],
/// then `64 - SUB_BITS` octave groups of [`SUB`] sub-buckets each
/// (index of `u64::MAX` is `((63 - SUB_BITS + 1) << SUB_BITS) + SUB - 1`).
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> LatencyHist {
        LatencyHist::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket a value lands in.
    ///
    /// Values below 2^[`SUB_BITS`] map to exact unit buckets; above that,
    /// the top [`SUB_BITS`]+1 significant bits select the bucket, so bucket
    /// width grows with magnitude while relative error stays bounded.
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        (((shift + 1) << SUB_BITS) + ((value >> shift) & (SUB - 1)) as u32) as usize
    }

    /// The inclusive `[lo, hi]` value range of a bucket (the inverse of
    /// [`LatencyHist::bucket_index`]): every value `v` with
    /// `bucket_index(v) == i` satisfies `lo <= v <= hi`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        let group = (index as u64) >> SUB_BITS;
        let off = (index as u64) & (SUB - 1);
        if group == 0 {
            return (off, off);
        }
        let shift = (group - 1) as u32;
        let lo = (SUB + off) << shift;
        // Parenthesized so the top bucket (hi == u64::MAX) cannot
        // momentarily overflow past 2^64.
        (lo, lo + ((1u64 << shift) - 1))
    }

    /// Record one sample. O(1), allocation-free.
    pub fn record(&mut self, value: u64) {
        self.counts[LatencyHist::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one (element-wise count addition).
    /// Recording a sample stream through sharded histograms and merging
    /// yields exactly the histogram of single-threaded recording.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples, exact (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q × total)`. Returns 0
    /// on an empty histogram. Monotone in `q` by construction (the
    /// cumulative walk only moves forward), and never below the true
    /// quantile of the recorded samples: bucket upper bounds over-report
    /// by at most the bucket width (≤ 1/2^[`SUB_BITS`] relative).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report beyond the recorded extremes: the top
                // occupied bucket's upper bound can exceed `max`.
                return LatencyHist::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact_below_sub() {
        for v in 0..SUB {
            assert_eq!(LatencyHist::bucket_index(v), v as usize);
            assert_eq!(LatencyHist::bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_bracket_and_index_is_monotone() {
        let probes = [
            0,
            1,
            63,
            64,
            65,
            127,
            128,
            129,
            1_000,
            1_000_000,
            u64::MAX / 3,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let i = LatencyHist::bucket_index(v);
            let (lo, hi) = LatencyHist::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "bucket {i} = [{lo}, {hi}] misses {v}");
            assert!(i >= last, "index must be monotone in the value");
            last = i;
        }
        assert!(LatencyHist::bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 12_345, 9_999_999, 1 << 40] {
            let (lo, hi) = LatencyHist::bucket_bounds(LatencyHist::bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / v as f64 <= 1.0 / SUB as f64 + 1e-12);
        }
    }

    #[test]
    fn percentiles_walk_the_distribution() {
        let mut h = LatencyHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        let p999 = h.percentile(0.999);
        assert!(p50 <= p99 && p99 <= p999);
        // p50 of 1..=1000 is ~500; bucket upper bound allows ≤ 1/64 slack.
        assert!((490..=520).contains(&p50), "p50 = {p50}");
        assert!(p999 <= h.max());
        assert_eq!(h.percentile(0.0), h.percentile(1.0 / 1000.0));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_single_recording() {
        let samples: Vec<u64> = (0..500).map(|i| (i * 2654435769u64) >> 16).collect();
        let mut whole = LatencyHist::new();
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 { &mut a } else { &mut b }.record(s);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.percentile(0.99), whole.percentile(0.99));
    }
}
