//! Snapshot incremental-maintenance speedup under churn to
//! `BENCH_churn.json`.
//!
//! Holds the fault population (64) and the per-round perturbation (8
//! heals + 8 injections) **fixed** while the 2-D mesh ramps 64² → 512²,
//! and times one churn step through [`IncrementalModels2`] (batch apply +
//! localized labelling repair + component/MCC repair) against rebuilding
//! the same models from scratch. Because the perturbation is constant,
//! the incremental step cost should stay roughly flat across the ramp
//! while the from-scratch cost grows with the node count — that widening
//! gap is the point of the snapshot. Regenerate with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin bench_churn -- BENCH_churn.json
//! ```
//!
//! Two gates guard the snapshot:
//!
//! - **Equivalence** (always on, untimed): after every churn round the
//!   maintained labelling, unsafe set and MCC set are compared against a
//!   from-scratch recomputation on the churned mesh. Any divergence
//!   aborts without writing — the snapshot can never advertise speed
//!   bought with wrong models.
//! - **Speedup bar** (always enforced — the comparison is algorithmic
//!   and single-threaded, not machine-shaped): on the largest mesh the
//!   mean incremental step must be at least 10x faster than the
//!   from-scratch rebuild.

use std::time::Instant;

use fault_model::incremental::IncrementalModels2;
use fault_model::mcc2::MccSet2;
use fault_model::{BorderPolicy, Labelling2};
use mesh_topo::coord::c2;
use mesh_topo::{FaultSpec, Frame2, Mesh2D, C2};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const FAULTS: usize = 64;
const HEAL_PER_ROUND: usize = 8;
const INJECT_PER_ROUND: usize = 8;
const ROUNDS: usize = 24;
const SEED: u64 = 42;
const SIZES: [i32; 4] = [64, 128, 256, 512];
const SPEEDUP_BAR: f64 = 10.0;

struct Case {
    size: i32,
    nodes: usize,
    /// Mean nanoseconds of one incremental step (apply + model repair).
    inc_step_ns: u128,
    /// Mean nanoseconds of one from-scratch rebuild of the same models.
    scratch_ns: u128,
    /// Total node statuses the incremental repairs touched over the
    /// whole trace — perturbation-sized, so roughly flat across the ramp.
    statuses_repaired: usize,
}

/// Draw the round's churn batch: `HEAL_PER_ROUND` distinct current
/// faults and `INJECT_PER_ROUND` distinct currently-healthy nodes.
fn plan_round(mesh: &Mesh2D, rng: &mut SmallRng) -> (Vec<C2>, Vec<C2>) {
    let faults = mesh.faults().to_vec();
    let mut healed: Vec<C2> = Vec::new();
    while healed.len() < HEAL_PER_ROUND.min(faults.len()) {
        let c = faults[rng.gen_range(0..faults.len())];
        if !healed.contains(&c) {
            healed.push(c);
        }
    }
    let (w, h) = (mesh.width(), mesh.height());
    let mut injected: Vec<C2> = Vec::new();
    while injected.len() < INJECT_PER_ROUND {
        let c = c2(rng.gen_range(0..w), rng.gen_range(0..h));
        if mesh.is_healthy(c) && !injected.contains(&c) {
            injected.push(c);
        }
    }
    (injected, healed)
}

fn run_case(size: i32) -> Case {
    let mut mesh = Mesh2D::kary(size);
    FaultSpec::uniform(FAULTS, SEED).inject_2d(&mut mesh, &[]);
    let frame = Frame2::identity(&mesh);
    let nodes = mesh.node_count();
    let mut inc = IncrementalModels2::new(mesh, BorderPolicy::BorderSafe);
    // Warm the identity slot outside any timed region: the first call
    // builds from scratch; every later one repairs.
    std::hint::black_box(inc.models(frame).mccs.mccs.len());

    let mut rng = SmallRng::seed_from_u64(SEED ^ (size as u64));
    let mut inc_total = 0u128;
    let mut scratch_total = 0u128;
    for round in 0..ROUNDS {
        let (injected, healed) = plan_round(inc.mesh(), &mut rng);

        let start = Instant::now();
        inc.apply(&injected, &healed);
        let repaired = inc.models(frame);
        std::hint::black_box(repaired.mccs.mccs.len());
        inc_total += start.elapsed().as_nanos();

        // From-scratch rebuild of the same models, timed on the same
        // churned mesh; doubles as the input to the equivalence gate.
        let mesh_now = inc.mesh().clone();
        let start = Instant::now();
        let lab = Labelling2::compute(&mesh_now, frame, BorderPolicy::BorderSafe);
        let mccs = MccSet2::compute(&lab);
        std::hint::black_box(mccs.mccs.len());
        scratch_total += start.elapsed().as_nanos();

        // Equivalence gate (untimed): refuse to snapshot wrong models.
        let m = inc.models(frame);
        let equal = m.lab.iter().zip(lab.iter()).all(|((_, a), (_, b))| a == b)
            && m.lab.unsafe_set() == lab.unsafe_set()
            && m.mccs.mccs == mccs.mccs;
        if !equal {
            eprintln!(
                "FAIL: incremental models diverged from from-scratch recomputation \
                 on the {size}x{size} mesh at round {round}; refusing to write"
            );
            std::process::exit(1);
        }
    }
    Case {
        size,
        nodes,
        inc_step_ns: (inc_total / ROUNDS as u128).max(1),
        scratch_ns: (scratch_total / ROUNDS as u128).max(1),
        statuses_repaired: inc.statuses_repaired(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_churn.json".to_string());

    let cases: Vec<Case> = SIZES.iter().map(|&s| run_case(s)).collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"churn_incremental\",\n");
    json.push_str(
        "  \"description\": \"One churn step (8 heals + 8 injections over a stable 64-fault \
         population) through IncrementalModels2 vs a from-scratch labelling+MCC rebuild, mean \
         over 24 rounds; maintained models verified equal to from-scratch every round before \
         writing\",\n",
    );
    json.push_str("  \"units\": \"nanoseconds\",\n");
    json.push_str(&mcc_bench::report::fault_regime_field("uniform"));
    json.push_str(&format!("  \"faults\": {FAULTS},\n"));
    json.push_str(&format!(
        "  \"churn\": {{\"rounds\": {ROUNDS}, \"heal_per_round\": {HEAL_PER_ROUND}, \
         \"inject_per_round\": {INJECT_PER_ROUND}}},\n"
    ));
    json.push_str(&format!(
        "  \"bar\": {{\"min_speedup\": {SPEEDUP_BAR:.1}, \"at\": \"largest mesh\", \
         \"enforced\": true}},\n"
    ));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let speedup = c.scratch_ns as f64 / c.inc_step_ns as f64;
        println!(
            "2d/{:<4} nodes {:>7}  inc {:>10} ns  scratch {:>12} ns  speedup {:>8.2}x  \
             repaired {:>6}",
            c.size, c.nodes, c.inc_step_ns, c.scratch_ns, speedup, c.statuses_repaired
        );
        json.push_str(&format!(
            "    {{\"mesh\": \"2d\", \"size\": {}, \"nodes\": {}, \"inc_step_ns\": {}, \
             \"scratch_ns\": {}, \"speedup\": {:.2}, \"statuses_repaired\": {}}}{}\n",
            c.size,
            c.nodes,
            c.inc_step_ns,
            c.scratch_ns,
            speedup,
            c.statuses_repaired,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let last = cases.last().expect("at least one case");
    let last_speedup = last.scratch_ns as f64 / last.inc_step_ns as f64;
    if last_speedup < SPEEDUP_BAR {
        eprintln!(
            "FAIL: incremental step is only {last_speedup:.2}x faster than from-scratch on \
             the {0}x{0} mesh (bar: {SPEEDUP_BAR}x); refusing to write {out_path}",
            last.size
        );
        std::process::exit(1);
    }
    mcc_bench::report::write_snapshot_or_exit(&out_path, &json);
}
