//! Snapshot the old-vs-new MCC construction speedup to
//! `BENCH_mcc_label.json`.
//!
//! Runs the same cases as `benches/mcc_label.rs` — the hash-based
//! reference pipeline vs the flat bitset pipeline, labelling plus
//! component discovery, at 20% uniform faults — and writes a JSON record
//! so the perf trajectory of the flat node-state layer stays in the
//! repository. Regenerate with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin bench_label -- BENCH_mcc_label.json
//! ```

use std::time::Instant;

use fault_model::components::{Components2, Components3};
use fault_model::reference::{components2_hash, components3_hash, HashLabelling2, HashLabelling3};
use fault_model::{BorderPolicy, Labelling2, Labelling3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};

const FAULT_FRACTION: f64 = 0.20;
const SEED: u64 = 42;

struct Case {
    mesh: &'static str,
    size: i32,
    nodes: usize,
    faults: usize,
    hash_ns: u128,
    flat_ns: u128,
}

/// Best-of-`reps` wall time of `f` in nanoseconds.
fn time_ns(reps: u32, mut f: impl FnMut() -> usize) -> u128 {
    let mut best = u128::MAX;
    let mut sink = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        sink = sink.wrapping_add(std::hint::black_box(f()));
        best = best.min(start.elapsed().as_nanos());
    }
    std::hint::black_box(sink);
    best.max(1)
}

fn case_2d(width: i32, reps: u32) -> Case {
    let mut mesh = Mesh2D::kary(width);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_2d(&mut mesh, &[]);
    let flat_ns = time_ns(reps, || {
        let lab = Labelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        Components2::compute(&lab).len()
    });
    let hash_ns = time_ns(reps, || {
        let lab = HashLabelling2::compute(&mesh, Frame2::identity(&mesh), BorderPolicy::BorderSafe);
        components2_hash(&lab).len()
    });
    Case {
        mesh: "2d",
        size: width,
        nodes: mesh.node_count(),
        faults,
        hash_ns,
        flat_ns,
    }
}

fn case_3d(k: i32, reps: u32) -> Case {
    let mut mesh = Mesh3D::kary(k);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_3d(&mut mesh, &[]);
    let flat_ns = time_ns(reps, || {
        let lab = Labelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        Components3::compute(&lab).len()
    });
    let hash_ns = time_ns(reps, || {
        let lab = HashLabelling3::compute(&mesh, Frame3::identity(&mesh), BorderPolicy::BorderSafe);
        components3_hash(&lab).len()
    });
    Case {
        mesh: "3d",
        size: k,
        nodes: mesh.node_count(),
        faults,
        hash_ns,
        flat_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_mcc_label.json".to_string());

    let mut cases = Vec::new();
    for width in [32i32, 64, 128, 256, 512] {
        let reps = if width >= 256 { 3 } else { 7 };
        cases.push(case_2d(width, reps));
    }
    for k in [16i32, 32, 48, 64] {
        let reps = if k >= 48 { 3 } else { 7 };
        cases.push(case_3d(k, reps));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"mcc_label\",\n");
    json.push_str(
        "  \"description\": \"MCC construction (labelling closure + component discovery), \
         hash-based reference vs flat bitset pipeline, 20% uniform faults, best-of-N wall \
         time\",\n",
    );
    json.push_str("  \"units\": \"nanoseconds\",\n");
    json.push_str(&mcc_bench::report::fault_regime_field("uniform"));
    // Both pipelines here are the sequential kernels; the core count makes
    // snapshots from different machines comparable at a glance.
    json.push_str("  \"threads\": 1,\n");
    json.push_str(&format!(
        "  \"detected_cores\": {},\n",
        mesh_topo::detected_cores()
    ));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let speedup = c.hash_ns as f64 / c.flat_ns as f64;
        json.push_str(&format!(
            "    {{\"mesh\": \"{}\", \"size\": {}, \"nodes\": {}, \"faults\": {}, \
             \"hash_ns\": {}, \"flat_ns\": {}, \"speedup\": {:.2}}}{}\n",
            c.mesh,
            c.size,
            c.nodes,
            c.faults,
            c.hash_ns,
            c.flat_ns,
            speedup,
            if i + 1 < cases.len() { "," } else { "" }
        ));
        println!(
            "{}/{:<4} nodes {:>7} faults {:>6}  hash {:>12} ns  flat {:>12} ns  speedup {:>6.2}x",
            c.mesh, c.size, c.nodes, c.faults, c.hash_ns, c.flat_ns, speedup
        );
    }
    json.push_str("  ]\n}\n");

    mcc_bench::report::write_snapshot_or_exit(&out_path, &json);
}
