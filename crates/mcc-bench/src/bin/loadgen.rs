//! Saturation loadgen: open-loop ramps over `table = "load"` scenarios,
//! and the same ramps against the crash-safe resident service for
//! `table = "service"` scenarios (see `mcc_bench::service_load` and
//! DESIGN.md §14).
//!
//! ```text
//! cargo run -p mcc-bench --release --bin loadgen -- scenarios/e13_loadgen_2d.toml
//! cargo run -p mcc-bench --release --bin loadgen -- --quick --out /tmp/lg.json scenarios/e14_loadgen_mixed.toml
//! cargo run -p mcc-bench --release --bin loadgen -- --quick scenarios/e15_service.toml
//! ```
//!
//! Each scenario's ramp (see `mcc_bench::loadgen` and DESIGN.md §13)
//! prints a per-step table to stdout and writes a machine-readable JSON
//! summary: to `--out FILE` when given (single scenario only), otherwise
//! to `BENCH_loadgen_<stem>.json` next to the working directory, matching
//! the other `BENCH_*.json` snapshots. `--quick` shrinks the ramp to a
//! sub-second smoke run (a tenth of the step duration, at most three
//! steps). The resolved file list is deduplicated by canonical path like
//! the `tables` binary.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

use mcc_bench::loadgen::run_load;
use mcc_bench::scenario::{Scenario, TableKind};
use mcc_bench::service_load::run_service_load;

fn usage() -> &'static str {
    "usage: loadgen [--quick] [--out FILE] <scenario.toml>..."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut seen = HashSet::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(file) => out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("error: --out needs a file argument\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown option `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
            file => {
                let path = PathBuf::from(file);
                let key = std::fs::canonicalize(&path).unwrap_or_else(|_| path.clone());
                if seen.insert(key) {
                    paths.push(path);
                }
            }
        }
    }
    if paths.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if out.is_some() && paths.len() > 1 {
        eprintln!("error: --out takes exactly one scenario\n{}", usage());
        return ExitCode::FAILURE;
    }

    for path in &paths {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let scenario = if quick { scenario.quick() } else { scenario };
        let (rendered, json) = if scenario.table == TableKind::Service {
            match run_service_load(&scenario) {
                Ok(r) => (r.render(), r.to_json()),
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match run_load(&scenario) {
                Ok(r) => (r.render(), r.to_json()),
                Err(e) => {
                    eprintln!("error: {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        };
        println!("{rendered}");
        let out_path = out.clone().unwrap_or_else(|| {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "scenario".to_string());
            PathBuf::from(format!("BENCH_loadgen_{stem}.json"))
        });
        if let Err(e) = mcc_bench::report::write_snapshot(&out_path.to_string_lossy(), &json) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {}", out_path.display());
    }
    ExitCode::SUCCESS
}
