//! Snapshot intra-mesh parallel scaling to `BENCH_par_scaling.json`.
//!
//! Runs the tiled wavefront labelling (`compute_par`) against the
//! sequential raster sweeps on the paper's big-mesh cases — 1024² and
//! 128³ at 20% uniform faults — across thread budgets 1/2/4/8, and
//! writes a JSON record so the scaling trajectory stays in the
//! repository. Regenerate with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin bench_par -- BENCH_par_scaling.json
//! ```
//!
//! Two gates guard the snapshot:
//!
//! - **Equality** (always on): every parallel labelling is compared
//!   bit-for-bit against the sequential one — statuses, unsafe bitset and
//!   counts. Any divergence aborts without writing, so a snapshot can
//!   never advertise speed bought with wrong answers.
//! - **Scaling bar** (only on machines with >= 8 cores): the 8-thread
//!   run must be at least 3x faster than sequential on every case. On
//!   narrower machines the bar cannot be demonstrated and is recorded as
//!   unenforced (`bar_enforced: false`) rather than silently passed.

use std::time::Instant;

use fault_model::{BorderPolicy, Labelling2, Labelling3};
use mesh_topo::{detected_cores, FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D, Parallelism};

const FAULT_FRACTION: f64 = 0.20;
const SEED: u64 = 42;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const SPEEDUP_BAR: f64 = 3.0;
const BAR_THREADS: usize = 8;

struct Case {
    mesh: &'static str,
    size: i32,
    nodes: usize,
    faults: usize,
    seq_ns: u128,
    /// `(threads, best-of-N ns)` per budget, in `THREADS` order.
    par_ns: Vec<(usize, u128)>,
}

/// Best-of-`reps` wall time of `f` in nanoseconds.
fn time_ns(reps: u32, mut f: impl FnMut() -> usize) -> u128 {
    let mut best = u128::MAX;
    let mut sink = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        sink = sink.wrapping_add(std::hint::black_box(f()));
        best = best.min(start.elapsed().as_nanos());
    }
    std::hint::black_box(sink);
    best.max(1)
}

fn case_2d(width: i32, reps: u32) -> Case {
    let mut mesh = Mesh2D::kary(width);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_2d(&mut mesh, &[]);
    let frame = Frame2::identity(&mesh);
    let seq = Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe);
    let mut par_ns = Vec::new();
    for t in THREADS {
        let budget = Parallelism::new(t);
        // The equality gate runs outside the timed region, once per budget.
        let par = Labelling2::compute_par(&mesh, frame, BorderPolicy::BorderSafe, budget);
        for ((c, a), (_, b)) in seq.iter().zip(par.iter()) {
            assert_eq!(a, b, "2d/{width}: status diverged at {c} with {t} threads");
        }
        assert_eq!(
            seq.unsafe_set(),
            par.unsafe_set(),
            "2d/{width}: {t} threads"
        );
        assert_eq!(seq.unsafe_count(), par.unsafe_count());
        assert_eq!(seq.sacrificed_count(), par.sacrificed_count());
        par_ns.push((
            t,
            time_ns(reps, || {
                Labelling2::compute_par(&mesh, frame, BorderPolicy::BorderSafe, budget)
                    .unsafe_count()
            }),
        ));
    }
    Case {
        mesh: "2d",
        size: width,
        nodes: mesh.node_count(),
        faults,
        seq_ns: time_ns(reps, || {
            Labelling2::compute(&mesh, frame, BorderPolicy::BorderSafe).unsafe_count()
        }),
        par_ns,
    }
}

fn case_3d(k: i32, reps: u32) -> Case {
    let mut mesh = Mesh3D::kary(k);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_3d(&mut mesh, &[]);
    let frame = Frame3::identity(&mesh);
    let seq = Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe);
    let mut par_ns = Vec::new();
    for t in THREADS {
        let budget = Parallelism::new(t);
        let par = Labelling3::compute_par(&mesh, frame, BorderPolicy::BorderSafe, budget);
        for ((c, a), (_, b)) in seq.iter().zip(par.iter()) {
            assert_eq!(a, b, "3d/{k}: status diverged at {c} with {t} threads");
        }
        assert_eq!(seq.unsafe_set(), par.unsafe_set(), "3d/{k}: {t} threads");
        assert_eq!(seq.unsafe_count(), par.unsafe_count());
        assert_eq!(seq.sacrificed_count(), par.sacrificed_count());
        par_ns.push((
            t,
            time_ns(reps, || {
                Labelling3::compute_par(&mesh, frame, BorderPolicy::BorderSafe, budget)
                    .unsafe_count()
            }),
        ));
    }
    Case {
        mesh: "3d",
        size: k,
        nodes: mesh.node_count(),
        faults,
        seq_ns: time_ns(reps, || {
            Labelling3::compute(&mesh, frame, BorderPolicy::BorderSafe).unsafe_count()
        }),
        par_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_par_scaling.json".to_string());
    let cores = detected_cores();
    let bar_enforced = cores >= BAR_THREADS;

    let cases = [case_2d(1024, 3), case_3d(128, 3)];

    let mut bar_ok = true;
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"par_scaling\",\n");
    json.push_str(
        "  \"description\": \"Tiled wavefront labelling (compute_par) vs sequential raster \
         sweeps, 20% uniform faults, best-of-N wall time; parallel output verified bit-for-bit \
         equal to sequential before timing\",\n",
    );
    json.push_str("  \"units\": \"nanoseconds\",\n");
    json.push_str(&mcc_bench::report::fault_regime_field("uniform"));
    json.push_str(&format!("  \"detected_cores\": {cores},\n"));
    json.push_str(&format!(
        "  \"bar\": {{\"threads\": {BAR_THREADS}, \"min_speedup\": {SPEEDUP_BAR:.1}, \
         \"enforced\": {bar_enforced}}},\n"
    ));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        println!(
            "{}/{:<5} nodes {:>8} faults {:>7}  seq {:>12} ns",
            c.mesh, c.size, c.nodes, c.faults, c.seq_ns
        );
        let mut threads_json = String::new();
        for (j, &(t, ns)) in c.par_ns.iter().enumerate() {
            let speedup = c.seq_ns as f64 / ns as f64;
            if t == BAR_THREADS && speedup < SPEEDUP_BAR {
                bar_ok = false;
            }
            threads_json.push_str(&format!(
                "{{\"threads\": {t}, \"ns\": {ns}, \"speedup\": {speedup:.2}}}{}",
                if j + 1 < c.par_ns.len() { ", " } else { "" }
            ));
            println!("    {t} threads {ns:>12} ns  speedup {speedup:>6.2}x");
        }
        json.push_str(&format!(
            "    {{\"mesh\": \"{}\", \"size\": {}, \"nodes\": {}, \"faults\": {}, \
             \"seq_ns\": {}, \"par\": [{}]}}{}\n",
            c.mesh,
            c.size,
            c.nodes,
            c.faults,
            c.seq_ns,
            threads_json,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if bar_enforced && !bar_ok {
        eprintln!(
            "FAIL: {BAR_THREADS}-thread labelling did not reach the {SPEEDUP_BAR}x bar \
             on a {cores}-core machine; refusing to write {out_path}"
        );
        std::process::exit(1);
    }
    if !bar_enforced {
        println!(
            "note: only {cores} core(s) detected; the {SPEEDUP_BAR}x @ {BAR_THREADS}-thread \
             bar cannot be demonstrated here and is recorded as unenforced"
        );
    }
    mcc_bench::report::write_snapshot_or_exit(&out_path, &json);
}
