//! Snapshot the fresh-per-trial vs prepared-mesh trial speedup to
//! `BENCH_routing_trials.json`.
//!
//! Each case fixes one mesh size and walks the matching experiment fault
//! ramp (E4's for 2-D, E3's for 3-D). Per fault count one fault
//! configuration is drawn and a batch of source/destination pairs is
//! evaluated twice with identical policy seeds:
//!
//! * **fresh** — `run_trial_*_with`, rebuilding every model per pair
//!   (the pre-PR pipeline),
//! * **prepared** — one `PreparedMesh` per fault configuration
//!   (orientation-keyed model cache + reusable scratch).
//!
//! The snapshot is refused unless the two paths produce **identical**
//! `TrialResult`s — every field, floats compared bit-for-bit — for every
//! trial (amortization must change observable results by zero; the
//! property battery in `mcc-routing/tests/prepared_equiv.rs` pins the
//! same contract), and unless the prepared path is at least 3× faster on
//! every 2-D case of 64² or larger (the E4-shaped sweeps the ROADMAP
//! targets). Regenerate with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin bench_trials -- BENCH_routing_trials.json
//! ```

use std::time::Instant;

use mcc_routing::prepared::{PreparedMesh2, PreparedMesh3};
use mcc_routing::trial::{run_trial_2d_with, run_trial_3d_with, TrialOptions, TrialResult};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{FaultSpec, Mesh2D, Mesh3D, C2, C3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// E4's 2-D fault ramp (scenarios/e4_routing_2d.toml).
const RAMP_2D: [usize; 8] = [5, 10, 15, 20, 25, 30, 40, 50];
/// E3's 3-D fault ramp (scenarios/e3_routing_3d.toml).
const RAMP_3D: [usize; 7] = [10, 20, 40, 60, 80, 100, 120];
/// Pairs batched against each fault configuration.
const PAIRS: usize = 32;
const SEED: u64 = 42;

struct Case {
    mesh: &'static str,
    size: i32,
    nodes: usize,
    trials: usize,
    fresh_ns: u128,
    prepared_ns: u128,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.fresh_ns as f64 / self.prepared_ns as f64
    }
}

/// Best-of-`reps` wall time of `f` in nanoseconds, plus the (identical
/// across reps) results of the last run.
fn time_ns(reps: u32, mut f: impl FnMut() -> Vec<TrialResult>) -> (u128, Vec<TrialResult>) {
    let mut best = u128::MAX;
    let mut results = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        results = std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos());
    }
    (best.max(1), results)
}

/// One fault configuration + its batch of pairs and per-trial policy
/// seeds, pre-drawn so both paths consume identical inputs.
struct Batch2 {
    mesh: Mesh2D,
    pairs: Vec<(C2, C2, u64)>,
}

fn batches_2d(width: i32) -> Vec<Batch2> {
    let min_dist = (width as f64 * 0.5).round() as u32;
    RAMP_2D
        .iter()
        .map(|&faults| {
            let mut rng = SmallRng::seed_from_u64(SEED ^ ((faults as u64) << 20));
            let mut mesh = Mesh2D::new(width, width);
            FaultSpec::uniform(faults, rng.gen()).inject_2d(&mut mesh, &[]);
            let mut pairs = Vec::with_capacity(PAIRS);
            while pairs.len() < PAIRS {
                let s = c2(rng.gen_range(0..width), rng.gen_range(0..width));
                let d = c2(rng.gen_range(0..width), rng.gen_range(0..width));
                if s.dist(d) >= min_dist && mesh.is_healthy(s) && mesh.is_healthy(d) {
                    pairs.push((s, d, rng.gen()));
                }
            }
            Batch2 { mesh, pairs }
        })
        .collect()
}

fn case_2d(width: i32, reps: u32) -> Case {
    let opts = TrialOptions::default();
    let batches = batches_2d(width);
    let (fresh_ns, fresh) = time_ns(reps, || {
        batches
            .iter()
            .flat_map(|b| {
                b.pairs
                    .iter()
                    .map(|&(s, d, seed)| run_trial_2d_with(&b.mesh, s, d, seed, &opts))
            })
            .collect()
    });
    let (prepared_ns, prepared) = time_ns(reps, || {
        batches
            .iter()
            .flat_map(|b| {
                let mut pm = PreparedMesh2::new(&b.mesh, opts);
                b.pairs
                    .iter()
                    .map(|&(s, d, seed)| pm.run_trial(s, d, seed))
                    .collect::<Vec<_>>()
            })
            .collect()
    });
    assert_eq!(fresh.len(), prepared.len());
    for (i, (f, p)) in fresh.iter().zip(&prepared).enumerate() {
        assert!(
            f.bit_identical(p),
            "2d/{width}: trial {i} diverged between fresh and prepared paths"
        );
    }
    Case {
        mesh: "2d",
        size: width,
        nodes: (width * width) as usize,
        trials: fresh.len(),
        fresh_ns,
        prepared_ns,
    }
}

struct Batch3 {
    mesh: Mesh3D,
    pairs: Vec<(C3, C3, u64)>,
}

fn batches_3d(k: i32) -> Vec<Batch3> {
    let min_dist = k as u32;
    RAMP_3D
        .iter()
        .map(|&faults| {
            let mut rng = SmallRng::seed_from_u64(SEED ^ ((faults as u64) << 20));
            let mut mesh = Mesh3D::kary(k);
            FaultSpec::uniform(faults, rng.gen()).inject_3d(&mut mesh, &[]);
            let mut pairs = Vec::with_capacity(PAIRS);
            while pairs.len() < PAIRS {
                let s = c3(
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                );
                let d = c3(
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                    rng.gen_range(0..k),
                );
                if s.dist(d) >= min_dist && mesh.is_healthy(s) && mesh.is_healthy(d) {
                    pairs.push((s, d, rng.gen()));
                }
            }
            Batch3 { mesh, pairs }
        })
        .collect()
}

fn case_3d(k: i32, reps: u32) -> Case {
    let opts = TrialOptions::default();
    let batches = batches_3d(k);
    let (fresh_ns, fresh) = time_ns(reps, || {
        batches
            .iter()
            .flat_map(|b| {
                b.pairs
                    .iter()
                    .map(|&(s, d, seed)| run_trial_3d_with(&b.mesh, s, d, seed, &opts))
            })
            .collect()
    });
    let (prepared_ns, prepared) = time_ns(reps, || {
        batches
            .iter()
            .flat_map(|b| {
                let mut pm = PreparedMesh3::new(&b.mesh, opts);
                b.pairs
                    .iter()
                    .map(|&(s, d, seed)| pm.run_trial(s, d, seed))
                    .collect::<Vec<_>>()
            })
            .collect()
    });
    assert_eq!(fresh.len(), prepared.len());
    for (i, (f, p)) in fresh.iter().zip(&prepared).enumerate() {
        assert!(
            f.bit_identical(p),
            "3d/{k}: trial {i} diverged between fresh and prepared paths"
        );
    }
    Case {
        mesh: "3d",
        size: k,
        nodes: (k * k * k) as usize,
        trials: fresh.len(),
        fresh_ns,
        prepared_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_routing_trials.json".to_string());

    let mut cases = Vec::new();
    for width in [32i32, 64, 128] {
        let reps = if width >= 128 { 3 } else { 5 };
        cases.push(case_2d(width, reps));
    }
    for k in [16i32, 24] {
        let reps = if k >= 24 { 3 } else { 5 };
        cases.push(case_3d(k, reps));
    }

    for c in &cases {
        println!(
            "{}/{:<4} nodes {:>7} trials {:>4}  fresh {:>12} ns  prepared {:>12} ns  \
             speedup {:>6.2}x",
            c.mesh,
            c.size,
            c.nodes,
            c.trials,
            c.fresh_ns,
            c.prepared_ns,
            c.speedup()
        );
    }

    // The acceptance bar: ≥3× on every E4-shaped (2-D, 64²+) case. A miss
    // refuses the snapshot rather than recording a regression.
    for c in &cases {
        if c.mesh == "2d" && c.size >= 64 {
            assert!(
                c.speedup() >= 3.0,
                "prepared path below the 3x bar on 2d/{}: {:.2}x",
                c.size,
                c.speedup()
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"routing_trials\",\n");
    json.push_str(
        "  \"description\": \"Routing-trial batches (E4 fault ramp in 2-D, E3 in 3-D, 32 \
         pairs per fault configuration), fresh-per-trial model construction vs the \
         prepared-mesh pipeline (orientation-keyed model cache + scratch buffers); \
         per-trial results asserted identical field-for-field before writing, best-of-N \
         wall time over the whole ramp\",\n",
    );
    json.push_str("  \"units\": \"nanoseconds\",\n");
    json.push_str(&mcc_bench::report::fault_regime_field("uniform"));
    // Both pipelines run sequentially here; the core count makes
    // snapshots from different machines comparable.
    json.push_str("  \"threads\": 1,\n");
    json.push_str(&format!(
        "  \"detected_cores\": {},\n",
        mesh_topo::detected_cores()
    ));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mesh\": \"{}\", \"size\": {}, \"nodes\": {}, \"trials\": {}, \
             \"fresh_ns\": {}, \"prepared_ns\": {}, \"speedup\": {:.2}}}{}\n",
            c.mesh,
            c.size,
            c.nodes,
            c.trials,
            c.fresh_ns,
            c.prepared_ns,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    mcc_bench::report::write_snapshot_or_exit(&out_path, &json);
}
