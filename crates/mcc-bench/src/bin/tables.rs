//! Regenerate evaluation tables from declarative scenario files.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin tables -- scenarios/e1_regions_2d.toml [more.toml ...] [--quick]
//! cargo run -p mcc-bench --release --bin tables -- --all [--quick]
//! ```
//!
//! Every table is driven entirely by the TOML scenario layer
//! (`mcc_bench::scenario`): pass one or more scenario files, or `--all` to
//! run every `*.toml` under `scenarios/`. `--quick` shrinks each scenario's
//! seed range to a tenth for a fast smoke run. The experiment → scenario
//! map lives in `EXPERIMENTS.md`.

use std::path::PathBuf;
use std::process::ExitCode;

use mcc_bench::runner::run_scenario;
use mcc_bench::scenario::Scenario;

const SCENARIO_DIR: &str = "scenarios";

fn usage() -> &'static str {
    "usage: tables [--quick] <scenario.toml>... | tables [--quick] --all"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(unknown) = args
        .iter()
        .find(|a| a.starts_with("--") && *a != "--quick" && *a != "--all")
    {
        eprintln!("error: unknown option `{unknown}`\n{}", usage());
        return ExitCode::FAILURE;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.iter().any(|a| a == "--all");
    let mut paths: Vec<PathBuf> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();

    if all {
        match scenario_dir_files() {
            Ok(found) => paths.extend(found),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if paths.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    for path in &paths {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let scenario = if quick { scenario.quick() } else { scenario };
        match run_scenario(&scenario) {
            Ok(report) => println!("{}", report.render()),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn scenario_dir_files() -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(SCENARIO_DIR).map_err(|e| format!("cannot list {SCENARIO_DIR}/: {e}"))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .toml scenarios found in {SCENARIO_DIR}/"));
    }
    Ok(files)
}
