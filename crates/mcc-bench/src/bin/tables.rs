//! Regenerate the evaluation tables of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin tables -- [e1|e2|e3|e4|e5|e6|e7|all] [--quick]
//! ```
//!
//! `--quick` shrinks seed counts for a fast smoke run; the defaults match
//! the numbers recorded in EXPERIMENTS.md.

use mcc_bench::{
    labelling_rounds_2d, overhead_sweep_2d, overhead_sweep_3d, region_sweep_2d,
    region_sweep_2d_clustered, region_sweep_3d, routing_sweep_2d, routing_sweep_3d,
    routing_sweep_3d_clustered,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let seeds: u64 = if quick { 40 } else { 400 };
    let trials: u64 = if quick { 60 } else { 600 };
    let proto_seeds: u64 = if quick { 10 } else { 60 };

    let run = |name: &str| which == "all" || which == name;

    if run("e1") {
        println!("== E1: healthy nodes captured by fault regions, 2-D 32x32, {seeds} seeds ==");
        println!(
            "{:>7} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
            "faults", "MCC", "MCC-worst", "MCC-union", "RFB", "#MCC", "#RFB"
        );
        for r in region_sweep_2d(32, &[5, 10, 15, 20, 25, 30, 40, 50], seeds) {
            println!(
                "{:>7} {:>9.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>9.2}",
                r.faults, r.mcc, r.mcc_worst, r.mcc_union, r.rfb, r.mcc_regions, r.rfb_regions
            );
        }
        println!();
    }
    if run("e2") {
        println!("== E2: healthy nodes captured by fault regions, 3-D 16^3, {seeds} seeds ==");
        println!(
            "{:>7} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
            "faults", "MCC", "MCC-worst", "MCC-union", "RFB", "#MCC", "#RFB"
        );
        for r in region_sweep_3d(16, &[10, 20, 40, 60, 80, 100, 120], seeds) {
            println!(
                "{:>7} {:>9.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>9.2}",
                r.faults, r.mcc, r.mcc_worst, r.mcc_union, r.rfb, r.mcc_regions, r.rfb_regions
            );
        }
        println!();
    }
    if run("e3") || run("e6") {
        println!("== E3/E6: minimal-routing success and path metrics, 2-D 32x32, {trials} trials ==");
        println!(
            "{:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
            "faults", "oracle", "MCC", "RFB", "greedy", "adaptM", "adaptR", "detect", "safe-ep"
        );
        for r in routing_sweep_2d(32, &[5, 10, 15, 20, 25, 30, 40, 50], trials) {
            println!(
                "{:>7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>9.1} {:>9.3}",
                r.faults,
                r.oracle,
                r.mcc,
                r.rfb,
                r.greedy,
                r.mcc_adaptivity,
                r.rfb_adaptivity,
                r.detection_cost,
                r.endpoints_safe
            );
        }
        println!();
    }
    if run("e4") || run("e6") {
        println!("== E4/E6: minimal-routing success and path metrics, 3-D 16^3, {trials} trials ==");
        println!(
            "{:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
            "faults", "oracle", "MCC", "RFB", "greedy", "adaptM", "adaptR", "detect", "safe-ep"
        );
        for r in routing_sweep_3d(16, &[10, 20, 40, 60, 80, 100, 120], trials) {
            println!(
                "{:>7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>9.1} {:>9.3}",
                r.faults,
                r.oracle,
                r.mcc,
                r.rfb,
                r.greedy,
                r.mcc_adaptivity,
                r.rfb_adaptivity,
                r.detection_cost,
                r.endpoints_safe
            );
        }
        println!();
    }
    if run("e5") {
        println!("== E5: distributed construction overhead, 2-D 24x24, {proto_seeds} seeds ==");
        println!(
            "{:>7} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "faults", "label-msg", "rounds", "compid", "ident", "boundary", "total"
        );
        for r in overhead_sweep_2d(24, &[2, 5, 10, 15, 20, 30], proto_seeds) {
            println!(
                "{:>7} {:>10.0} {:>8.1} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                r.faults,
                r.labelling_msgs,
                r.labelling_rounds,
                r.compid_msgs,
                r.ident_msgs,
                r.boundary_msgs,
                r.total_msgs
            );
        }
        println!();
    }
    if run("e8") {
        println!("== E8a: clustered faults (3 clusters), regions 2-D 32x32, {seeds} seeds ==");
        println!(
            "{:>7} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
            "faults", "MCC", "MCC-worst", "MCC-union", "RFB", "#MCC", "#RFB"
        );
        for r in region_sweep_2d_clustered(32, &[10, 20, 30, 40, 50], 3, seeds) {
            println!(
                "{:>7} {:>9.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>9.2}",
                r.faults, r.mcc, r.mcc_worst, r.mcc_union, r.rfb, r.mcc_regions, r.rfb_regions
            );
        }
        println!();
        println!("== E8b: clustered faults (3 clusters), routing 3-D 16^3, {trials} trials ==");
        println!(
            "{:>7} {:>8} {:>8} {:>8} {:>8}",
            "faults", "oracle", "MCC", "RFB", "greedy"
        );
        for r in routing_sweep_3d_clustered(16, &[20, 60, 120], 3, trials) {
            println!(
                "{:>7} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                r.faults, r.oracle, r.mcc, r.rfb, r.greedy
            );
        }
        println!();
    }
    if run("e7") {
        println!("== E7: distributed labelling convergence ==");
        println!("2-D 24x24:");
        println!("{:>7} {:>8} {:>12}", "faults", "rounds", "messages");
        for n in [5usize, 15, 30, 60] {
            let (rounds, msgs) = labelling_rounds_2d(24, n, proto_seeds);
            println!("{:>7} {:>8.1} {:>12.0}", n, rounds, msgs);
        }
        println!("3-D 12^3 (boundary column = detection-flood messages):");
        println!(
            "{:>7} {:>10} {:>8} {:>12}",
            "faults", "label-msg", "rounds", "detect-msg"
        );
        for r in overhead_sweep_3d(12, &[10, 30, 60, 100], proto_seeds) {
            println!(
                "{:>7} {:>10.0} {:>8.1} {:>12.0}",
                r.faults, r.labelling_msgs, r.labelling_rounds, r.boundary_msgs
            );
        }
        println!();
    }
}
