//! Regenerate evaluation tables from declarative scenario files.
//!
//! ```text
//! cargo run -p mcc-bench --release --bin tables -- scenarios/e1_regions_2d.toml [more.toml ...] [--quick]
//! cargo run -p mcc-bench --release --bin tables -- --all [--quick]
//! ```
//!
//! Every table is driven entirely by the TOML scenario layer
//! (`mcc_bench::scenario`): pass one or more scenario files, or `--all` to
//! run every `*.toml` under `scenarios/`. `--quick` shrinks each scenario's
//! seed range to a tenth for a fast smoke run. The experiment → scenario
//! map lives in `EXPERIMENTS.md`.
//!
//! The resolved file list is deduplicated by canonical path, so passing
//! the same scenario twice — or combining `--all` with an explicit path it
//! already covers — runs it once. `table = "load"` scenarios are not row
//! tables: explicitly naming one is an error pointing at the `loadgen`
//! binary, and `--all` skips them with a note.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

use mcc_bench::runner::run_scenario;
use mcc_bench::scenario::{Scenario, TableKind};

const SCENARIO_DIR: &str = "scenarios";

fn usage() -> &'static str {
    "usage: tables [--quick] <scenario.toml>... | tables [--quick] --all"
}

/// Merge explicitly named paths with `--all` discoveries into one run
/// list, first occurrence wins, deduplicated by canonical path (so
/// `scenarios/e1.toml` and `./scenarios/../scenarios/e1.toml` collapse).
/// The flag records whether the surviving occurrence was named
/// explicitly — discovered load scenarios are skipped, explicit ones are
/// an error.
fn resolve_paths(explicit: &[PathBuf], discovered: &[PathBuf]) -> Vec<(PathBuf, bool)> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    let tagged = explicit
        .iter()
        .map(|p| (p, true))
        .chain(discovered.iter().map(|p| (p, false)));
    for (path, is_explicit) in tagged {
        let key = std::fs::canonicalize(path).unwrap_or_else(|_| path.clone());
        if seen.insert(key) {
            out.push((path.clone(), is_explicit));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(unknown) = args
        .iter()
        .find(|a| a.starts_with("--") && *a != "--quick" && *a != "--all")
    {
        eprintln!("error: unknown option `{unknown}`\n{}", usage());
        return ExitCode::FAILURE;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.iter().any(|a| a == "--all");
    let explicit: Vec<PathBuf> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();

    let discovered = if all {
        match scenario_dir_files() {
            Ok(found) => found,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Vec::new()
    };
    let paths = resolve_paths(&explicit, &discovered);
    if paths.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    for (path, is_explicit) in &paths {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if matches!(scenario.table, TableKind::Load | TableKind::Service) {
            if *is_explicit {
                eprintln!(
                    "error: {}: {} scenarios are open-loop ramps, not row tables; \
                     run them with the `loadgen` binary",
                    path.display(),
                    scenario.table.as_str()
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "skipping {} scenario {} (use `loadgen`)",
                scenario.table.as_str(),
                path.display()
            );
            continue;
        }
        let scenario = if quick { scenario.quick() } else { scenario };
        match run_scenario(&scenario) {
            Ok(report) => println!("{}", report.render()),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn scenario_dir_files() -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(SCENARIO_DIR).map_err(|e| format!("cannot list {SCENARIO_DIR}/: {e}"))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .toml scenarios found in {SCENARIO_DIR}/"));
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: the same scenario named twice — or once explicitly and
    /// once via `--all` discovery, possibly through a different spelling
    /// of the same file — must survive resolution exactly once, with the
    /// explicit occurrence winning.
    #[test]
    fn resolve_paths_dedupes_explicit_and_discovered() {
        let dir = std::env::temp_dir().join(format!("mcc-tables-dedupe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.toml");
        let b = dir.join("b.toml");
        std::fs::write(&a, "x").unwrap();
        std::fs::write(&b, "x").unwrap();
        // A relative-style respelling of `a` that canonicalizes equal.
        let a_respelled = dir.join(".").join("a.toml");

        let resolved = resolve_paths(
            &[a.clone(), a.clone(), a_respelled],
            &[a.clone(), b.clone()],
        );
        assert_eq!(
            resolved,
            vec![(a, true), (b, false)],
            "one run per file; explicit occurrence first"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resolve_paths_keeps_missing_files_for_the_loader_to_report() {
        // Canonicalization fails on nonexistent paths; they must still
        // pass through (deduped textually) so `Scenario::load` can print
        // its error instead of the path silently vanishing.
        let ghost = PathBuf::from("no/such/scenario.toml");
        let resolved = resolve_paths(&[ghost.clone(), ghost.clone()], &[]);
        assert_eq!(resolved, vec![(ghost, true)]);
    }
}
