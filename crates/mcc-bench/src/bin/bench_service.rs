//! Snapshot the crash-safe service's robustness numbers to
//! `BENCH_service.json`: recovery time as a function of WAL length (with
//! and without a fixed snapshot interval bounding the replayed suffix),
//! and the shed-rate curve of an overload ramp driven beyond saturation.
//!
//! Every recovery case is gated on bit-for-bit state equivalence: the
//! recovered shard's digest (statuses, unsafe set, MCC shapes,
//! generation) must equal the uninterrupted writer's, or the binary
//! refuses to write the snapshot and exits nonzero. Regenerate with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin bench_service -- BENCH_service.json
//! ```

use std::time::Instant;

use mcc_bench::scenario::{LoadProfile, MeshDims, Scenario, ServiceProfile};
use mcc_bench::service_load::run_service_load;
use mesh_service::testutil::TempDir;
use mesh_service::{CrashPoint, Geometry, Request, ShardCore, ShardSpec};
use mesh_topo::par::Parallelism;

/// WAL lengths (churn ops journaled before the kill).
const LOG_LENS: [u64; 3] = [64, 256, 1024];
/// The fixed snapshot interval of the bounded-recovery cases.
const SNAP_EVERY: u64 = 32;
/// Recovery timing repetitions (best-of, like the other bench bins).
const REPS: u32 = 5;

struct RecoveryCase {
    log_len: u64,
    snapshot_every: u64,
    /// WAL bytes on disk at the kill point.
    wal_bytes: u64,
    recover_ns: u128,
}

/// Journal `log_len` churn ops, then time a cold `ShardCore::open` over
/// the directory. Returns `None` (after printing why) if the recovered
/// state diverges from the uninterrupted writer.
fn recovery_case(log_len: u64, snapshot_every: u64) -> Option<RecoveryCase> {
    let spec = ShardSpec::new(
        Geometry::M2 {
            width: 16,
            height: 16,
            wrap: false,
        },
        snapshot_every,
    );
    let dir = TempDir::new(&format!("bench-recovery-{log_len}-{snapshot_every}"));
    let par = Parallelism::auto().from_env();
    let mut writer =
        ShardCore::open(dir.path(), spec, par, CrashPoint::none()).expect("open writer shard");
    for seed in 0..log_len {
        writer
            .handle(&Request::ChurnRandom {
                seed: 0xBEC0 + seed,
            })
            .expect("journal churn op");
    }
    let reference = writer.digest();
    let wal_bytes = std::fs::metadata(dir.join("wal.log"))
        .map(|m| m.len())
        .unwrap_or(0);
    drop(writer);

    let mut best = u128::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut recovered =
            ShardCore::open(dir.path(), spec, par, CrashPoint::none()).expect("recover shard");
        best = best.min(start.elapsed().as_nanos());
        if recovered.digest() != reference {
            eprintln!(
                "FAIL: recovery of the {log_len}-op journal (snapshot_every = \
                 {snapshot_every}) diverges from the reference replay at generation {}; \
                 refusing to write the snapshot",
                recovered.gen()
            );
            return None;
        }
    }
    Some(RecoveryCase {
        log_len,
        snapshot_every,
        wal_bytes,
        recover_ns: best.max(1),
    })
}

/// The E15 ramp with the saturation stop effectively disabled, so the
/// shed-rate curve extends beyond the first saturated step.
fn shed_scenario() -> Scenario {
    Scenario::service_2d(
        12,
        10,
        0,
        LoadProfile {
            initial_rps: 200,
            increment_rps: 200,
            max_rps: 1000,
            step_secs: 0.05,
            mix_routing: 0.5,
            mix_labelling: 0.3,
            mix_churn: 0.2,
            pool: 2,
            alt_dims: Some(MeshDims::D3 { x: 6, y: 6, z: 6 }),
            p99_limit_ms: LoadProfile::DEFAULT_P99_LIMIT_MS,
            fail_limit: 0.99,
        },
        ServiceProfile {
            queue_cap: 8,
            deadline_ms: 12.0,
            cost_us: [12_000, 6_000, 24_000],
            snapshot_every: 8,
        },
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    let mut cases = Vec::new();
    for &log_len in &LOG_LENS {
        for snapshot_every in [0, SNAP_EVERY] {
            match recovery_case(log_len, snapshot_every) {
                Some(c) => cases.push(c),
                None => std::process::exit(1),
            }
        }
    }

    let ramp = match run_service_load(&shed_scenario()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: shed-rate ramp did not run: {e}; refusing to write the snapshot");
            std::process::exit(1);
        }
    };
    if ramp.recoveries != 0 {
        eprintln!(
            "FAIL: the overload ramp tripped the supervisor {} time(s); \
             refusing to write the snapshot",
            ramp.recoveries
        );
        std::process::exit(1);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"service\",\n");
    json.push_str(
        "  \"description\": \"mesh-service robustness: cold-recovery time (snapshot load + \
         WAL replay) vs journal length on a 16x16 shard, best of 5, gated on bit-for-bit \
         digest equivalence with the uninterrupted writer; plus the shed-rate curve of an \
         open-loop ramp driven past saturation (deterministic virtual-time admission)\",\n",
    );
    json.push_str("  \"units\": \"nanoseconds\",\n");
    json.push_str(&mcc_bench::report::fault_regime_field("uniform"));
    json.push_str(&format!(
        "  \"gate\": {{\"digest_equivalence\": true, \"reps\": {REPS}}},\n"
    ));
    json.push_str("  \"recovery\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"log_len\": {}, \"snapshot_every\": {}, \"wal_bytes\": {}, \
             \"recover_ns\": {}}}{}\n",
            c.log_len,
            c.snapshot_every,
            c.wal_bytes,
            c.recover_ns,
            if i + 1 < cases.len() { "," } else { "" }
        ));
        println!(
            "recovery log_len {:>5} snapshot_every {:>3} wal {:>8} B  {:>12} ns",
            c.log_len, c.snapshot_every, c.wal_bytes, c.recover_ns
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"shed_curve\": [\n");
    for (i, s) in ramp.steps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"offered_rps\": {}, \"ops\": {}, \"admitted\": {}, \
             \"shed_rate\": {:.6}, \"p99_us\": {}}}{}\n",
            s.offered_rps,
            s.ops,
            s.admitted,
            s.shed_rate,
            s.p99_us,
            if i + 1 < ramp.steps.len() { "," } else { "" }
        ));
        println!(
            "shed    rps {:>5} ops {:>5} admitted {:>5} shed_rate {:>6.2}%",
            s.offered_rps,
            s.ops,
            s.admitted,
            s.shed_rate * 100.0
        );
    }
    json.push_str("  ]\n}\n");

    mcc_bench::report::write_snapshot_or_exit(&out_path, &json);
}
