//! Snapshot the hash-vs-flat engine speedup on the distributed labelling
//! protocol to `BENCH_sim_rounds.json`.
//!
//! Runs the same protocol logic on both engines — the flat index-addressed
//! [`sim_net::SimNet`] and the pre-refactor hash engine preserved in
//! [`sim_net::reference`] — at 20% uniform faults, and refuses to write a
//! snapshot unless the two report **identical round and message counts**
//! (the refactor must change cost accounting by zero; see also the parity
//! tests in `mcc-protocols`). Regenerate with:
//!
//! ```text
//! cargo run --release -p mcc-bench --bin bench_sim -- BENCH_sim_rounds.json
//! ```

use std::time::Instant;

use mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_protocols::reference::{RefDistLabelling2, RefDistLabelling3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D};
use sim_net::RunStats;

const FAULT_FRACTION: f64 = 0.20;
const SEED: u64 = 42;

struct Case {
    mesh: &'static str,
    size: i32,
    nodes: usize,
    faults: usize,
    rounds: usize,
    messages: usize,
    hash_ns: u128,
    flat_ns: u128,
}

/// Best-of-`reps` wall time of `f` in nanoseconds; returns the stats of
/// the last run alongside (all runs are deterministic and identical).
fn time_ns(reps: u32, mut f: impl FnMut() -> RunStats) -> (u128, RunStats) {
    let mut best = u128::MAX;
    let mut stats = RunStats::default();
    for _ in 0..reps {
        let start = Instant::now();
        stats = std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos());
    }
    (best.max(1), stats)
}

fn case_2d(width: i32, reps: u32) -> Case {
    let mut mesh = Mesh2D::kary(width);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_2d(&mut mesh, &[]);
    let frame = Frame2::identity(&mesh);
    let (flat_ns, flat) = time_ns(reps, || DistLabelling2::run(&mesh, frame).stats);
    let (hash_ns, hash) = time_ns(reps, || RefDistLabelling2::run(&mesh, frame).stats);
    assert_eq!(
        flat, hash,
        "2d/{width}: engines disagree on cost accounting"
    );
    Case {
        mesh: "2d",
        size: width,
        nodes: mesh.node_count(),
        faults,
        rounds: flat.rounds,
        messages: flat.messages,
        hash_ns,
        flat_ns,
    }
}

fn case_3d(k: i32, reps: u32) -> Case {
    let mut mesh = Mesh3D::kary(k);
    let faults = (mesh.node_count() as f64 * FAULT_FRACTION) as usize;
    FaultSpec::uniform(faults, SEED).inject_3d(&mut mesh, &[]);
    let frame = Frame3::identity(&mesh);
    let (flat_ns, flat) = time_ns(reps, || DistLabelling3::run(&mesh, frame).stats);
    let (hash_ns, hash) = time_ns(reps, || RefDistLabelling3::run(&mesh, frame).stats);
    assert_eq!(flat, hash, "3d/{k}: engines disagree on cost accounting");
    Case {
        mesh: "3d",
        size: k,
        nodes: mesh.node_count(),
        faults,
        rounds: flat.rounds,
        messages: flat.messages,
        hash_ns,
        flat_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim_rounds.json".to_string());

    let mut cases = Vec::new();
    for width in [64i32, 128, 192] {
        let reps = if width >= 128 { 3 } else { 7 };
        cases.push(case_2d(width, reps));
    }
    for k in [16i32, 24, 32] {
        let reps = if k >= 32 { 3 } else { 7 };
        cases.push(case_3d(k, reps));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"sim_rounds\",\n");
    json.push_str(
        "  \"description\": \"Distributed labelling protocol to convergence, pre-refactor \
         hash-addressed engine vs flat index-addressed engine (identical protocol logic and \
         identical round/message counts, asserted per case), 20% uniform faults, best-of-N \
         wall time\",\n",
    );
    json.push_str("  \"units\": \"nanoseconds\",\n");
    json.push_str(&mcc_bench::report::fault_regime_field("uniform"));
    // Both engines run their sequential round dispatch here; the core
    // count makes snapshots from different machines comparable.
    json.push_str("  \"threads\": 1,\n");
    json.push_str(&format!(
        "  \"detected_cores\": {},\n",
        mesh_topo::detected_cores()
    ));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let speedup = c.hash_ns as f64 / c.flat_ns as f64;
        json.push_str(&format!(
            "    {{\"mesh\": \"{}\", \"size\": {}, \"nodes\": {}, \"faults\": {}, \
             \"rounds\": {}, \"messages\": {}, \"hash_ns\": {}, \"flat_ns\": {}, \
             \"speedup\": {:.2}}}{}\n",
            c.mesh,
            c.size,
            c.nodes,
            c.faults,
            c.rounds,
            c.messages,
            c.hash_ns,
            c.flat_ns,
            speedup,
            if i + 1 < cases.len() { "," } else { "" }
        ));
        println!(
            "{}/{:<4} nodes {:>7} faults {:>6} rounds {:>3} msgs {:>9}  hash {:>12} ns  \
             flat {:>12} ns  speedup {:>6.2}x",
            c.mesh, c.size, c.nodes, c.faults, c.rounds, c.messages, c.hash_ns, c.flat_ns, speedup
        );
    }
    json.push_str("  ]\n}\n");

    mcc_bench::report::write_snapshot_or_exit(&out_path, &json);
}
