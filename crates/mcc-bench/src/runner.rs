//! Seed-parallel execution of [`Scenario`]s.
//!
//! [`run_scenario`] fans the scenario's seed range out over std scoped
//! threads ([`std::thread::scope`]): workers pull seed indices off a shared
//! atomic counter (work-stealing, so one slow seed no longer idles the
//! rest of the pool), run the per-seed kernel for every fault count, and
//! aggregate into the row types of the crate root. Results are
//! deterministic: each seed's work depends only on the seed value, and
//! rows are scattered back by seed index regardless of thread
//! interleaving.
//!
//! The thread budget comes from the scenario's `threads` knob (after the
//! `MCC_THREADS` environment override, see [`mesh_topo::Parallelism`]) and
//! is split between the two parallelism levels: seeds soak up threads
//! first — independent trials parallelize perfectly — and whatever the
//! seed range cannot use spills into the per-seed kernels as intra-mesh
//! parallelism (tiled labelling sweeps, sharded protocol rounds). Both
//! levels are pinned bit-for-bit equal to sequential execution, so the
//! budget is a pure performance knob.
//!
//! Routing kernels run on the amortized pipeline of
//! [`mcc_routing::prepared`]: one `PreparedMesh` per seed's fault
//! configuration serves all of its `pairs_per_seed` trials, so labellings,
//! MCC sets and fault blocks are built per orientation instead of per
//! pair (and table rows stay bit-identical — see `run_routing`).

use fault_model::incremental::{IncrementalModels2, IncrementalModels3};
use fault_model::mcc2::MccSet2;
use fault_model::mcc3::MccSet3;
use fault_model::stats::{region_stats_2d, region_stats_3d};
use fault_model::{FaultRegime, Labelling2, Labelling3, Schedule};
use mcc_protocols::boundary2::build_pipeline_2d;
use mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_routing::prepared::{PreparedMesh2, PreparedMesh3};
use mcc_routing::trial::{TrialOptions, TrialResult};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{Frame2, Frame3, Mesh2D, Mesh3D, Parallelism, C2, C3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_net::RunStats;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::scenario::{MeshDims, Scenario, ScenarioError, TableKind};
use crate::{ChurnRow, LabellingRow, OverheadRow, RegionRow, RoutingRow};

/// Rows produced by one scenario, tagged by table family.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TableRows {
    /// Fault-region capture rows (E1/E2-style).
    Regions(Vec<RegionRow>),
    /// Routing success/metric rows (E3/E4/E6-style).
    Routing(Vec<RoutingRow>),
    /// Protocol-overhead rows (E5/E7-style).
    Overhead(Vec<OverheadRow>),
    /// Labelling-convergence rows (E7-style, 2-D or 3-D).
    Labelling(Vec<LabellingRow>),
    /// Incremental-maintenance churn rows (E12-style).
    Churn(Vec<ChurnRow>),
}

/// The outcome of running one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Its table rows, one per fault count.
    pub rows: TableRows,
}

/// Work-stealing seed sweep: `threads` workers pull the next unclaimed
/// seed index off a shared atomic counter, so one expensive seed (a dense
/// fault configuration spinning the pair sampler, say) no longer idles
/// every other worker the way the old static chunking did — a straggler
/// costs one worker, not the whole tail of its chunk. Results are
/// scattered back by seed index, so the output is in seed order no matter
/// which worker ran which seed.
pub(crate) fn parallel_seeds_with<T: Send>(
    seeds: std::ops::Range<u64>,
    threads: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    let seeds: Vec<u64> = seeds.collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, seeds.len());
    if workers == 1 {
        return seeds.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (f, next, seeds) = (&f, &next, &seeds);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&seed) = seeds.get(i) else {
                            return out;
                        };
                        out.push((i, f(seed)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = Vec::with_capacity(seeds.len());
    slots.resize_with(seeds.len(), || None);
    for (i, value) in parts.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("the atomic counter visits every seed index once"))
        .collect()
}

/// Split a resolved thread budget between an outer sweep of at most
/// `outer_cap` independent units and the per-unit kernels. The outer
/// level soaks up the budget first — independent units parallelize
/// perfectly — and only when the unit count is narrower than the budget
/// does the surplus spill inward as intra-mesh parallelism. Shared by the
/// seed sweep here and the slot pool in [`crate::loadgen`].
pub(crate) fn split_budget(budget: usize, outer_cap: usize) -> (usize, Parallelism) {
    let budget = budget.max(1);
    let outer = budget.min(outer_cap.max(1));
    let intra = (budget / outer).max(1);
    (outer, Parallelism::new(intra))
}

/// Split the scenario's thread budget (after the `MCC_THREADS` override)
/// between the seed sweep and the per-seed kernels. Seeds soak up the
/// budget first; only when the seed range is narrower than the budget
/// (large meshes swept over a handful of seeds) does the surplus spill
/// into intra-mesh parallelism.
fn thread_split(sc: &Scenario) -> (usize, Parallelism) {
    let budget = Parallelism::new(sc.threads).from_env().resolve();
    split_budget(budget, sc.seed_count().max(1) as usize)
}

// --- Per-kind seed-mixing streams ---------------------------------------
//
// Every table family derives its per-seed randomness from the scenario
// seed through one of three fixed mixing functions, chosen so the streams
// are decorrelated from each other (a fault population drawn at seed s
// must not echo the trial RNG at seed s) while staying bit-for-bit stable
// across releases — every published table depends on these exact
// constants:
//
// * [`mix_fault_seed`]   — `seed ^ (n << 32)`: fault-population draws for
//   the regions and churn tables. The fault count lands in the high half
//   of the seed, far from SmallRng's low-word sensitivity.
// * [`mix_interior_seed`] — `seed ^ (n << 24)`: interior fault placement
//   for the overhead tables and the labelling table's populations. A
//   distinct shift keeps E5/E7-style rows decorrelated from E1/E12-style
//   rows at equal (seed, n).
// * [`mix_trial_seed`]   — `seed · 0x9e37_79b9 ^ n`: the per-seed trial
//   RNG (pair sampling, policy seeds, churn flips). The odd golden-ratio
//   multiplier whitens consecutive seeds before the count is folded in.
//
// Changing any of these silently regenerates different tables from the
// same scenario file; `seed_mixing_streams_are_pinned` below fails first.

/// Fault-population stream: `seed ^ (n << 32)` (regions, churn inject).
pub(crate) fn mix_fault_seed(seed: u64, n: usize) -> u64 {
    seed ^ ((n as u64) << 32)
}

/// Interior/labelling population stream: `seed ^ (n << 24)`.
pub(crate) fn mix_interior_seed(seed: u64, n: usize) -> u64 {
    seed ^ ((n as u64) << 24)
}

/// Trial-RNG stream: `seed · 0x9e37_79b9 ^ n` (routing pairs, churn flips).
pub(crate) fn mix_trial_seed(seed: u64, n: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9) ^ n as u64
}

/// Construct the scenario's 2-D network (mesh or torus).
fn build_mesh_2d(sc: &Scenario, width: i32, height: i32) -> Mesh2D {
    if sc.wrap {
        Mesh2D::torus(width, height)
    } else {
        Mesh2D::new(width, height)
    }
}

/// Construct the scenario's 3-D network (mesh or torus).
fn build_mesh_3d(sc: &Scenario, x: i32, y: i32, z: i32) -> Mesh3D {
    if sc.wrap {
        Mesh3D::torus(x, y, z)
    } else {
        Mesh3D::new(x, y, z)
    }
}

/// Run a scenario, parallelizing over its seed range.
///
/// Re-validates the scenario first, so programmatically assembled
/// scenarios obey the same knob rules as loaded ones.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
    scenario.validate()?;
    let rows = match scenario.table {
        TableKind::Regions => TableRows::Regions(run_regions(scenario)),
        TableKind::Routing => TableRows::Routing(run_routing(scenario)),
        TableKind::Overhead => TableRows::Overhead(run_overhead(scenario)?),
        TableKind::Labelling => TableRows::Labelling(run_labelling(scenario)),
        TableKind::Churn => TableRows::Churn(run_churn(scenario)),
        TableKind::Load | TableKind::Service => {
            return Err(ScenarioError::new(
                "load and service scenarios are open-loop ramps, not row \
                 tables; run them with the `loadgen` binary",
            ));
        }
    };
    Ok(ScenarioReport {
        scenario: scenario.clone(),
        rows,
    })
}

fn run_regions(sc: &Scenario) -> Vec<RegionRow> {
    let (outer, _) = thread_split(sc);
    sc.fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds_with(sc.seed_start..sc.seed_end, outer, |seed| {
                let fseed = mix_fault_seed(seed, n);
                match sc.dims {
                    MeshDims::D2 { width, height } => {
                        let mut mesh = build_mesh_2d(sc, width, height);
                        sc.inject_2d(&mut mesh, n, fseed, &[]);
                        region_stats_2d(&mesh, sc.border)
                    }
                    MeshDims::D3 { x, y, z } => {
                        let mut mesh = build_mesh_3d(sc, x, y, z);
                        sc.inject_3d(&mut mesh, n, fseed, &[]);
                        region_stats_3d(&mesh, sc.border)
                    }
                }
            });
            let k = stats.len() as f64;
            RegionRow {
                faults: n,
                mcc: stats.iter().map(|s| s.mcc_sacrificed as f64).sum::<f64>() / k,
                mcc_worst: stats
                    .iter()
                    .map(|s| s.mcc_sacrificed_worst as f64)
                    .sum::<f64>()
                    / k,
                mcc_union: stats
                    .iter()
                    .map(|s| s.mcc_sacrificed_union as f64)
                    .sum::<f64>()
                    / k,
                rfb: stats.iter().map(|s| s.rfb_sacrificed as f64).sum::<f64>() / k,
                mcc_regions: stats.iter().map(|s| s.mcc_count as f64).sum::<f64>() / k,
                rfb_regions: stats.iter().map(|s| s.rfb_count as f64).sum::<f64>() / k,
            }
        })
        .collect()
}

/// Draw a pair at least `min_dist` apart under the network's own metric
/// (Manhattan on a mesh, Lee on a torus). On a mesh `mesh.dist` *is*
/// Manhattan distance, so the historical RNG consumption and acceptance
/// sequence — and therefore every existing table — is untouched.
fn random_pair_2d(rng: &mut SmallRng, mesh: &Mesh2D, min_dist: u32) -> (C2, C2) {
    let (w, h) = (mesh.width(), mesh.height());
    loop {
        let s = c2(rng.gen_range(0..w), rng.gen_range(0..h));
        let d = c2(rng.gen_range(0..w), rng.gen_range(0..h));
        if mesh.dist(s, d) >= min_dist {
            return (s, d);
        }
    }
}

/// 3-D twin of [`random_pair_2d`].
fn random_pair_3d(rng: &mut SmallRng, mesh: &Mesh3D, min_dist: u32) -> (C3, C3) {
    let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
    loop {
        let s = c3(
            rng.gen_range(0..nx),
            rng.gen_range(0..ny),
            rng.gen_range(0..nz),
        );
        let d = c3(
            rng.gen_range(0..nx),
            rng.gen_range(0..ny),
            rng.gen_range(0..nz),
        );
        if mesh.dist(s, d) >= min_dist {
            return (s, d);
        }
    }
}

/// How many rejected pair samples the batched path tolerates before
/// concluding the scenario leaves too few healthy nodes to pair up.
const PAIR_SAMPLE_ATTEMPTS: usize = 100_000;

/// Sample a healthy pair at least `min_dist` apart on a faulty mesh
/// (the batched path injects faults first, so endpoints are rejected
/// rather than protected).
pub(crate) fn random_healthy_pair_2d(rng: &mut SmallRng, mesh: &Mesh2D, min_dist: u32) -> (C2, C2) {
    for _ in 0..PAIR_SAMPLE_ATTEMPTS {
        let (s, d) = random_pair_2d(rng, mesh, min_dist);
        if mesh.is_healthy(s) && mesh.is_healthy(d) {
            return (s, d);
        }
    }
    panic!("could not sample a healthy pair: mesh too faulty for the separation requirement");
}

/// 3-D twin of [`random_healthy_pair_2d`].
pub(crate) fn random_healthy_pair_3d(rng: &mut SmallRng, mesh: &Mesh3D, min_dist: u32) -> (C3, C3) {
    for _ in 0..PAIR_SAMPLE_ATTEMPTS {
        let (s, d) = random_pair_3d(rng, mesh, min_dist);
        if mesh.is_healthy(s) && mesh.is_healthy(d) {
            return (s, d);
        }
    }
    panic!("could not sample a healthy pair: mesh too faulty for the separation requirement");
}

/// Routing tables: every seed owns one fault configuration, prepared once
/// (orientation-keyed model cache + trial scratch) and hit by
/// `pairs_per_seed` source/destination pairs.
///
/// Sampling order is part of the determinism contract. With
/// `pairs_per_seed = 1` the pair is drawn *before* fault injection and
/// protected from it — exactly the historical sequence, so existing
/// scenarios reproduce their tables bit-for-bit. With larger batches the
/// fault set is drawn first and pairs are rejection-sampled from the
/// healthy remainder (a protected set of 2·pairs nodes would distort the
/// fault distribution).
fn run_routing(sc: &Scenario) -> Vec<RoutingRow> {
    let opts = TrialOptions {
        border: sc.border,
        eval_mcc: sc.router.wants_mcc(),
        eval_rfb: sc.router.wants_rfb(),
        eval_greedy: sc.router.wants_greedy(),
    };
    let min_dist = (sc.dims.max_extent() as f64 * sc.min_dist_frac).round() as u32;
    let (outer, intra) = thread_split(sc);
    sc.fault_counts
        .iter()
        .map(|&n| {
            let results = parallel_seeds_with(sc.seed_start..sc.seed_end, outer, |seed| {
                let mut rng = SmallRng::seed_from_u64(mix_trial_seed(seed, n));
                match sc.dims {
                    MeshDims::D2 { width, height } => {
                        let mut mesh = build_mesh_2d(sc, width, height);
                        let legacy_pair = if sc.pairs_per_seed == 1 {
                            let (s, d) = random_pair_2d(&mut rng, &mesh, min_dist);
                            sc.inject_2d(&mut mesh, n, rng.gen(), &[s, d]);
                            Some((s, d))
                        } else {
                            sc.inject_2d(&mut mesh, n, rng.gen(), &[]);
                            None
                        };
                        let mut pm = PreparedMesh2::with_parallelism(&mesh, opts, intra);
                        (0..sc.pairs_per_seed)
                            .map(|_| {
                                let (s, d) = legacy_pair.unwrap_or_else(|| {
                                    random_healthy_pair_2d(&mut rng, pm.mesh(), min_dist)
                                });
                                pm.run_trial(s, d, rng.gen())
                            })
                            .collect::<Vec<TrialResult>>()
                    }
                    MeshDims::D3 { x, y, z } => {
                        let mut mesh = build_mesh_3d(sc, x, y, z);
                        let legacy_pair = if sc.pairs_per_seed == 1 {
                            let (s, d) = random_pair_3d(&mut rng, &mesh, min_dist);
                            sc.inject_3d(&mut mesh, n, rng.gen(), &[s, d]);
                            Some((s, d))
                        } else {
                            sc.inject_3d(&mut mesh, n, rng.gen(), &[]);
                            None
                        };
                        let mut pm = PreparedMesh3::with_parallelism(&mesh, opts, intra);
                        (0..sc.pairs_per_seed)
                            .map(|_| {
                                let (s, d) = legacy_pair.unwrap_or_else(|| {
                                    random_healthy_pair_3d(&mut rng, pm.mesh(), min_dist)
                                });
                                pm.run_trial(s, d, rng.gen())
                            })
                            .collect::<Vec<TrialResult>>()
                    }
                }
            });
            let flat: Vec<TrialResult> = results.into_iter().flatten().collect();
            aggregate_routing(n, &flat)
        })
        .collect()
}

pub(crate) fn aggregate_routing(n: usize, results: &[TrialResult]) -> RoutingRow {
    let k = results.len() as f64;
    let frac =
        |f: &dyn Fn(&TrialResult) -> bool| results.iter().filter(|t| f(t)).count() as f64 / k;
    let delivered: Vec<_> = results.iter().filter(|t| t.mcc_delivered).collect();
    let rfb_delivered: Vec<_> = results.iter().filter(|t| t.rfb_adaptivity > 0.0).collect();
    RoutingRow {
        faults: n,
        oracle: frac(&|t| t.oracle_ok),
        mcc: frac(&|t| t.mcc_ok),
        rfb: frac(&|t| t.rfb_ok),
        greedy: frac(&|t| t.greedy_ok),
        mcc_adaptivity: if delivered.is_empty() {
            0.0
        } else {
            delivered.iter().map(|t| t.mcc_adaptivity).sum::<f64>() / delivered.len() as f64
        },
        rfb_adaptivity: if rfb_delivered.is_empty() {
            0.0
        } else {
            rfb_delivered.iter().map(|t| t.rfb_adaptivity).sum::<f64>() / rfb_delivered.len() as f64
        },
        detection_cost: if delivered.is_empty() {
            0.0
        } else {
            delivered
                .iter()
                .map(|t| t.detection_cost as f64)
                .sum::<f64>()
                / delivered.len() as f64
        },
        endpoints_safe: frac(&|t| t.endpoints_safe),
    }
}

fn run_overhead(sc: &Scenario) -> Result<Vec<OverheadRow>, ScenarioError> {
    // wrap = true is rejected by Scenario::validate() before we get here.
    match sc.dims {
        MeshDims::D2 { width, height } => run_overhead_2d(sc, width, height),
        MeshDims::D3 { x, y, z } => Ok(run_overhead_3d(sc, x, y, z)),
    }
}

fn run_overhead_2d(
    sc: &Scenario,
    width: i32,
    height: i32,
) -> Result<Vec<OverheadRow>, ScenarioError> {
    if sc.regime != FaultRegime::Uniform {
        // The identification walks assume regions do not touch the mesh
        // border (see DESIGN.md); clustered growth, correlated fronts and
        // sweeping planes all routinely reach it.
        return Err(ScenarioError::new(
            "2-D overhead scenarios support only the uniform fault regime",
        ));
    }
    if width < 3 || height < 3 {
        return Err(ScenarioError::new(
            "2-D overhead scenarios need at least a 3x3 mesh",
        ));
    }
    // Faults go in the interior only, so the capacity bound is tighter
    // than the whole-mesh bound the scenario schema checks.
    let interior = ((width - 2) * (height - 2)) as usize;
    if let Some(&n) = sc.fault_counts.iter().find(|&&n| n > interior) {
        return Err(ScenarioError::new(format!(
            "2-D overhead scenarios place faults in the {width}x{height} mesh's \
             interior ({interior} nodes); fault count {n} does not fit"
        )));
    }
    let (outer, _) = thread_split(sc);
    Ok(sc
        .fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds_with(sc.seed_start..sc.seed_end, outer, |seed| {
                let mut mesh = Mesh2D::new(width, height);
                // Interior faults only: the identification walks assume
                // regions that stay off the mesh border (see DESIGN.md).
                let mut rng = SmallRng::seed_from_u64(mix_interior_seed(seed, n));
                let mut placed = 0;
                while placed < n {
                    let c = c2(rng.gen_range(1..width - 1), rng.gen_range(1..height - 1));
                    if mesh.is_healthy(c) {
                        mesh.inject_fault(c);
                        placed += 1;
                    }
                }
                let (_, stats) = build_pipeline_2d(&mesh, Frame2::identity(&mesh));
                stats
            });
            let k = stats.len() as f64;
            OverheadRow {
                faults: n,
                labelling_msgs: stats
                    .iter()
                    .map(|s| s.labelling.messages as f64)
                    .sum::<f64>()
                    / k,
                labelling_rounds: stats.iter().map(|s| s.labelling.rounds as f64).sum::<f64>() / k,
                compid_msgs: stats
                    .iter()
                    .map(|s| s.components.messages as f64)
                    .sum::<f64>()
                    / k,
                ident_msgs: stats
                    .iter()
                    .map(|s| s.identification.messages as f64)
                    .sum::<f64>()
                    / k,
                boundary_msgs: stats
                    .iter()
                    .map(|s| s.boundary.messages as f64)
                    .sum::<f64>()
                    / k,
                total_msgs: stats.iter().map(|s| s.total_messages() as f64).sum::<f64>() / k,
            }
        })
        .collect())
}

/// E7-style labelling convergence: run the distributed labelling protocol
/// (alone) on the flat engine, one seed per core, and average its
/// [`RunStats`]. Unlike the 2-D overhead pipeline this places faults
/// anywhere in the mesh — labelling has no interior-fault assumption —
/// so the protocol layer can be swept at the paper's full fault ramps.
fn run_labelling(sc: &Scenario) -> Vec<LabellingRow> {
    let (outer, intra) = thread_split(sc);
    sc.fault_counts
        .iter()
        .map(|&n| {
            let stats: Vec<RunStats> =
                parallel_seeds_with(sc.seed_start..sc.seed_end, outer, |seed| {
                    let fseed = mix_interior_seed(seed, n);
                    match sc.dims {
                        MeshDims::D2 { width, height } => {
                            let mut mesh = build_mesh_2d(sc, width, height);
                            sc.inject_2d(&mut mesh, n, fseed, &[]);
                            DistLabelling2::run_par(&mesh, Frame2::identity(&mesh), intra).stats
                        }
                        MeshDims::D3 { x, y, z } => {
                            let mut mesh = build_mesh_3d(sc, x, y, z);
                            sc.inject_3d(&mut mesh, n, fseed, &[]);
                            DistLabelling3::run_par(&mesh, Frame3::identity(&mesh), intra).stats
                        }
                    }
                });
            let k = stats.len() as f64;
            LabellingRow {
                faults: n,
                messages: stats.iter().map(|s| s.messages as f64).sum::<f64>() / k,
                rounds: stats.iter().map(|s| s.rounds as f64).sum::<f64>() / k,
                max_inflight: stats.iter().map(|s| s.max_inflight as f64).sum::<f64>() / k,
                converged: stats.iter().filter(|s| s.quiescent).count() as f64 / k,
            }
        })
        .collect()
}

/// Per-seed tallies of one churn trace (see [`run_churn`]).
struct ChurnSeed {
    injected: usize,
    healed: usize,
    repaired: usize,
    unsafe_end: usize,
    mccs_end: usize,
    checks: usize,
    matched: usize,
}

/// Flips per churn round: `max(1, round(rate × faults))`, clamped so a
/// dense configuration never asks for more heals than there are faults or
/// more injections than there are healthy nodes.
fn churn_flips(rate: f64, faults: usize, healthy: usize) -> usize {
    ((rate * faults as f64).round() as usize)
        .max(1)
        .min(faults)
        .min(healthy)
}

/// E12-style churn tables: each seed owns one fault configuration wrapped
/// in [`IncrementalModels2`]/[`IncrementalModels3`] and drives
/// `churn_rounds` rounds of paired heal+inject churn through it (the
/// fault population stays at the row's nominal count). After **every**
/// round the maintained identity-orientation models are checked against a
/// from-scratch recomputation; the runner refuses (panics) to aggregate a
/// row unless every check of every seed matched, so a churn table is
/// itself an equivalence certificate. `statuses_repaired` counts the node
/// statuses the incremental repairs actually touched — the quantity that
/// scales with perturbation size rather than mesh size.
fn run_churn(sc: &Scenario) -> Vec<ChurnRow> {
    let (outer, intra) = thread_split(sc);
    sc.fault_counts
        .iter()
        .map(|&n| {
            let seeds = parallel_seeds_with(sc.seed_start..sc.seed_end, outer, |seed| {
                let mut rng = SmallRng::seed_from_u64(mix_trial_seed(seed, n));
                let fseed = mix_fault_seed(seed, n);
                match sc.dims {
                    MeshDims::D2 { width, height } => {
                        let mut mesh = build_mesh_2d(sc, width, height);
                        // Scheduled regimes (sweeping plane, transient)
                        // replace the random flip draws with their own
                        // churn law; `initial_faults` matches what
                        // `Scenario::inject_2d` would place, so round 0
                        // starts from the same population either way.
                        let schedule = sc.regime.schedule_2d(&mesh, n, fseed, &[]);
                        match schedule {
                            Some(schedule) => {
                                for c in schedule.initial_faults() {
                                    mesh.inject_fault(c);
                                }
                                churn_seed_2d(sc, mesh, intra, &mut rng, Some(schedule))
                            }
                            None => {
                                sc.inject_2d(&mut mesh, n, fseed, &[]);
                                churn_seed_2d(sc, mesh, intra, &mut rng, None)
                            }
                        }
                    }
                    MeshDims::D3 { x, y, z } => {
                        let mut mesh = build_mesh_3d(sc, x, y, z);
                        let schedule = sc.regime.schedule_3d(&mesh, n, fseed, &[]);
                        match schedule {
                            Some(schedule) => {
                                for c in schedule.initial_faults() {
                                    mesh.inject_fault(c);
                                }
                                churn_seed_3d(sc, mesh, intra, &mut rng, Some(schedule))
                            }
                            None => {
                                sc.inject_3d(&mut mesh, n, fseed, &[]);
                                churn_seed_3d(sc, mesh, intra, &mut rng, None)
                            }
                        }
                    }
                }
            });
            let k = seeds.len() as f64;
            let checks: usize = seeds.iter().map(|s| s.checks).sum();
            let matched: usize = seeds.iter().map(|s| s.matched).sum();
            assert_eq!(
                matched, checks,
                "churn equivalence violated at {n} faults: incremental models \
                 diverged from from-scratch recomputation"
            );
            ChurnRow {
                faults: n,
                rounds: sc.churn_rounds,
                injected: seeds.iter().map(|s| s.injected as f64).sum::<f64>() / k,
                healed: seeds.iter().map(|s| s.healed as f64).sum::<f64>() / k,
                statuses_repaired: seeds.iter().map(|s| s.repaired as f64).sum::<f64>() / k,
                unsafe_end: seeds.iter().map(|s| s.unsafe_end as f64).sum::<f64>() / k,
                mccs_end: seeds.iter().map(|s| s.mccs_end as f64).sum::<f64>() / k,
                verified: matched as f64 / checks as f64,
            }
        })
        .collect()
}

fn churn_seed_2d(
    sc: &Scenario,
    mesh: Mesh2D,
    intra: Parallelism,
    rng: &mut SmallRng,
    mut schedule: Option<Schedule<C2>>,
) -> ChurnSeed {
    let (w, h) = (mesh.width(), mesh.height());
    let nodes = (w * h) as usize;
    let mut inc = IncrementalModels2::with_parallelism(mesh, sc.border, intra);
    let mut out = ChurnSeed {
        injected: 0,
        healed: 0,
        repaired: 0,
        unsafe_end: 0,
        mccs_end: 0,
        checks: 0,
        matched: 0,
    };
    for _ in 0..sc.churn_rounds {
        let (injected, healed) = if let Some(sched) = schedule.as_mut() {
            let faults = inc.mesh().faults().len();
            let flips = churn_flips(sc.churn_rate, faults, nodes - faults);
            sched.step(flips)
        } else {
            let faults = inc.mesh().faults().to_vec();
            let flips = churn_flips(sc.churn_rate, faults.len(), nodes - faults.len());
            let mut healed: Vec<C2> = Vec::new();
            while healed.len() < flips {
                let c = faults[rng.gen_range(0..faults.len())];
                if !healed.contains(&c) {
                    healed.push(c);
                }
            }
            let mut injected: Vec<C2> = Vec::new();
            while injected.len() < flips {
                let c = c2(rng.gen_range(0..w), rng.gen_range(0..h));
                if inc.mesh().is_healthy(c) && !injected.contains(&c) {
                    injected.push(c);
                }
            }
            (injected, healed)
        };
        inc.apply(&injected, &healed);
        out.injected += injected.len();
        out.healed += healed.len();

        let mesh = inc.mesh().clone();
        let frame = Frame2::identity(&mesh);
        let m = inc.models(frame);
        let lab = Labelling2::compute(&mesh, frame, sc.border);
        let mccs = MccSet2::compute(&lab);
        out.checks += 1;
        let ok = m.lab.iter().zip(lab.iter()).all(|((_, a), (_, b))| a == b)
            && m.lab.unsafe_set() == lab.unsafe_set()
            && m.mccs.mccs == mccs.mccs;
        if ok {
            out.matched += 1;
        }
        out.unsafe_end = lab.unsafe_set().len();
        out.mccs_end = mccs.mccs.len();
    }
    out.repaired = inc.statuses_repaired();
    out
}

fn churn_seed_3d(
    sc: &Scenario,
    mesh: Mesh3D,
    intra: Parallelism,
    rng: &mut SmallRng,
    mut schedule: Option<Schedule<C3>>,
) -> ChurnSeed {
    let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
    let nodes = (nx * ny * nz) as usize;
    let mut inc = IncrementalModels3::with_parallelism(mesh, sc.border, intra);
    let mut out = ChurnSeed {
        injected: 0,
        healed: 0,
        repaired: 0,
        unsafe_end: 0,
        mccs_end: 0,
        checks: 0,
        matched: 0,
    };
    for _ in 0..sc.churn_rounds {
        let (injected, healed) = if let Some(sched) = schedule.as_mut() {
            let faults = inc.mesh().faults().len();
            let flips = churn_flips(sc.churn_rate, faults, nodes - faults);
            sched.step(flips)
        } else {
            let faults = inc.mesh().faults().to_vec();
            let flips = churn_flips(sc.churn_rate, faults.len(), nodes - faults.len());
            let mut healed: Vec<C3> = Vec::new();
            while healed.len() < flips {
                let c = faults[rng.gen_range(0..faults.len())];
                if !healed.contains(&c) {
                    healed.push(c);
                }
            }
            let mut injected: Vec<C3> = Vec::new();
            while injected.len() < flips {
                let c = c3(
                    rng.gen_range(0..nx),
                    rng.gen_range(0..ny),
                    rng.gen_range(0..nz),
                );
                if inc.mesh().is_healthy(c) && !injected.contains(&c) {
                    injected.push(c);
                }
            }
            (injected, healed)
        };
        inc.apply(&injected, &healed);
        out.injected += injected.len();
        out.healed += healed.len();

        let mesh = inc.mesh().clone();
        let frame = Frame3::identity(&mesh);
        let m = inc.models(frame);
        let lab = Labelling3::compute(&mesh, frame, sc.border);
        let mccs = MccSet3::compute(&lab);
        out.checks += 1;
        let ok = m.lab.iter().zip(lab.iter()).all(|((_, a), (_, b))| a == b)
            && m.lab.unsafe_set() == lab.unsafe_set()
            && m.mccs.mccs == mccs.mccs;
        if ok {
            out.matched += 1;
        }
        out.unsafe_end = lab.unsafe_set().len();
        out.mccs_end = mccs.mccs.len();
    }
    out.repaired = inc.statuses_repaired();
    out
}

fn run_overhead_3d(sc: &Scenario, x: i32, y: i32, z: i32) -> Vec<OverheadRow> {
    let (near, far) = (c3(0, 0, 0), c3(x - 1, y - 1, z - 1));
    let (outer, intra) = thread_split(sc);
    sc.fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds_with(sc.seed_start..sc.seed_end, outer, |seed| {
                let mut mesh = Mesh3D::new(x, y, z);
                sc.inject_3d(&mut mesh, n, seed ^ ((n as u64) << 24), &[near, far]);
                let lab = DistLabelling3::run_par(&mesh, Frame3::identity(&mesh), intra);
                let lab_stats = lab.stats;
                let detect = if lab.status(near).is_safe() && lab.status(far).is_safe() {
                    let (_, st) =
                        mcc_protocols::detect3::detect_distributed_3d(&mesh, &lab, near, far);
                    st.messages
                } else {
                    0
                };
                (lab_stats, detect)
            });
            let k = stats.len() as f64;
            OverheadRow {
                faults: n,
                labelling_msgs: stats.iter().map(|(s, _)| s.messages as f64).sum::<f64>() / k,
                labelling_rounds: stats.iter().map(|(s, _)| s.rounds as f64).sum::<f64>() / k,
                compid_msgs: 0.0,
                ident_msgs: 0.0,
                boundary_msgs: stats.iter().map(|(_, d)| *d as f64).sum::<f64>() / k,
                total_msgs: stats
                    .iter()
                    .map(|(s, d)| (s.messages + d) as f64)
                    .sum::<f64>()
                    / k,
            }
        })
        .collect()
}

impl ScenarioReport {
    /// Render the report as the aligned text table the `tables` binary
    /// prints. Column choice honors the scenario's router selection.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let sc = &self.scenario;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} [{} seeds {}..{}] ==",
            sc.name,
            sc.seed_count(),
            sc.seed_start,
            sc.seed_end
        );
        match &self.rows {
            TableRows::Regions(rows) => {
                let _ = writeln!(
                    out,
                    "{:>7} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
                    "faults", "MCC", "MCC-worst", "MCC-union", "RFB", "#MCC", "#RFB"
                );
                for r in rows {
                    let _ = writeln!(
                        out,
                        "{:>7} {:>9.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>9.2}",
                        r.faults,
                        r.mcc,
                        r.mcc_worst,
                        r.mcc_union,
                        r.rfb,
                        r.mcc_regions,
                        r.rfb_regions
                    );
                }
            }
            TableRows::Routing(rows) => {
                let mut header = format!("{:>7} {:>8}", "faults", "oracle");
                for (on, name) in [
                    (sc.router.wants_mcc(), "MCC"),
                    (sc.router.wants_rfb(), "RFB"),
                    (sc.router.wants_greedy(), "greedy"),
                    (sc.router.wants_mcc(), "adaptM"),
                    (sc.router.wants_rfb(), "adaptR"),
                    (sc.router.wants_mcc(), "detect"),
                ] {
                    if on {
                        let _ = write!(header, " {name:>8}");
                    }
                }
                let _ = writeln!(out, "{header} {:>8}", "safe-ep");
                for r in rows {
                    let mut line = format!("{:>7} {:>8.3}", r.faults, r.oracle);
                    for (on, value) in [
                        (sc.router.wants_mcc(), r.mcc),
                        (sc.router.wants_rfb(), r.rfb),
                        (sc.router.wants_greedy(), r.greedy),
                        (sc.router.wants_mcc(), r.mcc_adaptivity),
                        (sc.router.wants_rfb(), r.rfb_adaptivity),
                        (sc.router.wants_mcc(), r.detection_cost),
                    ] {
                        if on {
                            let _ = write!(line, " {value:>8.3}");
                        }
                    }
                    let _ = writeln!(out, "{line} {:>8.3}", r.endpoints_safe);
                }
            }
            TableRows::Labelling(rows) => {
                let _ = writeln!(
                    out,
                    "{:>7} {:>10} {:>8} {:>12} {:>10}",
                    "faults", "messages", "rounds", "max-inflight", "converged"
                );
                for r in rows {
                    let _ = writeln!(
                        out,
                        "{:>7} {:>10.0} {:>8.1} {:>12.0} {:>10.2}",
                        r.faults, r.messages, r.rounds, r.max_inflight, r.converged
                    );
                }
            }
            TableRows::Churn(rows) => {
                let _ = writeln!(
                    out,
                    "{:>7} {:>7} {:>9} {:>8} {:>9} {:>11} {:>7} {:>9}",
                    "faults",
                    "rounds",
                    "injected",
                    "healed",
                    "repaired",
                    "unsafe-end",
                    "#MCC",
                    "verified"
                );
                for r in rows {
                    let _ = writeln!(
                        out,
                        "{:>7} {:>7} {:>9.1} {:>8.1} {:>9.1} {:>11.2} {:>7.2} {:>9.2}",
                        r.faults,
                        r.rounds,
                        r.injected,
                        r.healed,
                        r.statuses_repaired,
                        r.unsafe_end,
                        r.mccs_end,
                        r.verified
                    );
                }
            }
            TableRows::Overhead(rows) => {
                let _ = writeln!(
                    out,
                    "{:>7} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    "faults", "label-msg", "rounds", "compid", "ident", "boundary", "total"
                );
                for r in rows {
                    let _ = writeln!(
                        out,
                        "{:>7} {:>10.0} {:>8.1} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                        r.faults,
                        r.labelling_msgs,
                        r.labelling_rounds,
                        r.compid_msgs,
                        r.ident_msgs,
                        r.boundary_msgs,
                        r.total_msgs
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the three per-kind seed-mixing streams against their exact
    /// historical values (see the comment block by the definitions): any
    /// change here regenerates different tables from the same scenarios.
    #[test]
    fn seed_mixing_streams_are_pinned() {
        assert_eq!(mix_fault_seed(3, 5), 21_474_836_483);
        assert_eq!(mix_interior_seed(3, 5), 83_886_083);
        assert_eq!(mix_trial_seed(7, 9), 18_581_050_374);
        assert_eq!(mix_fault_seed(0xdead_beef, 17), 76_750_372_591);
        assert_eq!(mix_interior_seed(0xdead_beef, 17), 3_484_270_319);
        assert_eq!(mix_trial_seed(12_345, 40), 32_769_009_568_281);
        // The streams must disagree with each other at equal inputs —
        // that decorrelation is the reason three variants exist.
        for (seed, n) in [(0u64, 1usize), (1, 1), (42, 8), (u64::MAX, 4096)] {
            let (a, b, c) = (
                mix_fault_seed(seed, n),
                mix_interior_seed(seed, n),
                mix_trial_seed(seed, n),
            );
            assert!(a != b && b != c && a != c, "collision at ({seed}, {n})");
        }
    }

    #[test]
    fn split_budget_soaks_outer_first() {
        // Budget narrower than the outer cap: all of it goes outward.
        assert_eq!(split_budget(4, 100).0, 4);
        assert_eq!(split_budget(4, 100).1.resolve(), 1);
        // Outer cap narrower than the budget: surplus spills inward.
        let (outer, intra) = split_budget(8, 2);
        assert_eq!((outer, intra.resolve()), (2, 4));
        // Degenerate inputs clamp instead of dividing by zero.
        assert_eq!(split_budget(0, 0).0, 1);
    }

    #[test]
    fn work_stealing_sweep_is_ordered_for_every_pool_size() {
        // More workers than seeds, fewer workers than seeds, one worker
        // (the short-circuit) and zero (clamped to one) must all produce
        // the identical, seed-ordered vector.
        for threads in [0, 1, 2, 3, 7, 64] {
            let out = parallel_seeds_with(5..40, threads, |s| s * 3);
            assert_eq!(
                out,
                (5..40).map(|s| s * 3).collect::<Vec<_>>(),
                "pool of {threads}"
            );
        }
        assert!(parallel_seeds_with(3..3, 4, |s| s).is_empty());
    }

    #[test]
    fn work_stealing_sweep_handles_uneven_seed_costs() {
        // Skewed per-seed cost (the work-stealing motivation): early seeds
        // are ~1000x slower than late ones, so a static chunker's first
        // chunk would dominate. Results must still come back in order.
        let out = parallel_seeds_with(0..24, 4, |s| {
            let spin = if s < 4 { 200_000 } else { 200 };
            (0..spin).fold(s, |acc, _| std::hint::black_box(acc) | s)
        });
        assert_eq!(out, (0..24).collect::<Vec<_>>());
    }

    /// The thread budget is a pure performance knob: the same scenario run
    /// with 1, 2 and 4 threads must produce byte-identical rows, across
    /// both parallelism levels (seed sweep and intra-mesh kernels).
    #[test]
    fn table_rows_are_identical_for_every_thread_count() {
        let routing = Scenario::routing_2d(10, &[4, 10], 6);
        let labelling = Scenario::labelling_2d(12, &[5, 15], 4);
        let churn = Scenario::churn_2d(10, &[4, 9], 4, 5);
        for sc in [routing, labelling, churn] {
            let rows: Vec<String> = [1usize, 2, 4]
                .into_iter()
                .map(|threads| {
                    let mut sc = sc.clone();
                    sc.threads = threads;
                    format!("{:?}", run_scenario(&sc).unwrap().rows)
                })
                .collect();
            assert_eq!(rows[0], rows[1], "{}: 1 vs 2 threads", sc.name);
            assert_eq!(rows[0], rows[2], "{}: 1 vs 4 threads", sc.name);
        }
    }

    #[test]
    fn regions_scenario_runs_on_rectangular_mesh() {
        let mut sc = Scenario::regions_2d(10, &[3, 6], 4);
        sc.dims = MeshDims::D2 {
            width: 10,
            height: 6,
        };
        let report = run_scenario(&sc).unwrap();
        match report.rows {
            TableRows::Regions(rows) => {
                assert_eq!(rows.len(), 2);
                assert!(rows.iter().all(|r| r.mcc <= r.rfb));
            }
            _ => panic!("wrong table kind"),
        }
    }

    #[test]
    fn overhead_2d_rejects_clustered() {
        let mut sc = Scenario::overhead_2d(10, &[3], 2);
        sc.regime = FaultRegime::Clustered { clusters: 2 };
        assert!(run_scenario(&sc).is_err());
    }

    #[test]
    fn overhead_2d_rejects_counts_beyond_interior() {
        // 90 faults fit in a 10x10 mesh but not in its 8x8 interior; the
        // runner must refuse rather than emit a mislabelled row.
        let sc = Scenario::overhead_2d(10, &[90], 2);
        let err = run_scenario(&sc).unwrap_err();
        assert!(err.to_string().contains("interior"), "got: {err}");
    }

    #[test]
    fn churn_rows_stay_at_nominal_population_and_verify() {
        // 2-D torus and 3-D mesh churn: every round flips churn_rate × n
        // faults, so injected == healed == rounds × flips per seed, the
        // verified column is pinned at 1.0 (the runner panics otherwise),
        // and the repaired-status count is nonzero (repairs really ran).
        let mut sc2 = Scenario::churn_2d(12, &[8], 3, 6);
        sc2.wrap = true;
        let sc3 = Scenario::churn_3d(6, &[10], 2, 4);
        for sc in [sc2, sc3] {
            let report = run_scenario(&sc).unwrap();
            match &report.rows {
                TableRows::Churn(rows) => {
                    assert_eq!(rows.len(), 1);
                    let r = &rows[0];
                    let flips = ((0.25f64 * r.faults as f64).round() as usize).max(1);
                    assert_eq!(r.injected, (sc.churn_rounds * flips) as f64, "{}", sc.name);
                    assert_eq!(r.healed, r.injected, "{}", sc.name);
                    assert_eq!(r.verified, 1.0, "{}", sc.name);
                    assert!(r.statuses_repaired >= 0.0);
                }
                _ => panic!("wrong table kind"),
            }
            let rendered = report.render();
            assert!(rendered.contains("verified"), "got: {rendered}");
        }
    }

    #[test]
    fn router_choice_skips_baselines() {
        let mut sc = Scenario::routing_2d(10, &[6], 8);
        sc.router = crate::scenario::RouterChoice::Mcc;
        let report = run_scenario(&sc).unwrap();
        match &report.rows {
            TableRows::Routing(rows) => {
                // Baselines were never evaluated, so their columns stay 0.
                assert!(rows.iter().all(|r| r.rfb == 0.0 && r.greedy == 0.0));
                assert!(rows.iter().all(|r| r.mcc <= 1.0));
            }
            _ => panic!("wrong table kind"),
        }
        let rendered = report.render();
        assert!(!rendered.contains("RFB"));
        assert!(rendered.contains("MCC"));
    }
}
