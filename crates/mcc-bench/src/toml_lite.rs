//! A minimal TOML reader/writer for scenario files.
//!
//! The build environment is offline, so instead of the `toml` crate the
//! scenario layer uses this self-contained parser for the subset of TOML the
//! scenario schema needs:
//!
//! * root-level and single-level `[section]` tables,
//! * `key = value` pairs with string, integer, float, boolean and
//!   (homogeneous, single- or multi-line) array values,
//! * `#` comments and blank lines.
//!
//! Everything parses into [`Doc`], an ordered map of sections each holding an
//! ordered `key → Value` map; [`Doc::render`] writes the same subset back out
//! so documents round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A TOML value from the supported subset.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers coerce), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        _ => out.push(ch),
                    }
                }
                out.push('"');
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render(out);
                }
                out.push(']');
            }
        }
    }
}

/// One `key = value` table (root or `[section]`).
pub type Table = BTreeMap<String, Value>;

/// A parsed document: the root table plus named sections, in order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Doc {
    /// Root-level keys (before any `[section]`).
    pub root: Table,
    /// `[section]` tables, keyed by section name.
    pub sections: BTreeMap<String, Table>,
}

/// A parse failure with a 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Line the failure occurred on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Strip a trailing comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

impl Doc {
    /// Parse a document from TOML text.
    pub fn parse(text: &str) -> Result<Doc, ParseError> {
        let mut doc = Doc::default();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated section header"))?
                    .trim();
                if name.is_empty() || name.starts_with('[') {
                    return Err(err(lineno, "unsupported section header"));
                }
                doc.sections.entry(name.to_string()).or_default();
                current = Some(name.to_string());
                continue;
            }
            let (key, rest) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            let key = key.trim();
            if key.is_empty() {
                return Err(err(lineno, "empty key"));
            }
            // Multi-line arrays: keep appending lines until brackets balance.
            let mut value_text = rest.trim().to_string();
            while !brackets_balanced(&value_text) {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| err(lineno, "unterminated array"))?;
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&value_text, lineno)?;
            let table = match &current {
                Some(name) => doc.sections.get_mut(name).expect("section registered"),
                None => &mut doc.root,
            };
            if table.insert(key.to_string(), value).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
        }
        Ok(doc)
    }

    /// Look a key up in a section (or the root for `""`).
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        if section.is_empty() {
            self.root.get(key)
        } else {
            self.sections.get(section)?.get(key)
        }
    }

    /// Render back to TOML text (root keys first, then sections).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.root {
            let _ = write!(out, "{key} = ");
            value.render(&mut out);
            out.push('\n');
        }
        for (name, table) in &self.sections {
            let _ = writeln!(out, "\n[{name}]");
            for (key, value) in table {
                let _ = write!(out, "{key} = ");
                value.render(&mut out);
                out.push('\n');
            }
        }
        out
    }
}

fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for ch in text.chars() {
        match ch {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => escaped = false,
        }
    }
    depth <= 0
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ParseError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated string"))?;
        let mut s = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(ch) = chars.next() {
            if ch == '\\' {
                match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    other => {
                        return Err(err(lineno, format!("unsupported escape `\\{other:?}`")));
                    }
                }
            } else {
                s.push(ch);
            }
        }
        return Ok(Value::Str(s));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        for part in split_array_items(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part, lineno)?);
        }
        return Ok(Value::Array(items));
    }
    let plain = text.replace('_', "");
    if let Ok(v) = plain.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = plain.parse::<f64>() {
        return Ok(Value::Float(v));
    }
    Err(err(lineno, format!("unsupported value `{text}`")))
}

/// Split on top-level commas (arrays may nest; strings may hold commas).
fn split_array_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    let mut current = String::new();
    for ch in body.chars() {
        match ch {
            '\\' if in_str => {
                escaped = !escaped;
                current.push(ch);
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => {
                items.push(std::mem::take(&mut current));
                escaped = false;
                continue;
            }
            _ => {}
        }
        escaped = false;
        current.push(ch);
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_scalars() {
        let doc = Doc::parse(
            r#"
            # a scenario
            name = "demo"   # trailing comment
            quick = true

            [mesh]
            dims = [8, 8]
            scale = 1.5
            "#,
        )
        .unwrap();
        assert_eq!(doc.get("", "name").unwrap().as_str(), Some("demo"));
        assert_eq!(doc.get("", "quick").unwrap().as_bool(), Some(true));
        let dims = doc.get("mesh", "dims").unwrap().as_array().unwrap();
        assert_eq!(
            dims.iter().filter_map(Value::as_int).collect::<Vec<_>>(),
            vec![8, 8]
        );
        assert_eq!(doc.get("mesh", "scale").unwrap().as_float(), Some(1.5));
    }

    #[test]
    fn multiline_arrays() {
        let doc = Doc::parse("counts = [\n  1, 2, # two\n  3,\n]\n").unwrap();
        let v = doc.get("", "counts").unwrap().as_array().unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn strings_with_hash_and_escapes() {
        let doc = Doc::parse(r#"s = "a # not a \"comment\"""#).unwrap();
        assert_eq!(
            doc.get("", "s").unwrap().as_str(),
            Some(r#"a # not a "comment""#)
        );
    }

    #[test]
    fn round_trip() {
        let text = "name = \"demo\"\n\n[mesh]\ndims = [8, 8]\n";
        let doc = Doc::parse(text).unwrap();
        let rendered = doc.render();
        assert_eq!(Doc::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Doc::parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(Doc::parse("dup = 1\ndup = 2").is_err());
        assert!(Doc::parse("[unclosed").is_err());
        assert!(Doc::parse("v = @nope").is_err());
    }
}
