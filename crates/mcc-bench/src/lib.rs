//! # mcc-bench — experiment harness for the ICPP 2005 reproduction
//!
//! Workload generators, parameter sweeps and aggregation for every table
//! and figure of the evaluation (see `EXPERIMENTS.md` at the workspace
//! root). Experiments are described declaratively: a [`scenario::Scenario`]
//! (deserialized from the TOML files under `scenarios/`) fixes mesh
//! dimensions, fault pattern and ramp, border policy, router choice and
//! seed range, and [`runner::run_scenario`] turns it into table rows. The
//! `tables` binary prints the rows for the scenario files it is given; the
//! criterion benches under `benches/` time the kernels that regenerate
//! them.
//!
//! Sweeps parallelize over seeds with `std::thread::scope` scoped threads.
//!
//! The free functions below (`region_sweep_2d`, `routing_sweep_3d`, …) are
//! the original programmatic sweep API; each is now a thin wrapper that
//! builds the equivalent [`scenario::Scenario`] and runs it, so code- and
//! data-driven callers take exactly the same path.
//!
//! The `bench_label` binary snapshots the flat-vs-hash MCC-construction
//! speedup to `BENCH_mcc_label.json` (see DESIGN.md §6); the criterion
//! benches under `benches/` time the other kernels.
//!
//! The `loadgen` binary drives `table = "load"` scenarios: open-loop
//! saturation ramps over a pool of prepared meshes mixing routing,
//! labelling and churn ops, with per-step latency percentiles from the
//! log-bucketed [`hist::LatencyHist`] (see [`loadgen`] and DESIGN.md §13).
//!
//! # Examples
//!
//! Build a scenario programmatically, run it, and read the table rows
//! (the declarative TOML path deserializes into exactly this structure):
//!
//! ```
//! use mcc_bench::scenario::Scenario;
//! use mcc_bench::{run_scenario, runner::TableRows};
//!
//! let scenario = Scenario::regions_2d(8, &[2, 4], 2);
//! let report = run_scenario(&scenario).expect("valid scenario");
//! let TableRows::Regions(rows) = report.rows else {
//!     panic!("regions scenario yields a regions table");
//! };
//! assert_eq!(rows.len(), 2);
//! // The MCC model never captures more healthy nodes than fault blocks.
//! assert!(rows.iter().all(|r| r.mcc <= r.rfb));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod loadgen;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod service_load;
pub mod toml_lite;

use serde::{Deserialize, Serialize};

use runner::TableRows;
use scenario::Scenario;

pub use runner::{run_scenario, ScenarioReport};

/// One row of the fault-region size tables (E1/E2).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RegionRow {
    /// Injected fault count.
    pub faults: usize,
    /// Mean healthy nodes captured by MCCs (canonical orientation).
    pub mcc: f64,
    /// Mean healthy nodes captured in the worst orientation.
    pub mcc_worst: f64,
    /// Mean healthy nodes captured in some orientation (union).
    pub mcc_union: f64,
    /// Mean healthy nodes captured by rectangular/cuboid blocks.
    pub rfb: f64,
    /// Mean number of MCCs.
    pub mcc_regions: f64,
    /// Mean number of blocks.
    pub rfb_regions: f64,
}

/// One row of the routing success-rate tables (E3/E4/E6).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RoutingRow {
    /// Injected fault count.
    pub faults: usize,
    /// Fraction of trials with a true minimal path (ground truth).
    pub oracle: f64,
    /// Fraction admitted by the MCC condition (== oracle by Theorems 1–2).
    pub mcc: f64,
    /// Fraction admitted by the rectangular/cuboid block model.
    pub rfb: f64,
    /// Fraction delivered by the information-free greedy router.
    pub greedy: f64,
    /// Mean adaptivity (allowed directions per hop) of delivered MCC routes.
    pub mcc_adaptivity: f64,
    /// Mean adaptivity of delivered block-model routes.
    pub rfb_adaptivity: f64,
    /// Mean source-detection cost of MCC routing.
    pub detection_cost: f64,
    /// Fraction of trials with both endpoints safe.
    pub endpoints_safe: f64,
}

/// One row of the protocol-overhead tables (E5/E7).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Injected fault count.
    pub faults: usize,
    /// Mean messages of the distributed labelling phase.
    pub labelling_msgs: f64,
    /// Mean rounds to labelling convergence.
    pub labelling_rounds: f64,
    /// Mean messages of component identification.
    pub compid_msgs: f64,
    /// Mean messages of the identification walks.
    pub ident_msgs: f64,
    /// Mean messages of boundary construction.
    pub boundary_msgs: f64,
    /// Mean total construction messages.
    pub total_msgs: f64,
}

/// One row of the incremental-maintenance churn tables (E12).
///
/// Every column is a deterministic count — no timings — so churn rows are
/// golden-snapshot stable across machines and thread counts.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ChurnRow {
    /// Fault population (held stable by pairing each heal with an inject).
    pub faults: usize,
    /// Churn rounds applied per seed.
    pub rounds: usize,
    /// Mean faults injected per seed across the whole trace.
    pub injected: f64,
    /// Mean faults healed per seed across the whole trace.
    pub healed: f64,
    /// Mean node statuses touched by the incremental repairs per seed —
    /// the work actually done; scales with perturbation size, not mesh
    /// size.
    pub statuses_repaired: f64,
    /// Mean unsafe-node count after the final round.
    pub unsafe_end: f64,
    /// Mean MCC count after the final round.
    pub mccs_end: f64,
    /// Fraction of per-round equivalence checks (incremental vs
    /// from-scratch) that matched. The runner refuses to report anything
    /// but `1.0`.
    pub verified: f64,
}

/// One row of the labelling-convergence tables (E7, protocol layer only).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LabellingRow {
    /// Injected fault count.
    pub faults: usize,
    /// Mean messages to convergence.
    pub messages: f64,
    /// Mean rounds to convergence.
    pub rounds: f64,
    /// Mean peak per-round message volume.
    pub max_inflight: f64,
    /// Fraction of seeds that reached quiescence within the round budget.
    pub converged: f64,
}

fn expect_regions(scenario: Scenario) -> Vec<RegionRow> {
    match runner::run_scenario(&scenario)
        .expect("programmatic scenario is valid")
        .rows
    {
        TableRows::Regions(rows) => rows,
        _ => unreachable!("regions scenario produced a different table"),
    }
}

fn expect_routing(scenario: Scenario) -> Vec<RoutingRow> {
    match runner::run_scenario(&scenario)
        .expect("programmatic scenario is valid")
        .rows
    {
        TableRows::Routing(rows) => rows,
        _ => unreachable!("routing scenario produced a different table"),
    }
}

fn expect_overhead(scenario: Scenario) -> Vec<OverheadRow> {
    match runner::run_scenario(&scenario)
        .expect("programmatic scenario is valid")
        .rows
    {
        TableRows::Overhead(rows) => rows,
        _ => unreachable!("overhead scenario produced a different table"),
    }
}

/// E1 — fault-region sizes in a 2-D mesh, per fault count.
pub fn region_sweep_2d(width: i32, fault_counts: &[usize], seeds: u64) -> Vec<RegionRow> {
    expect_regions(Scenario::regions_2d(width, fault_counts, seeds))
}

/// E2 — fault-region sizes in a 3-D mesh, per fault count.
pub fn region_sweep_3d(k: i32, fault_counts: &[usize], seeds: u64) -> Vec<RegionRow> {
    expect_regions(Scenario::regions_3d(k, fault_counts, seeds))
}

/// E3/E6 — routing success rates and path metrics in a 2-D mesh.
pub fn routing_sweep_2d(width: i32, fault_counts: &[usize], trials: u64) -> Vec<RoutingRow> {
    expect_routing(Scenario::routing_2d(width, fault_counts, trials))
}

/// E4/E6 — routing success rates and path metrics in a 3-D mesh.
pub fn routing_sweep_3d(k: i32, fault_counts: &[usize], trials: u64) -> Vec<RoutingRow> {
    expect_routing(Scenario::routing_3d(k, fault_counts, trials))
}

/// E5/E7 — distributed-construction overhead in a 2-D mesh.
pub fn overhead_sweep_2d(width: i32, fault_counts: &[usize], seeds: u64) -> Vec<OverheadRow> {
    expect_overhead(Scenario::overhead_2d(width, fault_counts, seeds))
}

/// E7 (3-D) — distributed labelling convergence in a 3-D mesh, plus the
/// detection-flood cost of one routing request (reported in the
/// `boundary_msgs` column).
pub fn overhead_sweep_3d(k: i32, fault_counts: &[usize], seeds: u64) -> Vec<OverheadRow> {
    expect_overhead(Scenario::overhead_3d(k, fault_counts, seeds))
}

fn expect_labelling(scenario: Scenario) -> Vec<LabellingRow> {
    match runner::run_scenario(&scenario)
        .expect("programmatic scenario is valid")
        .rows
    {
        TableRows::Labelling(rows) => rows,
        _ => unreachable!("labelling scenario produced a different table"),
    }
}

/// E7 (protocol layer) — distributed labelling convergence alone in a 2-D
/// mesh, seed-parallel on the flat engine.
pub fn labelling_sweep_2d(width: i32, fault_counts: &[usize], seeds: u64) -> Vec<LabellingRow> {
    expect_labelling(Scenario::labelling_2d(width, fault_counts, seeds))
}

/// E7 (protocol layer) — distributed labelling convergence alone in a 3-D
/// mesh, seed-parallel on the flat engine.
pub fn labelling_sweep_3d(k: i32, fault_counts: &[usize], seeds: u64) -> Vec<LabellingRow> {
    expect_labelling(Scenario::labelling_3d(k, fault_counts, seeds))
}

/// E8 — clustered-fault ablation: region sizes under clustered instead of
/// uniform fault placement (stressing the models with large connected
/// regions).
pub fn region_sweep_2d_clustered(
    width: i32,
    fault_counts: &[usize],
    clusters: usize,
    seeds: u64,
) -> Vec<RegionRow> {
    let mut sc = Scenario::regions_2d(width, fault_counts, seeds);
    sc.regime = fault_model::FaultRegime::Clustered { clusters };
    expect_regions(sc)
}

/// E8 (routing) — success rates under clustered faults in 3-D.
pub fn routing_sweep_3d_clustered(
    k: i32,
    fault_counts: &[usize],
    clusters: usize,
    trials: u64,
) -> Vec<RoutingRow> {
    let mut sc = Scenario::routing_3d(k, fault_counts, trials);
    sc.regime = fault_model::FaultRegime::Clustered { clusters };
    expect_routing(sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_sweep_2d_monotone_models() {
        let rows = region_sweep_2d(16, &[4, 16], 8);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.mcc <= r.rfb, "MCC must capture fewer: {r:?}");
            assert!(r.mcc <= r.mcc_worst && r.mcc_worst <= r.mcc_union);
        }
        assert!(rows[1].rfb >= rows[0].rfb);
    }

    #[test]
    fn routing_sweep_2d_orderings() {
        let rows = routing_sweep_2d(12, &[8], 24);
        let r = rows[0];
        assert!((r.mcc - r.oracle).abs() < 1e-12, "MCC condition is exact");
        assert!(r.rfb <= r.mcc + 1e-12);
        assert!(r.greedy <= r.oracle + 1e-12);
    }

    #[test]
    fn routing_sweep_3d_orderings() {
        let rows = routing_sweep_3d(6, &[10], 12);
        let r = rows[0];
        assert!((r.mcc - r.oracle).abs() < 1e-12);
        assert!(r.rfb <= r.mcc + 1e-12);
    }

    #[test]
    fn overhead_rows_scale() {
        let rows = overhead_sweep_2d(12, &[2, 10], 4);
        assert!(rows[1].total_msgs > rows[0].total_msgs * 0.8);
        assert!(rows[0].labelling_msgs > 0.0);
    }

    #[test]
    fn overhead_3d_runs() {
        let rows = overhead_sweep_3d(6, &[5], 3);
        assert!(rows[0].labelling_msgs > 0.0);
    }

    #[test]
    fn labelling_sweeps_run_both_dims() {
        let rows2 = labelling_sweep_2d(16, &[4, 40], 6);
        assert_eq!(rows2.len(), 2);
        assert!(rows2.iter().all(|r| r.converged == 1.0));
        // Every node announces once, so the floor is the directed-edge
        // count; more faults mean more re-announcements.
        assert!(rows2[0].messages >= (2 * (2 * 16 * 15)) as f64);
        assert!(rows2[1].messages >= rows2[0].messages);
        let rows3 = labelling_sweep_3d(6, &[10], 4);
        assert!(rows3[0].converged == 1.0 && rows3[0].rounds >= 2.0);
    }

    #[test]
    fn clustered_sweeps_run() {
        let rows = region_sweep_2d_clustered(12, &[8], 2, 4);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].mcc <= rows[0].rfb + 1e-12);
    }
}
