//! # mcc-bench — experiment harness for the ICPP 2005 reproduction
//!
//! Workload generators, parameter sweeps and aggregation for every table
//! and figure of the evaluation (see `EXPERIMENTS.md` at the workspace
//! root). The `tables` binary prints the rows; the criterion benches under
//! `benches/` time the kernels that regenerate them.
//!
//! Sweeps parallelize over seeds with crossbeam scoped threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fault_model::stats::{region_stats_2d, region_stats_3d};
use fault_model::BorderPolicy;
use mcc_protocols::boundary2::build_pipeline_2d;
use mcc_protocols::labelling::{DistLabelling2, DistLabelling3};
use mcc_routing::trial::{run_trial_2d, run_trial_3d};
use mesh_topo::coord::{c2, c3};
use mesh_topo::{FaultSpec, Frame2, Frame3, Mesh2D, Mesh3D, C2, C3};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One row of the fault-region size tables (E1/E2).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RegionRow {
    /// Injected fault count.
    pub faults: usize,
    /// Mean healthy nodes captured by MCCs (canonical orientation).
    pub mcc: f64,
    /// Mean healthy nodes captured in the worst orientation.
    pub mcc_worst: f64,
    /// Mean healthy nodes captured in some orientation (union).
    pub mcc_union: f64,
    /// Mean healthy nodes captured by rectangular/cuboid blocks.
    pub rfb: f64,
    /// Mean number of MCCs.
    pub mcc_regions: f64,
    /// Mean number of blocks.
    pub rfb_regions: f64,
}

/// One row of the routing success-rate tables (E3/E4/E6).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RoutingRow {
    /// Injected fault count.
    pub faults: usize,
    /// Fraction of trials with a true minimal path (ground truth).
    pub oracle: f64,
    /// Fraction admitted by the MCC condition (== oracle by Theorems 1–2).
    pub mcc: f64,
    /// Fraction admitted by the rectangular/cuboid block model.
    pub rfb: f64,
    /// Fraction delivered by the information-free greedy router.
    pub greedy: f64,
    /// Mean adaptivity (allowed directions per hop) of delivered MCC routes.
    pub mcc_adaptivity: f64,
    /// Mean adaptivity of delivered block-model routes.
    pub rfb_adaptivity: f64,
    /// Mean source-detection cost of MCC routing.
    pub detection_cost: f64,
    /// Fraction of trials with both endpoints safe.
    pub endpoints_safe: f64,
}

/// One row of the protocol-overhead tables (E5/E7).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Injected fault count.
    pub faults: usize,
    /// Mean messages of the distributed labelling phase.
    pub labelling_msgs: f64,
    /// Mean rounds to labelling convergence.
    pub labelling_rounds: f64,
    /// Mean messages of component identification.
    pub compid_msgs: f64,
    /// Mean messages of the identification walks.
    pub ident_msgs: f64,
    /// Mean messages of boundary construction.
    pub boundary_msgs: f64,
    /// Mean total construction messages.
    pub total_msgs: f64,
}

fn parallel_seeds<T: Send, F>(seeds: std::ops::Range<u64>, f: F) -> Vec<T>
where
    F: Fn(u64) -> T + Sync,
{
    let out: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::new());
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let seeds: Vec<u64> = seeds.collect();
    crossbeam::thread::scope(|scope| {
        for chunk in seeds.chunks(seeds.len().div_ceil(threads).max(1)) {
            let out = &out;
            let f = &f;
            scope.spawn(move |_| {
                for &seed in chunk {
                    let v = f(seed);
                    out.lock().push((seed, v));
                }
            });
        }
    })
    .expect("sweep thread panicked");
    let mut results = out.into_inner();
    results.sort_by_key(|(s, _)| *s);
    results.into_iter().map(|(_, v)| v).collect()
}

/// E1 — fault-region sizes in a 2-D mesh, per fault count.
pub fn region_sweep_2d(width: i32, fault_counts: &[usize], seeds: u64) -> Vec<RegionRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds(0..seeds, |seed| {
                let mut mesh = Mesh2D::new(width, width);
                FaultSpec::uniform(n, seed ^ ((n as u64) << 32)).inject_2d(&mut mesh, &[]);
                region_stats_2d(&mesh, BorderPolicy::BorderSafe)
            });
            let k = stats.len() as f64;
            RegionRow {
                faults: n,
                mcc: stats.iter().map(|s| s.mcc_sacrificed as f64).sum::<f64>() / k,
                mcc_worst: stats.iter().map(|s| s.mcc_sacrificed_worst as f64).sum::<f64>() / k,
                mcc_union: stats.iter().map(|s| s.mcc_sacrificed_union as f64).sum::<f64>() / k,
                rfb: stats.iter().map(|s| s.rfb_sacrificed as f64).sum::<f64>() / k,
                mcc_regions: stats.iter().map(|s| s.mcc_count as f64).sum::<f64>() / k,
                rfb_regions: stats.iter().map(|s| s.rfb_count as f64).sum::<f64>() / k,
            }
        })
        .collect()
}

/// E2 — fault-region sizes in a 3-D mesh, per fault count.
pub fn region_sweep_3d(k: i32, fault_counts: &[usize], seeds: u64) -> Vec<RegionRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds(0..seeds, |seed| {
                let mut mesh = Mesh3D::kary(k);
                FaultSpec::uniform(n, seed ^ ((n as u64) << 32)).inject_3d(&mut mesh, &[]);
                region_stats_3d(&mesh, BorderPolicy::BorderSafe)
            });
            let kk = stats.len() as f64;
            RegionRow {
                faults: n,
                mcc: stats.iter().map(|s| s.mcc_sacrificed as f64).sum::<f64>() / kk,
                mcc_worst: stats.iter().map(|s| s.mcc_sacrificed_worst as f64).sum::<f64>() / kk,
                mcc_union: stats.iter().map(|s| s.mcc_sacrificed_union as f64).sum::<f64>() / kk,
                rfb: stats.iter().map(|s| s.rfb_sacrificed as f64).sum::<f64>() / kk,
                mcc_regions: stats.iter().map(|s| s.mcc_count as f64).sum::<f64>() / kk,
                rfb_regions: stats.iter().map(|s| s.rfb_count as f64).sum::<f64>() / kk,
            }
        })
        .collect()
}

fn random_pair_2d(rng: &mut SmallRng, w: i32, min_dist: u32) -> (C2, C2) {
    loop {
        let s = c2(rng.gen_range(0..w), rng.gen_range(0..w));
        let d = c2(rng.gen_range(0..w), rng.gen_range(0..w));
        if s.dist(d) >= min_dist {
            return (s, d);
        }
    }
}

fn random_pair_3d(rng: &mut SmallRng, k: i32, min_dist: u32) -> (C3, C3) {
    loop {
        let s = c3(rng.gen_range(0..k), rng.gen_range(0..k), rng.gen_range(0..k));
        let d = c3(rng.gen_range(0..k), rng.gen_range(0..k), rng.gen_range(0..k));
        if s.dist(d) >= min_dist {
            return (s, d);
        }
    }
}

/// E3/E6 — routing success rates and path metrics in a 2-D mesh.
pub fn routing_sweep_2d(width: i32, fault_counts: &[usize], trials: u64) -> Vec<RoutingRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let results = parallel_seeds(0..trials, |seed| {
                let mut rng =
                    SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9) ^ n as u64);
                let (s, d) = random_pair_2d(&mut rng, width, width as u32 / 2);
                let mut mesh = Mesh2D::new(width, width);
                FaultSpec::uniform(n, rng.gen()).inject_2d(&mut mesh, &[s, d]);
                run_trial_2d(&mesh, s, d, rng.gen())
            });
            aggregate_routing(n, &results)
        })
        .collect()
}

/// E4/E6 — routing success rates and path metrics in a 3-D mesh.
pub fn routing_sweep_3d(k: i32, fault_counts: &[usize], trials: u64) -> Vec<RoutingRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let results = parallel_seeds(0..trials, |seed| {
                let mut rng =
                    SmallRng::seed_from_u64(seed.wrapping_mul(0x51ed_270b) ^ n as u64);
                let (s, d) = random_pair_3d(&mut rng, k, k as u32);
                let mut mesh = Mesh3D::kary(k);
                FaultSpec::uniform(n, rng.gen()).inject_3d(&mut mesh, &[s, d]);
                run_trial_3d(&mesh, s, d, rng.gen())
            });
            aggregate_routing(n, &results)
        })
        .collect()
}

fn aggregate_routing(n: usize, results: &[mcc_routing::trial::TrialResult]) -> RoutingRow {
    let k = results.len() as f64;
    let frac = |f: &dyn Fn(&mcc_routing::trial::TrialResult) -> bool| {
        results.iter().filter(|t| f(t)).count() as f64 / k
    };
    let delivered: Vec<_> = results.iter().filter(|t| t.mcc_delivered).collect();
    let rfb_delivered: Vec<_> = results.iter().filter(|t| t.rfb_adaptivity > 0.0).collect();
    RoutingRow {
        faults: n,
        oracle: frac(&|t| t.oracle_ok),
        mcc: frac(&|t| t.mcc_ok),
        rfb: frac(&|t| t.rfb_ok),
        greedy: frac(&|t| t.greedy_ok),
        mcc_adaptivity: if delivered.is_empty() {
            0.0
        } else {
            delivered.iter().map(|t| t.mcc_adaptivity).sum::<f64>() / delivered.len() as f64
        },
        rfb_adaptivity: if rfb_delivered.is_empty() {
            0.0
        } else {
            rfb_delivered.iter().map(|t| t.rfb_adaptivity).sum::<f64>()
                / rfb_delivered.len() as f64
        },
        detection_cost: if delivered.is_empty() {
            0.0
        } else {
            delivered.iter().map(|t| t.detection_cost as f64).sum::<f64>()
                / delivered.len() as f64
        },
        endpoints_safe: frac(&|t| t.endpoints_safe),
    }
}

/// E5/E7 — distributed-construction overhead in a 2-D mesh.
pub fn overhead_sweep_2d(width: i32, fault_counts: &[usize], seeds: u64) -> Vec<OverheadRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds(0..seeds, |seed| {
                let mut mesh = Mesh2D::new(width, width);
                // Interior faults: the identification walks assume regions
                // do not touch the mesh border (see DESIGN.md).
                let mut rng = SmallRng::seed_from_u64(seed ^ ((n as u64) << 24));
                let mut placed = 0;
                while placed < n {
                    let c = c2(rng.gen_range(1..width - 1), rng.gen_range(1..width - 1));
                    if mesh.is_healthy(c) {
                        mesh.inject_fault(c);
                        placed += 1;
                    }
                }
                let (_, stats) = build_pipeline_2d(&mesh, Frame2::identity(&mesh));
                stats
            });
            let k = stats.len() as f64;
            OverheadRow {
                faults: n,
                labelling_msgs: stats.iter().map(|s| s.labelling.messages as f64).sum::<f64>()
                    / k,
                labelling_rounds: stats.iter().map(|s| s.labelling.rounds as f64).sum::<f64>()
                    / k,
                compid_msgs: stats.iter().map(|s| s.components.messages as f64).sum::<f64>() / k,
                ident_msgs: stats
                    .iter()
                    .map(|s| s.identification.messages as f64)
                    .sum::<f64>()
                    / k,
                boundary_msgs: stats.iter().map(|s| s.boundary.messages as f64).sum::<f64>() / k,
                total_msgs: stats.iter().map(|s| s.total_messages() as f64).sum::<f64>() / k,
            }
        })
        .collect()
}

/// E7 (3-D) — distributed labelling convergence in a 3-D mesh, plus the
/// detection-flood cost of one routing request (reported in the
/// `boundary_msgs` column).
pub fn overhead_sweep_3d(k: i32, fault_counts: &[usize], seeds: u64) -> Vec<OverheadRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds(0..seeds, |seed| {
                let mut mesh = Mesh3D::kary(k);
                FaultSpec::uniform(n, seed ^ ((n as u64) << 24))
                    .inject_3d(&mut mesh, &[c3(0, 0, 0), c3(k - 1, k - 1, k - 1)]);
                let lab = DistLabelling3::run(&mesh, Frame3::identity(&mesh));
                let lab_stats = lab.stats;
                let detect = if lab.status(c3(0, 0, 0)).is_safe()
                    && lab.status(c3(k - 1, k - 1, k - 1)).is_safe()
                {
                    let (_, st) = mcc_protocols::detect3::detect_distributed_3d(
                        &mesh,
                        &lab,
                        c3(0, 0, 0),
                        c3(k - 1, k - 1, k - 1),
                    );
                    st.messages
                } else {
                    0
                };
                (lab_stats, detect)
            });
            let kk = stats.len() as f64;
            OverheadRow {
                faults: n,
                labelling_msgs: stats.iter().map(|(s, _)| s.messages as f64).sum::<f64>() / kk,
                labelling_rounds: stats.iter().map(|(s, _)| s.rounds as f64).sum::<f64>() / kk,
                compid_msgs: 0.0,
                ident_msgs: 0.0,
                boundary_msgs: stats.iter().map(|(_, d)| *d as f64).sum::<f64>() / kk,
                total_msgs: stats.iter().map(|(s, d)| (s.messages + d) as f64).sum::<f64>() / kk,
            }
        })
        .collect()
}

/// E8 — clustered-fault ablation: region sizes under clustered instead of
/// uniform fault placement (stressing the models with large connected
/// regions).
pub fn region_sweep_2d_clustered(
    width: i32,
    fault_counts: &[usize],
    clusters: usize,
    seeds: u64,
) -> Vec<RegionRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let stats = parallel_seeds(0..seeds, |seed| {
                let mut mesh = Mesh2D::new(width, width);
                FaultSpec::clustered(n, clusters, seed ^ ((n as u64) << 32))
                    .inject_2d(&mut mesh, &[]);
                region_stats_2d(&mesh, BorderPolicy::BorderSafe)
            });
            let k = stats.len() as f64;
            RegionRow {
                faults: n,
                mcc: stats.iter().map(|s| s.mcc_sacrificed as f64).sum::<f64>() / k,
                mcc_worst: stats.iter().map(|s| s.mcc_sacrificed_worst as f64).sum::<f64>() / k,
                mcc_union: stats.iter().map(|s| s.mcc_sacrificed_union as f64).sum::<f64>() / k,
                rfb: stats.iter().map(|s| s.rfb_sacrificed as f64).sum::<f64>() / k,
                mcc_regions: stats.iter().map(|s| s.mcc_count as f64).sum::<f64>() / k,
                rfb_regions: stats.iter().map(|s| s.rfb_count as f64).sum::<f64>() / k,
            }
        })
        .collect()
}

/// E8 (routing) — success rates under clustered faults in 3-D.
pub fn routing_sweep_3d_clustered(
    k: i32,
    fault_counts: &[usize],
    clusters: usize,
    trials: u64,
) -> Vec<RoutingRow> {
    fault_counts
        .iter()
        .map(|&n| {
            let results = parallel_seeds(0..trials, |seed| {
                let mut rng =
                    SmallRng::seed_from_u64(seed.wrapping_mul(0xa511_e9b3) ^ n as u64);
                let (s, d) = random_pair_3d(&mut rng, k, k as u32);
                let mut mesh = Mesh3D::kary(k);
                FaultSpec::clustered(n, clusters, rng.gen()).inject_3d(&mut mesh, &[s, d]);
                run_trial_3d(&mesh, s, d, rng.gen())
            });
            aggregate_routing(n, &results)
        })
        .collect()
}

/// Distributed labelling overhead for 2-D: `(mean rounds, mean messages)`.
pub fn labelling_rounds_2d(width: i32, n: usize, seeds: u64) -> (f64, f64) {
    let stats = parallel_seeds(0..seeds, |seed| {
        let mut mesh = Mesh2D::new(width, width);
        FaultSpec::uniform(n, seed).inject_2d(&mut mesh, &[]);
        DistLabelling2::run(&mesh, Frame2::identity(&mesh)).stats
    });
    let k = stats.len() as f64;
    (
        stats.iter().map(|s| s.rounds as f64).sum::<f64>() / k,
        stats.iter().map(|s| s.messages as f64).sum::<f64>() / k,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_sweep_2d_monotone_models() {
        let rows = region_sweep_2d(16, &[4, 16], 8);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.mcc <= r.rfb, "MCC must capture fewer: {r:?}");
            assert!(r.mcc <= r.mcc_worst && r.mcc_worst <= r.mcc_union);
        }
        assert!(rows[1].rfb >= rows[0].rfb);
    }

    #[test]
    fn routing_sweep_2d_orderings() {
        let rows = routing_sweep_2d(12, &[8], 24);
        let r = rows[0];
        assert!((r.mcc - r.oracle).abs() < 1e-12, "MCC condition is exact");
        assert!(r.rfb <= r.mcc + 1e-12);
        assert!(r.greedy <= r.oracle + 1e-12);
    }

    #[test]
    fn routing_sweep_3d_orderings() {
        let rows = routing_sweep_3d(6, &[10], 12);
        let r = rows[0];
        assert!((r.mcc - r.oracle).abs() < 1e-12);
        assert!(r.rfb <= r.mcc + 1e-12);
    }

    #[test]
    fn overhead_rows_scale() {
        let rows = overhead_sweep_2d(12, &[2, 10], 4);
        assert!(rows[1].total_msgs > rows[0].total_msgs * 0.8);
        assert!(rows[0].labelling_msgs > 0.0);
    }

    #[test]
    fn overhead_3d_runs() {
        let rows = overhead_sweep_3d(6, &[5], 3);
        assert!(rows[0].labelling_msgs > 0.0);
    }
}
