//! Declarative experiment descriptions.
//!
//! A [`Scenario`] captures everything the paper's tables vary — mesh
//! dimensions (2-D or 3-D), fault pattern, fault-count ramp, border policy,
//! router choice and seed range — as *data*, loaded from TOML files under
//! `scenarios/` (see `EXPERIMENTS.md` for the experiment → file map). The
//! runner in [`crate::runner`] turns a scenario into table rows; new
//! workloads are new TOML files, not new code.
//!
//! The schema:
//!
//! ```toml
//! name = "E1 — healthy nodes captured by fault regions (2-D)"
//! table = "regions"            # regions | routing | overhead
//!                              # | labelling | churn | load
//!
//! [mesh]
//! dims = [32, 32]              # two entries for 2-D, three for 3-D
//! wrap = false                 # true: torus (every axis wraps around)
//!
//! [faults]
//! counts = [5, 10, 20, 40]    # the fault-count ramp
//! pattern = "uniform"          # uniform | clustered (legacy shorthand)
//! clusters = 3                 # cluster count (clustered pattern only)
//! border = "safe"              # safe | blocked
//!
//! [faults.regime]              # extended fault regimes — exclusive with
//! kind = "front"               # `pattern`; kind = uniform | clustered |
//! fronts = 2                   # front | plane | transient | adversarial.
//! # clusters = 3               # clustered: cluster seed points
//! # axis = "x"                 # plane: sweep axis (x | y | z)
//! # period = 6                 # transient: rounds per on/off cycle
//! # duty = 0.5                 # transient: faulty fraction of the period
//! # restarts = 8               # adversarial: hill-climb restarts
//!
//! [run]
//! seeds = [0, 400]             # half-open seed range [start, end)
//! router = "all"               # all | mcc | rfb | greedy (routing tables)
//! min_dist_frac = 0.5          # min endpoint separation / largest dim
//! pairs_per_seed = 1           # routing pairs batched per fault config
//! threads = 0                  # worker threads (0 = all cores)
//! ```
//!
//! Load scenarios (`table = "load"`) add a `[load]` section describing an
//! open-loop saturation ramp (see [`LoadProfile`] and [`crate::loadgen`]):
//!
//! ```toml
//! [load]
//! initial_rps = 100            # offered rate of the first step
//! increment_rps = 100          # rate increase per step
//! max_rps = 500                # rate ceiling (ramp stops here)
//! step_secs = 0.5              # wall-clock seconds per step
//! mix = [0.6, 0.3, 0.1]        # routing / labelling / churn proportions
//! pool = 4                     # mesh instances per geometry
//! alt_dims = [8, 8, 8]         # optional second geometry (mixed 2-D/3-D)
//! p99_limit_ms = 50.0          # saturation threshold on step p99
//! fail_limit = 0.05            # saturation threshold on failure rate
//! ```
//!
//! `pairs_per_seed` (routing tables only) batches that many
//! source/destination pairs against **one** fault configuration per seed,
//! amortizing model construction through the prepared-mesh pipeline
//! (DESIGN.md §9). With the default of 1 the runner reproduces the
//! historical sampling order bit-for-bit; larger values sample the fault
//! set first and then draw healthy pairs from it, which is what makes
//! large-mesh sweeps such as `e9_routing_2d_large.toml` tractable.

use std::fmt;

use fault_model::{BorderPolicy, FaultRegime};
use mesh_topo::{Mesh2D, Mesh3D, C2, C3};
use serde::{Deserialize, Serialize};

use crate::toml_lite::{Doc, ParseError, Table, Value};

/// Which family of tables the scenario produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableKind {
    /// Fault-region capture statistics (tables E1/E2).
    Regions,
    /// Routing success rates and path metrics (tables E3/E4/E6).
    Routing,
    /// Distributed-construction overhead (tables E5/E7).
    Overhead,
    /// Distributed labelling convergence alone (E7-style, any dims).
    Labelling,
    /// Incremental model maintenance under fault churn (E12-style): each
    /// seed runs an inject/heal trace through
    /// [`fault_model::incremental::IncrementalModels2`] (or the 3-D twin)
    /// and verifies every repaired model against from-scratch recomputation.
    Churn,
    /// Saturation-style load generation (E13/E14-style): an open-loop
    /// request stream over a long-lived pool of prepared meshes and
    /// incremental-churn models, ramping the offered rate until latency or
    /// failure rate saturates. Driven by the `loadgen` binary through
    /// [`crate::loadgen::run_load`] — the `tables` runner rejects it
    /// because step reports carry wall-clock timings.
    Load,
    /// Resident-service saturation ramp (E15-style): the same open-loop
    /// `[load]` ramp, but offered to a journaled `mesh-service` instance —
    /// requests pass each shard's bounded admission queue and are shed
    /// with typed errors beyond saturation. Needs both a `[load]` and a
    /// `[service]` section; driven by the `loadgen` binary through
    /// [`crate::service_load::run_service_load`].
    Service,
}

impl TableKind {
    /// The table name as it appears in scenario files.
    pub fn as_str(self) -> &'static str {
        match self {
            TableKind::Regions => "regions",
            TableKind::Routing => "routing",
            TableKind::Overhead => "overhead",
            TableKind::Labelling => "labelling",
            TableKind::Churn => "churn",
            TableKind::Load => "load",
            TableKind::Service => "service",
        }
    }
}

/// Mesh dimensions: 2-D width×height or 3-D x×y×z.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeshDims {
    /// A 2-D mesh.
    D2 {
        /// Extent along X.
        width: i32,
        /// Extent along Y.
        height: i32,
    },
    /// A 3-D mesh.
    D3 {
        /// Extent along X.
        x: i32,
        /// Extent along Y.
        y: i32,
        /// Extent along Z.
        z: i32,
    },
}

impl MeshDims {
    /// The largest extent, used to scale endpoint-separation requirements.
    pub fn max_extent(self) -> i32 {
        match self {
            MeshDims::D2 { width, height } => width.max(height),
            MeshDims::D3 { x, y, z } => x.max(y).max(z),
        }
    }

    /// Total node count.
    pub fn nodes(self) -> usize {
        match self {
            MeshDims::D2 { width, height } => width as usize * height as usize,
            MeshDims::D3 { x, y, z } => x as usize * y as usize * z as usize,
        }
    }

    /// The smallest extent (tori need 3 per axis).
    pub fn min_extent(self) -> i32 {
        match self {
            MeshDims::D2 { width, height } => width.min(height),
            MeshDims::D3 { x, y, z } => x.min(y).min(z),
        }
    }

    /// The network diameter: the largest topology-aware distance between
    /// two nodes. `(k-1)` per mesh axis, `⌊k/2⌋` per torus axis.
    pub fn diameter(self, wrap: bool) -> u32 {
        let axis = |k: i32| {
            if wrap {
                (k / 2) as u32
            } else {
                (k - 1) as u32
            }
        };
        match self {
            MeshDims::D2 { width, height } => axis(width) + axis(height),
            MeshDims::D3 { x, y, z } => axis(x) + axis(y) + axis(z),
        }
    }
}

/// Open-loop ramp description for `table = "load"` scenarios (the
/// `[load]` TOML section).
///
/// The loadgen harness offers `initial_rps` requests per second for
/// `step_secs`, then raises the rate by `increment_rps` per step until
/// either `max_rps` is reached or a step saturates (its p99 latency
/// crosses `p99_limit_ms` or its failure rate crosses `fail_limit`).
/// Each step's requests are drawn from three operation classes — routing
/// trials, labelling-convergence runs and fault-churn batches — in the
/// proportions of `mix`, interleaved deterministically (see
/// [`crate::loadgen`]). The pool holds `pool` long-lived mesh instances
/// per geometry; `alt_dims` adds a second geometry so one scenario can
/// drive a mixed 2-D/3-D pool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Offered request rate of the first step (requests/second).
    pub initial_rps: u32,
    /// Rate increase per step. May be 0 only when `max_rps == initial_rps`
    /// (a single fixed-rate step) — the ramp must terminate.
    pub increment_rps: u32,
    /// Rate ceiling: the ramp stops after the step that reaches it.
    pub max_rps: u32,
    /// Wall-clock seconds per step; with the offered rate it fixes the
    /// (deterministic) request count of each step.
    pub step_secs: f64,
    /// Workload-mix weight of routing trials.
    pub mix_routing: f64,
    /// Workload-mix weight of labelling-convergence operations.
    pub mix_labelling: f64,
    /// Workload-mix weight of fault-churn operations.
    pub mix_churn: f64,
    /// Long-lived mesh instances per geometry.
    pub pool: usize,
    /// Optional second mesh geometry (2 or 3 extents): the pool then holds
    /// `pool` instances of **both**, and requests spread across all of
    /// them round-robin — a mixed-dimensionality workload in one scenario.
    pub alt_dims: Option<MeshDims>,
    /// Saturation threshold on a step's p99 latency, in milliseconds.
    pub p99_limit_ms: f64,
    /// Saturation threshold on a step's failure rate, in `(0, 1]`.
    pub fail_limit: f64,
}

/// Schema defaults for the optional `[load]` keys.
impl LoadProfile {
    /// Default pool size per geometry.
    pub const DEFAULT_POOL: usize = 2;
    /// Default p99 saturation threshold (milliseconds).
    pub const DEFAULT_P99_LIMIT_MS: f64 = 50.0;
    /// Default failure-rate saturation threshold.
    pub const DEFAULT_FAIL_LIMIT: f64 = 0.05;

    /// Mix weights in class order (routing, labelling, churn).
    pub fn mix(&self) -> [f64; 3] {
        [self.mix_routing, self.mix_labelling, self.mix_churn]
    }

    /// Number of ramp steps the profile can run before hitting `max_rps`
    /// (saturation may stop it earlier).
    pub fn max_steps(&self) -> usize {
        if self.increment_rps == 0 {
            return 1;
        }
        1 + (self.max_rps.saturating_sub(self.initial_rps)).div_ceil(self.increment_rps) as usize
    }
}

/// Admission/durability knobs for `table = "service"` scenarios (the
/// `[service]` TOML section), layered on top of the `[load]` ramp.
///
/// The loadgen `service` driver turns every planned op into a request
/// against a resident `mesh-service` instance. Each shard fronts a
/// bounded deterministic virtual-time queue: `queue_cap` bounds its
/// depth, `deadline_ms` bounds the simulated wait a request may incur
/// before it is shed, and `cost_us` assigns each op class (route, query,
/// churn — in that order) its virtual service time. `snapshot_every`
/// sets the shard's auto-snapshot cadence in churn generations (0 never
/// snapshots, leaving the whole history in the WAL).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Bound on each shard's virtual admission-queue depth.
    pub queue_cap: usize,
    /// Bound on the simulated wait before a request is shed, milliseconds.
    pub deadline_ms: f64,
    /// Virtual service time per op class (route, query, churn), µs.
    pub cost_us: [u64; 3],
    /// Auto-snapshot cadence in churn generations (0 = never).
    pub snapshot_every: u64,
}

impl Default for ServiceProfile {
    fn default() -> ServiceProfile {
        ServiceProfile {
            queue_cap: 64,
            deadline_ms: 50.0,
            cost_us: [200, 100, 400],
            snapshot_every: 32,
        }
    }
}

/// Which router's columns the report keeps (routing tables).
///
/// Every trial still computes the labelling and the oracle (ground
/// truth); deselecting a model skips the rest of its work — MCC
/// extraction/detection/routing, the block model, or the greedy walk —
/// and hides its columns from the rendered table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterChoice {
    /// All models: MCC, the block baseline, and greedy.
    #[default]
    All,
    /// The paper's MCC router only.
    Mcc,
    /// The rectangular/cuboid fault-block baseline only.
    Rfb,
    /// The information-free greedy baseline only.
    Greedy,
}

impl RouterChoice {
    fn as_str(self) -> &'static str {
        match self {
            RouterChoice::All => "all",
            RouterChoice::Mcc => "mcc",
            RouterChoice::Rfb => "rfb",
            RouterChoice::Greedy => "greedy",
        }
    }

    /// Whether MCC columns are reported.
    pub fn wants_mcc(self) -> bool {
        matches!(self, RouterChoice::All | RouterChoice::Mcc)
    }

    /// Whether block-baseline columns are reported.
    pub fn wants_rfb(self) -> bool {
        matches!(self, RouterChoice::All | RouterChoice::Rfb)
    }

    /// Whether greedy columns are reported.
    pub fn wants_greedy(self) -> bool {
        matches!(self, RouterChoice::All | RouterChoice::Greedy)
    }
}

/// A fully-validated, runnable experiment description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name, shown as the table header.
    pub name: String,
    /// Table family to produce.
    pub table: TableKind,
    /// Mesh dimensions.
    pub dims: MeshDims,
    /// Wrap-around topology: `true` runs the scenario on a torus (every
    /// axis closed on itself), `false` on the paper's open mesh.
    pub wrap: bool,
    /// Fault-count ramp (one table row per entry).
    pub fault_counts: Vec<usize>,
    /// How faults come into being (spatial law and, for schedule-bearing
    /// regimes, temporal law). The legacy `pattern = "uniform"/"clustered"`
    /// keys map onto [`FaultRegime::Uniform`]/[`FaultRegime::Clustered`];
    /// the extended regimes live in the `[faults.regime]` section.
    pub regime: FaultRegime,
    /// Labelling border policy.
    pub border: BorderPolicy,
    /// Router/model selection for routing tables.
    pub router: RouterChoice,
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive). `seed_end - seed_start` trials per row.
    pub seed_end: u64,
    /// Minimum endpoint separation as a fraction of the largest extent
    /// (routing tables only).
    pub min_dist_frac: f64,
    /// Source/destination pairs evaluated per seed against one fault
    /// configuration (routing tables only; see the module docs).
    pub pairs_per_seed: u64,
    /// Worker-thread budget for the runner: `0` (the default) uses every
    /// detected core, any other value caps the pool. The `MCC_THREADS`
    /// environment variable overrides this knob at run time.
    #[serde(default)]
    pub threads: usize,
    /// Churn rounds per seed (churn tables only; `[churn] rounds`). Each
    /// round heals and re-injects `max(1, round(churn_rate × faults))`
    /// faults, keeping the fault population stable.
    #[serde(default)]
    pub churn_rounds: usize,
    /// Fraction of the fault population perturbed per churn round
    /// (`[churn] rate`, in `(0, 1)`).
    #[serde(default = "default_churn_rate")]
    pub churn_rate: f64,
    /// Open-loop ramp description (`[load]` section; load and service
    /// tables). For these scenarios `seed_start` doubles as the master
    /// seed of the deterministic request schedule.
    #[serde(default)]
    pub load: Option<LoadProfile>,
    /// Admission/durability knobs (`[service]` section; service tables
    /// only).
    #[serde(default)]
    pub service: Option<ServiceProfile>,
}

/// The serde/schema default for [`Scenario::churn_rate`].
fn default_churn_rate() -> f64 {
    0.25
}

/// Why a scenario failed to load.
///
/// Parse failures stay **typed**: the offending line number of the TOML
/// text travels with the error (the `tables` binary prints it and exits
/// nonzero), instead of being flattened into a string the caller can no
/// longer inspect.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The TOML text is malformed; carries the 1-based offending line.
    Parse(ParseError),
    /// The document parsed but violates the scenario schema or holds
    /// knob values the runner cannot execute meaningfully.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "{e}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Parse(e) => Some(e),
            ScenarioError::Invalid(_) => None,
        }
    }
}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> ScenarioError {
        ScenarioError::Parse(e)
    }
}

impl ScenarioError {
    /// Build a schema-violation error with the given description.
    pub fn new(msg: impl Into<String>) -> ScenarioError {
        ScenarioError::Invalid(msg.into())
    }

    /// The offending TOML line, for parse failures.
    pub fn line(&self) -> Option<usize> {
        match self {
            ScenarioError::Parse(e) => Some(e.line),
            ScenarioError::Invalid(_) => None,
        }
    }
}

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::new(msg)
}

fn require<'a>(table: &'a Table, section: &str, key: &str) -> Result<&'a Value, ScenarioError> {
    table
        .get(key)
        .ok_or_else(|| invalid(format!("missing `{key}` in [{section}]")))
}

fn int_list(value: &Value, what: &str) -> Result<Vec<i64>, ScenarioError> {
    value
        .as_array()
        .ok_or_else(|| invalid(format!("`{what}` must be an array")))?
        .iter()
        .map(|v| {
            v.as_int()
                .ok_or_else(|| invalid(format!("`{what}` must hold integers")))
        })
        .collect()
}

/// Parse a 2- or 3-entry integer array into [`MeshDims`] (range rules
/// live in [`Scenario::validate`], one source of truth).
fn parse_dims(value: &Value, what: &str) -> Result<MeshDims, ScenarioError> {
    let raw: Vec<i32> = int_list(value, what)?
        .into_iter()
        .map(|d| {
            i32::try_from(d).map_err(|_| invalid(format!("`{what}` entries are out of range")))
        })
        .collect::<Result<_, _>>()?;
    match raw.as_slice() {
        [w, h] => Ok(MeshDims::D2 {
            width: *w,
            height: *h,
        }),
        [x, y, z] => Ok(MeshDims::D3 {
            x: *x,
            y: *y,
            z: *z,
        }),
        other => Err(invalid(format!(
            "`{what}` needs 2 or 3 entries, got {}",
            other.len()
        ))),
    }
}

/// Parse the typed `[faults.regime]` table. Every kind has its own key
/// whitelist, so a knob belonging to a different regime (or a typo) is a
/// hard error rather than silently ignored; range rules that need the
/// rest of the scenario (axis vs. dimensionality, table compatibility)
/// live in [`Scenario::validate`].
fn parse_regime(reg: &Table) -> Result<FaultRegime, ScenarioError> {
    let kind = require(reg, "faults.regime", "kind")?
        .as_str()
        .ok_or_else(|| invalid("`faults.regime.kind` must be a string"))?;
    let allowed: &[&str] = match kind {
        "uniform" => &["kind"],
        "clustered" => &["kind", "clusters"],
        "front" => &["kind", "fronts"],
        "plane" => &["kind", "axis"],
        "transient" => &["kind", "period", "duty"],
        "adversarial" => &["kind", "restarts"],
        other => {
            return Err(invalid(format!(
                "`faults.regime.kind` must be \"uniform\", \"clustered\", \
                 \"front\", \"plane\", \"transient\" or \"adversarial\", \
                 got {other:?}"
            )))
        }
    };
    if let Some(k) = reg.keys().find(|k| !allowed.contains(&k.as_str())) {
        return Err(invalid(format!(
            "unknown key `{k}` in [faults.regime] for kind \"{kind}\" \
             (allowed: {})",
            allowed.join(", ")
        )));
    }
    let int_knob = |key: &str, default: i64| -> Result<i64, ScenarioError> {
        match reg.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_int()
                .ok_or_else(|| invalid(format!("`faults.regime.{key}` must be an integer"))),
        }
    };
    Ok(match kind {
        "uniform" => FaultRegime::Uniform,
        "clustered" => {
            let clusters = int_knob("clusters", 3)?;
            if clusters < 1 {
                return Err(invalid("`faults.regime.clusters` must be at least 1"));
            }
            FaultRegime::Clustered {
                clusters: clusters as usize,
            }
        }
        "front" => {
            let fronts = int_knob("fronts", 3)?;
            if fronts < 1 {
                return Err(invalid("`faults.regime.fronts` must be at least 1"));
            }
            FaultRegime::CorrelatedFront {
                fronts: fronts as usize,
            }
        }
        "plane" => {
            let axis = match reg.get("axis").map(|v| v.as_str()) {
                None | Some(Some("x")) => 0,
                Some(Some("y")) => 1,
                Some(Some("z")) => 2,
                other => {
                    return Err(invalid(format!(
                        "`faults.regime.axis` must be \"x\", \"y\" or \"z\", got {other:?}"
                    )))
                }
            };
            FaultRegime::SweepingPlane { axis }
        }
        "transient" => {
            let period = int_knob("period", 4)?;
            if period < 2 {
                return Err(invalid(
                    "`faults.regime.period` must be at least 2 rounds (a site \
                     needs both an on and an off phase)",
                ));
            }
            let duty = match reg.get("duty") {
                None => 0.5,
                Some(v) => v
                    .as_float()
                    .ok_or_else(|| invalid("`faults.regime.duty` must be a number"))?,
            };
            FaultRegime::TransientSchedule {
                period: period as usize,
                duty,
            }
        }
        "adversarial" => {
            let restarts = int_knob("restarts", 8)?;
            if restarts < 1 {
                return Err(invalid("`faults.regime.restarts` must be at least 1"));
            }
            FaultRegime::AdversarialBoundary {
                restarts: restarts as usize,
            }
        }
        _ => unreachable!("kind already matched"),
    })
}

impl Scenario {
    /// Number of seeds/trials per fault count.
    pub fn seed_count(&self) -> u64 {
        self.seed_end - self.seed_start
    }

    /// Inject one `(fault count, seed)` cell into a 2-D mesh through the
    /// active fault regime, never touching `protected` nodes. Returns the
    /// number of faults injected. For the legacy regimes this reproduces
    /// the historical `FaultSpec` RNG sequence bit-for-bit.
    pub fn inject_2d(&self, mesh: &mut Mesh2D, count: usize, seed: u64, protected: &[C2]) -> usize {
        self.regime
            .inject_2d(mesh, count, seed, protected, self.border)
    }

    /// 3-D twin of [`Scenario::inject_2d`].
    pub fn inject_3d(&self, mesh: &mut Mesh3D, count: usize, seed: u64, protected: &[C3]) -> usize {
        self.regime
            .inject_3d(mesh, count, seed, protected, self.border)
    }

    /// A copy with the seed range shrunk to roughly a tenth, for `--quick`
    /// smoke runs. The shrunk range is clamped to at least one seed, so a
    /// scenario with fewer than 10 seeds never collapses to the empty
    /// range [`Scenario::validate`] rejects (pinned by
    /// `quick_never_empties_small_seed_ranges` below).
    ///
    /// Load scenarios additionally shrink their ramp: steps get a tenth of
    /// the wall-clock (clamped to 50 ms) and the rate ceiling is clamped
    /// to three steps, so `loadgen --quick` is a sub-second smoke run.
    pub fn quick(&self) -> Scenario {
        let mut s = self.clone();
        s.seed_end = s.seed_start + (self.seed_count() / 10).max(1);
        if let Some(load) = &mut s.load {
            load.step_secs = (load.step_secs / 10.0).max(0.05);
            load.max_rps = load
                .max_rps
                .min(load.initial_rps.saturating_add(2 * load.increment_rps));
        }
        s
    }

    /// Parse and validate a scenario from TOML text.
    ///
    /// Malformed TOML surfaces as [`ScenarioError::Parse`] with the
    /// offending line; schema and knob violations as
    /// [`ScenarioError::Invalid`].
    pub fn from_toml(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = Doc::parse(text)?;
        Scenario::from_doc(&doc)
    }

    /// Load a scenario from a TOML file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| invalid(format!("cannot read {}: {e}", path.display())))?;
        Scenario::from_toml(&text)
    }

    fn from_doc(doc: &Doc) -> Result<Scenario, ScenarioError> {
        let name = require(&doc.root, "", "name")?
            .as_str()
            .ok_or_else(|| invalid("`name` must be a string"))?
            .to_string();
        let table = match require(&doc.root, "", "table")?.as_str() {
            Some("regions") => TableKind::Regions,
            Some("routing") => TableKind::Routing,
            Some("overhead") => TableKind::Overhead,
            Some("labelling") => TableKind::Labelling,
            Some("churn") => TableKind::Churn,
            Some("load") => TableKind::Load,
            Some("service") => TableKind::Service,
            other => {
                return Err(invalid(format!(
                    "`table` must be \"regions\", \"routing\", \"overhead\", \
                     \"labelling\", \"churn\", \"load\" or \"service\", got {other:?}"
                )))
            }
        };

        let mesh = doc
            .sections
            .get("mesh")
            .ok_or_else(|| invalid("missing [mesh] section"))?;
        // Only a conversion guard here; the 2..=4096 range rule lives in
        // `Scenario::validate` (one source of truth for load-time and
        // programmatic scenarios alike).
        let dims = parse_dims(require(mesh, "mesh", "dims")?, "mesh.dims")?;
        let wrap = match mesh.get("wrap") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| invalid("`mesh.wrap` must be a boolean"))?,
        };

        let faults = doc
            .sections
            .get("faults")
            .ok_or_else(|| invalid("missing [faults] section"))?;
        let fault_counts: Vec<usize> =
            int_list(require(faults, "faults", "counts")?, "faults.counts")?
                .into_iter()
                .map(|v| {
                    usize::try_from(v).map_err(|_| invalid("`faults.counts` must be non-negative"))
                })
                .collect::<Result<_, _>>()?;
        // Satellite rule: `[faults]` rejects unknown keys outright (a
        // typo'd or misplaced knob — e.g. `clusters` under `pattern =
        // "uniform"` — used to be silently ignored).
        const FAULTS_KEYS: [&str; 4] = ["counts", "pattern", "clusters", "border"];
        if let Some(k) = faults.keys().find(|k| !FAULTS_KEYS.contains(&k.as_str())) {
            return Err(invalid(format!(
                "unknown key `{k}` in [faults] (allowed: counts, pattern, \
                 clusters, border; extended regimes go in [faults.regime])"
            )));
        }
        let regime = match doc.sections.get("faults.regime") {
            Some(reg) => {
                if faults.contains_key("pattern") || faults.contains_key("clusters") {
                    return Err(invalid(
                        "`faults.pattern`/`faults.clusters` and a [faults.regime] \
                         section are mutually exclusive — the regime table already \
                         names the sampling law",
                    ));
                }
                parse_regime(reg)?
            }
            None => match faults.get("pattern").map(|v| v.as_str()) {
                None | Some(Some("uniform")) => {
                    if faults.contains_key("clusters") {
                        return Err(invalid(
                            "`faults.clusters` is only meaningful with `pattern = \
                             \"clustered\"` (it would be silently ignored here)",
                        ));
                    }
                    FaultRegime::Uniform
                }
                Some(Some("clustered")) => {
                    let clusters = faults.get("clusters").and_then(Value::as_int).unwrap_or(3);
                    if clusters < 1 {
                        return Err(invalid("`faults.clusters` must be at least 1"));
                    }
                    FaultRegime::Clustered {
                        clusters: clusters as usize,
                    }
                }
                other => {
                    return Err(invalid(format!(
                        "`faults.pattern` must be \"uniform\" or \"clustered\", got {other:?}"
                    )))
                }
            },
        };
        let border = match faults.get("border").map(|v| v.as_str()) {
            None | Some(Some("safe")) => BorderPolicy::BorderSafe,
            Some(Some("blocked")) => BorderPolicy::BorderBlocked,
            other => {
                return Err(invalid(format!(
                    "`faults.border` must be \"safe\" or \"blocked\", got {other:?}"
                )))
            }
        };

        let run = doc
            .sections
            .get("run")
            .ok_or_else(|| invalid("missing [run] section"))?;
        let seeds = int_list(require(run, "run", "seeds")?, "run.seeds")?;
        let (seed_start, seed_end) = match seeds.as_slice() {
            [start, end] if *start >= 0 && *end >= 0 => (*start as u64, *end as u64),
            _ => {
                return Err(invalid(
                    "`run.seeds` must be `[start, end]` with non-negative entries",
                ))
            }
        };
        let router = match run.get("router").map(|v| v.as_str()) {
            None | Some(Some("all")) => RouterChoice::All,
            Some(Some("mcc")) => RouterChoice::Mcc,
            Some(Some("rfb")) => RouterChoice::Rfb,
            Some(Some("greedy")) => RouterChoice::Greedy,
            other => {
                return Err(invalid(format!(
                    "`run.router` must be \"all\", \"mcc\", \"rfb\" or \"greedy\", got {other:?}"
                )))
            }
        };
        let min_dist_frac = match run.get("min_dist_frac") {
            None => 0.5,
            Some(v) => v
                .as_float()
                .ok_or_else(|| invalid("`run.min_dist_frac` must be a number"))?,
        };
        let pairs_per_seed = match run.get("pairs_per_seed") {
            None => 1,
            Some(v) => {
                let p = v
                    .as_int()
                    .ok_or_else(|| invalid("`run.pairs_per_seed` must be an integer"))?;
                u64::try_from(p)
                    .map_err(|_| invalid("`run.pairs_per_seed` must be non-negative"))?
            }
        };
        let threads = match run.get("threads") {
            None => 0,
            Some(v) => {
                let t = v
                    .as_int()
                    .ok_or_else(|| invalid("`run.threads` must be an integer"))?;
                usize::try_from(t).map_err(|_| invalid("`run.threads` must be non-negative"))?
            }
        };

        let (churn_rounds, churn_rate) = match doc.sections.get("churn") {
            None => (0, default_churn_rate()),
            Some(churn) => {
                if table != TableKind::Churn {
                    return Err(invalid(
                        "a [churn] section is only meaningful with `table = \"churn\"`",
                    ));
                }
                let rounds = require(churn, "churn", "rounds")?
                    .as_int()
                    .ok_or_else(|| invalid("`churn.rounds` must be an integer"))?;
                let rounds = usize::try_from(rounds)
                    .map_err(|_| invalid("`churn.rounds` must be non-negative"))?;
                let rate = match churn.get("rate") {
                    None => default_churn_rate(),
                    Some(v) => v
                        .as_float()
                        .ok_or_else(|| invalid("`churn.rate` must be a number"))?,
                };
                (rounds, rate)
            }
        };
        if table == TableKind::Churn && !doc.sections.contains_key("churn") {
            return Err(invalid("churn scenarios need a [churn] section"));
        }

        let load = match doc.sections.get("load") {
            None => None,
            Some(load) => {
                if table != TableKind::Load && table != TableKind::Service {
                    return Err(invalid(
                        "a [load] section is only meaningful with `table = \"load\"` \
                         or `table = \"service\"`",
                    ));
                }
                let int_knob = |key: &str| -> Result<u32, ScenarioError> {
                    let v = require(load, "load", key)?
                        .as_int()
                        .ok_or_else(|| invalid(format!("`load.{key}` must be an integer")))?;
                    u32::try_from(v).map_err(|_| invalid(format!("`load.{key}` is out of range")))
                };
                let float_knob = |key: &str, default: f64| -> Result<f64, ScenarioError> {
                    match load.get(key) {
                        None => Ok(default),
                        Some(v) => v
                            .as_float()
                            .ok_or_else(|| invalid(format!("`load.{key}` must be a number"))),
                    }
                };
                let step_secs = require(load, "load", "step_secs")?
                    .as_float()
                    .ok_or_else(|| invalid("`load.step_secs` must be a number"))?;
                let mix: Vec<f64> = require(load, "load", "mix")?
                    .as_array()
                    .ok_or_else(|| invalid("`load.mix` must be an array"))?
                    .iter()
                    .map(|v| {
                        v.as_float()
                            .ok_or_else(|| invalid("`load.mix` must hold numbers"))
                    })
                    .collect::<Result<_, _>>()?;
                let [mix_routing, mix_labelling, mix_churn] = match mix.as_slice() {
                    [r, l, c] => [*r, *l, *c],
                    other => {
                        return Err(invalid(format!(
                            "`load.mix` needs exactly 3 entries \
                             (routing, labelling, churn weights), got {}",
                            other.len()
                        )))
                    }
                };
                let pool = match load.get("pool") {
                    None => LoadProfile::DEFAULT_POOL,
                    Some(v) => {
                        let p = v
                            .as_int()
                            .ok_or_else(|| invalid("`load.pool` must be an integer"))?;
                        usize::try_from(p)
                            .map_err(|_| invalid("`load.pool` must be non-negative"))?
                    }
                };
                let alt_dims = match load.get("alt_dims") {
                    None => None,
                    Some(v) => Some(parse_dims(v, "load.alt_dims")?),
                };
                Some(LoadProfile {
                    initial_rps: int_knob("initial_rps")?,
                    increment_rps: int_knob("increment_rps")?,
                    max_rps: int_knob("max_rps")?,
                    step_secs,
                    mix_routing,
                    mix_labelling,
                    mix_churn,
                    pool,
                    alt_dims,
                    p99_limit_ms: float_knob("p99_limit_ms", LoadProfile::DEFAULT_P99_LIMIT_MS)?,
                    fail_limit: float_knob("fail_limit", LoadProfile::DEFAULT_FAIL_LIMIT)?,
                })
            }
        };
        if table == TableKind::Load && load.is_none() {
            return Err(invalid("load scenarios need a [load] section"));
        }

        let service = match doc.sections.get("service") {
            None => None,
            Some(sec) => {
                if table != TableKind::Service {
                    return Err(invalid(
                        "a [service] section is only meaningful with `table = \"service\"`",
                    ));
                }
                let defaults = ServiceProfile::default();
                let queue_cap = match sec.get("queue_cap") {
                    None => defaults.queue_cap,
                    Some(v) => {
                        let q = v
                            .as_int()
                            .ok_or_else(|| invalid("`service.queue_cap` must be an integer"))?;
                        usize::try_from(q)
                            .map_err(|_| invalid("`service.queue_cap` must be non-negative"))?
                    }
                };
                let deadline_ms = match sec.get("deadline_ms") {
                    None => defaults.deadline_ms,
                    Some(v) => v
                        .as_float()
                        .ok_or_else(|| invalid("`service.deadline_ms` must be a number"))?,
                };
                let cost_us = match sec.get("cost_us") {
                    None => defaults.cost_us,
                    Some(v) => {
                        let raw = int_list(v, "service.cost_us")?;
                        let raw: Vec<u64> = raw
                            .into_iter()
                            .map(|c| {
                                u64::try_from(c).map_err(|_| {
                                    invalid("`service.cost_us` must hold non-negative entries")
                                })
                            })
                            .collect::<Result<_, _>>()?;
                        match raw.as_slice() {
                            [r, q, c] => [*r, *q, *c],
                            other => {
                                return Err(invalid(format!(
                                    "`service.cost_us` needs exactly 3 entries \
                                     (route, query, churn costs), got {}",
                                    other.len()
                                )))
                            }
                        }
                    }
                };
                let snapshot_every = match sec.get("snapshot_every") {
                    None => defaults.snapshot_every,
                    Some(v) => {
                        let s = v.as_int().ok_or_else(|| {
                            invalid("`service.snapshot_every` must be an integer")
                        })?;
                        u64::try_from(s)
                            .map_err(|_| invalid("`service.snapshot_every` must be non-negative"))?
                    }
                };
                Some(ServiceProfile {
                    queue_cap,
                    deadline_ms,
                    cost_us,
                    snapshot_every,
                })
            }
        };
        if table == TableKind::Service {
            if load.is_none() {
                return Err(invalid(
                    "service scenarios need a [load] section (the ramp)",
                ));
            }
            if service.is_none() {
                return Err(invalid("service scenarios need a [service] section"));
            }
        }

        let scenario = Scenario {
            name,
            table,
            dims,
            wrap,
            fault_counts,
            regime,
            border,
            router,
            seed_start,
            seed_end,
            min_dist_frac,
            pairs_per_seed,
            threads,
            churn_rounds,
            churn_rate,
            load,
            service,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Check every knob combination the runner cannot execute
    /// meaningfully and reject it with a descriptive error.
    ///
    /// Runs at scenario-load time ([`Scenario::from_toml`] /
    /// [`Scenario::load`]) and again at the top of
    /// [`crate::runner::run_scenario`], so programmatically built
    /// scenarios (public fields, legacy constructors) cannot slip past
    /// it either. Guards against the historical silent misbehaviors:
    /// `pairs_per_seed = 0` produced empty rows rendered as `NaN`
    /// columns, fault counts at or beyond the node count spun the
    /// rejection sampler forever (a fault *rate* outside [0, 1)), and
    /// zero- or one-wide meshes panicked deep inside the topology layer.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let dims = match self.dims {
            MeshDims::D2 { width, height } => vec![width, height],
            MeshDims::D3 { x, y, z } => vec![x, y, z],
        };
        if dims.iter().any(|&d| !(2..=4096).contains(&d)) {
            return Err(invalid(format!(
                "every mesh dimension must be in 2..=4096, got {dims:?}"
            )));
        }
        if self.wrap && self.dims.min_extent() < 3 {
            return Err(invalid(format!(
                "a torus needs every dimension >= 3 (distinct +/- neighbors), got {dims:?}"
            )));
        }
        if self.wrap && self.table == TableKind::Overhead {
            // The identification/boundary walk pipeline assumes seam-free
            // region geometry (the torus analog of the mesh pipeline's
            // off-border assumption); wrap-around overhead sweeps would
            // report message counts for walks that silently treat the
            // seam as a border (see DESIGN.md §10).
            return Err(invalid(
                "overhead scenarios run the identification-walk pipeline, which \
                 does not support wrap-around topologies; use `table = \
                 \"labelling\"` for torus protocol sweeps",
            ));
        }
        if self.fault_counts.is_empty() {
            return Err(invalid("`faults.counts` must not be empty"));
        }
        let nodes = self.dims.nodes();
        // Routing rows must keep two healthy endpoints per trial; other
        // tables only need the fault rate below 1.
        let capacity = match self.table {
            TableKind::Routing => nodes.saturating_sub(2),
            _ => nodes.saturating_sub(1),
        };
        if let Some(&n) = self.fault_counts.iter().find(|&&n| n > capacity) {
            return Err(invalid(format!(
                "fault count {n} leaves the {nodes}-node network no room \
                 (fault rate must stay below 1{}); largest usable count is {capacity}",
                if self.table == TableKind::Routing {
                    ", with two healthy routing endpoints"
                } else {
                    ""
                }
            )));
        }
        if self.seed_start >= self.seed_end {
            return Err(invalid(format!(
                "`run.seeds` must be a non-empty range, got [{}, {})",
                self.seed_start, self.seed_end
            )));
        }
        if !self.min_dist_frac.is_finite() || !(0.0..=1.0).contains(&self.min_dist_frac) {
            return Err(invalid(format!(
                "`run.min_dist_frac` must be in [0, 1], got {}",
                self.min_dist_frac
            )));
        }
        if self.pairs_per_seed < 1 {
            return Err(invalid(
                "`run.pairs_per_seed` must be a positive integer (0 pairs would \
                 produce empty rows)",
            ));
        }
        // `0` means "all detected cores"; anything else is a literal pool
        // size. A four-digit cap catches unit mix-ups (e.g. a nanosecond
        // or node count pasted into the wrong knob) before the runner
        // tries to spawn thousands of OS threads.
        if self.threads > 1024 {
            return Err(invalid(format!(
                "`run.threads` must be 0 (all cores) or a pool size up to 1024, \
                 got {}",
                self.threads
            )));
        }
        if self.table == TableKind::Churn {
            if self.churn_rounds < 1 {
                return Err(invalid(
                    "`churn.rounds` must be at least 1 (zero rounds would churn \
                     nothing and verify nothing)",
                ));
            }
            if !(self.churn_rate.is_finite() && 0.0 < self.churn_rate && self.churn_rate < 1.0) {
                return Err(invalid(format!(
                    "`churn.rate` must be a finite fraction in (0, 1) of the fault \
                     population perturbed per round, got {}",
                    self.churn_rate
                )));
            }
            if let Some(&n) = self.fault_counts.iter().find(|&&n| n == 0) {
                return Err(invalid(format!(
                    "churn scenarios need at least one fault to heal per round; \
                     fault count {n} leaves the heal half of every batch empty"
                )));
            }
        }
        self.validate_regime()?;
        if self.table == TableKind::Routing {
            let min_dist = (self.dims.max_extent() as f64 * self.min_dist_frac).round() as u32;
            let diameter = self.dims.diameter(self.wrap);
            if min_dist > diameter {
                return Err(invalid(format!(
                    "`run.min_dist_frac` asks for pairs at least {min_dist} hops \
                     apart, but the {} diameter is only {diameter}; the pair \
                     sampler could never terminate",
                    if self.wrap { "torus" } else { "mesh" }
                )));
            }
        }
        match (&self.load, self.table) {
            (None, TableKind::Load) => {
                return Err(invalid("load scenarios need a [load] section"));
            }
            (None, TableKind::Service) => {
                return Err(invalid(
                    "service scenarios need a [load] section (the ramp)",
                ));
            }
            (Some(_), t) if t != TableKind::Load && t != TableKind::Service => {
                return Err(invalid(
                    "a [load] section is only meaningful with `table = \"load\"` \
                     or `table = \"service\"`",
                ));
            }
            (Some(load), _) => self.validate_load(load)?,
            _ => {}
        }
        match (&self.service, self.table) {
            (None, TableKind::Service) => {
                return Err(invalid("service scenarios need a [service] section"));
            }
            (Some(_), t) if t != TableKind::Service => {
                return Err(invalid(
                    "a [service] section is only meaningful with `table = \"service\"`",
                ));
            }
            (Some(service), TableKind::Service) => self.validate_service(service)?,
            _ => {}
        }
        Ok(())
    }

    /// Regime knob ranges plus regime/table compatibility (split out of
    /// [`Scenario::validate`] for readability).
    ///
    /// The schedule-bearing regimes only make sense where their schedule
    /// can actually run: the sweeping plane and transient regimes churn
    /// through `IncrementalModels*::try_apply` (churn tables), but also
    /// provide a static round-0 sample any table can use; the adversarial
    /// regime targets one source/destination pair per fault
    /// configuration, so it needs a routing table with `pairs_per_seed =
    /// 1` on a non-wrapping mesh (its violation predicate is defined over
    /// the pair's canonical monotone frame). Request-driven churn
    /// (load/service tables) would fight a regime-prescribed schedule, so
    /// those tables reject the transient regime.
    fn validate_regime(&self) -> Result<(), ScenarioError> {
        match self.regime {
            FaultRegime::Clustered { clusters } if clusters < 1 => {
                return Err(invalid("the clustered regime needs at least 1 cluster"));
            }
            FaultRegime::CorrelatedFront { fronts } if fronts < 1 => {
                return Err(invalid("the front regime needs at least 1 epicenter"));
            }
            FaultRegime::SweepingPlane { axis } => {
                let axes = match self.dims {
                    MeshDims::D2 { .. } => 2,
                    MeshDims::D3 { .. } => 3,
                };
                if axis >= axes {
                    return Err(invalid(format!(
                        "`faults.regime.axis` \"{}\" needs a 3-D mesh, but \
                         `mesh.dims` is {axes}-dimensional",
                        ["x", "y", "z"].get(axis).copied().unwrap_or("?")
                    )));
                }
            }
            FaultRegime::TransientSchedule { period, duty } => {
                if !(2..=1024).contains(&period) {
                    return Err(invalid(format!(
                        "`faults.regime.period` must be in 2..=1024 churn rounds, \
                         got {period}"
                    )));
                }
                if !(duty.is_finite() && 0.0 < duty && duty < 1.0) {
                    return Err(invalid(format!(
                        "`faults.regime.duty` must be a fraction in (0, 1) of the \
                         period a site spends faulty, got {duty}"
                    )));
                }
                if self.table == TableKind::Load || self.table == TableKind::Service {
                    return Err(invalid(
                        "the transient regime prescribes its own inject/heal \
                         schedule; load/service tables churn per request and \
                         would fight it — use uniform, clustered, front or plane",
                    ));
                }
            }
            FaultRegime::AdversarialBoundary { restarts } => {
                if !(1..=10_000).contains(&restarts) {
                    return Err(invalid(format!(
                        "`faults.regime.restarts` must be in 1..=10000, got {restarts}"
                    )));
                }
                if self.table != TableKind::Routing {
                    return Err(invalid(
                        "the adversarial regime searches against one routing pair; \
                         it only makes sense with `table = \"routing\"`",
                    ));
                }
                if self.wrap {
                    return Err(invalid(
                        "the adversarial regime's violation predicate needs the \
                         canonical monotone frame of a non-wrapping mesh; drop \
                         `mesh.wrap` or pick another regime",
                    ));
                }
                if self.pairs_per_seed != 1 {
                    return Err(invalid(
                        "the adversarial regime targets the trial pair it is \
                         injected against; `run.pairs_per_seed` must be 1",
                    ));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Service-profile knob rules (only called for `table = "service"`
    /// scenarios, after the shared `[load]` ramp rules).
    fn validate_service(&self, service: &ServiceProfile) -> Result<(), ScenarioError> {
        if !(1..=65_536).contains(&service.queue_cap) {
            return Err(invalid(format!(
                "`service.queue_cap` must be in 1..=65536, got {}",
                service.queue_cap
            )));
        }
        if !(service.deadline_ms.is_finite() && service.deadline_ms > 0.0) {
            return Err(invalid(format!(
                "`service.deadline_ms` must be a positive duration, got {}",
                service.deadline_ms
            )));
        }
        if service.cost_us.iter().any(|&c| c == 0 || c > 60_000_000) {
            return Err(invalid(format!(
                "`service.cost_us` entries must be in 1..=60,000,000 µs, got {:?}",
                service.cost_us
            )));
        }
        Ok(())
    }

    /// Load-profile knob rules (split out of [`Scenario::validate`] for
    /// readability; only called for `table = "load"` scenarios).
    fn validate_load(&self, load: &LoadProfile) -> Result<(), ScenarioError> {
        if load.initial_rps < 1 {
            return Err(invalid("`load.initial_rps` must be at least 1"));
        }
        if load.max_rps < load.initial_rps {
            return Err(invalid(format!(
                "`load.max_rps` ({}) must be at least `load.initial_rps` ({})",
                load.max_rps, load.initial_rps
            )));
        }
        if load.increment_rps == 0 && load.max_rps > load.initial_rps {
            return Err(invalid(
                "`load.increment_rps` must be positive when `max_rps` exceeds \
                 `initial_rps` (a zero increment could never finish the ramp)",
            ));
        }
        if load.initial_rps > 1_000_000 || load.max_rps > 1_000_000 {
            return Err(invalid(
                "`load` rates beyond 1,000,000 rps look like a unit mix-up",
            ));
        }
        if !(load.step_secs.is_finite() && 0.0 < load.step_secs && load.step_secs <= 60.0) {
            return Err(invalid(format!(
                "`load.step_secs` must be a finite duration in (0, 60], got {}",
                load.step_secs
            )));
        }
        let mix = load.mix();
        if mix.iter().any(|w| !w.is_finite() || *w < 0.0) || mix.iter().sum::<f64>() <= 0.0 {
            return Err(invalid(format!(
                "`load.mix` weights must be finite, non-negative and not all \
                 zero, got {mix:?}"
            )));
        }
        if !(1..=256).contains(&load.pool) {
            return Err(invalid(format!(
                "`load.pool` must be in 1..=256 instances per geometry, got {}",
                load.pool
            )));
        }
        if !(load.p99_limit_ms.is_finite() && load.p99_limit_ms > 0.0) {
            return Err(invalid(format!(
                "`load.p99_limit_ms` must be a positive duration, got {}",
                load.p99_limit_ms
            )));
        }
        if !(load.fail_limit.is_finite() && 0.0 < load.fail_limit && load.fail_limit <= 1.0) {
            return Err(invalid(format!(
                "`load.fail_limit` must be a fraction in (0, 1], got {}",
                load.fail_limit
            )));
        }
        if self.fault_counts.len() != 1 {
            return Err(invalid(format!(
                "load scenarios hold the fault population fixed per instance; \
                 `faults.counts` must have exactly 1 entry, got {}",
                self.fault_counts.len()
            )));
        }
        let count = self.fault_counts[0];
        if load.mix_churn > 0.0 && count == 0 {
            return Err(invalid(
                "a churn mix weight needs at least one fault to heal per batch",
            ));
        }
        // Every geometry in the pool must obey the same shape rules as the
        // primary mesh, keep two healthy routing endpoints, and admit the
        // endpoint-separation requirement.
        for dims in std::iter::once(self.dims).chain(load.alt_dims) {
            let extents = match dims {
                MeshDims::D2 { width, height } => vec![width, height],
                MeshDims::D3 { x, y, z } => vec![x, y, z],
            };
            if extents.iter().any(|&d| !(2..=4096).contains(&d)) {
                return Err(invalid(format!(
                    "every load-pool mesh dimension must be in 2..=4096, got {extents:?}"
                )));
            }
            if self.wrap && dims.min_extent() < 3 {
                return Err(invalid(format!(
                    "a torus needs every dimension >= 3, got {extents:?} in the load pool"
                )));
            }
            if count + 2 > dims.nodes() {
                return Err(invalid(format!(
                    "fault count {count} leaves the {}-node load-pool mesh no \
                     room for two healthy routing endpoints",
                    dims.nodes()
                )));
            }
            if load.mix_routing > 0.0 {
                let min_dist = (dims.max_extent() as f64 * self.min_dist_frac).round() as u32;
                let diameter = dims.diameter(self.wrap);
                if min_dist > diameter {
                    return Err(invalid(format!(
                        "`run.min_dist_frac` asks for routing pairs at least \
                         {min_dist} hops apart, but a load-pool geometry's \
                         diameter is only {diameter}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Serialize back to the TOML schema. Round-trips through
    /// [`Scenario::from_toml`].
    pub fn to_toml(&self) -> String {
        let mut doc = Doc::default();
        doc.root
            .insert("name".into(), Value::Str(self.name.clone()));
        doc.root
            .insert("table".into(), Value::Str(self.table.as_str().into()));

        let mut mesh = Table::new();
        let dims = match self.dims {
            MeshDims::D2 { width, height } => vec![width, height],
            MeshDims::D3 { x, y, z } => vec![x, y, z],
        };
        mesh.insert(
            "dims".into(),
            Value::Array(dims.into_iter().map(|d| Value::Int(d as i64)).collect()),
        );
        mesh.insert("wrap".into(), Value::Bool(self.wrap));
        doc.sections.insert("mesh".into(), mesh);

        let mut faults = Table::new();
        faults.insert(
            "counts".into(),
            Value::Array(
                self.fault_counts
                    .iter()
                    .map(|&n| Value::Int(n as i64))
                    .collect(),
            ),
        );
        // The legacy regimes keep emitting the legacy `pattern` keys so
        // every pre-regime scenario file round-trips byte-for-byte; the
        // extended regimes render as a typed [faults.regime] section
        // (which the BTreeMap section order places right after [faults]).
        match self.regime {
            FaultRegime::Uniform => {
                faults.insert("pattern".into(), Value::Str("uniform".into()));
            }
            FaultRegime::Clustered { clusters } => {
                faults.insert("pattern".into(), Value::Str("clustered".into()));
                faults.insert("clusters".into(), Value::Int(clusters as i64));
            }
            _ => {}
        }
        let border = match self.border {
            BorderPolicy::BorderSafe => "safe",
            BorderPolicy::BorderBlocked => "blocked",
        };
        faults.insert("border".into(), Value::Str(border.into()));
        doc.sections.insert("faults".into(), faults);

        if !self.regime.is_legacy() {
            let mut reg = Table::new();
            reg.insert("kind".into(), Value::Str(self.regime.name().into()));
            match self.regime {
                FaultRegime::CorrelatedFront { fronts } => {
                    reg.insert("fronts".into(), Value::Int(fronts as i64));
                }
                FaultRegime::SweepingPlane { axis } => {
                    reg.insert(
                        "axis".into(),
                        Value::Str(["x", "y", "z"][axis.min(2)].into()),
                    );
                }
                FaultRegime::TransientSchedule { period, duty } => {
                    reg.insert("period".into(), Value::Int(period as i64));
                    reg.insert("duty".into(), Value::Float(duty));
                }
                FaultRegime::AdversarialBoundary { restarts } => {
                    reg.insert("restarts".into(), Value::Int(restarts as i64));
                }
                FaultRegime::Uniform | FaultRegime::Clustered { .. } => {}
            }
            doc.sections.insert("faults.regime".into(), reg);
        }

        let mut run = Table::new();
        run.insert(
            "seeds".into(),
            Value::Array(vec![
                Value::Int(self.seed_start as i64),
                Value::Int(self.seed_end as i64),
            ]),
        );
        run.insert("router".into(), Value::Str(self.router.as_str().into()));
        run.insert("min_dist_frac".into(), Value::Float(self.min_dist_frac));
        run.insert(
            "pairs_per_seed".into(),
            Value::Int(self.pairs_per_seed as i64),
        );
        // Emitted only when set: the default (0 = all cores) stays
        // implicit so pre-existing scenario files round-trip byte-for-byte.
        if self.threads != 0 {
            run.insert("threads".into(), Value::Int(self.threads as i64));
        }
        doc.sections.insert("run".into(), run);

        // Emitted only for churn tables, mirroring the parse-time rule that
        // a [churn] section on any other table kind is rejected; non-churn
        // scenario files keep round-tripping byte-for-byte.
        if self.table == TableKind::Churn {
            let mut churn = Table::new();
            churn.insert("rounds".into(), Value::Int(self.churn_rounds as i64));
            churn.insert("rate".into(), Value::Float(self.churn_rate));
            doc.sections.insert("churn".into(), churn);
        }

        // Same rule for the load profile: only load tables carry one.
        if let Some(load) = &self.load {
            let mut sec = Table::new();
            sec.insert("initial_rps".into(), Value::Int(load.initial_rps as i64));
            sec.insert(
                "increment_rps".into(),
                Value::Int(load.increment_rps as i64),
            );
            sec.insert("max_rps".into(), Value::Int(load.max_rps as i64));
            sec.insert("step_secs".into(), Value::Float(load.step_secs));
            sec.insert(
                "mix".into(),
                Value::Array(load.mix().into_iter().map(Value::Float).collect()),
            );
            sec.insert("pool".into(), Value::Int(load.pool as i64));
            if let Some(alt) = load.alt_dims {
                let alt_extents = match alt {
                    MeshDims::D2 { width, height } => vec![width, height],
                    MeshDims::D3 { x, y, z } => vec![x, y, z],
                };
                sec.insert(
                    "alt_dims".into(),
                    Value::Array(
                        alt_extents
                            .into_iter()
                            .map(|d| Value::Int(d as i64))
                            .collect(),
                    ),
                );
            }
            sec.insert("p99_limit_ms".into(), Value::Float(load.p99_limit_ms));
            sec.insert("fail_limit".into(), Value::Float(load.fail_limit));
            doc.sections.insert("load".into(), sec);
        }

        // And only service tables carry a [service] section.
        if let Some(service) = &self.service {
            let mut sec = Table::new();
            sec.insert("queue_cap".into(), Value::Int(service.queue_cap as i64));
            sec.insert("deadline_ms".into(), Value::Float(service.deadline_ms));
            sec.insert(
                "cost_us".into(),
                Value::Array(
                    service
                        .cost_us
                        .iter()
                        .map(|&c| Value::Int(c as i64))
                        .collect(),
                ),
            );
            sec.insert(
                "snapshot_every".into(),
                Value::Int(service.snapshot_every as i64),
            );
            doc.sections.insert("service".into(), sec);
        }

        doc.render()
    }

    // ---- programmatic constructors used by the legacy sweep API ----

    fn base(
        name: &str,
        table: TableKind,
        dims: MeshDims,
        counts: &[usize],
        seeds: u64,
    ) -> Scenario {
        Scenario {
            name: name.to_string(),
            table,
            dims,
            wrap: false,
            fault_counts: counts.to_vec(),
            regime: FaultRegime::Uniform,
            border: BorderPolicy::BorderSafe,
            router: RouterChoice::All,
            seed_start: 0,
            seed_end: seeds,
            min_dist_frac: 0.5,
            pairs_per_seed: 1,
            threads: 0,
            churn_rounds: 0,
            churn_rate: default_churn_rate(),
            load: None,
            service: None,
        }
    }

    /// E15-style resident-service ramp: the `[load]` ramp of
    /// [`Scenario::load_2d`] offered to a journaled `mesh-service`
    /// instance with the given admission/durability profile.
    pub fn service_2d(
        width: i32,
        faults: usize,
        seed: u64,
        profile: LoadProfile,
        service: ServiceProfile,
    ) -> Scenario {
        let mut s = Scenario::load_2d(width, faults, seed, profile);
        s.name = "service 2-D".into();
        s.table = TableKind::Service;
        s.service = Some(service);
        s
    }

    /// E13/E14-style load scenario: an open-loop ramp over a pool of 2-D
    /// meshes (add `alt_dims` to the profile for a mixed 2-D/3-D pool).
    /// `seed` becomes the master seed of the deterministic request
    /// schedule.
    pub fn load_2d(width: i32, faults: usize, seed: u64, profile: LoadProfile) -> Scenario {
        let mut s = Scenario::base(
            "load 2-D",
            TableKind::Load,
            MeshDims::D2 {
                width,
                height: width,
            },
            &[faults],
            1,
        );
        s.seed_start = seed;
        s.seed_end = seed + 1;
        s.load = Some(profile);
        s
    }

    /// E12-style churn sweep over a square 2-D mesh: `rounds` inject/heal
    /// batches per seed, verified against from-scratch recomputation.
    pub fn churn_2d(width: i32, counts: &[usize], seeds: u64, rounds: usize) -> Scenario {
        let mut s = Scenario::base(
            "churn 2-D",
            TableKind::Churn,
            MeshDims::D2 {
                width,
                height: width,
            },
            counts,
            seeds,
        );
        s.churn_rounds = rounds;
        s
    }

    /// E12-style churn sweep over a k-ary 3-D mesh.
    pub fn churn_3d(k: i32, counts: &[usize], seeds: u64, rounds: usize) -> Scenario {
        let mut s = Scenario::base(
            "churn 3-D",
            TableKind::Churn,
            MeshDims::D3 { x: k, y: k, z: k },
            counts,
            seeds,
        );
        s.churn_rounds = rounds;
        s
    }

    /// E1-style region sweep over a square 2-D mesh.
    pub fn regions_2d(width: i32, counts: &[usize], seeds: u64) -> Scenario {
        Scenario::base(
            "regions 2-D",
            TableKind::Regions,
            MeshDims::D2 {
                width,
                height: width,
            },
            counts,
            seeds,
        )
    }

    /// E2-style region sweep over a k-ary 3-D mesh.
    pub fn regions_3d(k: i32, counts: &[usize], seeds: u64) -> Scenario {
        Scenario::base(
            "regions 3-D",
            TableKind::Regions,
            MeshDims::D3 { x: k, y: k, z: k },
            counts,
            seeds,
        )
    }

    /// E3/E6-style routing sweep over a square 2-D mesh.
    pub fn routing_2d(width: i32, counts: &[usize], trials: u64) -> Scenario {
        Scenario::base(
            "routing 2-D",
            TableKind::Routing,
            MeshDims::D2 {
                width,
                height: width,
            },
            counts,
            trials,
        )
    }

    /// E4/E6-style routing sweep over a k-ary 3-D mesh (endpoints at least
    /// `k` hops apart, matching the paper's setup).
    pub fn routing_3d(k: i32, counts: &[usize], trials: u64) -> Scenario {
        let mut s = Scenario::base(
            "routing 3-D",
            TableKind::Routing,
            MeshDims::D3 { x: k, y: k, z: k },
            counts,
            trials,
        );
        s.min_dist_frac = 1.0;
        s
    }

    /// E5/E7-style overhead sweep over a square 2-D mesh.
    pub fn overhead_2d(width: i32, counts: &[usize], seeds: u64) -> Scenario {
        Scenario::base(
            "overhead 2-D",
            TableKind::Overhead,
            MeshDims::D2 {
                width,
                height: width,
            },
            counts,
            seeds,
        )
    }

    /// E7-style overhead sweep over a k-ary 3-D mesh.
    pub fn overhead_3d(k: i32, counts: &[usize], seeds: u64) -> Scenario {
        Scenario::base(
            "overhead 3-D",
            TableKind::Overhead,
            MeshDims::D3 { x: k, y: k, z: k },
            counts,
            seeds,
        )
    }

    /// E7-style labelling-convergence sweep over a square 2-D mesh.
    pub fn labelling_2d(width: i32, counts: &[usize], seeds: u64) -> Scenario {
        Scenario::base(
            "labelling 2-D",
            TableKind::Labelling,
            MeshDims::D2 {
                width,
                height: width,
            },
            counts,
            seeds,
        )
    }

    /// E7-style labelling-convergence sweep over a k-ary 3-D mesh.
    pub fn labelling_3d(k: i32, counts: &[usize], seeds: u64) -> Scenario {
        Scenario::base(
            "labelling 3-D",
            TableKind::Labelling,
            MeshDims::D3 { x: k, y: k, z: k },
            counts,
            seeds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
        name = "demo"
        table = "routing"

        [mesh]
        dims = [16, 16, 16]

        [faults]
        counts = [10, 20]
        pattern = "clustered"
        clusters = 4
        border = "safe"

        [run]
        seeds = [0, 50]
        router = "mcc"
        min_dist_frac = 0.75
    "#;

    #[test]
    fn parses_full_schema() {
        let s = Scenario::from_toml(EXAMPLE).unwrap();
        assert_eq!(s.table, TableKind::Routing);
        assert_eq!(
            s.dims,
            MeshDims::D3 {
                x: 16,
                y: 16,
                z: 16
            }
        );
        assert_eq!(s.fault_counts, vec![10, 20]);
        assert_eq!(s.regime, FaultRegime::Clustered { clusters: 4 });
        assert_eq!(s.border, BorderPolicy::BorderSafe);
        assert_eq!(s.router, RouterChoice::Mcc);
        assert_eq!((s.seed_start, s.seed_end), (0, 50));
        assert_eq!(s.min_dist_frac, 0.75);
    }

    #[test]
    fn optional_fields_default() {
        let s = Scenario::from_toml(
            "name = \"d\"\ntable = \"regions\"\n[mesh]\ndims = [8, 8]\n\
             [faults]\ncounts = [4]\n[run]\nseeds = [0, 2]\n",
        )
        .unwrap();
        assert_eq!(s.regime, FaultRegime::Uniform);
        assert_eq!(s.border, BorderPolicy::BorderSafe);
        assert_eq!(s.router, RouterChoice::All);
        assert_eq!(s.min_dist_frac, 0.5);
        assert_eq!(s.pairs_per_seed, 1);
        assert_eq!(s.threads, 0, "threads defaults to 0 = all cores");
    }

    #[test]
    fn pairs_per_seed_parses_and_validates() {
        let base = "name = \"d\"\ntable = \"routing\"\n[mesh]\ndims = [8, 8]\n\
             [faults]\ncounts = [4]\n[run]\nseeds = [0, 2]\n";
        let s = Scenario::from_toml(&format!("{base}pairs_per_seed = 16\n")).unwrap();
        assert_eq!(s.pairs_per_seed, 16);
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back.pairs_per_seed, 16, "pairs_per_seed must round-trip");
        assert!(Scenario::from_toml(&format!("{base}pairs_per_seed = 0\n")).is_err());
        assert!(Scenario::from_toml(&format!("{base}pairs_per_seed = -3\n")).is_err());
    }

    #[test]
    fn threads_parses_validates_and_round_trips() {
        let base = "name = \"d\"\ntable = \"routing\"\n[mesh]\ndims = [8, 8]\n\
             [faults]\ncounts = [4]\n[run]\nseeds = [0, 2]\n";
        let s = Scenario::from_toml(&format!("{base}threads = 4\n")).unwrap();
        assert_eq!(s.threads, 4);
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back.threads, 4, "threads must round-trip");
        // 0 (all cores) is the default and stays implicit in the TOML so
        // pre-existing scenario files keep rendering byte-for-byte.
        let default = Scenario::from_toml(base).unwrap();
        assert_eq!(default.threads, 0);
        assert!(!default.to_toml().contains("threads"));
        assert!(Scenario::from_toml(&format!("{base}threads = -2\n")).is_err());
        assert!(Scenario::from_toml(&format!("{base}threads = 5000\n")).is_err());
    }

    #[test]
    fn rejects_bad_schemas() {
        for (text, why) in [
            ("table = \"regions\"", "missing name"),
            ("name = \"x\"\ntable = \"nope\"", "bad table"),
            (
                "name = \"x\"\ntable = \"regions\"\n[mesh]\ndims = [8]\n[faults]\ncounts = [1]\n[run]\nseeds = [0, 1]",
                "1-D mesh",
            ),
            (
                "name = \"x\"\ntable = \"regions\"\n[mesh]\ndims = [8, 8]\n[faults]\ncounts = []\n[run]\nseeds = [0, 1]",
                "empty ramp",
            ),
            (
                "name = \"x\"\ntable = \"regions\"\n[mesh]\ndims = [8, 8]\n[faults]\ncounts = [100]\n[run]\nseeds = [0, 1]",
                "too many faults",
            ),
            (
                "name = \"x\"\ntable = \"regions\"\n[mesh]\ndims = [8, 8]\n[faults]\ncounts = [1]\n[run]\nseeds = [5, 5]",
                "empty seed range",
            ),
        ] {
            assert!(Scenario::from_toml(text).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn toml_round_trip() {
        let s = Scenario::from_toml(EXAMPLE).unwrap();
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(s, back);
    }

    const CHURN_BASE: &str = "name = \"c\"\ntable = \"churn\"\n[mesh]\ndims = [16, 16]\n\
         [faults]\ncounts = [8, 16]\n[run]\nseeds = [0, 4]\n";

    #[test]
    fn churn_schema_parses_and_round_trips() {
        let text = format!("{CHURN_BASE}[churn]\nrounds = 12\nrate = 0.25\n");
        let s = Scenario::from_toml(&text).unwrap();
        assert_eq!(s.table, TableKind::Churn);
        assert_eq!(s.churn_rounds, 12);
        assert_eq!(s.churn_rate, 0.25);
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(s, back, "churn knobs must round-trip");
        // `rate` is optional and defaults to 0.25.
        let defaulted = Scenario::from_toml(&format!("{CHURN_BASE}[churn]\nrounds = 3\n")).unwrap();
        assert_eq!(defaulted.churn_rate, 0.25);
    }

    #[test]
    fn churn_rejects_zero_rounds() {
        let err = Scenario::from_toml(&format!("{CHURN_BASE}[churn]\nrounds = 0\n")).unwrap_err();
        assert!(err.to_string().contains("rounds"), "got: {err}");
    }

    #[test]
    fn churn_rejects_rate_at_or_beyond_one() {
        for rate in ["1.0", "1.5", "0.0", "-0.25", "nan"] {
            let text = format!("{CHURN_BASE}[churn]\nrounds = 4\nrate = {rate}\n");
            let err = Scenario::from_toml(&text).unwrap_err();
            assert!(
                err.to_string().contains("rate") || err.line().is_some(),
                "rate {rate} must be rejected, got: {err}"
            );
        }
    }

    #[test]
    fn churn_rejects_fault_free_ramp_entries() {
        // Every round must heal something, so a 0-fault mesh cannot churn.
        let text = "name = \"c\"\ntable = \"churn\"\n[mesh]\ndims = [16, 16]\n\
             [faults]\ncounts = [0, 8]\n[run]\nseeds = [0, 4]\n[churn]\nrounds = 4\n";
        let err = Scenario::from_toml(text).unwrap_err();
        assert!(err.to_string().contains("heal"), "got: {err}");
    }

    #[test]
    fn churn_section_requires_churn_table() {
        let text = "name = \"x\"\ntable = \"regions\"\n[mesh]\ndims = [8, 8]\n\
             [faults]\ncounts = [4]\n[run]\nseeds = [0, 2]\n[churn]\nrounds = 4\n";
        let err = Scenario::from_toml(text).unwrap_err();
        assert!(err.to_string().contains("[churn]"), "got: {err}");
        // And the converse: a churn table without its section is rejected.
        let err = Scenario::from_toml(CHURN_BASE).unwrap_err();
        assert!(err.to_string().contains("churn"), "got: {err}");
    }

    #[test]
    fn quick_shrinks_seed_range() {
        let mut s = Scenario::regions_2d(8, &[2], 400);
        assert_eq!(s.quick().seed_count(), 40);
        s.seed_end = 5;
        assert_eq!(s.quick().seed_count(), 1);
    }

    /// Regression: `--quick` on a scenario with fewer than 10 seeds must
    /// clamp to one seed, never to the empty range `validate` rejects —
    /// for every sub-10 range width and also when the range does not
    /// start at 0.
    #[test]
    fn quick_never_empties_small_seed_ranges() {
        for width in 1..10u64 {
            for start in [0u64, 7, 123] {
                let mut s = Scenario::regions_2d(8, &[2], 1);
                s.seed_start = start;
                s.seed_end = start + width;
                let q = s.quick();
                assert_eq!(q.seed_count(), 1, "range [{start}, {})", start + width);
                assert_eq!(q.seed_start, start, "quick must not move the start");
                q.validate()
                    .expect("a quick-shrunk valid scenario stays valid");
            }
        }
    }

    fn demo_profile() -> LoadProfile {
        LoadProfile {
            initial_rps: 100,
            increment_rps: 100,
            max_rps: 500,
            step_secs: 0.5,
            mix_routing: 0.6,
            mix_labelling: 0.3,
            mix_churn: 0.1,
            pool: 2,
            alt_dims: None,
            p99_limit_ms: 50.0,
            fail_limit: 0.05,
        }
    }

    const LOAD_BASE: &str = "name = \"l\"\ntable = \"load\"\n[mesh]\ndims = [16, 16]\n\
         [faults]\ncounts = [12]\n[run]\nseeds = [0, 1]\n";

    #[test]
    fn load_schema_parses_and_round_trips() {
        let text = format!(
            "{LOAD_BASE}[load]\ninitial_rps = 100\nincrement_rps = 100\nmax_rps = 500\n\
             step_secs = 0.5\nmix = [0.6, 0.3, 0.1]\npool = 4\nalt_dims = [6, 6, 6]\n"
        );
        let s = Scenario::from_toml(&text).unwrap();
        assert_eq!(s.table, TableKind::Load);
        let load = s.load.as_ref().unwrap();
        assert_eq!(
            (load.initial_rps, load.increment_rps, load.max_rps),
            (100, 100, 500)
        );
        assert_eq!(load.step_secs, 0.5);
        assert_eq!(load.mix(), [0.6, 0.3, 0.1]);
        assert_eq!(load.pool, 4);
        assert_eq!(load.alt_dims, Some(MeshDims::D3 { x: 6, y: 6, z: 6 }));
        // Optional thresholds default.
        assert_eq!(load.p99_limit_ms, LoadProfile::DEFAULT_P99_LIMIT_MS);
        assert_eq!(load.fail_limit, LoadProfile::DEFAULT_FAIL_LIMIT);
        assert_eq!(load.max_steps(), 5);
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(s, back, "load knobs must round-trip");
    }

    #[test]
    fn load_rejects_bad_knobs() {
        for (extra, why) in [
            ("", "missing [load] section"),
            (
                "[load]\ninitial_rps = 0\nincrement_rps = 1\nmax_rps = 5\nstep_secs = 0.5\nmix = [1.0, 0.0, 0.0]\n",
                "zero initial rate",
            ),
            (
                "[load]\ninitial_rps = 10\nincrement_rps = 1\nmax_rps = 5\nstep_secs = 0.5\nmix = [1.0, 0.0, 0.0]\n",
                "ceiling below start",
            ),
            (
                "[load]\ninitial_rps = 10\nincrement_rps = 0\nmax_rps = 50\nstep_secs = 0.5\nmix = [1.0, 0.0, 0.0]\n",
                "zero increment with an unreachable ceiling",
            ),
            (
                "[load]\ninitial_rps = 10\nincrement_rps = 5\nmax_rps = 50\nstep_secs = 0.0\nmix = [1.0, 0.0, 0.0]\n",
                "zero step duration",
            ),
            (
                "[load]\ninitial_rps = 10\nincrement_rps = 5\nmax_rps = 50\nstep_secs = 0.5\nmix = [0.0, 0.0, 0.0]\n",
                "all-zero mix",
            ),
            (
                "[load]\ninitial_rps = 10\nincrement_rps = 5\nmax_rps = 50\nstep_secs = 0.5\nmix = [1.0, 0.0]\n",
                "two-entry mix",
            ),
            (
                "[load]\ninitial_rps = 10\nincrement_rps = 5\nmax_rps = 50\nstep_secs = 0.5\nmix = [1.0, 0.0, 0.0]\npool = 0\n",
                "empty pool",
            ),
        ] {
            let text = format!("{LOAD_BASE}{extra}");
            assert!(Scenario::from_toml(&text).is_err(), "should reject: {why}");
        }
        // A [load] section on a non-load table is rejected, like [churn].
        let text = "name = \"x\"\ntable = \"regions\"\n[mesh]\ndims = [8, 8]\n\
             [faults]\ncounts = [4]\n[run]\nseeds = [0, 2]\n\
             [load]\ninitial_rps = 10\nincrement_rps = 5\nmax_rps = 50\n\
             step_secs = 0.5\nmix = [1.0, 0.0, 0.0]\n";
        let err = Scenario::from_toml(text).unwrap_err();
        assert!(err.to_string().contains("[load]"), "got: {err}");
        // Churn weight needs faults to heal, and the ramp must hold one
        // fixed fault population.
        let mut sc = Scenario::load_2d(16, 0, 0, demo_profile());
        let err = sc.validate().unwrap_err();
        assert!(err.to_string().contains("churn mix"), "got: {err}");
        sc.fault_counts = vec![4, 8];
        let err = sc.validate().unwrap_err();
        assert!(err.to_string().contains("exactly 1"), "got: {err}");
    }

    #[test]
    fn load_alt_geometry_is_validated_too() {
        let mut profile = demo_profile();
        profile.alt_dims = Some(MeshDims::D3 { x: 2, y: 2, z: 2 });
        // 12 faults + 2 endpoints don't fit an 8-node alt mesh.
        let sc = Scenario::load_2d(16, 12, 0, profile);
        let err = sc.validate().unwrap_err();
        assert!(err.to_string().contains("load-pool"), "got: {err}");
    }

    const SERVICE_BASE: &str = "name = \"s\"\ntable = \"service\"\n[mesh]\ndims = [12, 12]\n\
         [faults]\ncounts = [10]\n[run]\nseeds = [0, 1]\n\
         [load]\ninitial_rps = 100\nincrement_rps = 100\nmax_rps = 300\n\
         step_secs = 0.5\nmix = [0.5, 0.3, 0.2]\npool = 2\n";

    #[test]
    fn service_schema_parses_and_round_trips() {
        let text = format!(
            "{SERVICE_BASE}[service]\nqueue_cap = 8\ndeadline_ms = 12.0\n\
             cost_us = [12000, 6000, 24000]\nsnapshot_every = 8\n"
        );
        let s = Scenario::from_toml(&text).unwrap();
        assert_eq!(s.table, TableKind::Service);
        assert!(s.load.is_some(), "service tables carry the ramp too");
        let service = s.service.as_ref().unwrap();
        assert_eq!(service.queue_cap, 8);
        assert_eq!(service.deadline_ms, 12.0);
        assert_eq!(service.cost_us, [12_000, 6_000, 24_000]);
        assert_eq!(service.snapshot_every, 8);
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(s, back, "service knobs must round-trip");
        // Every [service] key is optional; omissions fall back to defaults.
        let s = Scenario::from_toml(&format!("{SERVICE_BASE}[service]\nqueue_cap = 4\n")).unwrap();
        let service = s.service.as_ref().unwrap();
        assert_eq!(service.queue_cap, 4);
        assert_eq!(service.deadline_ms, ServiceProfile::default().deadline_ms);
        assert_eq!(service.cost_us, ServiceProfile::default().cost_us);
    }

    #[test]
    fn service_rejects_bad_knobs() {
        // The section itself is mandatory, as is the ramp it throttles.
        let err = Scenario::from_toml(SERVICE_BASE).unwrap_err();
        assert!(err.to_string().contains("[service]"), "got: {err}");
        let no_ramp = "name = \"s\"\ntable = \"service\"\n[mesh]\ndims = [12, 12]\n\
             [faults]\ncounts = [10]\n[run]\nseeds = [0, 1]\n[service]\n";
        let err = Scenario::from_toml(no_ramp).unwrap_err();
        assert!(err.to_string().contains("[load]"), "got: {err}");
        for (extra, why) in [
            ("[service]\nqueue_cap = 0\n", "zero queue capacity"),
            ("[service]\nqueue_cap = 100000\n", "absurd queue capacity"),
            ("[service]\ndeadline_ms = 0.0\n", "zero deadline"),
            ("[service]\ncost_us = [1, 2]\n", "two-entry cost table"),
            ("[service]\ncost_us = [1, 0, 2]\n", "zero op cost"),
        ] {
            let text = format!("{SERVICE_BASE}{extra}");
            assert!(Scenario::from_toml(&text).is_err(), "should reject: {why}");
        }
        // A [service] section on a non-service table is rejected.
        let text = "name = \"x\"\ntable = \"regions\"\n[mesh]\ndims = [8, 8]\n\
             [faults]\ncounts = [4]\n[run]\nseeds = [0, 2]\n[service]\nqueue_cap = 4\n";
        let err = Scenario::from_toml(text).unwrap_err();
        assert!(err.to_string().contains("[service]"), "got: {err}");
    }

    #[test]
    fn quick_shrinks_load_ramp_to_a_smoke_run() {
        let sc = Scenario::load_2d(16, 12, 0, demo_profile());
        let q = sc.quick();
        let load = q.load.as_ref().unwrap();
        assert_eq!(load.step_secs, 0.05, "a tenth, clamped to 50 ms");
        assert_eq!(load.max_rps, 300, "ramp clamped to three steps");
        assert_eq!(load.max_steps(), 3);
        q.validate().expect("quick load scenario stays valid");
    }

    const REGIME_BASE: &str = "name = \"r\"\ntable = \"routing\"\n[mesh]\ndims = [16, 16]\n\
         [faults]\ncounts = [8]\n[run]\nseeds = [0, 4]\n";

    /// Satellite: unknown keys anywhere in `[faults]` are a typed error,
    /// not a silent no-op — the canonical foot-gun being `clusters` left
    /// behind after switching `pattern` back to `"uniform"`.
    #[test]
    fn faults_rejects_unknown_and_orphaned_keys() {
        let err = Scenario::from_toml(
            "name = \"r\"\ntable = \"routing\"\n[mesh]\ndims = [16, 16]\n\
             [faults]\ncounts = [8]\nclusterz = 3\n[run]\nseeds = [0, 4]\n",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown key `clusterz`"),
            "got: {err}"
        );
        let err = Scenario::from_toml(
            "name = \"r\"\ntable = \"routing\"\n[mesh]\ndims = [16, 16]\n\
             [faults]\ncounts = [8]\npattern = \"uniform\"\nclusters = 3\n\
             [run]\nseeds = [0, 4]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("clusters"), "got: {err}");
        assert!(err.to_string().contains("ignored"), "got: {err}");
    }

    #[test]
    fn regime_section_parses_every_kind_and_round_trips() {
        for (section, want) in [
            (
                "[faults.regime]\nkind = \"front\"\nfronts = 2\n",
                FaultRegime::CorrelatedFront { fronts: 2 },
            ),
            (
                "[faults.regime]\nkind = \"front\"\n",
                FaultRegime::CorrelatedFront { fronts: 3 },
            ),
            (
                "[faults.regime]\nkind = \"plane\"\naxis = \"y\"\n",
                FaultRegime::SweepingPlane { axis: 1 },
            ),
            (
                "[faults.regime]\nkind = \"transient\"\nperiod = 6\nduty = 0.25\n",
                FaultRegime::TransientSchedule {
                    period: 6,
                    duty: 0.25,
                },
            ),
            (
                "[faults.regime]\nkind = \"adversarial\"\nrestarts = 4\n",
                FaultRegime::AdversarialBoundary { restarts: 4 },
            ),
            (
                "[faults.regime]\nkind = \"uniform\"\n",
                FaultRegime::Uniform,
            ),
            (
                "[faults.regime]\nkind = \"clustered\"\nclusters = 5\n",
                FaultRegime::Clustered { clusters: 5 },
            ),
        ] {
            let s = Scenario::from_toml(&format!("{REGIME_BASE}{section}")).unwrap();
            assert_eq!(s.regime, want, "section: {section}");
            let back = Scenario::from_toml(&s.to_toml()).unwrap();
            assert_eq!(s, back, "regime must round-trip: {section}");
        }
    }

    #[test]
    fn regime_section_excludes_legacy_pattern_keys() {
        let text = "name = \"r\"\ntable = \"routing\"\n[mesh]\ndims = [16, 16]\n\
             [faults]\ncounts = [8]\npattern = \"uniform\"\n[run]\nseeds = [0, 4]\n\
             [faults.regime]\nkind = \"front\"\n";
        let err = Scenario::from_toml(text).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "got: {err}");
    }

    #[test]
    fn regime_section_rejects_unknown_and_misplaced_keys() {
        // A knob belonging to a different kind is named in the error.
        let err = Scenario::from_toml(&format!(
            "{REGIME_BASE}[faults.regime]\nkind = \"plane\"\nfronts = 2\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("fronts"), "got: {err}");
        assert!(err.to_string().contains("plane"), "got: {err}");
        for (section, why) in [
            ("[faults.regime]\nfronts = 2\n", "missing kind"),
            ("[faults.regime]\nkind = \"blob\"\n", "unknown kind"),
            (
                "[faults.regime]\nkind = \"front\"\nfronts = 0\n",
                "zero fronts",
            ),
            (
                "[faults.regime]\nkind = \"plane\"\naxis = \"w\"\n",
                "bad axis",
            ),
            (
                "[faults.regime]\nkind = \"transient\"\nperiod = 1\n",
                "degenerate period",
            ),
            (
                "[faults.regime]\nkind = \"transient\"\nduty = 1.5\n",
                "duty beyond 1",
            ),
            (
                "[faults.regime]\nkind = \"adversarial\"\nrestarts = 0\n",
                "zero restarts",
            ),
        ] {
            let text = format!("{REGIME_BASE}{section}");
            assert!(Scenario::from_toml(&text).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn regime_validation_gates_tables_and_dimensionality() {
        // A z-plane needs a 3-D mesh.
        let err = Scenario::from_toml(&format!(
            "{REGIME_BASE}[faults.regime]\nkind = \"plane\"\naxis = \"z\"\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("3-D"), "got: {err}");
        // Transient schedules drive churn rounds, not request-driven load.
        let text = format!(
            "{LOAD_BASE}[load]\ninitial_rps = 10\nincrement_rps = 5\nmax_rps = 20\n\
             step_secs = 0.5\nmix = [1.0, 0.0, 0.0]\n\
             [faults.regime]\nkind = \"transient\"\n"
        );
        let err = Scenario::from_toml(&text).unwrap_err();
        assert!(err.to_string().contains("transient"), "got: {err}");
        // Adversarial search targets one routing pair per seed.
        let err = Scenario::from_toml(&format!(
            "{REGIME_BASE}pairs_per_seed = 4\n[faults.regime]\nkind = \"adversarial\"\n"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("pairs_per_seed"), "got: {err}");
        let err = Scenario::from_toml(
            "name = \"r\"\ntable = \"regions\"\n[mesh]\ndims = [16, 16]\n\
             [faults]\ncounts = [8]\n[run]\nseeds = [0, 4]\n\
             [faults.regime]\nkind = \"adversarial\"\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("routing"), "got: {err}");
    }
}
